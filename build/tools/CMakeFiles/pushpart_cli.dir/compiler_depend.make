# Empty compiler generated dependencies file for pushpart_cli.
# This may be replaced when dependencies are built.
