file(REMOVE_RECURSE
  "CMakeFiles/pushpart_cli.dir/pushpart_cli.cpp.o"
  "CMakeFiles/pushpart_cli.dir/pushpart_cli.cpp.o.d"
  "pushpart"
  "pushpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
