# Empty dependencies file for push_fuzzer.
# This may be replaced when dependencies are built.
