file(REMOVE_RECURSE
  "CMakeFiles/push_fuzzer.dir/push_fuzzer.cpp.o"
  "CMakeFiles/push_fuzzer.dir/push_fuzzer.cpp.o.d"
  "push_fuzzer"
  "push_fuzzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_fuzzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
