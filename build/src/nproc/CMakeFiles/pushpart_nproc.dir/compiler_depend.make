# Empty compiler generated dependencies file for pushpart_nproc.
# This may be replaced when dependencies are built.
