file(REMOVE_RECURSE
  "libpushpart_nproc.a"
)
