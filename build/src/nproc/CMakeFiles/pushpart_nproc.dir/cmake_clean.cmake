file(REMOVE_RECURSE
  "CMakeFiles/pushpart_nproc.dir/npartition.cpp.o"
  "CMakeFiles/pushpart_nproc.dir/npartition.cpp.o.d"
  "CMakeFiles/pushpart_nproc.dir/npush.cpp.o"
  "CMakeFiles/pushpart_nproc.dir/npush.cpp.o.d"
  "CMakeFiles/pushpart_nproc.dir/nsearch.cpp.o"
  "CMakeFiles/pushpart_nproc.dir/nsearch.cpp.o.d"
  "CMakeFiles/pushpart_nproc.dir/nshapes.cpp.o"
  "CMakeFiles/pushpart_nproc.dir/nshapes.cpp.o.d"
  "libpushpart_nproc.a"
  "libpushpart_nproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_nproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
