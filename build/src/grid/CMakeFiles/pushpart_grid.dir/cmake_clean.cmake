file(REMOVE_RECURSE
  "CMakeFiles/pushpart_grid.dir/builder.cpp.o"
  "CMakeFiles/pushpart_grid.dir/builder.cpp.o.d"
  "CMakeFiles/pushpart_grid.dir/metrics.cpp.o"
  "CMakeFiles/pushpart_grid.dir/metrics.cpp.o.d"
  "CMakeFiles/pushpart_grid.dir/partition.cpp.o"
  "CMakeFiles/pushpart_grid.dir/partition.cpp.o.d"
  "CMakeFiles/pushpart_grid.dir/ratio.cpp.o"
  "CMakeFiles/pushpart_grid.dir/ratio.cpp.o.d"
  "CMakeFiles/pushpart_grid.dir/render.cpp.o"
  "CMakeFiles/pushpart_grid.dir/render.cpp.o.d"
  "CMakeFiles/pushpart_grid.dir/serialize.cpp.o"
  "CMakeFiles/pushpart_grid.dir/serialize.cpp.o.d"
  "libpushpart_grid.a"
  "libpushpart_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
