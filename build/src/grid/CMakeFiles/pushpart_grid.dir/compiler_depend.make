# Empty compiler generated dependencies file for pushpart_grid.
# This may be replaced when dependencies are built.
