file(REMOVE_RECURSE
  "libpushpart_grid.a"
)
