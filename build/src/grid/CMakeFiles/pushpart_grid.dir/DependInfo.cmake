
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/builder.cpp" "src/grid/CMakeFiles/pushpart_grid.dir/builder.cpp.o" "gcc" "src/grid/CMakeFiles/pushpart_grid.dir/builder.cpp.o.d"
  "/root/repo/src/grid/metrics.cpp" "src/grid/CMakeFiles/pushpart_grid.dir/metrics.cpp.o" "gcc" "src/grid/CMakeFiles/pushpart_grid.dir/metrics.cpp.o.d"
  "/root/repo/src/grid/partition.cpp" "src/grid/CMakeFiles/pushpart_grid.dir/partition.cpp.o" "gcc" "src/grid/CMakeFiles/pushpart_grid.dir/partition.cpp.o.d"
  "/root/repo/src/grid/ratio.cpp" "src/grid/CMakeFiles/pushpart_grid.dir/ratio.cpp.o" "gcc" "src/grid/CMakeFiles/pushpart_grid.dir/ratio.cpp.o.d"
  "/root/repo/src/grid/render.cpp" "src/grid/CMakeFiles/pushpart_grid.dir/render.cpp.o" "gcc" "src/grid/CMakeFiles/pushpart_grid.dir/render.cpp.o.d"
  "/root/repo/src/grid/serialize.cpp" "src/grid/CMakeFiles/pushpart_grid.dir/serialize.cpp.o" "gcc" "src/grid/CMakeFiles/pushpart_grid.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pushpart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
