file(REMOVE_RECURSE
  "CMakeFiles/pushpart_plan.dir/comm_plan.cpp.o"
  "CMakeFiles/pushpart_plan.dir/comm_plan.cpp.o.d"
  "libpushpart_plan.a"
  "libpushpart_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
