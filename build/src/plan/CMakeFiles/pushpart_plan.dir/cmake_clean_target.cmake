file(REMOVE_RECURSE
  "libpushpart_plan.a"
)
