# Empty dependencies file for pushpart_plan.
# This may be replaced when dependencies are built.
