# Empty compiler generated dependencies file for pushpart_exec.
# This may be replaced when dependencies are built.
