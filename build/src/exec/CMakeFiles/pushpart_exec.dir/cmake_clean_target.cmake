file(REMOVE_RECURSE
  "libpushpart_exec.a"
)
