file(REMOVE_RECURSE
  "CMakeFiles/pushpart_exec.dir/kij_executor.cpp.o"
  "CMakeFiles/pushpart_exec.dir/kij_executor.cpp.o.d"
  "CMakeFiles/pushpart_exec.dir/matrix.cpp.o"
  "CMakeFiles/pushpart_exec.dir/matrix.cpp.o.d"
  "CMakeFiles/pushpart_exec.dir/throttle.cpp.o"
  "CMakeFiles/pushpart_exec.dir/throttle.cpp.o.d"
  "libpushpart_exec.a"
  "libpushpart_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
