file(REMOVE_RECURSE
  "libpushpart_dfa.a"
)
