file(REMOVE_RECURSE
  "CMakeFiles/pushpart_dfa.dir/batch.cpp.o"
  "CMakeFiles/pushpart_dfa.dir/batch.cpp.o.d"
  "CMakeFiles/pushpart_dfa.dir/dfa.cpp.o"
  "CMakeFiles/pushpart_dfa.dir/dfa.cpp.o.d"
  "CMakeFiles/pushpart_dfa.dir/schedule.cpp.o"
  "CMakeFiles/pushpart_dfa.dir/schedule.cpp.o.d"
  "libpushpart_dfa.a"
  "libpushpart_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
