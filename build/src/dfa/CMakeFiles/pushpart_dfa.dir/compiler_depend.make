# Empty compiler generated dependencies file for pushpart_dfa.
# This may be replaced when dependencies are built.
