file(REMOVE_RECURSE
  "libpushpart_model.a"
)
