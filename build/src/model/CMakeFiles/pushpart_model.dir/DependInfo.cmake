
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/closed_form.cpp" "src/model/CMakeFiles/pushpart_model.dir/closed_form.cpp.o" "gcc" "src/model/CMakeFiles/pushpart_model.dir/closed_form.cpp.o.d"
  "/root/repo/src/model/geometry.cpp" "src/model/CMakeFiles/pushpart_model.dir/geometry.cpp.o" "gcc" "src/model/CMakeFiles/pushpart_model.dir/geometry.cpp.o.d"
  "/root/repo/src/model/models.cpp" "src/model/CMakeFiles/pushpart_model.dir/models.cpp.o" "gcc" "src/model/CMakeFiles/pushpart_model.dir/models.cpp.o.d"
  "/root/repo/src/model/optimal.cpp" "src/model/CMakeFiles/pushpart_model.dir/optimal.cpp.o" "gcc" "src/model/CMakeFiles/pushpart_model.dir/optimal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pushpart_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/shapes/CMakeFiles/pushpart_shapes.dir/DependInfo.cmake"
  "/root/repo/build/src/push/CMakeFiles/pushpart_push.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pushpart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
