file(REMOVE_RECURSE
  "CMakeFiles/pushpart_model.dir/closed_form.cpp.o"
  "CMakeFiles/pushpart_model.dir/closed_form.cpp.o.d"
  "CMakeFiles/pushpart_model.dir/geometry.cpp.o"
  "CMakeFiles/pushpart_model.dir/geometry.cpp.o.d"
  "CMakeFiles/pushpart_model.dir/models.cpp.o"
  "CMakeFiles/pushpart_model.dir/models.cpp.o.d"
  "CMakeFiles/pushpart_model.dir/optimal.cpp.o"
  "CMakeFiles/pushpart_model.dir/optimal.cpp.o.d"
  "libpushpart_model.a"
  "libpushpart_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
