# Empty compiler generated dependencies file for pushpart_model.
# This may be replaced when dependencies are built.
