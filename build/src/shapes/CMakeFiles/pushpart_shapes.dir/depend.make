# Empty dependencies file for pushpart_shapes.
# This may be replaced when dependencies are built.
