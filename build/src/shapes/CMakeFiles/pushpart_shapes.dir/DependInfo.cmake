
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shapes/archetype.cpp" "src/shapes/CMakeFiles/pushpart_shapes.dir/archetype.cpp.o" "gcc" "src/shapes/CMakeFiles/pushpart_shapes.dir/archetype.cpp.o.d"
  "/root/repo/src/shapes/candidates.cpp" "src/shapes/CMakeFiles/pushpart_shapes.dir/candidates.cpp.o" "gcc" "src/shapes/CMakeFiles/pushpart_shapes.dir/candidates.cpp.o.d"
  "/root/repo/src/shapes/corners.cpp" "src/shapes/CMakeFiles/pushpart_shapes.dir/corners.cpp.o" "gcc" "src/shapes/CMakeFiles/pushpart_shapes.dir/corners.cpp.o.d"
  "/root/repo/src/shapes/transform.cpp" "src/shapes/CMakeFiles/pushpart_shapes.dir/transform.cpp.o" "gcc" "src/shapes/CMakeFiles/pushpart_shapes.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pushpart_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/push/CMakeFiles/pushpart_push.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pushpart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
