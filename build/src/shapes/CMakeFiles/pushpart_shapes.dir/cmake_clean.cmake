file(REMOVE_RECURSE
  "CMakeFiles/pushpart_shapes.dir/archetype.cpp.o"
  "CMakeFiles/pushpart_shapes.dir/archetype.cpp.o.d"
  "CMakeFiles/pushpart_shapes.dir/candidates.cpp.o"
  "CMakeFiles/pushpart_shapes.dir/candidates.cpp.o.d"
  "CMakeFiles/pushpart_shapes.dir/corners.cpp.o"
  "CMakeFiles/pushpart_shapes.dir/corners.cpp.o.d"
  "CMakeFiles/pushpart_shapes.dir/transform.cpp.o"
  "CMakeFiles/pushpart_shapes.dir/transform.cpp.o.d"
  "libpushpart_shapes.a"
  "libpushpart_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
