file(REMOVE_RECURSE
  "libpushpart_shapes.a"
)
