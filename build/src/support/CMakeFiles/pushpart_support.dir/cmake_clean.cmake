file(REMOVE_RECURSE
  "CMakeFiles/pushpart_support.dir/csv.cpp.o"
  "CMakeFiles/pushpart_support.dir/csv.cpp.o.d"
  "CMakeFiles/pushpart_support.dir/flags.cpp.o"
  "CMakeFiles/pushpart_support.dir/flags.cpp.o.d"
  "CMakeFiles/pushpart_support.dir/log.cpp.o"
  "CMakeFiles/pushpart_support.dir/log.cpp.o.d"
  "CMakeFiles/pushpart_support.dir/rng.cpp.o"
  "CMakeFiles/pushpart_support.dir/rng.cpp.o.d"
  "CMakeFiles/pushpart_support.dir/table.cpp.o"
  "CMakeFiles/pushpart_support.dir/table.cpp.o.d"
  "libpushpart_support.a"
  "libpushpart_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
