file(REMOVE_RECURSE
  "libpushpart_support.a"
)
