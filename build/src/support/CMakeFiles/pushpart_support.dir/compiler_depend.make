# Empty compiler generated dependencies file for pushpart_support.
# This may be replaced when dependencies are built.
