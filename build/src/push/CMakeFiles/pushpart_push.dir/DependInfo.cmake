
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/push/beautify.cpp" "src/push/CMakeFiles/pushpart_push.dir/beautify.cpp.o" "gcc" "src/push/CMakeFiles/pushpart_push.dir/beautify.cpp.o.d"
  "/root/repo/src/push/push.cpp" "src/push/CMakeFiles/pushpart_push.dir/push.cpp.o" "gcc" "src/push/CMakeFiles/pushpart_push.dir/push.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pushpart_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pushpart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
