# Empty dependencies file for pushpart_push.
# This may be replaced when dependencies are built.
