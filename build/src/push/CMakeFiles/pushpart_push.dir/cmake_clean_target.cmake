file(REMOVE_RECURSE
  "libpushpart_push.a"
)
