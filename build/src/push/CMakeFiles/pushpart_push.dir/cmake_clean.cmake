file(REMOVE_RECURSE
  "CMakeFiles/pushpart_push.dir/beautify.cpp.o"
  "CMakeFiles/pushpart_push.dir/beautify.cpp.o.d"
  "CMakeFiles/pushpart_push.dir/push.cpp.o"
  "CMakeFiles/pushpart_push.dir/push.cpp.o.d"
  "libpushpart_push.a"
  "libpushpart_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
