file(REMOVE_RECURSE
  "libpushpart_sim.a"
)
