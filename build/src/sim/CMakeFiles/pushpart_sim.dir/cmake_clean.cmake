file(REMOVE_RECURSE
  "CMakeFiles/pushpart_sim.dir/mmm_sim.cpp.o"
  "CMakeFiles/pushpart_sim.dir/mmm_sim.cpp.o.d"
  "CMakeFiles/pushpart_sim.dir/network.cpp.o"
  "CMakeFiles/pushpart_sim.dir/network.cpp.o.d"
  "libpushpart_sim.a"
  "libpushpart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
