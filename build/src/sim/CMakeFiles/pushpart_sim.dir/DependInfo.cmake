
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/mmm_sim.cpp" "src/sim/CMakeFiles/pushpart_sim.dir/mmm_sim.cpp.o" "gcc" "src/sim/CMakeFiles/pushpart_sim.dir/mmm_sim.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/pushpart_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/pushpart_sim.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pushpart_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pushpart_model.dir/DependInfo.cmake"
  "/root/repo/build/src/shapes/CMakeFiles/pushpart_shapes.dir/DependInfo.cmake"
  "/root/repo/build/src/push/CMakeFiles/pushpart_push.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pushpart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
