# Empty compiler generated dependencies file for pushpart_sim.
# This may be replaced when dependencies are built.
