file(REMOVE_RECURSE
  "CMakeFiles/four_processors.dir/four_processors.cpp.o"
  "CMakeFiles/four_processors.dir/four_processors.cpp.o.d"
  "four_processors"
  "four_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
