# Empty dependencies file for four_processors.
# This may be replaced when dependencies are built.
