file(REMOVE_RECURSE
  "CMakeFiles/choose_partition.dir/choose_partition.cpp.o"
  "CMakeFiles/choose_partition.dir/choose_partition.cpp.o.d"
  "choose_partition"
  "choose_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choose_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
