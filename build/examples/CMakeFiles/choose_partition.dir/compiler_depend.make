# Empty compiler generated dependencies file for choose_partition.
# This may be replaced when dependencies are built.
