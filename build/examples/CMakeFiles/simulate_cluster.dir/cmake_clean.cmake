file(REMOVE_RECURSE
  "CMakeFiles/simulate_cluster.dir/simulate_cluster.cpp.o"
  "CMakeFiles/simulate_cluster.dir/simulate_cluster.cpp.o.d"
  "simulate_cluster"
  "simulate_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
