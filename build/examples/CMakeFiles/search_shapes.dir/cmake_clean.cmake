file(REMOVE_RECURSE
  "CMakeFiles/search_shapes.dir/search_shapes.cpp.o"
  "CMakeFiles/search_shapes.dir/search_shapes.cpp.o.d"
  "search_shapes"
  "search_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
