# Empty dependencies file for search_shapes.
# This may be replaced when dependencies are built.
