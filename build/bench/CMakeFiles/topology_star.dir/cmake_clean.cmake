file(REMOVE_RECURSE
  "CMakeFiles/topology_star.dir/topology_star.cpp.o"
  "CMakeFiles/topology_star.dir/topology_star.cpp.o.d"
  "topology_star"
  "topology_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
