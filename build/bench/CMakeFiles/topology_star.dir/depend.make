# Empty dependencies file for topology_star.
# This may be replaced when dependencies are built.
