file(REMOVE_RECURSE
  "CMakeFiles/fig14_commtime.dir/fig14_commtime.cpp.o"
  "CMakeFiles/fig14_commtime.dir/fig14_commtime.cpp.o.d"
  "fig14_commtime"
  "fig14_commtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_commtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
