# Empty compiler generated dependencies file for fig14_commtime.
# This may be replaced when dependencies are built.
