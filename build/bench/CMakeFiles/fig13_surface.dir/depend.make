# Empty dependencies file for fig13_surface.
# This may be replaced when dependencies are built.
