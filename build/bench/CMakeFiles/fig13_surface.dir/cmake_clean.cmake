file(REMOVE_RECURSE
  "CMakeFiles/fig13_surface.dir/fig13_surface.cpp.o"
  "CMakeFiles/fig13_surface.dir/fig13_surface.cpp.o.d"
  "fig13_surface"
  "fig13_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
