file(REMOVE_RECURSE
  "CMakeFiles/exec_mmm.dir/exec_mmm.cpp.o"
  "CMakeFiles/exec_mmm.dir/exec_mmm.cpp.o.d"
  "exec_mmm"
  "exec_mmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_mmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
