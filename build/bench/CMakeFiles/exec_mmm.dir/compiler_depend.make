# Empty compiler generated dependencies file for exec_mmm.
# This may be replaced when dependencies are built.
