# Empty dependencies file for nproc_explore.
# This may be replaced when dependencies are built.
