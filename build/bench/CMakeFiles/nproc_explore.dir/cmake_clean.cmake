file(REMOVE_RECURSE
  "CMakeFiles/nproc_explore.dir/nproc_explore.cpp.o"
  "CMakeFiles/nproc_explore.dir/nproc_explore.cpp.o.d"
  "nproc_explore"
  "nproc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nproc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
