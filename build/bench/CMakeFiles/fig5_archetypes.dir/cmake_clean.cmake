file(REMOVE_RECURSE
  "CMakeFiles/fig5_archetypes.dir/fig5_archetypes.cpp.o"
  "CMakeFiles/fig5_archetypes.dir/fig5_archetypes.cpp.o.d"
  "fig5_archetypes"
  "fig5_archetypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_archetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
