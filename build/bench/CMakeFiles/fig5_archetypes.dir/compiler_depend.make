# Empty compiler generated dependencies file for fig5_archetypes.
# This may be replaced when dependencies are built.
