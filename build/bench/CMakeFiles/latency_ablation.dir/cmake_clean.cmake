file(REMOVE_RECURSE
  "CMakeFiles/latency_ablation.dir/latency_ablation.cpp.o"
  "CMakeFiles/latency_ablation.dir/latency_ablation.cpp.o.d"
  "latency_ablation"
  "latency_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
