file(REMOVE_RECURSE
  "CMakeFiles/candidates_matrix.dir/candidates_matrix.cpp.o"
  "CMakeFiles/candidates_matrix.dir/candidates_matrix.cpp.o.d"
  "candidates_matrix"
  "candidates_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidates_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
