# Empty compiler generated dependencies file for candidates_matrix.
# This may be replaced when dependencies are built.
