# Empty compiler generated dependencies file for micro_push.
# This may be replaced when dependencies are built.
