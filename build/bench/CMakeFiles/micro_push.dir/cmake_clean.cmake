file(REMOVE_RECURSE
  "CMakeFiles/micro_push.dir/micro_push.cpp.o"
  "CMakeFiles/micro_push.dir/micro_push.cpp.o.d"
  "micro_push"
  "micro_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
