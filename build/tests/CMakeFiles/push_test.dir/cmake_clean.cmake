file(REMOVE_RECURSE
  "CMakeFiles/push_test.dir/push/beautify_test.cpp.o"
  "CMakeFiles/push_test.dir/push/beautify_test.cpp.o.d"
  "CMakeFiles/push_test.dir/push/compact_test.cpp.o"
  "CMakeFiles/push_test.dir/push/compact_test.cpp.o.d"
  "CMakeFiles/push_test.dir/push/locked_states_test.cpp.o"
  "CMakeFiles/push_test.dir/push/locked_states_test.cpp.o.d"
  "CMakeFiles/push_test.dir/push/oriented_test.cpp.o"
  "CMakeFiles/push_test.dir/push/oriented_test.cpp.o.d"
  "CMakeFiles/push_test.dir/push/push_test.cpp.o"
  "CMakeFiles/push_test.dir/push/push_test.cpp.o.d"
  "push_test"
  "push_test.pdb"
  "push_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
