file(REMOVE_RECURSE
  "CMakeFiles/nproc_test.dir/nproc/fourproc_test.cpp.o"
  "CMakeFiles/nproc_test.dir/nproc/fourproc_test.cpp.o.d"
  "CMakeFiles/nproc_test.dir/nproc/npartition_test.cpp.o"
  "CMakeFiles/nproc_test.dir/nproc/npartition_test.cpp.o.d"
  "CMakeFiles/nproc_test.dir/nproc/npush_test.cpp.o"
  "CMakeFiles/nproc_test.dir/nproc/npush_test.cpp.o.d"
  "CMakeFiles/nproc_test.dir/nproc/nsearch_test.cpp.o"
  "CMakeFiles/nproc_test.dir/nproc/nsearch_test.cpp.o.d"
  "CMakeFiles/nproc_test.dir/nproc/nshapes_test.cpp.o"
  "CMakeFiles/nproc_test.dir/nproc/nshapes_test.cpp.o.d"
  "nproc_test"
  "nproc_test.pdb"
  "nproc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nproc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
