file(REMOVE_RECURSE
  "CMakeFiles/grid_test.dir/grid/builder_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/builder_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/partition_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/partition_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/ratio_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/ratio_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/rect_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/rect_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/render_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/render_test.cpp.o.d"
  "CMakeFiles/grid_test.dir/grid/serialize_test.cpp.o"
  "CMakeFiles/grid_test.dir/grid/serialize_test.cpp.o.d"
  "grid_test"
  "grid_test.pdb"
  "grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
