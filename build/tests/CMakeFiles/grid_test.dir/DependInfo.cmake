
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid/builder_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/builder_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/builder_test.cpp.o.d"
  "/root/repo/tests/grid/metrics_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/metrics_test.cpp.o.d"
  "/root/repo/tests/grid/partition_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/partition_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/partition_test.cpp.o.d"
  "/root/repo/tests/grid/ratio_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/ratio_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/ratio_test.cpp.o.d"
  "/root/repo/tests/grid/rect_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/rect_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/rect_test.cpp.o.d"
  "/root/repo/tests/grid/render_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/render_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/render_test.cpp.o.d"
  "/root/repo/tests/grid/serialize_test.cpp" "tests/CMakeFiles/grid_test.dir/grid/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfa/CMakeFiles/pushpart_dfa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pushpart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/pushpart_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pushpart_model.dir/DependInfo.cmake"
  "/root/repo/build/src/shapes/CMakeFiles/pushpart_shapes.dir/DependInfo.cmake"
  "/root/repo/build/src/nproc/CMakeFiles/pushpart_nproc.dir/DependInfo.cmake"
  "/root/repo/build/src/push/CMakeFiles/pushpart_push.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/pushpart_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/pushpart_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pushpart_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
