# Empty compiler generated dependencies file for dfa_test.
# This may be replaced when dependencies are built.
