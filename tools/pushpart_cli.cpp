// pushpart — command-line front end to the partition-shape library.
//
//   pushpart search    --n=60 --ratio=5:2:1 [--seed=1] [--out=shape.pp]
//   pushpart classify  --in=shape.pp
//   pushpart voc       --in=shape.pp
//   pushpart recommend --n=120 --ratio=10:1:1 [--algo=SCB] [--topology=full]
//                      [--bandwidth-mbs=1000] [--flops=1e9] [--out=shape.pp]
//   pushpart plan      --n=1000 --ratio=5:2:1 [--algo=SCB] [--tier=fast|search]
//                      [--runs=16] [--seed=1] [--topology=full|star] [--hub=P]
//                      [--bandwidth-mbs=1000] [--flops=1e9] [--repl]
//                      [--deadline-ms=50] [--max-concurrency=4] [--max-queue=16]
//                      [--snapshot=plans.snap] [--atlas=surface.atlas]
//                      [--atlas-gap-pct=5] [--no-atlas-prefetch]
//                      [--adaptive --observed-ratio=4:2:1 --phases=6
//                       --stale-gap-pct=5 --hysteresis=2 --min-replan-s=0]
//   pushpart drift     [--phases=120] [--seed=42] [--n=96] [--algo=SCB]
//                      [--wander=0.05] [--drill=slow|kill|none] [--node=0]
//                      [--at=30] [--until=60] [--factor=2]
//                      [--stale-gap-pct=5] [--hysteresis=2] [--min-replan-s=0]
//                      [--tier=fast|search] [--atlas=surface.atlas]
//                      [--regret-bound=1.25]
//   pushpart atlas     build --out=surface.atlas [grid/build flags]
//                      | inspect --file=surface.atlas
//                      | query --file=surface.atlas --ratio=7:2:1 [--n=1000]
//                        [--gap-pct=5]
//   pushpart cluster   [--nodes=3] [--replication=2] [--vnodes=32] [--seed=1]
//                      [--drill=kill|flap|partition|slow|none] [--node=1]
//                      [--at=1.0] [--until=2.5] [--duration=4.0]
//                      [--requests=400] [--keys=32] [--heartbeat-drop=0]
//   pushpart commplan  --in=shape.pp [--csv=plan.csv]
//   pushpart faults    --in=shape.pp --ratio=5:2:1 [--algo=SCB] [--drop=0.05]
//                      [--death-proc=R] [--death-frac=0.5 | --death-at=<s>]
//                      [--seed=1] [--timeout=1e-3] [--max-attempts=8]
//                      [--no-rebalance]
//   pushpart verify    [--deep] [--seed=1] [--corpus=tests/corpus]
//                      [--artifacts=verify-artifacts]
//
// `search` runs one randomized DFA condensation and (optionally) saves the
// condensed partition in the pushpart-partition v1 text format; `classify`,
// `voc` and `commplan` operate on saved partitions; `recommend` ranks the
// six canonical candidates for a machine and can save the winner; `plan`
// asks the serving-layer oracle (src/serve) for the optimal shape — cached,
// canonicalized, tier A (ranked candidates) or tier B (candidates
// cross-checked by a budgeted DFA search) — and with --repl answers one
// request per stdin line against a shared cache. Under load `plan` degrades
// rather than queues: --deadline-ms bounds each request (expired searches
// are cancelled cooperatively and served truncated or closed-form-only),
// --max-concurrency/--max-queue bound admission (beyond them requests are
// shed), and --snapshot warm-starts the answer cache from a file on entry
// and persists it back (atomic rename) on exit, reporting exactly what
// loaded (entries restored, corrupt entries skipped, version refusals — a
// refused snapshot starts cold instead of aborting); `plan --adaptive`
// wraps the oracle in an AdaptiveSession (src/adapt): it plans at --ratio,
// then feeds --phases synthetic telemetry phases at --observed-ratio and
// shows the drift verdicts and any invalidate-and-replan the session
// performs; `drift` runs the seeded drift drill (src/adapt/drill.hpp):
// speeds wander, one scripted fault throttles or kills a node, and the
// adaptive session's replans are scored against an omniscient per-phase
// oracle — the command fails unless regret stays within --regret-bound and
// the session re-converges after the fault window; `cluster` runs a
// seeded, replayable fault drill against a replicated oracle cluster
// (src/cluster): N nodes behind a consistent-hash router with k-way cache
// replication, driven on a fake clock through one scripted fault (a node
// kill with rejoin and rebalance, a flap, a router-link partition, or a
// slow node) while a synthetic workload measures availability; `faults`
// replays a saved
// partition through the fault-injected simulator and reports the
// retry/recovery behaviour next to the fault-free baseline; `verify` runs
// the property-based verification suite (src/verify): push/DFA/serialize
// invariants with shrinking, the exhaustive small-N differential sweep, and
// replay of the checked-in counterexample corpus. All commands accept
// --log-level=debug|info|warn|error.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adapt/drill.hpp"
#include "atlas/builder.hpp"
#include "atlas/io.hpp"
#include "cluster/cluster.hpp"
#include "dfa/dfa.hpp"
#include "family/rank.hpp"
#include "grid/builder.hpp"
#include "grid/metrics.hpp"
#include "grid/render.hpp"
#include "grid/serialize.hpp"
#include "model/optimal.hpp"
#include "plan/comm_plan.hpp"
#include "serve/oracle.hpp"
#include "shapes/archetype.hpp"
#include "sim/mmm_sim.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "verify/suite.hpp"

using namespace pushpart;

namespace {

int usage() {
  std::cerr <<
      "usage: pushpart <command> [flags]\n"
      "  search    --n=60 --ratio=5:2:1 [--seed=1] [--out=shape.pp]\n"
      "  classify  --in=shape.pp\n"
      "  voc       --in=shape.pp\n"
      "  recommend --n=120 --ratio=10:1:1 [--algo=SCB] [--topology=full|star]\n"
      "            [--families=canonical|all|layered,...]\n"
      "            [--bandwidth-mbs=1000] [--flops=1e9] [--out=shape.pp]\n"
      "  plan      --n=1000 --ratio=5:2:1 [--algo=SCB] [--tier=fast|search]\n"
      "            [--runs=16] [--seed=1] [--topology=full|star] [--hub=P]\n"
      "            [--bandwidth-mbs=1000] [--flops=1e9] [--repl]\n"
      "            [--deadline-ms=50] [--max-concurrency=4] [--max-queue=16]\n"
      "            [--snapshot=plans.snap] [--atlas=surface.atlas]\n"
      "            [--atlas-gap-pct=5] [--no-atlas-prefetch]\n"
      "            [--families=canonical|all|layered,...]\n"
      "            [--adaptive --observed-ratio=4:2:1 --phases=6\n"
      "             --stale-gap-pct=5 --hysteresis=2 --min-replan-s=0]\n"
      "  drift     [--phases=120] [--seed=42] [--n=96] [--algo=SCB]\n"
      "            [--wander=0.05] [--drill=slow|kill|none] [--node=0]\n"
      "            [--at=30] [--until=60] [--factor=2]\n"
      "            [--stale-gap-pct=5] [--hysteresis=2] [--min-replan-s=0]\n"
      "            [--tier=fast|search] [--atlas=surface.atlas]\n"
      "            [--regret-bound=1.25]\n"
      "  atlas     build --out=surface.atlas [--pr-min=1 --pr-max=20\n"
      "            --pr-steps=20 --rr-min=1 --rr-max=10 --rr-steps=10]\n"
      "            [--n=96] [--algo=SCB] [--search-runs=0] [--seed=1]\n"
      "            [--tie-pct=1] [--threads=0] [--bandwidth-mbs=1000]\n"
      "            [--flops=1e9]\n"
      "  atlas     inspect --file=surface.atlas\n"
      "  atlas     query --file=surface.atlas --ratio=7:2:1 [--n=1000]\n"
      "            [--gap-pct=5]\n"
      "  cluster   [--nodes=3] [--replication=2] [--vnodes=32] [--seed=1]\n"
      "            [--drill=kill|flap|partition|slow|none] [--node=1]\n"
      "            [--at=1.0] [--until=2.5] [--duration=4.0]\n"
      "            [--requests=400] [--keys=32] [--heartbeat-drop=0]\n"
      "  commplan  --in=shape.pp [--csv=plan.csv]\n"
      "  faults    --in=shape.pp --ratio=5:2:1 [--algo=SCB] [--drop=0.05]\n"
      "            [--death-proc=R] [--death-frac=0.5 | --death-at=<s>]\n"
      "            [--seed=1] [--timeout=1e-3] [--max-attempts=8]\n"
      "            [--no-rebalance]\n"
      "  verify    [--deep] [--seed=1] [--corpus=tests/corpus]\n"
      "            [--artifacts=verify-artifacts]\n"
      "global: --log-level=debug|info|warn|error\n";
  return 2;
}

Algo parseAlgo(const Flags& flags, const char* fallback) {
  const std::string algoStr = flags.str("algo", fallback);
  for (Algo a : kAllAlgos)
    if (algoStr == algoName(a)) return a;
  throw std::invalid_argument("unknown --algo=" + algoStr);
}

Machine machineFromFlags(const Flags& flags, const char* defaultRatio) {
  Machine machine;
  machine.ratio = Ratio::parse(flags.str("ratio", defaultRatio));
  machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);
  return machine;
}

Partition loadInput(const Flags& flags) {
  const std::string path = flags.str("in", "");
  if (path.empty()) throw std::invalid_argument("missing --in=<file>");
  return loadPartition(path);
}

int cmdSearch(const Flags& flags) {
  const int n = static_cast<int>(flags.i64("n", 60));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  Rng rng(static_cast<std::uint64_t>(flags.i64("seed", 1)));
  const Schedule schedule = Schedule::random(rng);
  const DfaResult result =
      runDfa(randomPartition(n, ratio, rng), schedule, {});

  std::cout << "schedule: " << schedule.str() << "\n";
  std::printf("pushes: %lld   VoC %lld -> %lld   stop: %s\n",
              static_cast<long long>(result.pushesApplied),
              static_cast<long long>(result.vocStart),
              static_cast<long long>(result.vocEnd),
              dfaStopName(result.stop));
  std::cout << classifyArchetype(result.final).str() << "\n";
  std::cout << renderAscii(result.final, 40);

  const std::string out = flags.str("out", "");
  if (!out.empty()) {
    savePartition(result.final, out);
    std::cout << "saved to " << out << "\n";
  }
  return 0;
}

int cmdClassify(const Flags& flags) {
  const Partition q = loadInput(flags);
  std::cout << classifyArchetype(q).str() << "\n";
  std::cout << renderAscii(q, 40);
  return 0;
}

int cmdVoc(const Flags& flags) {
  const Partition q = loadInput(flags);
  std::cout << summaryLine(q) << "\n";
  const auto v = pairVolumes(q);
  Table table({"from\\to", "R", "S", "P"});
  for (Proc s : kAllProcs) {
    table.addRow(std::string(1, procName(s)),
                 {static_cast<double>(v[procSlot(s)][procSlot(Proc::R)]),
                  static_cast<double>(v[procSlot(s)][procSlot(Proc::S)]),
                  static_cast<double>(v[procSlot(s)][procSlot(Proc::P)])});
  }
  table.print(std::cout);
  return 0;
}

int cmdRecommend(const Flags& flags) {
  const int n = static_cast<int>(flags.i64("n", 120));
  const Machine machine = machineFromFlags(flags, "10:1:1");
  const Algo algo = parseAlgo(flags, "SCB");
  const Topology topology = flags.str("topology", "full") == "star"
                                ? Topology::kStar
                                : Topology::kFullyConnected;

  const FamilySet families =
      FamilySet::parse(flags.str("families", "canonical"));

  const auto ranked = rankFamilyCandidates(algo, n, machine, families,
                                           topology);
  Table table({"candidate", "family", "VoC", "gap%", "exec (s)"});
  for (const auto& r : ranked) {
    char voc[32], gap[32], exec[32];
    std::snprintf(voc, sizeof(voc), "%lld", static_cast<long long>(r.voc));
    std::snprintf(gap, sizeof(gap), "%.3g", r.gapPct);
    std::snprintf(exec, sizeof(exec), "%g", r.model.execSeconds);
    table.addRow({r.name, familyName(r.family), voc, gap, exec});
  }
  table.print(std::cout);
  if (ranked.empty()) {
    std::cerr << "no feasible candidate\n";
    return 1;
  }
  std::cout << "\nrecommended: " << ranked.front().name << "\n";
  const std::string out = flags.str("out", "");
  if (!out.empty()) {
    // Rebuild the winner's partition from the registry (ranking keeps only
    // metadata) and save it like the shape-only path always did.
    std::optional<Partition> winner;
    builtinFamilies().forEach(n, machine.ratio, families,
                              [&](const FamilyCandidate& c) {
                                if (!winner && c.name == ranked.front().name)
                                  winner = c.partition;
                              });
    if (!winner) {
      std::cerr << "could not rebuild winner partition\n";
      return 1;
    }
    savePartition(*winner, out);
    std::cout << "saved to " << out << "\n";
  }
  return 0;
}

PlanRequest planRequestFromFlags(const Flags& flags) {
  PlanRequest req;
  req.n = static_cast<int>(flags.i64("n", 1000));
  req.ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  req.algo = parseAlgo(flags, "SCB");
  req.topology = flags.str("topology", "full") == "star"
                     ? Topology::kStar
                     : Topology::kFullyConnected;
  const std::string hub = flags.str("hub", "P");
  if (hub == "P") req.star.hub = Proc::P;
  else if (hub == "R") req.star.hub = Proc::R;
  else if (hub == "S") req.star.hub = Proc::S;
  else throw std::invalid_argument("unknown --hub=" + hub);
  const std::string tier = flags.str("tier", "fast");
  if (tier == "fast") req.tier = PlanTier::kFast;
  else if (tier == "search") req.tier = PlanTier::kSearch;
  else throw std::invalid_argument("unknown --tier=" + tier +
                                   " (expected fast or search)");
  req.searchRuns = static_cast<int>(flags.i64("runs", 16));
  req.searchSeed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  return req;
}

void printPlanResponse(const PlanResponse& r) {
  std::printf("%s\n", r.key.c_str());
  if (r.shed) {
    std::printf("  SHED (%s) latency=%gus\n", shedReasonName(r.shedReason),
                r.latencySeconds * 1e6);
    return;
  }
  std::printf(
      "  shape=%s exec=%gs voc=%lld gap=%.3g%% tier=%s served=%s %s "
      "latency=%gus\n",
      candidateName(r.answer.shape), r.answer.model.execSeconds,
      static_cast<long long>(r.answer.voc), r.answer.optimalityGapPct,
      planTierName(r.answer.tier), planTierName(r.answer.servedTier),
      r.cacheHit ? "hit" : (r.coalesced ? "coalesced" : "miss"),
      r.latencySeconds * 1e6);
  if (r.answer.family != FamilyId::kCanonical)
    std::printf("  family: %s candidate %s beat every canonical shape\n",
                familyName(r.answer.family),
                r.answer.familyCandidate.c_str());
  if (!r.answer.fullFidelity())
    std::printf("  DEGRADED: %s%s%s\n", degradeReasonName(r.answer.degrade),
                r.answer.truncated ? ", search truncated" : "",
                r.deadlineExceeded ? ", deadline exceeded" : "");
  if (r.answer.atlasServed)
    std::printf("  ATLAS: certified from cell (%d,%d), cert gap %.3g%%%s\n",
                r.answer.atlasI, r.answer.atlasJ, r.answer.atlasCertGapPct,
                r.answer.searchConfirmedCandidate ? ", search-confirmed"
                                                  : "");
  if (r.answer.servedTier == PlanTier::kSearch)
    std::printf("  search: %d/%d walks, best exec %gs voc %lld — %s\n",
                r.answer.searchCompleted, r.answer.searchRuns,
                r.answer.searchBestExecSeconds,
                static_cast<long long>(r.answer.searchBestVoc),
                r.answer.searchConfirmedCandidate
                    ? "candidate ranking confirmed"
                    : "search modeled faster than candidates");
}

void printOracleStats(const OracleStats& s) {
  std::printf(
      "cache: %llu hits, %llu misses, %llu coalesced, %llu evictions, "
      "%llu stale-invalidations, %zu resident\n",
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses),
      static_cast<unsigned long long>(s.cache.coalesced),
      static_cast<unsigned long long>(s.cache.evictions),
      static_cast<unsigned long long>(s.cache.staleInvalidations),
      s.cache.entries);
  const auto line = [](const char* name,
                       const LatencyHistogram::Snapshot& h) {
    if (h.count == 0) return;
    std::printf("%s: n=%llu p50=%gus p95=%gus p99=%gus\n", name,
                static_cast<unsigned long long>(h.count), h.p50 * 1e6,
                h.p95 * 1e6, h.p99 * 1e6);
  };
  std::printf("%s\n", s.sourcesLine().c_str());
  line("hit latency", s.hitLatency);
  line("tier-A solve", s.tierASolves);
  line("tier-B solve", s.tierBSolves);
  line("atlas solve", s.atlasSolves);
  if (s.atlasServed + s.atlasMisses + s.atlasUncertified > 0)
    std::printf(
        "atlas: %llu certified, %llu uncertified, %llu misses "
        "(%llu lookups: %llu hits, %llu out-of-range, %llu unsolved, "
        "%llu boundary; %llu cell inserts)\n",
        static_cast<unsigned long long>(s.atlasServed),
        static_cast<unsigned long long>(s.atlasUncertified),
        static_cast<unsigned long long>(s.atlasMisses),
        static_cast<unsigned long long>(s.atlasCells.lookups),
        static_cast<unsigned long long>(s.atlasCells.hits),
        static_cast<unsigned long long>(s.atlasCells.outOfRange),
        static_cast<unsigned long long>(s.atlasCells.unsolved),
        static_cast<unsigned long long>(s.atlasCells.boundary),
        static_cast<unsigned long long>(s.atlasCells.inserts));
  if (s.shed + s.degraded > 0 || s.breaker.trips > 0)
    std::printf(
        "overload: %llu shed, %llu degraded (%llu truncated, %llu no-time, "
        "%llu breaker-open, %llu late), breaker %s (%llu trips)\n",
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.degraded),
        static_cast<unsigned long long>(s.truncatedSearch),
        static_cast<unsigned long long>(s.noTimeForSearch),
        static_cast<unsigned long long>(s.breakerOpenServes),
        static_cast<unsigned long long>(s.late),
        breakerStateName(s.breakerState),
        static_cast<unsigned long long>(s.breaker.trips));
}

PlanCallOptions planCallFromFlags(const Flags& flags) {
  PlanCallOptions call;
  const double deadlineMs = flags.f64("deadline-ms", 0.0);
  if (deadlineMs > 0.0) call.deadline = Deadline::after(deadlineMs / 1e3);
  return call;
}

void printAdaptiveStats(const AdaptiveStats& s) {
  std::printf(
      "adaptive: %llu phases (%llu warmup), %llu stale verdicts, "
      "%llu replans, %llu invalidations, %llu hysteresis holds, "
      "%llu interval holds\n",
      static_cast<unsigned long long>(s.phases),
      static_cast<unsigned long long>(s.warmupPhases),
      static_cast<unsigned long long>(s.staleVerdicts),
      static_cast<unsigned long long>(s.replans),
      static_cast<unsigned long long>(s.invalidations),
      static_cast<unsigned long long>(s.hysteresisHolds),
      static_cast<unsigned long long>(s.intervalHolds));
}

/// `plan --adaptive`: plan at --ratio, then feed --phases of synthetic
/// telemetry at --observed-ratio (constant work per phase, busy time
/// inversely proportional to each node's observed speed) and show the
/// session's drift verdicts and replans.
int runAdaptivePlan(Oracle& oracle, const Flags& flags) {
  AdaptiveSessionOptions options;
  options.base = planRequestFromFlags(flags);
  options.staleGapPct = flags.f64("stale-gap-pct", 5.0);
  options.hysteresisPhases = static_cast<int>(flags.i64("hysteresis", 2));
  options.minReplanSeconds = flags.f64("min-replan-s", 0.0);
  FakeClock clock;
  options.clock = &clock;

  AdaptiveSession session(oracle, options);
  printPlanResponse(session.start(planCallFromFlags(flags)));

  const Ratio observed = Ratio::parse(
      flags.str("observed-ratio", flags.str("ratio", "5:2:1")));
  const int phases = static_cast<int>(flags.i64("phases", 6));
  for (int i = 0; i < phases; ++i) {
    clock.advance(1.0);
    PhaseSample sample;
    sample.at = clock.nowSeconds();
    for (Proc x : kAllProcs) {
      NodeSample& node = sample.node(x);
      node.proc = x;
      node.units = 1000000;
      node.busySeconds = 1.0 / observed.speed(x);
    }
    const std::uint64_t replansBefore = session.stats().replans;
    const DriftVerdict v = session.observe(sample, planCallFromFlags(flags));
    std::printf("phase %d: %s (%s, gap %.3g%%)%s\n", i + 1,
                v.stale ? "STALE" : "fresh", driftReasonName(v.reason),
                v.gapPct,
                session.stats().replans > replansBefore ? " -> replanned"
                                                        : "");
  }
  std::printf("final plan:\n");
  printPlanResponse(session.current());
  std::printf("estimated ratio: %s\n",
              session.estimate().canonical().str().c_str());
  printAdaptiveStats(session.stats());
  printOracleStats(oracle.stats());
  return 0;
}

int cmdPlanOracle(const Flags& flags) {
  OracleOptions options;
  options.machine = machineFromFlags(flags, "5:2:1");
  options.admission.maxConcurrency =
      static_cast<int>(flags.i64("max-concurrency", 0));
  options.admission.maxQueue = static_cast<int>(flags.i64("max-queue", 16));
  options.families = FamilySet::parse(flags.str("families", "canonical"));

  const std::string atlasPath = flags.str("atlas", "");
  if (!atlasPath.empty()) {
    // Same survival rule as snapshots: a refused or unreadable atlas means
    // serving without one (every request takes the live path), never abort.
    const AtlasLoadReport report = tryLoadAtlas(atlasPath);
    if (!report.ok()) {
      std::printf("atlas: refused %s (%s); serving without an atlas\n",
                  atlasPath.c_str(), report.error.c_str());
    } else {
      options.atlas = report.atlas;
      options.atlasGapPct = flags.f64("atlas-gap-pct", 5.0);
      options.atlasPrefetch = !flags.b("no-atlas-prefetch", false);
      std::printf("atlas: loaded %zu cells from %s (%zu skipped, "
                  "%zu boundary)\n",
                  report.loaded, atlasPath.c_str(), report.skipped,
                  report.atlas->boundaryCells().size());
    }
  }
  Oracle oracle(options);

  const std::string snapshotPath = flags.str("snapshot", "");
  if (!snapshotPath.empty()) {
    // A missing file is a normal cold start; a corrupt entry costs itself
    // only; a version-refused (future-format) snapshot starts cold too —
    // either way the report says exactly what happened.
    std::ifstream probe(snapshotPath);
    if (probe) {
      probe.close();
      const SnapshotLoadReport report = oracle.tryLoadSnapshot(snapshotPath);
      if (!report.ok())
        std::printf("snapshot: refused %s (%s); starting cold\n",
                    snapshotPath.c_str(), report.error.c_str());
      else
        std::printf("snapshot: restored %zu entries from %s, skipped %zu\n",
                    report.loaded, snapshotPath.c_str(), report.skipped);
    }
  }
  const auto persist = [&]() {
    if (snapshotPath.empty()) return;
    const std::size_t written = oracle.saveSnapshot(snapshotPath);
    std::printf("snapshot: saved %zu entries to %s\n", written,
                snapshotPath.c_str());
  };

  if (flags.b("adaptive", false)) {
    const int rc = runAdaptivePlan(oracle, flags);
    persist();
    return rc;
  }

  if (!flags.b("repl", false)) {
    printPlanResponse(
        oracle.plan(planRequestFromFlags(flags), planCallFromFlags(flags)));
    persist();
    return 0;
  }

  // REPL: one request per stdin line, `key=value` tokens (with or without
  // the leading --), e.g. `n=300 ratio=3:1:1 algo=SCO tier=search runs=8`.
  // Blank lines and #-comments are skipped; a bad line reports its error
  // and the loop carries on. EOF prints the session's serving stats.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens{"repl"};  // argv[0] slot Flags skips
    std::istringstream split(line);
    for (std::string tok; split >> tok;)
      tokens.push_back(tok.rfind("--", 0) == 0 ? tok : "--" + tok);
    std::vector<const char*> argv;
    argv.reserve(tokens.size());
    for (const auto& t : tokens) argv.push_back(t.c_str());
    try {
      const Flags lineFlags(static_cast<int>(argv.size()), argv.data());
      for (const std::string& name : lineFlags.names()) {
        static const char* kKnown[] = {"n",    "ratio", "algo",
                                       "topology", "hub", "tier",
                                       "runs", "seed",  "deadline-ms"};
        bool known = false;
        for (const char* k : kKnown) known = known || name == k;
        if (!known)
          throw std::invalid_argument("unknown request field '" + name + "'");
      }
      printPlanResponse(oracle.plan(planRequestFromFlags(lineFlags),
                                    planCallFromFlags(lineFlags)));
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  printOracleStats(oracle.stats());
  persist();
  return 0;
}

/// One-letter legend for the inspect winner map.
char candidateLetter(CandidateShape s) {
  switch (s) {
    case CandidateShape::kSquareCorner: return 'S';
    case CandidateShape::kRectangleCorner: return 'C';
    case CandidateShape::kSquareRectangle: return 'Q';
    case CandidateShape::kBlockRectangle: return 'B';
    case CandidateShape::kLRectangle: return 'L';
    case CandidateShape::kTraditionalRectangle: return 'T';
  }
  return '?';
}

AtlasLoadReport loadAtlasOrThrow(const Flags& flags) {
  const std::string path = flags.str("file", "");
  if (path.empty()) throw std::invalid_argument("missing --file=<atlas>");
  AtlasLoadReport report = tryLoadAtlas(path);
  if (!report.ok()) throw std::runtime_error(report.error);
  return report;
}

int cmdAtlasBuild(const Flags& flags) {
  const std::string out = flags.str("out", "");
  if (out.empty()) throw std::invalid_argument("missing --out=<file>");

  AtlasBuildOptions options;
  options.spec.prMin = flags.f64("pr-min", 1.0);
  options.spec.prMax = flags.f64("pr-max", 20.0);
  options.spec.prSteps = static_cast<int>(flags.i64("pr-steps", 20));
  options.spec.rrMin = flags.f64("rr-min", 1.0);
  options.spec.rrMax = flags.f64("rr-max", 10.0);
  options.spec.rrSteps = static_cast<int>(flags.i64("rr-steps", 10));
  options.info.n = static_cast<int>(flags.i64("n", 96));
  options.info.algo = parseAlgo(flags, "SCB");
  options.info.machine = machineFromFlags(flags, "2:1:1");
  const int searchRuns = static_cast<int>(flags.i64("search-runs", 0));
  options.info.searchBacked = searchRuns > 0;
  options.info.searchRuns = searchRuns;
  options.info.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  options.info.tieSnapPct = flags.f64("tie-pct", 1.0);
  options.threads = static_cast<int>(flags.i64("threads", 0));
  options.onCell = [](std::size_t done, std::size_t total) {
    // Coarse progress: one line per ~10% so a big sweep isn't silent.
    if (total >= 10 && done % (total / 10) == 0)
      std::printf("  solved %zu/%zu cells\n", done, total);
  };

  AtlasBuildReport report;
  const std::shared_ptr<PlanAtlas> atlas = buildAtlas(options, &report);
  const std::size_t written = saveAtlas(*atlas, out);

  std::printf(
      "atlas: %dx%d grid over P_r [%g, %g] x R_r [%g, %g], n=%d, %s%s\n",
      options.spec.prSteps, options.spec.rrSteps, options.spec.prMin,
      options.spec.prMax, options.spec.rrMin, options.spec.rrMax,
      options.info.n, algoName(options.info.algo),
      options.info.searchBacked ? ", search-backed" : "");
  std::printf(
      "build: %zu cells attempted, %zu solved, %zu infeasible, "
      "%zu search-confirmed, %zu boundary, %.3gs\n",
      report.attempted, report.solved, report.failed, report.searchConfirmed,
      report.boundary, report.seconds);
  std::printf("saved %zu cells to %s\n", written, out.c_str());
  return report.solved > 0 ? 0 : 1;
}

int cmdAtlasInspect(const Flags& flags) {
  const AtlasLoadReport report = loadAtlasOrThrow(flags);
  const PlanAtlas& atlas = *report.atlas;
  const AtlasGridSpec& spec = atlas.spec();
  const AtlasBuildInfo& info = atlas.info();

  std::printf(
      "atlas: %dx%d grid over P_r [%g, %g] x R_r [%g, %g], n=%d, %s, %s%s\n",
      spec.prSteps, spec.rrSteps, spec.prMin, spec.prMax, spec.rrMin,
      spec.rrMax, info.n, algoName(info.algo),
      info.topology == Topology::kStar ? "star" : "full",
      info.searchBacked ? ", search-backed" : "");
  std::printf("cells: %zu solved of %zu grid points (%zu skipped on load)\n",
              atlas.solvedCells(), spec.points(), report.skipped);

  // Winner map, P_r down the rows (largest first, like Fig. 13), R_r across.
  // Lowercase marks a boundary cell; '.' = invalid (P_r < R_r); '!' =
  // unsolved (build-failed or corrupted away).
  std::printf("winner map (S=Square-Corner C=Rectangle-Corner "
              "Q=Square-Rectangle B=Block-Rectangle L=L-Rectangle "
              "T=Traditional-Rectangle, lowercase=boundary):\n");
  for (int i = spec.prSteps - 1; i >= 0; --i) {
    std::printf("  P_r=%-8.4g ", spec.prMin + i * spec.prStep());
    for (int j = 0; j < spec.rrSteps; ++j) {
      char mark = '.';
      if (spec.validCell(i, j)) {
        const std::optional<AtlasCell> cell = atlas.cell(i, j);
        if (!cell || !cell->solved) {
          mark = '!';
        } else {
          mark = candidateLetter(cell->shape);
          if (cell->boundary)
            mark = static_cast<char>(std::tolower(mark));
        }
      }
      std::printf("%c", mark);
    }
    std::printf("\n");
  }

  // Lower-bound gap summary over the solved surface (src/bounds): how far
  // the winning shapes sit above the communication lower bound.
  double gapSum = 0.0, gapMax = 0.0;
  std::size_t gapCells = 0;
  for (int i = 0; i < spec.prSteps; ++i)
    for (int j = 0; j < spec.rrSteps; ++j)
      if (const std::optional<AtlasCell> cell = atlas.cell(i, j);
          cell && cell->solved) {
        gapSum += cell->lowerBoundGapPct;
        gapMax = std::max(gapMax, cell->lowerBoundGapPct);
        ++gapCells;
      }
  if (gapCells > 0)
    std::printf("lower-bound gap: mean %.3g%% max %.3g%% over %zu cells\n",
                gapSum / static_cast<double>(gapCells), gapMax, gapCells);

  const std::vector<std::pair<int, int>> edges = atlas.boundaryCells();
  std::printf("boundary cells: %zu of %zu solved\n", edges.size(),
              atlas.solvedCells());
  for (const auto& [i, j] : edges) {
    const AtlasCell cell = *atlas.cell(i, j);
    const Ratio at = spec.ratioAt(i, j);
    std::printf(
        "  boundary cell (%d,%d) ratio=%s winner=%s runner-up gap=%.3g%%\n",
        i, j, at.str().c_str(), candidateName(cell.shape),
        std::min(cell.runnerUpGapPct, 999.0));
  }
  return 0;
}

int cmdAtlasQuery(const Flags& flags) {
  // A standalone lookup + certificate probe: exactly the decision the
  // serving tier makes, printed instead of served, so CI (and humans) can
  // check what a given ratio would get without standing up an oracle.
  const AtlasLoadReport report = loadAtlasOrThrow(flags);
  const PlanAtlas& atlas = *report.atlas;
  const Ratio ratio = Ratio::parse(flags.str("ratio", "7:2:1"));
  const int n = static_cast<int>(flags.i64("n", 1000));
  const double gapPct = flags.f64("gap-pct", 5.0);

  const AtlasLookup lk = atlas.lookup(ratio);
  std::printf("query: ratio=%s n=%d gap bound=%g%%\n", ratio.str().c_str(),
              n, gapPct);
  if (!lk.hit) {
    std::string where;
    if (lk.i >= 0)
      where = " at cell (" + std::to_string(lk.i) + "," +
              std::to_string(lk.j) + ")";
    std::printf("MISS (%s)%s — a serving oracle would fall back to live "
                "search\n",
                atlasMissReasonName(lk.miss), where.c_str());
    return 1;
  }

  Machine machine = atlas.info().machine;
  machine.ratio = ratio.normalized();
  const RankedCandidate best =
      selectOptimal(atlas.info().algo, n, machine, atlas.info().topology);
  RankedCandidate served = best;
  double winnerGapPct = 0.0;
  if (lk.shape != best.shape) {
    if (const std::optional<RankedCandidate> rc = rankOne(
            lk.shape, atlas.info().algo, n, machine, atlas.info().topology)) {
      served = *rc;
      winnerGapPct = (rc->model.execSeconds - best.model.execSeconds) /
                     best.model.execSeconds * 100.0;
    } else {
      winnerGapPct = AtlasCell::kMaxGapPct;
    }
  }
  const double exactNorm = static_cast<double>(served.voc) /
                           (static_cast<double>(n) * static_cast<double>(n));
  const double surfaceGapPct =
      exactNorm > 0.0
          ? std::fabs(lk.interpNormVoc - exactNorm) / exactNorm * 100.0
          : (lk.interpNormVoc > 0.0 ? AtlasCell::kMaxGapPct : 0.0);

  std::printf("cell (%d,%d): winner=%s surface VoC/n^2=%.6g (%s)%s\n", lk.i,
              lk.j, candidateName(lk.shape), lk.interpNormVoc,
              lk.bilinear ? "bilinear" : "nearest-cell",
              lk.searchConfirmed ? ", search-confirmed" : "");
  std::printf("exact at request: best=%s, served-shape gap %.3g%%, "
              "surface gap %.3g%%\n",
              candidateName(best.shape), std::min(winnerGapPct, 999.0),
              std::min(surfaceGapPct, 999.0));
  if (winnerGapPct <= gapPct && surfaceGapPct <= gapPct) {
    std::printf("CERTIFIED: shape=%s exec=%gs voc=%lld cert gap=%.3g%%\n",
                candidateName(served.shape), served.model.execSeconds,
                static_cast<long long>(served.voc),
                std::max(winnerGapPct, surfaceGapPct));
    return 0;
  }
  std::printf("UNCERTIFIED (%s) — a serving oracle would fall back to live "
              "search\n",
              winnerGapPct > gapPct ? "winner-mismatch" : "gap-exceeded");
  return 1;
}

int cmdAtlas(const Flags& flags) {
  const std::vector<std::string>& pos = flags.positional();
  const std::string op = pos.empty() ? "" : pos[0];
  if (op == "build") return cmdAtlasBuild(flags);
  if (op == "inspect") return cmdAtlasInspect(flags);
  if (op == "query") return cmdAtlasQuery(flags);
  std::cerr << "pushpart atlas: expected build, inspect or query\n";
  return usage();
}

int cmdCluster(const Flags& flags) {
  ClusterOptions options;
  options.nodes = static_cast<int>(flags.i64("nodes", 3));
  options.replication = static_cast<int>(flags.i64("replication", 2));
  options.vnodesPerNode = static_cast<int>(flags.i64("vnodes", 32));
  options.oracle.machine = machineFromFlags(flags, "5:2:1");
  options.faults.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  options.faults.heartbeatDropProbability = flags.f64("heartbeat-drop", 0.0);

  // One scripted fault per drill, all windows in cluster-clock seconds; the
  // same flags replay the same drill bit-for-bit.
  const int node = static_cast<int>(flags.i64("node", 1));
  const double at = flags.f64("at", 1.0);
  const double until = flags.f64("until", 2.5);
  const double duration = flags.f64("duration", 4.0);
  const std::string drill = flags.str("drill", "kill");
  if (drill == "kill")
    options.faults.kills.push_back(NodeKill{node, at, until});
  else if (drill == "flap")
    options.faults.flaps.push_back(NodeFlap{node, at, until, 0.4, 0.5});
  else if (drill == "partition")
    options.faults.partitions.push_back(
        LinkPartition{kRouterEndpoint, node, at, until});
  else if (drill == "slow")
    options.faults.slowNodes.push_back(SlowNode{node, at, until, 4.0});
  else if (drill != "none")
    throw std::invalid_argument("unknown --drill=" + drill);

  FakeClock clock;
  options.clock = &clock;
  OracleCluster cluster(options);

  // Synthetic workload: `keys` distinct tier-A questions cycled round-robin,
  // spread uniformly over the drill's ticks.
  const std::int64_t totalRequests = flags.i64("requests", 400);
  const std::int64_t keys = flags.i64("keys", 32);
  const int ticks =
      static_cast<int>(duration / options.heartbeatIntervalSeconds);
  std::int64_t issued = 0;
  std::uint64_t answered = 0;
  for (int t = 0; t < ticks; ++t) {
    cluster.tick();
    const std::int64_t due = totalRequests * (t + 1) / ticks;
    for (; issued < due; ++issued) {
      PlanRequest req;
      req.n = 100 + 3 * static_cast<int>(issued % keys);
      req.ratio = options.oracle.machine.ratio;
      const ClusterResponse r = cluster.plan(req);
      if (!r.clusterShed) ++answered;
    }
    clock.advance(options.heartbeatIntervalSeconds);
  }
  cluster.tick();

  std::printf("drill: %s node %d over [%g, %g)s  seed %llu  (%d nodes, "
              "replication %d)\n",
              drill.c_str(), node, at, until,
              static_cast<unsigned long long>(options.faults.seed),
              options.nodes, options.replication);
  for (const ClusterEvent& event : cluster.events())
    std::printf("  t=%.3fs %s\n", event.at, event.what.c_str());

  const ClusterStats s = cluster.stats();
  std::printf(
      "requests: %llu answered %llu (%.2f%%), %llu cluster-shed\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(answered),
      s.requests > 0 ? 100.0 * static_cast<double>(answered) /
                           static_cast<double>(s.requests)
                     : 100.0,
      static_cast<unsigned long long>(s.clusterSheds));
  std::printf(
      "routing: %llu primary, %llu replica (%llu replica cache hits), "
      "%llu failed-over attempts\n",
      static_cast<unsigned long long>(s.primaryServes),
      static_cast<unsigned long long>(s.replicaServes),
      static_cast<unsigned long long>(s.replicaHits),
      static_cast<unsigned long long>(s.retries));
  std::printf(
      "replication: %llu replicas written, hints %llu stored / %llu "
      "delivered / %llu dropped\n",
      static_cast<unsigned long long>(s.replicasWritten),
      static_cast<unsigned long long>(s.hintsStored),
      static_cast<unsigned long long>(s.hintsDelivered),
      static_cast<unsigned long long>(s.hintsDropped));
  std::printf(
      "detector: %llu suspicions, %llu confirmations, %llu recoveries; "
      "rebalance: %llu runs, %llu segments, %llu entries\n",
      static_cast<unsigned long long>(s.detector.suspicions),
      static_cast<unsigned long long>(s.detector.confirmations),
      static_cast<unsigned long long>(s.detector.recoveries),
      static_cast<unsigned long long>(s.rebalance.rebalances),
      static_cast<unsigned long long>(s.rebalance.segmentsStreamed),
      static_cast<unsigned long long>(s.rebalance.entriesStreamed));
  if (s.latency.count > 0)
    std::printf("latency: n=%llu p50=%gus p95=%gus p99=%gus\n",
                static_cast<unsigned long long>(s.latency.count),
                s.latency.p50 * 1e6, s.latency.p95 * 1e6,
                s.latency.p99 * 1e6);
  for (int i = 0; i < options.nodes; ++i) {
    const std::size_t slot = static_cast<std::size_t>(i);
    std::printf(
        "node %d: %s/%s, %zu cached, %llu hits, %llu misses, %llu cold "
        "restarts\n",
        i, nodeStatusName(s.statuses[slot]), nodeHealthName(s.health[slot]),
        s.nodes[slot].cache.entries,
        static_cast<unsigned long long>(s.nodes[slot].cache.hits),
        static_cast<unsigned long long>(s.nodes[slot].cache.misses),
        static_cast<unsigned long long>(s.coldRestarts[slot]));
  }
  return 0;
}

int cmdDrift(const Flags& flags) {
  OracleOptions oracleOptions;
  oracleOptions.machine = machineFromFlags(flags, "8:3:1.5");
  const std::string atlasPath = flags.str("atlas", "");
  if (!atlasPath.empty()) {
    const AtlasLoadReport report = tryLoadAtlas(atlasPath);
    if (!report.ok())
      std::printf("atlas: refused %s (%s); running without an atlas\n",
                  atlasPath.c_str(), report.error.c_str());
    else
      oracleOptions.atlas = report.atlas;
  }
  Oracle oracle(oracleOptions);

  DriftScenarioOptions options;
  options.phases = static_cast<int>(flags.i64("phases", 120));
  options.seed = static_cast<std::uint64_t>(flags.i64("seed", 42));
  options.n = static_cast<int>(flags.i64("n", 96));
  options.algo = parseAlgo(flags, "SCB");
  options.wanderStep = flags.f64("wander", 0.05);
  options.regretBound = flags.f64("regret-bound", 1.25);
  options.session.staleGapPct = flags.f64("stale-gap-pct", 5.0);
  options.session.hysteresisPhases =
      static_cast<int>(flags.i64("hysteresis", 2));
  options.session.minReplanSeconds = flags.f64("min-replan-s", 0.0);
  options.session.base.tier = flags.str("tier", "fast") == "search"
                                  ? PlanTier::kSearch
                                  : PlanTier::kFast;

  // One scripted fault, windows in drill-clock seconds (phases are 1 s
  // apart); the same flags replay the same drill bit-for-bit.
  const std::string drill = flags.str("drill", "slow");
  const int node = static_cast<int>(flags.i64("node", 0));
  const double at = flags.f64("at", 30.0);
  const double until = flags.f64("until", 60.0);
  if (drill == "slow")
    options.faults.slowNodes.push_back(
        SlowNode{node, at, until, flags.f64("factor", 2.0)});
  else if (drill == "kill")
    options.faults.kills.push_back(NodeKill{node, at, until});
  else if (drill != "none")
    throw std::invalid_argument("unknown --drill=" + drill);

  const DriftDrillReport report = runDriftDrill(oracle, options);

  std::printf("drift drill: %d phases, seed %llu, wander %g, drill=%s\n",
              options.phases,
              static_cast<unsigned long long>(options.seed),
              options.wanderStep, drill.c_str());
  for (const AdaptiveEvent& event : report.events)
    std::printf("  t=%.3fs %s\n", event.at, event.what.c_str());
  printAdaptiveStats(report.stats);
  std::printf(
      "estimator: %llu phases, %llu clamped, %llu stall demotions, "
      "%llu death demotions, %llu recoveries\n",
      static_cast<unsigned long long>(report.estimator.phases),
      static_cast<unsigned long long>(report.estimator.clampedSamples),
      static_cast<unsigned long long>(report.estimator.stallDemotions),
      static_cast<unsigned long long>(report.estimator.deathDemotions),
      static_cast<unsigned long long>(report.estimator.recoveries));
  printOracleStats(oracle.stats());

  bool ok = true;
  for (const FaultWindowReport& w : report.windows) {
    std::string tail;
    if (w.reconverged)
      tail = " (after " + std::to_string(w.reconvergedAfterPhases) +
             " phases)";
    std::printf(
        "window: %s node %d [%g, %g)s — replan during: %s, reconverged: "
        "%s%s\n",
        w.kill ? "kill" : "slow", w.node, w.begin, w.end,
        w.replanDuring ? "yes" : "NO", w.reconverged ? "yes" : "NO",
        tail.c_str());
    ok = ok && w.replanDuring && w.reconverged;
  }
  std::printf("regret: %.4fx vs omniscient per-phase oracle (bound %.4gx) — "
              "%s\n",
              report.regretFactor(), options.regretBound,
              report.regretOk(options.regretBound) ? "OK" : "EXCEEDED");
  ok = ok && report.regretOk(options.regretBound);
  return ok ? 0 : 1;
}

int cmdCommPlan(const Flags& flags) {
  const Partition q = loadInput(flags);
  const auto plan = buildElementPlan(q);
  if (!verifyElementPlan(q, plan)) {
    std::cerr << "internal error: generated plan failed verification\n";
    return 1;
  }
  const auto v = planVolumes(plan);
  std::int64_t total = 0;
  for (const auto& row : v)
    for (auto x : row) total += x;
  std::printf("pivots: %d   transfers: %lld (== VoC %lld)   verified: yes\n",
              q.n(), static_cast<long long>(total),
              static_cast<long long>(q.volumeOfCommunication()));

  if (flags.has("csv")) {
    CsvWriter csv(flags.str("csv", ""),
                  {"pivot", "kind", "i", "j", "from", "to"});
    for (const auto& step : plan) {
      for (const auto& t : step.aColumn)
        csv.row({std::to_string(step.pivot), "A", std::to_string(t.i),
                 std::to_string(t.j), std::string(1, procName(t.from)),
                 std::string(1, procName(t.to))});
      for (const auto& t : step.bRow)
        csv.row({std::to_string(step.pivot), "B", std::to_string(t.i),
                 std::to_string(t.j), std::string(1, procName(t.from)),
                 std::string(1, procName(t.to))});
    }
    std::cout << "plan written to " << flags.str("csv", "") << "\n";
  }
  return 0;
}

int cmdFaults(const Flags& flags) {
  const Partition q = loadInput(flags);
  SimOptions options;
  options.machine = machineFromFlags(flags, "5:2:1");
  options.topology = flags.str("topology", "full") == "star"
                         ? Topology::kStar
                         : Topology::kFullyConnected;
  const Algo algo = parseAlgo(flags, "SCB");

  const SimResult baseline = simulateMMM(algo, q, options);
  std::printf("fault-free baseline: exec %.6gs (comm %.6gs)\n",
              baseline.execSeconds, baseline.commSeconds);

  options.faults.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  options.faults.dropProbability = flags.f64("drop", 0.0);
  if (flags.has("death-proc")) {
    const std::string name = flags.str("death-proc", "R");
    ProcDeath death;
    if (name == "R") death.proc = Proc::R;
    else if (name == "S") death.proc = Proc::S;
    else if (name == "P") death.proc = Proc::P;
    else throw std::invalid_argument("unknown --death-proc=" + name);
    death.at = flags.has("death-at")
                   ? flags.f64("death-at", 0.0)
                   : baseline.execSeconds * flags.f64("death-frac", 0.5);
    options.faults.death = death;
  }
  options.retry.timeoutSeconds = flags.f64("timeout", 1e-3);
  options.retry.maxAttempts =
      static_cast<int>(flags.i64("max-attempts", 8));
  options.rebalanceOnDeath = !flags.b("no-rebalance", false);
  if (!options.faults.enabled()) {
    std::cerr << "nothing to inject: pass --drop and/or --death-proc\n";
    return 1;
  }

  const SimResult r = simulateMMM(algo, q, options);
  PUSHPART_LOG(kDebug) << "faulty run: " << r.network.messagesSent
                       << " messages, " << r.network.elementsMoved
                       << " element-hops";
  std::printf("with faults:         exec %.6gs (comm %.6gs)  completed: %s\n",
              r.execSeconds, r.commSeconds, r.completed ? "yes" : "NO");
  std::printf(
      "  drops %lld   retries %lld   abandoned %lld   dead-endpoint %lld\n",
      static_cast<long long>(r.network.dropsInjected),
      static_cast<long long>(r.network.retriesSent),
      static_cast<long long>(r.network.transfersAbandoned),
      static_cast<long long>(r.network.deadEndpointFailures));
  if (r.recovery.processorDied) {
    std::printf(
        "  death: proc %c detected at %.6gs, failover at pivot %d/%d\n",
        procName(r.recovery.deadProc), r.recovery.deathDetectedAt,
        r.recovery.failoverPivot, q.n());
    std::printf(
        "  reassigned %lld cells, refetched %lld panels, plan verified: %s\n",
        static_cast<long long>(r.recovery.reassignedElements),
        static_cast<long long>(r.recovery.refetchedElements),
        r.recovery.failoverPlanVerified ? "yes" : "NO");
    std::printf("  VoC %lld -> %lld   recovery overhead %.6gs\n",
                static_cast<long long>(r.recovery.vocBefore),
                static_cast<long long>(r.recovery.vocAfter),
                r.recovery.recoverySeconds);
  }
  return r.completed ? 0 : 1;
}

int cmdVerify(const Flags& flags) {
  VerifySuiteOptions options;
  options.deep = flags.b("deep", false);
  options.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  options.artifactDir = flags.str("artifacts", "verify-artifacts");
  options.corpusDir = flags.str("corpus", "");
  const VerifySuiteReport report = runVerifySuite(options);
  std::cout << report.summary() << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  try {
    setLogLevel(parseLogLevel(flags.str("log-level", "info")));
    if (command == "search") return cmdSearch(flags);
    if (command == "classify") return cmdClassify(flags);
    if (command == "voc") return cmdVoc(flags);
    if (command == "recommend") return cmdRecommend(flags);
    if (command == "plan") return cmdPlanOracle(flags);
    if (command == "atlas") return cmdAtlas(flags);
    if (command == "cluster") return cmdCluster(flags);
    if (command == "drift") return cmdDrift(flags);
    if (command == "commplan") return cmdCommPlan(flags);
    if (command == "faults") return cmdFaults(flags);
    if (command == "verify") return cmdVerify(flags);
    std::cerr << "pushpart: unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
