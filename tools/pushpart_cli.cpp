// pushpart — command-line front end to the partition-shape library.
//
//   pushpart search    --n=60 --ratio=5:2:1 [--seed=1] [--out=shape.pp]
//   pushpart classify  --in=shape.pp
//   pushpart voc       --in=shape.pp
//   pushpart recommend --n=120 --ratio=10:1:1 [--algo=SCB] [--topology=full]
//                      [--bandwidth-mbs=1000] [--flops=1e9] [--out=shape.pp]
//   pushpart plan      --in=shape.pp [--csv=plan.csv]
//
// `search` runs one randomized DFA condensation and (optionally) saves the
// condensed partition in the pushpart-partition v1 text format; `classify`,
// `voc` and `plan` operate on saved partitions; `recommend` ranks the six
// canonical candidates for a machine and can save the winner.
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "dfa/dfa.hpp"
#include "grid/builder.hpp"
#include "grid/metrics.hpp"
#include "grid/render.hpp"
#include "grid/serialize.hpp"
#include "model/optimal.hpp"
#include "plan/comm_plan.hpp"
#include "shapes/archetype.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

int usage() {
  std::cerr <<
      "usage: pushpart <command> [flags]\n"
      "  search    --n=60 --ratio=5:2:1 [--seed=1] [--out=shape.pp]\n"
      "  classify  --in=shape.pp\n"
      "  voc       --in=shape.pp\n"
      "  recommend --n=120 --ratio=10:1:1 [--algo=SCB] [--topology=full|star]\n"
      "            [--bandwidth-mbs=1000] [--flops=1e9] [--out=shape.pp]\n"
      "  plan      --in=shape.pp [--csv=plan.csv]\n";
  return 2;
}

Partition loadInput(const Flags& flags) {
  const std::string path = flags.str("in", "");
  if (path.empty()) throw std::invalid_argument("missing --in=<file>");
  return loadPartition(path);
}

int cmdSearch(const Flags& flags) {
  const int n = static_cast<int>(flags.i64("n", 60));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  Rng rng(static_cast<std::uint64_t>(flags.i64("seed", 1)));
  const Schedule schedule = Schedule::random(rng);
  const DfaResult result =
      runDfa(randomPartition(n, ratio, rng), schedule, {});

  std::cout << "schedule: " << schedule.str() << "\n";
  std::printf("pushes: %lld   VoC %lld -> %lld   stop: %s\n",
              static_cast<long long>(result.pushesApplied),
              static_cast<long long>(result.vocStart),
              static_cast<long long>(result.vocEnd),
              dfaStopName(result.stop));
  std::cout << classifyArchetype(result.final).str() << "\n";
  std::cout << renderAscii(result.final, 40);

  const std::string out = flags.str("out", "");
  if (!out.empty()) {
    savePartition(result.final, out);
    std::cout << "saved to " << out << "\n";
  }
  return 0;
}

int cmdClassify(const Flags& flags) {
  const Partition q = loadInput(flags);
  std::cout << classifyArchetype(q).str() << "\n";
  std::cout << renderAscii(q, 40);
  return 0;
}

int cmdVoc(const Flags& flags) {
  const Partition q = loadInput(flags);
  std::cout << summaryLine(q) << "\n";
  const auto v = pairVolumes(q);
  Table table({"from\\to", "R", "S", "P"});
  for (Proc s : kAllProcs) {
    table.addRow(std::string(1, procName(s)),
                 {static_cast<double>(v[procSlot(s)][procSlot(Proc::R)]),
                  static_cast<double>(v[procSlot(s)][procSlot(Proc::S)]),
                  static_cast<double>(v[procSlot(s)][procSlot(Proc::P)])});
  }
  table.print(std::cout);
  return 0;
}

int cmdRecommend(const Flags& flags) {
  const int n = static_cast<int>(flags.i64("n", 120));
  Machine machine;
  machine.ratio = Ratio::parse(flags.str("ratio", "10:1:1"));
  machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);
  const std::string algoStr = flags.str("algo", "SCB");
  Algo algo = Algo::kSCB;
  bool known = false;
  for (Algo a : kAllAlgos)
    if (algoStr == algoName(a)) {
      algo = a;
      known = true;
    }
  if (!known) throw std::invalid_argument("unknown --algo=" + algoStr);
  const Topology topology = flags.str("topology", "full") == "star"
                                ? Topology::kStar
                                : Topology::kFullyConnected;

  const auto ranked = rankCandidates(algo, n, machine, topology);
  Table table({"shape", "VoC", "exec (s)"});
  for (const auto& r : ranked)
    table.addRow(candidateName(r.shape),
                 {static_cast<double>(r.voc), r.model.execSeconds});
  table.print(std::cout);
  if (ranked.empty()) {
    std::cerr << "no feasible candidate\n";
    return 1;
  }
  std::cout << "\nrecommended: " << candidateName(ranked.front().shape) << "\n";
  const std::string out = flags.str("out", "");
  if (!out.empty()) {
    savePartition(makeCandidate(ranked.front().shape, n, machine.ratio), out);
    std::cout << "saved to " << out << "\n";
  }
  return 0;
}

int cmdPlan(const Flags& flags) {
  const Partition q = loadInput(flags);
  const auto plan = buildElementPlan(q);
  if (!verifyElementPlan(q, plan)) {
    std::cerr << "internal error: generated plan failed verification\n";
    return 1;
  }
  const auto v = planVolumes(plan);
  std::int64_t total = 0;
  for (const auto& row : v)
    for (auto x : row) total += x;
  std::printf("pivots: %d   transfers: %lld (== VoC %lld)   verified: yes\n",
              q.n(), static_cast<long long>(total),
              static_cast<long long>(q.volumeOfCommunication()));

  if (flags.has("csv")) {
    CsvWriter csv(flags.str("csv", ""),
                  {"pivot", "kind", "i", "j", "from", "to"});
    for (const auto& step : plan) {
      for (const auto& t : step.aColumn)
        csv.row({std::to_string(step.pivot), "A", std::to_string(t.i),
                 std::to_string(t.j), std::string(1, procName(t.from)),
                 std::string(1, procName(t.to))});
      for (const auto& t : step.bRow)
        csv.row({std::to_string(step.pivot), "B", std::to_string(t.i),
                 std::to_string(t.j), std::string(1, procName(t.from)),
                 std::string(1, procName(t.to))});
    }
    std::cout << "plan written to " << flags.str("csv", "") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  try {
    if (command == "search") return cmdSearch(flags);
    if (command == "classify") return cmdClassify(flags);
    if (command == "voc") return cmdVoc(flags);
    if (command == "recommend") return cmdRecommend(flags);
    if (command == "plan") return cmdPlan(flags);
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
