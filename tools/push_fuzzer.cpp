// push_fuzzer — long-running counterexample hunter for Postulate 1.
//
// The paper's evidence for Postulate 1 ("no arrangement exists that the Push
// cannot improve, except the archetypes of Fig. 5") is volume of testing:
// ~10,000 randomized DFA runs per ratio. This tool industrialises that
// hunt: it runs randomized condensations across random ratios, grid sizes
// and start-state styles until a time/run budget expires, classifies every
// condensed output, validates the engine's invariants along the way, and
// dumps any Unknown shape (a counterexample candidate) to disk for forensic
// inspection with `pushpart classify`.
//
//   ./push_fuzzer [--seconds=30] [--max-runs=0 (unlimited)] [--seed=1]
//                 [--min-n=24] [--max-n=96] [--threads=0]
//                 [--dump-dir=.] [--validate-every=50]
//                 [--log-level=debug|info|warn|error]
#include <atomic>
#include <cstdio>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dfa/dfa.hpp"
#include "grid/builder.hpp"
#include "grid/serialize.hpp"
#include "shapes/archetype.hpp"
#include "shapes/transform.hpp"
#include "support/flags.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "verify/invariants.hpp"

using namespace pushpart;

namespace {

Ratio randomRatio(Rng& rng) {
  // P_r in [1, 12], R_r in [1, P_r], S_r = 1 — covering and exceeding the
  // paper's eleven ratios.
  const double p = 1.0 + rng.real() * 11.0;
  const double r = 1.0 + rng.real() * (p - 1.0);
  return Ratio{p, r, 1.0};
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    setLogLevel(parseLogLevel(flags.str("log-level", "info")));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const double seconds = flags.f64("seconds", 30.0);
  const auto maxRuns = flags.i64("max-runs", 0);
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  const int minN = static_cast<int>(flags.i64("min-n", 24));
  const int maxN = static_cast<int>(flags.i64("max-n", 96));
  if (minN < 3 || maxN < minN) {
    std::fprintf(stderr,
                 "error: need 3 <= --min-n <= --max-n (got %d and %d)\n", minN,
                 maxN);
    return 2;
  }
  const std::string dumpDir = flags.str("dump-dir", ".");
  const auto validateEvery = flags.i64("validate-every", 50);
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = static_cast<int>(
      flags.i64("threads", 0) > 0 ? flags.i64("threads", 0)
                                  : (hw > 0 ? hw : 2));

  std::printf("push_fuzzer: hunting Postulate 1 counterexamples for %.0f s "
              "on %d threads (n in [%d, %d])\n",
              seconds, threads, minN, maxN);

  Stopwatch wall;
  std::atomic<std::int64_t> runs{0};
  std::atomic<std::int64_t> pushes{0};
  std::atomic<int> unknowns{0};
  std::atomic<int> dominanceViolations{0};
  std::atomic<int> invariantViolations{0};
  std::atomic<bool> stop{false};
  std::mutex reportMutex;
  int tally[kNumArchetypes] = {};

  const Rng master(seed);
  auto worker = [&](int workerIndex) {
    Rng rng = master.split(static_cast<std::uint64_t>(workerIndex));
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t run = runs.fetch_add(1);
      if ((maxRuns > 0 && run >= maxRuns) || wall.seconds() >= seconds) {
        stop = true;
        break;
      }
      const int n =
          minN + static_cast<int>(rng.below(
                     static_cast<std::uint64_t>(maxN - minN + 1)));
      const Ratio ratio = randomRatio(rng);
      const Schedule schedule = Schedule::random(rng);
      Partition q0 = rng.chance(0.3)
                         ? randomClusteredPartition(n, ratio, rng)
                         : randomPartition(n, ratio, rng);
      // Every validateEvery-th run goes through the shared checker library
      // (src/verify), which needs the start state to check conservation and
      // VoC bookkeeping across the whole condensation.
      const bool validate = validateEvery > 0 && run % validateEvery == 0;
      std::optional<Partition> start;
      if (validate) start = q0;
      const DfaResult result = runDfa(std::move(q0), schedule, {});
      pushes += result.pushesApplied;

      if (validate) {
        const CheckReport report = checkDfaRun(*start, result);
        if (!report.ok()) {
          invariantViolations.fetch_add(1);
          std::lock_guard<std::mutex> lock(reportMutex);
          std::printf("INVARIANT VIOLATION at run %lld (n=%d ratio=%s): %s\n",
                      static_cast<long long>(run), n, ratio.str().c_str(),
                      report.str().c_str());
        }
        PUSHPART_LOG(kDebug) << "run " << run << ": n=" << n << " ratio="
                             << ratio.str() << " pushes="
                             << result.pushesApplied << " invariants "
                             << (report.ok() ? "ok" : "VIOLATED");
      }

      const ArchetypeInfo info = classifyArchetype(result.final);
      {
        std::lock_guard<std::mutex> lock(reportMutex);
        ++tally[static_cast<int>(info.archetype)];
      }
      if (info.archetype == Archetype::Unknown) {
        const int id = unknowns.fetch_add(1);
        const std::string path =
            dumpDir + "/counterexample_" + std::to_string(id) + ".pp";
        savePartition(result.final, path);
        // The form of Postulate 1 the paper's conclusions rely on: a locked
        // non-archetype state must never *undercut* the canonical
        // candidates. checkCondensedState is the same dominance check the
        // verify suite and the corpus-replay gate run.
        const CheckReport condensed = checkCondensedState(result.final, ratio);
        Partition reduced = result.final;
        const auto reduction = reduceToArchetypeA(reduced, ratio);
        std::lock_guard<std::mutex> lock(reportMutex);
        std::printf("UNKNOWN shape! n=%d ratio=%s schedule=[%s] -> %s\n",
                    n, ratio.str().c_str(), schedule.str().c_str(),
                    path.c_str());
        std::printf("  %s\n", info.str().c_str());
        if (condensed.ok()) {
          std::printf(
              "  locked state, but candidate %s dominates (VoC %lld <= "
              "%lld) — weak Postulate 1 holds\n",
              candidateName(reduction->shape),
              static_cast<long long>(reduction->vocAfter),
              static_cast<long long>(reduction->vocBefore));
        } else {
          std::printf("  checker: %s\n", condensed.str().c_str());
          std::printf(
              "  !!! state escapes the canonical-candidate dominance check — "
              "candidate-optimality refutation, please report\n");
          dominanceViolations.fetch_add(1);
        }
      }
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();

  std::printf("\n%lld runs, %lld pushes in %.1f s\n",
              static_cast<long long>(runs.load()),
              static_cast<long long>(pushes.load()), wall.seconds());
  for (int a = 0; a < kNumArchetypes; ++a)
    std::printf("  %-8s %d\n", archetypeName(static_cast<Archetype>(a)),
                tally[a]);
  if (invariantViolations.load() > 0) {
    std::printf("%d engine invariant violation(s) — see log above\n",
                invariantViolations.load());
    return 2;
  }
  if (unknowns.load() == 0) {
    std::printf("no counterexample found — Postulate 1 survives this hunt\n");
    return 0;
  }
  std::printf("%d locked non-archetype state(s) dumped — inspect with "
              "`pushpart classify --in=<file>`\n",
              unknowns.load());
  if (dominanceViolations.load() > 0) {
    std::printf("%d state(s) UNDERCUT the canonical candidates — "
                "optimality refutation!\n",
                dominanceViolations.load());
    return 2;
  }
  std::printf("every locked state was dominated by a canonical candidate — "
              "the weak form of Postulate 1 holds\n");
  return 1;
}
