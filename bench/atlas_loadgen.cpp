// E16 — atlas load generator: cold-path serving with and without the
// plan-surface atlas.
//
// The cache only helps the second request for a ratio; the atlas (src/atlas)
// is about the *first* one. This harness builds an atlas in-process, then
// drives two oracles with the same stream of unique, never-repeated interior
// ratios — every request is a cold miss by construction — once without the
// atlas (every search-tier request pays a live tier-B DFA batch) and once
// with it (certified O(1) surface lookups). Ratios whose assigned cell is
// boundary-flagged are redrawn (and counted): the surface never serves a
// crossover front, so keeping them in the stream would measure the designed
// fallback, not the lookup.
//
// Self-check (RESULT line): (a) every request answered; (b) the atlas run
// served at least 90% of the stream from the surface; (c) no served answer's
// certificate gap exceeds the bound (an uncertified answer must fall back,
// never be served); (d) a differential sweep re-solving a subset uncached
// agrees with the atlas-served modeled time to within the bound; and (e)
// the atlas cold-path p99 is at least 10x faster than the baseline's.
// Machine-readable output: --json=BENCH_atlas.json (written by default).
//
//   ./atlas_loadgen [--queries=24] [--n=300] [--runs=2] [--gap-pct=5]
//                   [--build-n=64] [--pr-steps=16] [--rr-steps=8]
//                   [--diff-every=4] [--seed=1] [--json=BENCH_atlas.json]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "atlas/builder.hpp"
#include "serve/oracle.hpp"
#include "support/flags.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min(v.size() - 1.0, std::ceil(q * static_cast<double>(v.size())) - 1.0));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int queries = std::max(4, static_cast<int>(flags.i64("queries", 24)));
  const int n = static_cast<int>(flags.i64("n", 300));
  const int runs = std::max(1, static_cast<int>(flags.i64("runs", 2)));
  const double gapPct = flags.f64("gap-pct", 5.0);
  const int buildN = static_cast<int>(flags.i64("build-n", 64));
  const int prSteps = static_cast<int>(flags.i64("pr-steps", 16));
  const int rrSteps = static_cast<int>(flags.i64("rr-steps", 8));
  const int diffEvery = std::max(1, static_cast<int>(flags.i64("diff-every", 4)));
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  const std::string jsonPath = flags.str("json", "BENCH_atlas.json");

  // --- Offline: build the surface -----------------------------------------
  AtlasBuildOptions build;
  build.spec.prMin = 1.0;
  build.spec.prMax = static_cast<double>(prSteps);
  build.spec.prSteps = prSteps;
  build.spec.rrMin = 1.0;
  build.spec.rrMax = static_cast<double>(rrSteps);
  build.spec.rrSteps = rrSteps;
  build.info.n = buildN;
  build.threads = 1;
  AtlasBuildReport buildReport;
  const std::shared_ptr<PlanAtlas> atlas = buildAtlas(build, &buildReport);

  std::cout << "E16 (atlas): " << queries << " unique cold ratios, n=" << n
            << ", tier-B budget " << runs << " walks, "
            << build.spec.prSteps << "x" << build.spec.rrSteps
            << " atlas built at n=" << buildN << " ("
            << buildReport.boundary << " boundary cells, "
            << buildReport.seconds << "s)\n\n";

  // --- The query stream: unique interior ratios, boundary cells redrawn ---
  Rng rng(seed);
  std::vector<Ratio> stream;
  stream.reserve(static_cast<std::size_t>(queries));
  std::int64_t boundaryRedraws = 0;
  while (stream.size() < static_cast<std::size_t>(queries)) {
    // Half a step inside the span so the four interpolation corners exist.
    const double pr = build.spec.prMin + build.spec.prStep() * 0.5 +
                      rng.real() * (build.spec.prMax - build.spec.prMin -
                                    build.spec.prStep());
    const double rr = build.spec.rrMin + build.spec.rrStep() * 0.5 +
                      rng.real() * (build.spec.rrMax - build.spec.rrMin -
                                    build.spec.rrStep());
    if (pr < rr) continue;  // canonical form needs P_r >= R_r
    const Ratio ratio{pr, rr, 1.0};
    int i = -1, j = -1;
    if (!atlas->assign(ratio, i, j)) continue;
    const std::optional<AtlasCell> cell = atlas->cell(i, j);
    if (!cell || !cell->solved || cell->boundary) {
      ++boundaryRedraws;
      continue;
    }
    stream.push_back(ratio);
  }

  const auto requestFor = [&](const Ratio& ratio) {
    PlanRequest req;
    req.n = n;
    req.ratio = ratio;
    req.tier = PlanTier::kSearch;
    req.searchRuns = runs;
    req.searchSeed = seed;
    return req;
  };

  // --- Baseline: no atlas, every request is a live tier-B solve -----------
  Oracle baseline(OracleOptions{});
  std::vector<double> baselineLatency;
  std::int64_t baselineAnswered = 0;
  Stopwatch baselineWall;
  for (const Ratio& ratio : stream) {
    const PlanResponse r = baseline.plan(requestFor(ratio));
    baselineLatency.push_back(r.latencySeconds);
    if (!r.shed) ++baselineAnswered;
  }
  const double baselineSeconds = baselineWall.seconds();

  // --- Atlas run: same stream, certified surface lookups ------------------
  OracleOptions withAtlas;
  withAtlas.atlas = atlas;
  withAtlas.atlasGapPct = gapPct;
  Oracle served(withAtlas);
  std::vector<double> atlasLatency;
  std::int64_t atlasAnswered = 0;
  std::int64_t atlasServedCount = 0;
  double maxCertGapPct = 0.0;
  double maxDiffGapPct = 0.0;
  std::int64_t diffChecked = 0;
  Stopwatch atlasWall;
  for (std::size_t q = 0; q < stream.size(); ++q) {
    const PlanRequest req = requestFor(stream[q]);
    const PlanResponse r = served.plan(req);
    atlasLatency.push_back(r.latencySeconds);
    if (r.shed) continue;
    ++atlasAnswered;
    if (r.answer.atlasServed) {
      ++atlasServedCount;
      maxCertGapPct = std::max(maxCertGapPct, r.answer.atlasCertGapPct);
      // Differential subset: the live, uncached tier-B reference must agree
      // with the atlas-served modeled time to within the certificate bound.
      if (q % static_cast<std::size_t>(diffEvery) == 0) {
        const PlanAnswer live = served.solveUncached(req);
        const double diffPct =
            std::fabs(r.answer.model.execSeconds - live.model.execSeconds) /
            live.model.execSeconds * 100.0;
        maxDiffGapPct = std::max(maxDiffGapPct, diffPct);
        ++diffChecked;
      }
    }
  }
  const double atlasSeconds = atlasWall.seconds();

  // --- Report -------------------------------------------------------------
  const OracleStats stats = served.stats();
  const double baseP99 = percentile(baselineLatency, 0.99);
  const double atlasP99 = percentile(atlasLatency, 0.99);
  const double speedup = atlasP99 > 0.0 ? baseP99 / atlasP99 : 0.0;
  const double servedShare =
      atlasAnswered > 0 ? static_cast<double>(atlasServedCount) /
                              static_cast<double>(atlasAnswered)
                        : 0.0;

  Table table({"metric", "baseline", "atlas"});
  table.addRow("answered", {static_cast<double>(baselineAnswered),
                            static_cast<double>(atlasAnswered)});
  table.addRow("wall (s)", {baselineSeconds, atlasSeconds});
  table.addRow("cold p50 (us)", {percentile(baselineLatency, 0.5) * 1e6,
                                 percentile(atlasLatency, 0.5) * 1e6});
  table.addRow("cold p99 (us)", {baseP99 * 1e6, atlasP99 * 1e6});
  table.print(std::cout);
  std::printf("\natlas-served: %lld/%lld (%.0f%%), max cert gap %.3g%% "
              "(bound %g%%), %lld boundary redraws\n",
              static_cast<long long>(atlasServedCount),
              static_cast<long long>(atlasAnswered), servedShare * 100.0,
              maxCertGapPct, gapPct,
              static_cast<long long>(boundaryRedraws));
  std::printf("differential: %lld uncached re-solves, max modeled-time gap "
              "%.3g%%\n",
              static_cast<long long>(diffChecked), maxDiffGapPct);
  std::printf("%s\n", stats.sourcesLine().c_str());
  std::printf("cold-path p99 speedup: %.1fx\n", speedup);

  // --- BENCH_atlas.json ---------------------------------------------------
  {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    char head[768];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"bench\": \"atlas_loadgen\",\n"
        "  \"queries\": %d,\n"
        "  \"n\": %d,\n"
        "  \"runs\": %d,\n"
        "  \"gap_pct\": %.6g,\n"
        "  \"build\": {\"n\": %d, \"pr_steps\": %d, \"rr_steps\": %d,\n"
        "    \"solved\": %zu, \"boundary\": %zu, \"seconds\": %.9g},\n"
        "  \"boundary_redraws\": %lld,\n",
        queries, n, runs, gapPct, buildN, prSteps, rrSteps,
        buildReport.solved, buildReport.boundary, buildReport.seconds,
        static_cast<long long>(boundaryRedraws));
    char body[768];
    std::snprintf(
        body, sizeof(body),
        "  \"baseline\": {\"answered\": %lld, \"wall_seconds\": %.9g,\n"
        "    \"p50_s\": %.9g, \"p99_s\": %.9g},\n"
        "  \"atlas\": {\"answered\": %lld, \"served\": %lld,\n"
        "    \"served_share\": %.9g, \"wall_seconds\": %.9g,\n"
        "    \"p50_s\": %.9g, \"p99_s\": %.9g,\n"
        "    \"max_cert_gap_pct\": %.9g, \"uncertified_served\": 0},\n",
        static_cast<long long>(baselineAnswered), baselineSeconds,
        percentile(baselineLatency, 0.5), baseP99,
        static_cast<long long>(atlasAnswered),
        static_cast<long long>(atlasServedCount), servedShare, atlasSeconds,
        percentile(atlasLatency, 0.5), atlasP99, maxCertGapPct);
    char tail[384];
    std::snprintf(
        tail, sizeof(tail),
        "  \"differential\": {\"checked\": %lld, \"max_gap_pct\": %.9g},\n"
        "  \"p99_speedup\": %.9g\n"
        "}\n",
        static_cast<long long>(diffChecked), maxDiffGapPct, speedup);
    out << head << body << tail;
    std::cout << "\nreport written to " << jsonPath << "\n";
  }

  const bool ok = baselineAnswered == queries && atlasAnswered == queries &&
                  servedShare >= 0.9 && maxCertGapPct <= gapPct &&
                  diffChecked > 0 && maxDiffGapPct <= gapPct + 0.5 &&
                  speedup >= 10.0;
  std::cout << (ok ? "\nRESULT: atlas served the cold path certified and "
                     ">= 10x faster at p99 than live tier-B search.\n"
                   : "\nRESULT: atlas serving targets missed.\n");
  return ok ? 0 : 1;
}
