// E15 — cluster self-healing: a replicated oracle cluster through a seeded
// kill-and-rejoin drill, measuring availability, tail latency, and cache
// survival.
//
// Three phases on one fake clock (every run with the same flags replays the
// same drill):
//
//   * warm phase: a fixed key universe is solved and replicated across each
//     key's owners; a residency census then records which keys reached the
//     full replication factor.
//   * death phase: one node is killed (process crash — its cache is gone).
//     Client threads keep issuing the same keys while the failure detector
//     walks kill -> suspect -> confirmed-down; the router serves every key
//     from its surviving replica. A census taken while the node is dead
//     proves no replicated entry became unanswerable.
//   * recovery phase: the node rejoins cold, is rebalanced from live peers
//     (snapshot-format segments, checksum-verified), and a final census
//     proves every key is back at the replication factor.
//
// Self-check (RESULT line): >= 99% of all requests answered (not
// cluster-shed), zero replicated entries lost while the node was dead, the
// replication factor restored after rejoin, and the recovery markers
// present in the event log. Machine-readable output:
// --json=BENCH_cluster.json (written by default).
//
//   ./cluster_loadgen [--nodes=3] [--replication=2] [--keys=48]
//                     [--warm-requests=300] [--death-requests=400]
//                     [--post-requests=200] [--threads=4] [--kill-node=1]
//                     [--kill-at=1.0] [--rejoin-at=2.0] [--seed=1]
//                     [--heartbeat-drop=0] [--json=BENCH_cluster.json]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "support/flags.hpp"
#include "support/histogram.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

/// Deterministic tier-A key universe: distinct matrix sizes over one
/// machine, every answer full fidelity (and therefore replicated).
PlanRequest keyRequest(std::int64_t slot) {
  PlanRequest req;
  req.n = 100 + 3 * static_cast<int>(slot);
  req.ratio = Ratio{5, 2, 1};
  req.algo = Algo::kSCB;
  return req;
}

struct PhaseResult {
  std::int64_t issued = 0;
  std::int64_t answered = 0;
  LatencyHistogram::Snapshot latency;
};

/// Issues `requests` over [clock, clock + stepsSeconds * steps), ticking the
/// cluster once per step and splitting each step's quota across `threads`
/// concurrent clients. The clock only moves between steps, so the drill's
/// fault windows land on exact, replayable instants.
PhaseResult drivePhase(OracleCluster& cluster, FakeClock& clock,
                       std::int64_t keys, std::int64_t requests, int steps,
                       double stepSeconds, int threads,
                       std::int64_t firstSlot) {
  PhaseResult result;
  std::atomic<std::int64_t> answered{0};
  LatencyHistogram latency;
  std::int64_t issued = 0;
  for (int step = 0; step < steps; ++step) {
    cluster.tick();
    const std::int64_t due = requests * (step + 1) / steps;
    const std::int64_t quota = due - issued;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      const std::int64_t from = issued + quota * t / threads;
      const std::int64_t to = issued + quota * (t + 1) / threads;
      clients.emplace_back([&, from, to]() {
        for (std::int64_t i = from; i < to; ++i) {
          const ClusterResponse r =
              cluster.plan(keyRequest((firstSlot + i) % keys));
          if (!r.clusterShed) {
            answered.fetch_add(1, std::memory_order_relaxed);
            latency.record(r.response.latencySeconds);
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    issued = due;
    clock.advance(stepSeconds);
  }
  result.issued = issued;
  result.answered = answered.load();
  result.latency = latency.snapshot();
  return result;
}

/// Keys (of the first `keys` universe slots) whose resident copy count is at
/// least `atLeast` in the census.
std::int64_t keysWithResidency(
    const std::unordered_map<std::string, int>& census, std::int64_t keys,
    int atLeast) {
  std::int64_t have = 0;
  for (std::int64_t slot = 0; slot < keys; ++slot) {
    const CanonicalKey key = canonicalize(keyRequest(slot));
    const auto it = census.find(key.text);
    if (it != census.end() && it->second >= atLeast) ++have;
  }
  return have;
}

bool eventLogged(const std::vector<ClusterEvent>& events,
                 const std::string& needle) {
  for (const ClusterEvent& event : events)
    if (event.what.find(needle) != std::string::npos) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int nodes = std::max(2, static_cast<int>(flags.i64("nodes", 3)));
  const int replication =
      std::max(2, static_cast<int>(flags.i64("replication", 2)));
  const std::int64_t keys = std::max<std::int64_t>(1, flags.i64("keys", 48));
  const std::int64_t warmRequests =
      std::max<std::int64_t>(keys, flags.i64("warm-requests", 300));
  const std::int64_t deathRequests =
      std::max<std::int64_t>(1, flags.i64("death-requests", 400));
  const std::int64_t postRequests =
      std::max<std::int64_t>(1, flags.i64("post-requests", 200));
  const int threads = std::max(1, static_cast<int>(flags.i64("threads", 4)));
  const int killNode = static_cast<int>(flags.i64("kill-node", 1));
  const double killAt = flags.f64("kill-at", 1.0);
  const double rejoinAt = flags.f64("rejoin-at", 2.0);
  const std::string jsonPath = flags.str("json", "BENCH_cluster.json");

  ClusterOptions options;
  options.nodes = nodes;
  options.replication = std::min(replication, nodes);
  options.faults.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  options.faults.heartbeatDropProbability = flags.f64("heartbeat-drop", 0.0);
  options.faults.kills.push_back(NodeKill{killNode, killAt, rejoinAt});

  FakeClock clock;
  options.clock = &clock;
  OracleCluster cluster(options);

  const double step = options.heartbeatIntervalSeconds;
  const auto stepsFor = [&](double seconds) {
    return std::max(1, static_cast<int>(seconds / step));
  };

  std::cout << "E15 (cluster): " << nodes << " nodes, replication "
            << options.replication << ", node " << killNode << " killed at "
            << killAt << "s, rejoins at " << rejoinAt << "s; " << threads
            << " client threads over " << keys << " keys\n\n";

  // --- Warm phase ---------------------------------------------------------
  // Ends one step shy of killAt so the replication census is taken strictly
  // before the kill instant.
  const PhaseResult warm =
      drivePhase(cluster, clock, keys, warmRequests,
                 std::max(1, stepsFor(killAt) - 1), step, threads, 0);
  const std::int64_t replicated = keysWithResidency(
      cluster.replicaCounts(), keys, options.replication);

  // --- Death phase --------------------------------------------------------
  // Crosses the kill instant and runs to rejoinAt; the census at the end of
  // the phase (the dead node's state still gone) is the survival check.
  const PhaseResult death =
      drivePhase(cluster, clock, keys, deathRequests,
                 stepsFor(rejoinAt - killAt) + 1, step, threads, warm.issued);
  const std::int64_t survivors =
      keysWithResidency(cluster.replicaCounts(), keys, 1);
  const std::int64_t lost = replicated - std::min(replicated, survivors);

  // --- Recovery phase -----------------------------------------------------
  // The clock is now at rejoinAt: the next tick restarts the node cold,
  // heartbeats resume, and recovery (rebalance + hints) runs.
  const PhaseResult post = drivePhase(cluster, clock, keys, postRequests,
                                      stepsFor(0.5), step, threads,
                                      warm.issued + death.issued);
  const std::int64_t restored = keysWithResidency(
      cluster.replicaCounts(), keys, options.replication);

  const ClusterStats stats = cluster.stats();
  const std::vector<ClusterEvent> events = cluster.events();
  for (const ClusterEvent& event : events)
    std::printf("  t=%.3fs %s\n", event.at, event.what.c_str());
  std::printf("\n");

  const std::int64_t issued = warm.issued + death.issued + post.issued;
  const std::int64_t answered = warm.answered + death.answered + post.answered;
  const double availability =
      issued > 0 ? static_cast<double>(answered) / static_cast<double>(issued)
                 : 1.0;

  Table table({"metric", "value"});
  table.addRow("requests", {static_cast<double>(issued)});
  table.addRow("answered", {static_cast<double>(answered)});
  table.addRow("availability", {availability});
  table.addRow("death-phase p99 (us)", {death.latency.p99 * 1e6});
  table.addRow("keys replicated pre-kill", {static_cast<double>(replicated)});
  table.addRow("keys surviving mid-death", {static_cast<double>(survivors)});
  table.addRow("entries lost", {static_cast<double>(lost)});
  table.addRow("keys at factor post-rejoin", {static_cast<double>(restored)});
  table.addRow("replica serves", {static_cast<double>(stats.replicaServes)});
  table.addRow("replica cache hits", {static_cast<double>(stats.replicaHits)});
  table.addRow("rebalance entries",
               {static_cast<double>(stats.rebalance.entriesStreamed)});
  table.addRow("hints delivered", {static_cast<double>(stats.hintsDelivered)});
  table.print(std::cout);

  // --- BENCH_cluster.json -------------------------------------------------
  {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    char head[1024];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"bench\": \"cluster_loadgen\",\n"
        "  \"nodes\": %d,\n"
        "  \"replication\": %d,\n"
        "  \"seed\": %llu,\n"
        "  \"kill_node\": %d,\n"
        "  \"kill_at_s\": %.9g,\n"
        "  \"rejoin_at_s\": %.9g,\n"
        "  \"requests\": %lld,\n"
        "  \"answered\": %lld,\n"
        "  \"availability\": %.9g,\n"
        "  \"death_p99_s\": %.9g,\n"
        "  \"keys\": %lld,\n"
        "  \"keys_replicated\": %lld,\n"
        "  \"keys_surviving\": %lld,\n"
        "  \"entries_lost\": %lld,\n"
        "  \"keys_restored\": %lld,\n",
        nodes, options.replication,
        static_cast<unsigned long long>(options.faults.seed), killNode,
        killAt, rejoinAt, static_cast<long long>(issued),
        static_cast<long long>(answered), availability, death.latency.p99,
        static_cast<long long>(keys), static_cast<long long>(replicated),
        static_cast<long long>(survivors), static_cast<long long>(lost),
        static_cast<long long>(restored));
    char tail[768];
    std::snprintf(
        tail, sizeof(tail),
        "  \"cluster_sheds\": %llu,\n"
        "  \"primary_serves\": %llu,\n"
        "  \"replica_serves\": %llu,\n"
        "  \"replica_hits\": %llu,\n"
        "  \"retries\": %llu,\n"
        "  \"replicas_written\": %llu,\n"
        "  \"hints_stored\": %llu,\n"
        "  \"hints_delivered\": %llu,\n"
        "  \"rebalances\": %llu,\n"
        "  \"rebalance_segments\": %llu,\n"
        "  \"rebalance_entries\": %llu,\n"
        "  \"detector_confirmations\": %llu,\n"
        "  \"detector_recoveries\": %llu\n"
        "}\n",
        static_cast<unsigned long long>(stats.clusterSheds),
        static_cast<unsigned long long>(stats.primaryServes),
        static_cast<unsigned long long>(stats.replicaServes),
        static_cast<unsigned long long>(stats.replicaHits),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.replicasWritten),
        static_cast<unsigned long long>(stats.hintsStored),
        static_cast<unsigned long long>(stats.hintsDelivered),
        static_cast<unsigned long long>(stats.rebalance.rebalances),
        static_cast<unsigned long long>(stats.rebalance.segmentsStreamed),
        static_cast<unsigned long long>(stats.rebalance.entriesStreamed),
        static_cast<unsigned long long>(stats.detector.confirmations),
        static_cast<unsigned long long>(stats.detector.recoveries));
    out << head << tail;
    std::cout << "report written to " << jsonPath << "\n";
  }

  const bool availabilityOk = availability >= 0.99;
  const bool survivalOk = lost == 0 && replicated == keys;
  const bool restoredOk = restored == keys;
  const bool markersOk = eventLogged(events, "killed") &&
                         eventLogged(events, "confirmed down") &&
                         eventLogged(events, "rejoining") &&
                         eventLogged(events, "rebalance") &&
                         eventLogged(events, "recovered");
  const bool ok = availabilityOk && survivalOk && restoredOk && markersOk;
  std::cout << (ok ? "\nRESULT: cluster survived the kill-and-rejoin drill "
                     "with no replicated entry lost.\n"
                   : "\nRESULT: cluster drill targets missed.\n");
  if (!availabilityOk)
    std::printf("  availability bar failed: %.4g < 0.99\n", availability);
  if (!survivalOk)
    std::printf("  survival bar failed: %lld/%lld keys replicated, %lld "
                "lost\n",
                static_cast<long long>(replicated),
                static_cast<long long>(keys), static_cast<long long>(lost));
  if (!restoredOk)
    std::printf("  rebalance bar failed: %lld/%lld keys back at factor %d\n",
                static_cast<long long>(restored),
                static_cast<long long>(keys), options.replication);
  if (!markersOk)
    std::printf("  recovery markers missing from the event log\n");
  return ok ? 0 : 1;
}
