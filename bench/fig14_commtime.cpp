// E4 — paper Fig. 14: SCB communication time, Square-Corner vs
// Block-Rectangle, as heterogeneity grows.
//
// Paper setting: N = 5000 doubles, 1000 MB/s network, fully-connected
// topology, R_r = S_r = 1, P_r sweeping upward. The Square-Corner's volume
// of communication falls with heterogeneity and eventually overtakes (drops
// below) the Block-Rectangle's. This harness reproduces the series three
// ways — closed form, grid-measured VoC, and the discrete-event simulator —
// and reports the crossover. Reproduction criteria: BR is flat-ish and SC
// decreasing; SC wins for large P_r; all three methods agree.
//
//   ./fig14_commtime [--n=5000] [--grid-n=500] [--bandwidth-mbs=1000]
//                    [--pmax=25] [--csv=path]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "model/closed_form.hpp"
#include "model/models.hpp"
#include "sim/mmm_sim.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 5000));          // closed form
  const int gridN = static_cast<int>(flags.i64("grid-n", 500));  // grid + sim
  const double tsend = 8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  const int pmax = static_cast<int>(flags.i64("pmax", 25));

  CsvWriter csv;
  if (flags.has("csv"))
    csv = CsvWriter(flags.str("csv", ""),
                    {"Pr", "scClosedForm", "brClosedForm", "scGrid", "brGrid",
                     "scSim", "brSim"});

  std::cout << "E4 (paper Fig. 14): SCB communication seconds, N=" << n
            << " (grid/sim at n=" << gridN << "), 1000 MB/s, R_r=S_r=1\n\n";

  Table table({"P_r", "SC closed (s)", "BR closed (s)", "SC grid (s)",
               "BR grid (s)", "SC sim (s)", "BR sim (s)"});

  const double scale =
      static_cast<double>(n) * n / (static_cast<double>(gridN) * gridN);
  double crossover = -1;
  bool brEverWins = false, scEventuallyWins = false;
  for (int p = 2; p <= pmax; ++p) {
    const Ratio ratio{static_cast<double>(p), 1, 1};
    const double scClosed =
        closedFormScbCommSeconds(CandidateShape::kSquareCorner, ratio, n, tsend);
    const double brClosed = closedFormScbCommSeconds(
        CandidateShape::kBlockRectangle, ratio, n, tsend);

    double scGrid = std::numeric_limits<double>::infinity();
    double scSim = std::numeric_limits<double>::infinity();
    Machine machine;
    machine.ratio = ratio;
    machine.sendElementSeconds = tsend;
    SimOptions simOpts;
    simOpts.machine = machine;
    if (candidateFeasible(CandidateShape::kSquareCorner, gridN, ratio)) {
      const auto q = makeCandidate(CandidateShape::kSquareCorner, gridN, ratio);
      scGrid = commSeconds(Algo::kSCB, q, machine) * scale;
      scSim = simulateMMM(Algo::kSCB, q, simOpts).commSeconds * scale;
    }
    const auto br = makeCandidate(CandidateShape::kBlockRectangle, gridN, ratio);
    const double brGrid = commSeconds(Algo::kSCB, br, machine) * scale;
    const double brSim = simulateMMM(Algo::kSCB, br, simOpts).commSeconds * scale;

    if (std::isfinite(scClosed) && scClosed < brClosed && crossover < 0)
      crossover = p;
    if (!std::isfinite(scClosed) || scClosed >= brClosed) brEverWins = true;
    if (std::isfinite(scClosed) && scClosed < brClosed)
      scEventuallyWins = true;

    table.addRow(std::to_string(p),
                 {scClosed, brClosed, scGrid, brGrid, scSim, brSim});
    csv.row({static_cast<double>(p), scClosed, brClosed, scGrid, brGrid,
             scSim, brSim});
  }
  table.print(std::cout);

  std::printf("\ncrossover: Square-Corner first beats Block-Rectangle at "
              "P_r = %.0f (closed form; paper reports the win at high "
              "heterogeneity)\n",
              crossover);
  const bool ok = brEverWins && scEventuallyWins && crossover > 2;
  std::cout << (ok ? "RESULT: matches paper Fig. 14 — SC overtakes BR as "
                     "heterogeneity increases.\n"
                   : "RESULT: MISMATCH with expected Fig. 14 shape.\n");
  return ok ? 0 : 1;
}
