// E17 — grid vs run-length engine micro-benchmarks (self-checked).
//
// Side-by-side measurement of the two partition engines (DESIGN.md §15):
// the element-exact grid (src/grid) and the run-length state (src/rle) that
// the DFA batch driver and the serving tier run on by default. Every
// scenario drives BOTH engines through identical work and asserts identical
// verdicts/results before it reports a speedup — a divergence fails the
// bench, not just the differential suite.
//
// Scenarios:
//   * legality scans (headline): failed tryPush attempts over every (slow
//     processor, direction) on a condensed state — the DFA's hot loop,
//     re-proving that no push applies before it can stop. The attempt runs
//     directly on the engine state (transactional, rolls back on failure,
//     no copy), so this isolates the representations: the grid scans O(N²)
//     cells per attempt, the RLE skips whole runs. Self-checked bar:
//     >= --bar (default 10x).
//   * full DFA trajectories: same seeded starts and schedules end-to-end on
//     both engines, identical walks required. Scattered starts carry O(N)
//     runs per line, so the representations are near parity here; the
//     self-checked floor (--traj-bar, default 0.75x) is a regression guard,
//     not a speedup claim.
//   * paper-scale batch: a --batch-runs DFA batch at n=--batch-n (default
//     1000, the paper's size) on the RLE engine, required to finish within
//     --budget seconds.
//   * primitives: set-cell and VoC-query micro-costs on both engines
//     (reported, not gated: scattered single-cell writes are the RLE's known
//     worst case and the reason the grid remains the element-exact
//     reference).
//
// Machine-readable output: --json=BENCH_micro_push.json (written by
// default). Exit code 0 iff every self-check passed (RESULT line).
//
//   ./micro_push [--n=1000] [--scan-reps=40] [--traj-n=160] [--traj-runs=6]
//                [--batch-n=1000] [--batch-runs=4] [--budget=120]
//                [--bar=10] [--traj-bar=0.75] [--seed=1]
//                [--json=BENCH_micro_push.json]
#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "dfa/batch.hpp"
#include "grid/builder.hpp"
#include "push/direction.hpp"
#include "rle/engine.hpp"
#include "shapes/candidates.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "verify/invariants.hpp"

using namespace pushpart;

namespace {

double safeRatio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = std::max(8, static_cast<int>(flags.i64("n", 1000)));
  const int scanReps = std::max(1, static_cast<int>(flags.i64("scan-reps", 40)));
  const int trajN = std::max(8, static_cast<int>(flags.i64("traj-n", 160)));
  const int trajRuns = std::max(1, static_cast<int>(flags.i64("traj-runs", 6)));
  const int batchN = std::max(8, static_cast<int>(flags.i64("batch-n", 1000)));
  const int batchRuns = std::max(1, static_cast<int>(flags.i64("batch-runs", 4)));
  const double budget = flags.f64("budget", 120.0);
  const double bar = flags.f64("bar", 10.0);
  const double trajBar = flags.f64("traj-bar", 0.75);
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  const std::string jsonPath = flags.str("json", "BENCH_micro_push.json");

  const Ratio ratio{3, 2, 1};
  std::int64_t divergences = 0;

  std::cout << "E17 (micro_push): grid vs run-length engine, n=" << n
            << ", bars " << bar << "x scans / " << trajBar
            << "x trajectories, batch n=" << batchN << " x " << batchRuns
            << " within " << budget << "s\n\n";

  // --- Headline: legality scans on a condensed state ----------------------
  // A canonical candidate is a condensed accept state: every tryPush walks
  // the full legality machinery and fails, rolling back to the identical
  // state. This is the hot loop of a condensed-phase DFA sweep — the walk
  // keeps re-proving that no push applies — and it runs on the engine state
  // in place, so the grid's O(N²) cell scans face the RLE's run skipping
  // directly.
  const Partition cond = makeCandidate(CandidateShape::kSquareCorner, n, ratio);
  Partition condG = cond;
  RlePartition condR(cond);
  double gridScanSeconds = 0.0;
  double rleScanSeconds = 0.0;
  std::int64_t scans = 0;
  {
    Stopwatch sw;
    for (int rep = 0; rep < scanReps; ++rep)
      for (Proc x : kSlowProcs)
        for (Direction d : kAllDirections) {
          if (tryPush(condG, x, d).applied) ++divergences;  // candidate locks
          ++scans;
        }
    gridScanSeconds = sw.seconds();
    sw.reset();
    for (int rep = 0; rep < scanReps; ++rep)
      for (Proc x : kSlowProcs)
        for (Direction d : kAllDirections)
          if (tryPush(condR, x, d).applied) ++divergences;
    rleScanSeconds = sw.seconds();
    // Both engines must still be exactly the candidate (rolled back clean).
    if (!(condG == cond) || !condR.sameOwners(cond)) ++divergences;
  }
  const double scanSpeedup = safeRatio(gridScanSeconds, rleScanSeconds);

  // --- Full DFA trajectories, lockstep ------------------------------------
  double gridTrajSeconds = 0.0;
  double rleTrajSeconds = 0.0;
  std::int64_t trajPushes = 0;
  const Rng master(seed);
  for (int run = 0; run < trajRuns; ++run) {
    Rng rng = master.split(static_cast<std::uint64_t>(run));
    const Schedule schedule = Schedule::random(rng);
    const Partition q0 = rng.chance(0.5)
                             ? randomClusteredPartition(trajN, ratio, rng)
                             : randomPartition(trajN, ratio, rng);
    Stopwatch sw;
    const DfaResult g = runDfa(q0, schedule, {});
    gridTrajSeconds += sw.seconds();
    sw.reset();
    // The conversion is charged to the RLE: it is what a caller holding a
    // grid pays to use the fast engine.
    const DfaResultT<RlePartition> r = runDfaT(RlePartition(q0), schedule, {});
    rleTrajSeconds += sw.seconds();
    trajPushes += g.pushesApplied;

    if (g.stop != r.stop || g.pushesApplied != r.pushesApplied ||
        g.sweeps != r.sweeps || g.vocEnd != r.vocEnd ||
        !r.final.sameOwners(g.final)) {
      ++divergences;
      std::cout << "DIVERGENCE: trajectory " << run << " (seed " << seed
                << "): grid " << g.pushesApplied << " pushes -> VoC "
                << g.vocEnd << ", rle " << r.pushesApplied << " -> "
                << r.vocEnd << "\n";
    }
  }
  const double trajSpeedup = safeRatio(gridTrajSeconds, rleTrajSeconds);

  // --- Paper-scale batch on the fast engine -------------------------------
  BatchOptions batch;
  batch.n = batchN;
  batch.ratio = ratio;
  batch.runs = batchRuns;
  batch.threads = 0;  // all cores, like a real experiment
  batch.seed = seed;
  batch.engine = BatchEngine::kRle;
  std::int64_t batchBestVoc = std::numeric_limits<std::int64_t>::max();
  Stopwatch batchWall;
  const BatchSummary summary = runBatch(batch, [&](const BatchRun& run) {
    batchBestVoc =
        std::min(batchBestVoc, run.result.final.volumeOfCommunication());
  });
  const double batchSeconds = batchWall.seconds();

  // --- Primitive micro-costs (reported, not gated) ------------------------
  const int microN = 512;
  const std::int64_t microOps = 200000;
  double gridSetSeconds = 0.0;
  double rleSetSeconds = 0.0;
  {
    Rng rng(seed);
    Partition g(microN);
    Stopwatch sw;
    for (std::int64_t op = 0; op < microOps; ++op)
      g.set(static_cast<int>(rng.below(static_cast<std::uint64_t>(microN))),
            static_cast<int>(rng.below(static_cast<std::uint64_t>(microN))),
            static_cast<Proc>(rng.below(3)));
    gridSetSeconds = sw.seconds();
    Rng rng2(seed);
    RlePartition r(microN);
    sw.reset();
    for (std::int64_t op = 0; op < microOps; ++op)
      r.set(static_cast<int>(rng2.below(static_cast<std::uint64_t>(microN))),
            static_cast<int>(rng2.below(static_cast<std::uint64_t>(microN))),
            static_cast<Proc>(rng2.below(3)));
    rleSetSeconds = sw.seconds();
    if (!r.sameOwners(g) ||
        g.volumeOfCommunication() != r.volumeOfCommunication())
      ++divergences;
  }

  // --- Report -------------------------------------------------------------
  Table table({"scenario", "grid", "rle", "grid/rle"});
  table.addRow("legality scan (us/scan)",
               {safeRatio(gridScanSeconds * 1e6, static_cast<double>(scans)),
                safeRatio(rleScanSeconds * 1e6, static_cast<double>(scans)),
                scanSpeedup});
  table.addRow("DFA trajectory (ms/run)",
               {safeRatio(gridTrajSeconds * 1e3, trajRuns),
                safeRatio(rleTrajSeconds * 1e3, trajRuns), trajSpeedup});
  table.addRow("set cell (ns/op)",
               {safeRatio(gridSetSeconds * 1e9, static_cast<double>(microOps)),
                safeRatio(rleSetSeconds * 1e9, static_cast<double>(microOps)),
                safeRatio(gridSetSeconds, rleSetSeconds)});
  table.print(std::cout);

  std::printf("\nlegality scans: %lld per engine on the condensed n=%d "
              "state, speedup %.1fx (bar %.1fx)\n",
              static_cast<long long>(scans), n, scanSpeedup, bar);
  std::printf("trajectories: %d lockstep runs at n=%d, %lld pushes, "
              "speedup %.1fx (bar %.1fx)\n",
              trajRuns, trajN, static_cast<long long>(trajPushes),
              trajSpeedup, trajBar);
  std::printf("batch: %d/%d runs at n=%d in %.1fs (budget %.0fs), best VoC "
              "%lld\n",
              summary.completed, batchRuns, batchN, batchSeconds, budget,
              static_cast<long long>(batchBestVoc));
  std::printf("divergences: %lld\n", static_cast<long long>(divergences));

  // --- BENCH_micro_push.json ----------------------------------------------
  {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    char head[768];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"bench\": \"micro_push\",\n"
        "  \"n\": %d,\n"
        "  \"seed\": %llu,\n"
        "  \"scan\": {\"reps\": %d, \"scans\": %lld,\n"
        "    \"grid_seconds\": %.9g, \"rle_seconds\": %.9g,\n"
        "    \"speedup\": %.9g, \"bar\": %.9g},\n"
        "  \"trajectory\": {\"n\": %d, \"runs\": %d, \"pushes\": %lld,\n"
        "    \"grid_seconds\": %.9g, \"rle_seconds\": %.9g,\n"
        "    \"speedup\": %.9g, \"bar\": %.9g},\n",
        n, static_cast<unsigned long long>(seed), scanReps,
        static_cast<long long>(scans), gridScanSeconds, rleScanSeconds,
        scanSpeedup, bar, trajN, trajRuns, static_cast<long long>(trajPushes),
        gridTrajSeconds, rleTrajSeconds, trajSpeedup, trajBar);
    char tail[640];
    std::snprintf(
        tail, sizeof(tail),
        "  \"batch\": {\"n\": %d, \"runs\": %d, \"completed\": %d,\n"
        "    \"seconds\": %.9g, \"budget\": %.9g, \"best_voc\": %lld,\n"
        "    \"engine\": \"%s\"},\n"
        "  \"set_cell\": {\"n\": %d, \"ops\": %lld,\n"
        "    \"grid_seconds\": %.9g, \"rle_seconds\": %.9g},\n"
        "  \"divergences\": %lld\n"
        "}\n",
        batchN, batchRuns, summary.completed, batchSeconds, budget,
        static_cast<long long>(batchBestVoc), batchEngineName(batch.engine),
        microN, static_cast<long long>(microOps), gridSetSeconds,
        rleSetSeconds, static_cast<long long>(divergences));
    out << head << tail;
    std::cout << "\nreport written to " << jsonPath << "\n";
  }

  const bool ok = divergences == 0 && scanSpeedup >= bar &&
                  trajSpeedup >= trajBar && summary.completed == batchRuns &&
                  summary.failures.empty() && batchSeconds <= budget;
  std::cout << (ok ? "\nRESULT: run-length engine matched the grid "
                     "everywhere and cleared the speedup bars.\n"
                   : "\nRESULT: engine parity or speedup targets missed.\n");
  return ok ? 0 : 1;
}
