// E8 — engineering micro-benchmarks (google-benchmark).
//
// Measures the primitives everything else is built on, and quantifies the
// design choices DESIGN.md calls out for ablation:
//   * incremental VoC (O(1)) vs a full O(N·procs) rescan,
//   * single Push cost vs grid size,
//   * full DFA run cost vs grid size,
//   * candidate construction and archetype classification.
#include <benchmark/benchmark.h>

#include "dfa/dfa.hpp"
#include "grid/builder.hpp"
#include "grid/metrics.hpp"
#include "push/beautify.hpp"
#include "shapes/archetype.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {
namespace {

const Ratio kRatio{3, 2, 1};

void BM_PartitionSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Partition q(n);
  Rng rng(1);
  int i = 0, j = 0;
  for (auto _ : state) {
    q.set(i, j, static_cast<Proc>(rng.below(3)));
    if (++j == n) {
      j = 0;
      if (++i == n) i = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionSet)->Arg(100)->Arg(1000);

void BM_VoCIncremental(benchmark::State& state) {
  Rng rng(2);
  const auto q = randomPartition(static_cast<int>(state.range(0)), kRatio, rng);
  for (auto _ : state) benchmark::DoNotOptimize(q.volumeOfCommunication());
}
BENCHMARK(BM_VoCIncremental)->Arg(100)->Arg(1000);

void BM_VoCFullRescan(benchmark::State& state) {
  // The ablation baseline: recompute Eq. 1 from the per-line owner counts.
  Rng rng(2);
  const auto q = randomPartition(static_cast<int>(state.range(0)), kRatio, rng);
  for (auto _ : state) {
    std::int64_t voc = 0;
    for (int i = 0; i < q.n(); ++i) {
      voc += static_cast<std::int64_t>(q.n()) * (q.procsInRow(i) - 1);
      voc += static_cast<std::int64_t>(q.n()) * (q.procsInCol(i) - 1);
    }
    benchmark::DoNotOptimize(voc);
  }
}
BENCHMARK(BM_VoCFullRescan)->Arg(100)->Arg(1000);

void BM_SinglePush(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto start = randomPartition(n, kRatio, rng);
  for (auto _ : state) {
    state.PauseTiming();
    Partition q = start;
    state.ResumeTiming();
    benchmark::DoNotOptimize(tryPush(q, Proc::R, Direction::Down));
  }
}
BENCHMARK(BM_SinglePush)->Arg(50)->Arg(100)->Arg(200);

void BM_FullDfaRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    const Schedule schedule = Schedule::random(rng);
    auto result = runDfa(randomPartition(n, kRatio, rng), schedule, {});
    benchmark::DoNotOptimize(result.vocEnd);
  }
}
BENCHMARK(BM_FullDfaRun)->Arg(30)->Arg(60)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Beautify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const auto start = randomPartition(n, kRatio, rng);
  for (auto _ : state) {
    state.PauseTiming();
    Partition q = start;
    state.ResumeTiming();
    benchmark::DoNotOptimize(beautify(q).pushesApplied);
  }
}
BENCHMARK(BM_Beautify)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_MakeCandidate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto q = makeCandidate(CandidateShape::kSquareCorner, n, Ratio{5, 1, 1});
    benchmark::DoNotOptimize(q.volumeOfCommunication());
  }
}
BENCHMARK(BM_MakeCandidate)->Arg(100)->Arg(1000);

void BM_ClassifyArchetype(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto q = makeCandidate(CandidateShape::kBlockRectangle, n, kRatio);
  for (auto _ : state)
    benchmark::DoNotOptimize(classifyArchetype(q).archetype);
}
BENCHMARK(BM_ClassifyArchetype)->Arg(100)->Arg(500);

void BM_PairVolumes(benchmark::State& state) {
  Rng rng(5);
  const auto q = randomPartition(static_cast<int>(state.range(0)), kRatio, rng);
  for (auto _ : state) benchmark::DoNotOptimize(pairVolumes(q));
}
BENCHMARK(BM_PairVolumes)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace pushpart

BENCHMARK_MAIN();
