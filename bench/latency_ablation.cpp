// E10 — extension of paper §XI: the effect of communication latency.
//
// The paper's models are bandwidth-only (β·M); its conclusion lists
// "communication latency" as an open modelling avenue. This harness
// quantifies it on the discrete-event simulator: for the PIO algorithm, the
// per-message latency α makes fine-grained pivot interleaving expensive, and
// grouping pivots into blocks ("k rows and columns at a time", §II) trades
// pipelining overlap against message count. Expected shape: with α = 0 the
// classic blockSize = 1 is optimal (or tied); as α grows the optimal block
// size grows, approaching bulk exchange for very high-latency networks.
//
//   ./latency_ablation [--n=128] [--ratio=5:2:1] [--shape=Block-Rectangle]
//                      [--bandwidth-mbs=1000] [--flops=1e9]
#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "shapes/candidates.hpp"
#include "support/csv.hpp"
#include "sim/mmm_sim.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 128));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  const CandidateShape shape =
      candidateFromName(flags.str("shape", "Block-Rectangle"));
  if (!candidateFeasible(shape, n, ratio)) {
    std::cerr << "infeasible shape for this ratio\n";
    return 1;
  }
  const Partition q = makeCandidate(shape, n, ratio);

  SimOptions opts;
  opts.machine.ratio = ratio;
  opts.machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  opts.machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);

  const std::vector<double> alphasUs = {0.0, 1.0, 10.0, 100.0, 1000.0};
  const std::vector<int> blocks = {1, 2, 4, 8, 16, 32, n};

  std::cout << "E10 (extends paper Sec. XI): PIO exec seconds vs per-message "
               "latency and pivot block size\n"
            << candidateName(shape) << ", n=" << n << ", ratio "
            << ratio.str() << "\n\n";

  std::vector<std::string> header{"alpha (us)"};
  for (int b : blocks) header.push_back("b=" + std::to_string(b));
  header.push_back("best b");
  Table table(header);

  std::vector<int> bestBlocks;
  for (double alphaUs : alphasUs) {
    opts.machine.alphaSeconds = alphaUs * 1e-6;
    std::vector<std::string> row{formatNumber(alphaUs)};
    double best = std::numeric_limits<double>::infinity();
    int bestB = 0;
    for (int b : blocks) {
      opts.pioBlockSize = b;
      const double exec = simulateMMM(Algo::kPIO, q, opts).execSeconds;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.5f", exec);
      row.push_back(buf);
      if (exec < best) {
        best = exec;
        bestB = b;
      }
    }
    row.push_back(std::to_string(bestB));
    bestBlocks.push_back(bestB);
    table.addRow(row);
  }
  table.print(std::cout);

  // Shape check: the optimal block size is non-decreasing in latency, and
  // high latency prefers strictly coarser blocks than zero latency.
  bool monotone = true;
  for (std::size_t i = 1; i < bestBlocks.size(); ++i)
    if (bestBlocks[i] < bestBlocks[i - 1]) monotone = false;
  const bool coarsens = bestBlocks.back() > bestBlocks.front();
  std::cout << (monotone && coarsens
                    ? "\nRESULT: optimal PIO block size grows with latency — "
                      "latency-aware blocking matters, as the paper's "
                      "future-work note anticipated.\n"
                    : "\nRESULT: unexpected latency response.\n");
  return (monotone && coarsens) ? 0 : 1;
}
