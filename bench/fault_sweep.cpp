// E11 — robustness extension: the five algorithms under an imperfect cluster.
//
// The paper's testbed assumes three always-alive nodes and a lossless
// network. This harness measures how the SCB/PCB/SCO/PCO/PIO schedules
// degrade when neither holds, using the fault-injected simulator
// (sim/fault.hpp): first a sweep over message-drop probability (every loss
// costs an ack timeout, a jittered backoff and a retransmission), then a
// sweep over the instant one processor dies, after which the run fails over
// to the rebalanced two-survivor partition of plan/rebalance.hpp. Reported
// numbers are exec-time ratios against the fault-free baseline of the same
// algorithm, so the columns isolate the cost of the faults themselves.
//
//   ./fault_sweep [--n=96] [--ratio=5:2:1] [--shape=Square-Corner]
//                 [--bandwidth-mbs=1000] [--flops=1e9] [--alpha-us=10]
//                 [--chunks=4] [--timeout-us=10] [--seed=1]
//                 [--death-proc=R] [--csv=fault_sweep.csv]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "shapes/candidates.hpp"
#include "sim/mmm_sim.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 96));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  const CandidateShape shape =
      candidateFromName(flags.str("shape", "Square-Corner"));
  if (!candidateFeasible(shape, n, ratio)) {
    std::cerr << "infeasible shape for this ratio\n";
    return 1;
  }
  const Partition q = makeCandidate(shape, n, ratio);

  SimOptions base;
  base.machine.ratio = ratio;
  base.machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  base.machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);
  base.machine.alphaSeconds = flags.f64("alpha-us", 10.0) * 1e-6;
  // More chunks -> more messages -> more drop draws per run.
  base.chunksPerPair = static_cast<int>(flags.i64("chunks", 4));
  // Ack timeout and backoff scaled to the microsecond-order transfers these
  // machines make; the RetryPolicy defaults target second-scale runs.
  base.retry.timeoutSeconds = flags.f64("timeout-us", 10.0) * 1e-6;
  base.retry.backoffSeconds = 1e-6;
  base.retry.backoffMaxSeconds = 1e-4;
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  const std::string deadName = flags.str("death-proc", "R");
  const Proc dead = deadName == "S"   ? Proc::S
                    : deadName == "P" ? Proc::P
                                      : Proc::R;

  std::cout << "E11 (robustness): exec-time inflation vs fault intensity\n"
            << candidateName(shape) << ", n=" << n << ", ratio "
            << ratio.str() << ", ack timeout "
            << formatNumber(base.retry.timeoutSeconds * 1e6) << "us\n\n";

  CsvWriter csv =
      flags.has("csv")
          ? CsvWriter(flags.str("csv", ""),
                      {"sweep", "x", "algo", "baseline_s", "faulty_s",
                       "retries", "drops", "completed"})
          : CsvWriter();

  // --- Sweep 1: drop probability ----------------------------------------
  const std::vector<double> dropRates = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};
  std::vector<std::string> header{"drop p"};
  for (Algo a : kAllAlgos) header.push_back(algoName(a));
  Table dropTable(header);
  bool allCompleted = true;
  for (double p : dropRates) {
    std::vector<std::string> row{formatNumber(p)};
    for (Algo algo : kAllAlgos) {
      const double baseline = simulateMMM(algo, q, base).execSeconds;
      SimOptions opts = base;
      opts.faults.seed = seed;
      opts.faults.dropProbability = p;
      const SimResult r = simulateMMM(algo, q, opts);
      allCompleted = allCompleted && r.completed;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3fx%s", r.execSeconds / baseline,
                    r.completed ? "" : "!");
      row.push_back(buf);
      csv.row({"drop", formatNumber(p), algoName(algo),
                  std::to_string(baseline), std::to_string(r.execSeconds),
                  std::to_string(r.network.retriesSent),
                  std::to_string(r.network.dropsInjected),
                  r.completed ? "1" : "0"});
    }
    dropTable.addRow(row);
  }
  std::cout << "exec / fault-free baseline vs message-drop probability\n";
  dropTable.print(std::cout);

  // --- Sweep 2: processor death time ------------------------------------
  const std::vector<double> deathFracs = {0.1, 0.25, 0.5, 0.75, 0.9};
  std::vector<std::string> header2{"death at"};
  for (Algo a : kAllAlgos) header2.push_back(algoName(a));
  Table deathTable(header2);
  bool allRecovered = true;
  for (double frac : deathFracs) {
    std::vector<std::string> row{formatNumber(frac) + " exec"};
    for (Algo algo : kAllAlgos) {
      const double baseline = simulateMMM(algo, q, base).execSeconds;
      SimOptions opts = base;
      opts.faults.seed = seed;
      opts.faults.death = ProcDeath{dead, baseline * frac};
      const SimResult r = simulateMMM(algo, q, opts);
      allRecovered = allRecovered && r.completed &&
                     (!r.recovery.processorDied ||
                      r.recovery.failoverPlanVerified);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3fx%s", r.execSeconds / baseline,
                    r.completed ? "" : "!");
      row.push_back(buf);
      csv.row({"death", formatNumber(frac), algoName(algo),
                  std::to_string(baseline), std::to_string(r.execSeconds),
                  std::to_string(r.network.retriesSent),
                  std::to_string(r.network.dropsInjected),
                  r.completed ? "1" : "0"});
    }
    deathTable.addRow(row);
  }
  std::cout << "\nexec / fault-free baseline vs death time of proc "
            << procName(dead) << " (failover via rebalance)\n";
  deathTable.print(std::cout);
  if (csv.enabled()) std::cout << "\nrows written to " << flags.str("csv", "") << "\n";

  const bool ok = allCompleted && allRecovered;
  std::cout << (ok ? "\nRESULT: every run completed; every death recovered "
                     "through a verified failover schedule.\n"
                   : "\nRESULT: some runs failed to complete or recover.\n");
  return ok ? 0 : 1;
}
