// E6 — extension of paper §X: how the star topology shifts the optimum.
//
// The paper notes that a star network (hub relays all spoke↔spoke traffic)
// "will affect which partition shape is the optimal" but leaves the analysis
// open. This harness quantifies it: for each ratio it compares every
// candidate's SCB/PCB communication time under fully-connected vs star
// routing, on both the analytic model and the discrete-event simulator.
// Expected shape: candidates where R and S exchange data (Traditional,
// Block) pay a relay penalty, while the Square-Corner — whose R and S share
// no rows or columns — is topology-immune, extending its winning region.
//
//   ./topology_star [--n=120] [--bandwidth-mbs=1000] [--csv=path]
#include <cstdio>
#include <iostream>

#include "model/optimal.hpp"
#include "sim/mmm_sim.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 120));
  Machine machine;
  machine.sendElementSeconds = 8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);

  CsvWriter csv;
  if (flags.has("csv"))
    csv = CsvWriter(flags.str("csv", ""),
                    {"ratio", "shape", "fullCommSeconds", "starCommSeconds",
                     "penalty"});

  std::cout << "E6 (extends paper Sec. X): star-topology relay penalty per "
               "candidate, SCB comm seconds, n="
            << n << ", hub = P\n\n";

  Table table({"ratio", "shape", "full (s)", "star (s)", "penalty"});
  bool scImmune = true;
  bool someonePays = false;
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{5, 1, 1}, Ratio{10, 1, 1},
                             Ratio{5, 2, 1}, Ratio{5, 4, 1}}) {
    machine.ratio = ratio;
    for (CandidateShape shape : kAllCandidates) {
      if (!candidateFeasible(shape, n, ratio)) continue;
      const Partition q = makeCandidate(shape, n, ratio);
      SimOptions opts;
      opts.machine = machine;
      opts.topology = Topology::kFullyConnected;
      const double full = simulateMMM(Algo::kSCB, q, opts).commSeconds;
      opts.topology = Topology::kStar;
      const double star = simulateMMM(Algo::kSCB, q, opts).commSeconds;
      const double penalty = full > 0 ? star / full : 1.0;
      char pen[32];
      std::snprintf(pen, sizeof(pen), "x%.3f", penalty);
      table.addRow({ratio.str(), candidateName(shape), formatNumber(full),
                    formatNumber(star), pen});
      csv.row({ratio.str(), candidateName(shape), formatNumber(full),
               formatNumber(star), formatNumber(penalty)});
      if (shape == CandidateShape::kSquareCorner && penalty > 1.0 + 1e-9)
        scImmune = false;
      if (penalty > 1.001) someonePays = true;
    }
  }
  table.print(std::cout);

  std::cout << "\nWinner under star vs fully-connected (SCB):\n";
  for (const Ratio& ratio : {Ratio{5, 1, 1}, Ratio{10, 1, 1}}) {
    machine.ratio = ratio;
    const auto full = selectOptimal(Algo::kSCB, n, machine,
                                    Topology::kFullyConnected);
    const auto star = selectOptimal(Algo::kSCB, n, machine, Topology::kStar);
    std::printf("  %-8s full: %-22s star: %s\n", ratio.str().c_str(),
                candidateName(full.shape), candidateName(star.shape));
  }

  const bool ok = scImmune && someonePays;
  std::cout << (ok ? "\nRESULT: Square-Corner is topology-immune while "
                     "R-S-coupled shapes pay the relay — the star favours "
                     "corner shapes, as the paper anticipated.\n"
                   : "\nRESULT: unexpected topology behaviour.\n");
  return ok ? 0 : 1;
}
