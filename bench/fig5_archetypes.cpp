// E1 — paper §VII / Fig. 5: archetype frequencies of condensed DFA outputs.
//
// The paper ran the DFA ~10,000 times per speed ratio at N = 1000 on a
// cluster and observed that every condensed shape fell into archetypes A–D.
// This harness reruns that experiment (scaled down by default; restore the
// paper's scale with --n=1000 --runs=10000) and prints the per-ratio
// archetype histogram. Reproduction criterion: the Unknown column stays 0 —
// no counterexample to Postulate 1.
//
//   ./fig5_archetypes [--n=48] [--runs=40] [--seed=1] [--threads=0]
//                     [--ratios=2:1:1,3:1:1,...] [--csv=path]
#include <iostream>
#include <sstream>
#include <vector>

#include "dfa/batch.hpp"
#include "shapes/archetype.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

std::vector<Ratio> parseRatios(const std::string& text) {
  std::vector<Ratio> out;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) out.push_back(Ratio::parse(token));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BatchOptions options;
  options.n = static_cast<int>(flags.i64("n", 48));
  options.runs = static_cast<int>(flags.i64("runs", 40));
  options.threads = static_cast<int>(flags.i64("threads", 0));
  options.seed = static_cast<std::uint64_t>(flags.i64("seed", 1));

  std::vector<Ratio> ratios;
  if (flags.has("ratios")) {
    ratios = parseRatios(flags.str("ratios", ""));
  } else {
    ratios.assign(paperRatios().begin(), paperRatios().end());
  }

  CsvWriter csv;
  if (flags.has("csv"))
    csv = CsvWriter(flags.str("csv", ""),
                    {"ratio", "A", "B", "C", "D", "Unknown", "runs"});

  std::cout << "E1 (paper Sec. VII, Fig. 5): archetypes of condensed DFA "
               "outputs\n"
            << "n=" << options.n << " runs/ratio=" << options.runs
            << "  (paper: n=1000, ~10000 runs/ratio)\n\n";

  Table table({"ratio", "A", "B", "C", "D", "Unknown", "pushes/run"});
  Stopwatch wall;
  int totalUnknown = 0;
  for (const Ratio& ratio : ratios) {
    options.ratio = ratio;
    int tally[kNumArchetypes] = {};
    std::int64_t pushes = 0;
    const BatchSummary summary = runBatch(options, [&](const BatchRun& run) {
      ++tally[static_cast<int>(
          classifyArchetype(run.result.final).archetype)];
      pushes += run.result.pushesApplied;
    });
    for (const BatchFailure& f : summary.failures)
      std::cerr << "ratio " << ratio.str() << " run " << f.runIndex
                << " failed: " << f.message << "\n";
    totalUnknown += tally[static_cast<int>(Archetype::Unknown)];
    table.addRow(ratio.str(),
                 {static_cast<double>(tally[0]), static_cast<double>(tally[1]),
                  static_cast<double>(tally[2]), static_cast<double>(tally[3]),
                  static_cast<double>(tally[4]),
                  static_cast<double>(pushes) / options.runs});
    csv.row({ratio.str(), std::to_string(tally[0]), std::to_string(tally[1]),
             std::to_string(tally[2]), std::to_string(tally[3]),
             std::to_string(tally[4]), std::to_string(options.runs)});
  }
  table.print(std::cout);
  std::cout << "\nelapsed " << wall.seconds() << " s\n";
  std::cout << (totalUnknown == 0
                    ? "RESULT: no counterexample found — Postulate 1 holds on "
                      "this sample (matches paper).\n"
                    : "RESULT: UNKNOWN shapes found — counterexample "
                      "candidates, inspect!\n");
  return totalUnknown == 0 ? 0 : 1;
}
