// E2 — paper Fig. 7: snapshots of one DFA run condensing a random start.
//
// The paper shows a 2:1:1 run at N = 1000 with R pushed {Down, Right} and S
// pushed {Down, Left}, rendered at 1/100 granularity after ~1, 500, 1000,
// 1500 and 2100 steps. This harness reruns exactly that schedule (default
// n = 100 for speed; --n=1000 restores the paper's size) and prints the
// partitions at evenly spaced push counts. Reproduction criterion: scattered
// noise condenses into compact R and S regions in the scheduled corners, and
// the final state classifies as one of archetypes A–D.
//
//   ./fig7_trace [--n=100] [--ratio=2:1:1] [--seed=2] [--snapshots=5]
#include <cstdio>
#include <iostream>

#include "dfa/dfa.hpp"
#include "grid/builder.hpp"
#include "shapes/archetype.hpp"
#include "support/flags.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 100));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "2:1:1"));
  const auto snapshots = flags.i64("snapshots", 5);
  Rng rng(static_cast<std::uint64_t>(flags.i64("seed", 2)));

  // The paper's example schedule: R -> {Down, Right}, S -> {Down, Left}.
  Schedule schedule;
  schedule.slots = {{Proc::R, Direction::Down},
                    {Proc::S, Direction::Down},
                    {Proc::R, Direction::Right},
                    {Proc::S, Direction::Left}};

  std::cout << "E2 (paper Fig. 7): example DFA run, ratio " << ratio.str()
            << ", n=" << n << ", schedule " << schedule.str() << "\n";

  // Dry run to learn the total push count so snapshots space out evenly.
  Rng probeRng = rng;
  DfaOptions probeOpts;
  const auto probe =
      runDfa(randomPartition(n, ratio, probeRng), schedule, probeOpts);

  DfaOptions opts;
  opts.traceEvery = std::max<std::int64_t>(
      1, probe.pushesApplied / std::max<std::int64_t>(1, snapshots - 1));
  opts.traceCells = 30;
  const auto result = runDfa(randomPartition(n, ratio, rng), schedule, opts);

  for (const TraceSnapshot& snap : result.trace) {
    std::printf("\n-- after %lld pushes, VoC %lld --\n",
                static_cast<long long>(snap.pushesApplied),
                static_cast<long long>(snap.voc));
    std::cout << snap.art;
  }

  const auto info = classifyArchetype(result.final);
  std::printf("\nstop=%s  pushes=%lld  VoC %lld -> %lld\n",
              dfaStopName(result.stop),
              static_cast<long long>(result.pushesApplied),
              static_cast<long long>(result.vocStart),
              static_cast<long long>(result.vocEnd));
  std::cout << "final classification: " << info.str() << "\n";
  std::cout << (info.archetype != Archetype::Unknown
                    ? "RESULT: condensed to a recognizable archetype "
                      "(matches paper Fig. 7 behaviour).\n"
                    : "RESULT: unknown shape — investigate.\n");
  return info.archetype != Archetype::Unknown ? 0 : 1;
}
