// E5 + E19 — the candidate × algorithm optimality map, extended across
// candidate families with communication lower-bound optimality gaps.
//
// Part 1 (E5, extension of paper §X): the paper defers the complete analysis
// of its six candidate shapes across the five MMM algorithms to future work;
// this harness performs it with the Eq. 2–9 models. For every paper ratio
// and every algorithm it ranks all feasible candidates and prints the winner
// plus its margin over the Traditional-Rectangle baseline (the shape all
// prior work assumed). The trailing columns report the best VoC over the
// selected candidate families (src/family) and its distance from the
// memory-independent communication lower bound (src/bounds) in percent.
//
// Part 2 (E19): the Fig. 13 ratio grid (P_r ∈ [1, pmax] × R_r ∈ [1, rmax],
// S_r = 1) scanned at integer granularity n, comparing the best canonical
// VoC against the best layered/hierarchical VoC per cell. The paper's
// six-candidate theorem is continuous; at finite n the canonical
// constructions round their sub-rectangles, and the extended families —
// which place exact element counts — strictly undercut them on a band of
// cells. The scan counts those strict wins and the lower-bound gap
// distribution, and the self-check requires at least one strict win when an
// extended family is selected (the E19 claim).
//
// The machine is parameterized by --comm-fraction: T_send is chosen so that
// total communication costs ≈ that fraction of the balanced computation
// time (default 0.3 — a realistic cluster where communication matters but
// does not dominate).
//
//   ./candidates_matrix [--n=90] [--comm-fraction=0.3] [--flops=1e9]
//                       [--families=all] [--pmax=20] [--rmax=10]
//                       [--csv=path] [--json=path]
//
// --families selects the candidate families for the gap columns and the
// grid scan: "canonical", "all", or a comma list ("layered,hierarchical").
// --json writes the Part 2 grid as a machine-diffable document (%.17g
// doubles, one cell object per line) — the E19 artifact CI uploads as
// BENCH_families.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <stdexcept>

#include "bounds/bounds.hpp"
#include "family/rank.hpp"
#include "model/closed_form.hpp"
#include "model/optimal.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

// T_send so that (typical VoC ≈ 1.3·n²) costs commFraction of the balanced
// computation n³/T.
void tuneMachine(Machine& machine, const Ratio& ratio, int n,
                 double commFraction) {
  machine.ratio = ratio;
  machine.sendElementSeconds = commFraction * static_cast<double>(n) *
                               machine.baseFlopSeconds / ratio.total() / 1.3;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 90));
  const double commFraction = flags.f64("comm-fraction", 0.3);
  const int pmax = static_cast<int>(flags.i64("pmax", 20));
  const int rmax = static_cast<int>(flags.i64("rmax", 10));
  const FamilySet families = FamilySet::parse(flags.str("families", "all"));
  Machine machine;
  machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);

  CsvWriter csv;
  if (flags.has("csv"))
    csv = CsvWriter(flags.str("csv", ""),
                    {"ratio", "algo", "winner", "winnerExecSeconds",
                     "traditionalExecSeconds", "speedupVsTraditional",
                     "familyBest", "familyVoC", "lowerBoundGapPct"});

  std::cout << "E5 (extends paper Sec. X): optimal candidate per ratio x "
               "algorithm, n=" << n << ", fully-connected, comm/comp = "
            << commFraction << ", families=" << families.str() << "\n\n";

  Table table({"ratio", "SCB", "PCB", "SCO", "PCO", "PIO", "gap%"});
  int scOverlapWins = 0, scOverlapCells = 0;
  int scbAgree = 0, scbCells = 0;
  bool gapsOk = true;
  for (const Ratio& ratio : paperRatios()) {
    tuneMachine(machine, ratio, n, commFraction);

    // The family-wide VoC winner at this ratio and its lower-bound gap —
    // shared by every algorithm column (VoC depends only on the partition).
    const auto famRanked =
        rankFamilyCandidates(Algo::kSCB, n, machine, families);
    const FamilyRanked* famBest = nullptr;
    for (const auto& f : famRanked) {
      if (f.gapPct < 0) gapsOk = false;
      if (!famBest || f.voc < famBest->voc) famBest = &f;
    }

    std::vector<std::string> cells{ratio.str()};
    for (Algo algo : kAllAlgos) {
      const auto ranked = rankCandidates(algo, n, machine);
      double traditional = 0;
      for (const auto& r : ranked)
        if (r.shape == CandidateShape::kTraditionalRectangle)
          traditional = r.model.execSeconds;
      const auto& best = ranked.front();
      const double speedup =
          traditional > 0 ? traditional / best.model.execSeconds : 1.0;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s (x%.2f)",
                    candidateName(best.shape), speedup);
      cells.push_back(cell);
      csv.row({ratio.str(), algoName(algo), candidateName(best.shape),
               formatNumber(best.model.execSeconds),
               formatNumber(traditional), formatNumber(speedup),
               famBest ? famBest->name : "-",
               famBest ? formatNumber(static_cast<double>(famBest->voc)) : "0",
               famBest ? formatNumber(famBest->gapPct) : "0"});

      const bool pastCrossover =
          candidateFeasible(CandidateShape::kSquareCorner, n, ratio) &&
          ratio.p > squareCornerCrossover(ratio.r, ratio.s);
      if ((algo == Algo::kSCB || algo == Algo::kPCB || algo == Algo::kSCO) &&
          pastCrossover) {
        ++scOverlapCells;
        if (best.shape == CandidateShape::kSquareCorner) ++scOverlapWins;
      }
      if (algo == Algo::kSCB) {
        // The model winner must agree with the closed-form VoC ranking.
        ++scbCells;
        CandidateShape predicted = CandidateShape::kTraditionalRectangle;
        double bestVoc = std::numeric_limits<double>::infinity();
        for (CandidateShape s : kAllCandidates) {
          if (!candidateFeasible(s, n, ratio)) continue;
          const double voc = closedFormVoC(s, ratio);
          if (voc < bestVoc) {
            bestVoc = voc;
            predicted = s;
          }
        }
        // Closed forms tie Block and Traditional exactly; accept either.
        const bool agree =
            best.shape == predicted ||
            std::fabs(closedFormVoC(best.shape, ratio) - bestVoc) < 1e-9;
        if (agree) ++scbAgree;
      }
    }
    char gapCell[32];
    std::snprintf(gapCell, sizeof(gapCell), "%.2f",
                  famBest ? famBest->gapPct : 0.0);
    cells.push_back(gapCell);
    table.addRow(cells);
  }
  table.print(std::cout);

  std::printf("\nSquare-Corner wins %d/%d cells past the Fig. 13 crossover "
              "(SCB/PCB/SCO at ratios with P_r > crossover)\n",
              scOverlapWins, scOverlapCells);
  std::printf("SCB model winner agrees with closed-form VoC ranking in "
              "%d/%d ratios (crossover at P_r = %.1f for R_r = S_r = 1)\n",
              scbAgree, scbCells, squareCornerCrossover(1, 1));

  // ---- Part 2 (E19): family-vs-canonical scan over the Fig. 13 grid. ----
  std::ofstream json;
  if (flags.has("json")) {
    json.open(flags.str("json", ""), std::ios::trunc);
    if (!json)
      throw std::runtime_error("cannot open --json=" + flags.str("json", ""));
    json << "{\n  \"experiment\": \"candidates_matrix\",\n  \"families\": \""
         << families.str() << "\",\n  \"n\": " << n
         << ",\n  \"pmax\": " << pmax << ",\n  \"rmax\": " << rmax
         << ",\n  \"cells\": [\n";
  }
  bool firstJsonCell = true;

  std::cout << "\nE19: best family VoC vs best canonical VoC over the "
               "Fig. 13 grid, n=" << n << "\n"
            << "cells: '=' tie, 'c' canonical strictly best, 'L'/'H' "
               "layered/hierarchical strict win\n\n";

  int gridCells = 0, strictWins = 0;
  double gapSum = 0.0, gapMax = 0.0;
  std::printf("      R_r:");
  for (int r = 1; r <= rmax; ++r) std::printf("%3d", r);
  std::printf("\n");
  for (int p = pmax; p >= 1; --p) {
    std::printf("P_r %3d | ", p);
    for (int r = 1; r <= rmax; ++r) {
      if (p < r) {  // ratio invalid (P must be fastest)
        std::printf("  .");
        continue;
      }
      const Ratio ratio{static_cast<double>(p), static_cast<double>(r), 1};
      tuneMachine(machine, ratio, n, commFraction);
      const auto ranked = rankFamilyCandidates(Algo::kSCB, n, machine,
                                               families);
      const FamilyRanked* canon = nullptr;
      const FamilyRanked* ext = nullptr;
      const FamilyRanked* overall = nullptr;
      for (const auto& f : ranked) {
        if (f.gapPct < 0) gapsOk = false;
        if (f.family == FamilyId::kCanonical) {
          if (!canon || f.voc < canon->voc) canon = &f;
        } else if (!ext || f.voc < ext->voc) {
          ext = &f;
        }
        if (!overall || f.voc < overall->voc) overall = &f;
      }
      ++gridCells;
      const bool strictWin = canon && ext && ext->voc < canon->voc;
      if (strictWin) ++strictWins;
      if (overall) {
        gapSum += overall->gapPct;
        gapMax = std::max(gapMax, overall->gapPct);
      }
      char mark = '=';
      if (!ext)
        mark = 'c';
      else if (strictWin)
        mark = ext->family == FamilyId::kLayered ? 'L' : 'H';
      else if (canon && canon->voc < ext->voc)
        mark = 'c';
      std::printf("  %c", mark);

      if (json.is_open() && overall) {
        char cell[512];
        std::snprintf(
            cell, sizeof(cell),
            "    {\"pr\": %d, \"rr\": %d, \"canonicalVoc\": %lld, "
            "\"familyVoc\": %lld, \"winnerFamily\": \"%s\", "
            "\"candidate\": \"%s\", \"gapPct\": %.17g, \"strictWin\": %s}",
            p, r, canon ? static_cast<long long>(canon->voc) : -1LL,
            ext ? static_cast<long long>(ext->voc) : -1LL,
            familyName(overall->family), overall->name.c_str(),
            overall->gapPct, strictWin ? "true" : "false");
        json << (firstJsonCell ? "" : ",\n") << cell;
        firstJsonCell = false;
      }
    }
    std::printf("\n");
  }

  const double gapMean = gridCells > 0 ? gapSum / gridCells : 0.0;
  if (json.is_open()) {
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  "\n  ],\n  \"cellsTotal\": %d,\n  \"strictWins\": %d,\n"
                  "  \"gapMeanPct\": %.17g,\n  \"gapMaxPct\": %.17g\n}\n",
                  gridCells, strictWins, gapMean, gapMax);
    json << tail;
    if (!json) throw std::runtime_error("write to --json file failed");
    std::cout << "\njson grid written to " << flags.str("json", "") << "\n";
  }

  std::printf("\nFAMILY_STRICT_WIN: %d of %d grid cells where an extended "
              "candidate strictly beats all six canonical shapes\n",
              strictWins, gridCells);
  std::printf("%s: lower-bound gaps over the grid — mean %.2f%%, max %.2f%%"
              " (all >= 0: %s)\n",
              gapsOk ? "GAP_OK" : "GAP_VIOLATION", gapMean, gapMax,
              gapsOk ? "yes" : "NO");

  std::cout << "\nNote: the paper's \"Square-Corner optimal at ALL ratios "
               "under bulk overlap\" is its quoted TWO-processor result. With "
               "three processors R and S never own a full pivot line, so "
               "their remainder pins SCO/PCO execution and the winner follows "
               "the VoC ranking — overlap merely subsidises the Square-Corner "
               "near the crossover. See EXPERIMENTS.md (E5, E19).\n";
  const bool e5Ok = scOverlapCells > 0 && scOverlapWins == scOverlapCells &&
                    scbAgree == scbCells;
  // The E19 claim only binds when an extended family is in the selection:
  // at finite granularity exact-count placement must beat the rounded
  // canonical constructions somewhere on the grid.
  const bool e19Ok = gapsOk && (!families.extended() || strictWins > 0);
  const bool ok = e5Ok && e19Ok;
  std::cout << (ok ? "RESULT: winners track the closed-form VoC ranking; the "
                     "Square-Corner takes over past the Fig. 13 crossover; "
                     "extended families strictly beat the canonical six on "
                     "part of the grid.\n"
                   : "RESULT: pattern differs — inspect table.\n");
  return ok ? 0 : 1;
}
