// E5 — extension of paper §X: the full candidate × algorithm optimality map.
//
// The paper defers the complete analysis of its six candidate shapes across
// the five MMM algorithms to future work; this harness performs it with the
// Eq. 2–9 models. For every paper ratio and every algorithm it ranks all
// feasible candidates and prints the winner plus its margin over the
// Traditional-Rectangle baseline (the shape all prior work assumed).
//
// The machine is parameterized by --comm-fraction: T_send is chosen so that
// total communication costs ≈ that fraction of the balanced computation
// time (default 0.3 — a realistic cluster where communication matters but
// does not dominate). Reproduction criteria, carried over from the paper's
// two-processor results (§II):
//   * bulk overlap (SCO/PCO): the Square-Corner wins at every ratio where it
//     is feasible — it is the only shape whose fast processor can hide the
//     entire communication under local work;
//   * barrier algorithms (SCB): the model's winner agrees with the
//     closed-form VoC ranking, so the Square-Corner takes over exactly
//     beyond the Fig. 13 crossover.
//
//   ./candidates_matrix [--n=120] [--comm-fraction=0.3] [--flops=1e9]
//                       [--csv=path]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "model/closed_form.hpp"
#include "model/optimal.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 120));
  const double commFraction = flags.f64("comm-fraction", 0.3);
  Machine machine;
  machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);

  CsvWriter csv;
  if (flags.has("csv"))
    csv = CsvWriter(flags.str("csv", ""),
                    {"ratio", "algo", "winner", "winnerExecSeconds",
                     "traditionalExecSeconds", "speedupVsTraditional"});

  std::cout << "E5 (extends paper Sec. X): optimal candidate per ratio x "
               "algorithm, n=" << n << ", fully-connected, comm/comp = "
            << commFraction << "\n\n";

  Table table({"ratio", "SCB", "PCB", "SCO", "PCO", "PIO"});
  int scOverlapWins = 0, scOverlapCells = 0;
  int scbAgree = 0, scbCells = 0;
  for (const Ratio& ratio : paperRatios()) {
    machine.ratio = ratio;
    // T_send so that (typical VoC ≈ 1.3·n²) costs commFraction of the
    // balanced computation n³/T.
    machine.sendElementSeconds =
        commFraction * static_cast<double>(n) * machine.baseFlopSeconds /
        ratio.total() / 1.3;

    std::vector<std::string> cells{ratio.str()};
    for (Algo algo : kAllAlgos) {
      const auto ranked = rankCandidates(algo, n, machine);
      double traditional = 0;
      for (const auto& r : ranked)
        if (r.shape == CandidateShape::kTraditionalRectangle)
          traditional = r.model.execSeconds;
      const auto& best = ranked.front();
      const double speedup =
          traditional > 0 ? traditional / best.model.execSeconds : 1.0;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s (x%.2f)",
                    candidateName(best.shape), speedup);
      cells.push_back(cell);
      csv.row({ratio.str(), algoName(algo), candidateName(best.shape),
               formatNumber(best.model.execSeconds),
               formatNumber(traditional), formatNumber(speedup)});

      const bool pastCrossover =
          candidateFeasible(CandidateShape::kSquareCorner, n, ratio) &&
          ratio.p > squareCornerCrossover(ratio.r, ratio.s);
      if ((algo == Algo::kSCB || algo == Algo::kPCB || algo == Algo::kSCO) &&
          pastCrossover) {
        ++scOverlapCells;
        if (best.shape == CandidateShape::kSquareCorner) ++scOverlapWins;
      }
      if (algo == Algo::kSCB) {
        // The model winner must agree with the closed-form VoC ranking.
        ++scbCells;
        CandidateShape predicted = CandidateShape::kTraditionalRectangle;
        double bestVoc = std::numeric_limits<double>::infinity();
        for (CandidateShape s : kAllCandidates) {
          if (!candidateFeasible(s, n, ratio)) continue;
          const double voc = closedFormVoC(s, ratio);
          if (voc < bestVoc) {
            bestVoc = voc;
            predicted = s;
          }
        }
        // Closed forms tie Block and Traditional exactly; accept either.
        const bool agree =
            best.shape == predicted ||
            std::fabs(closedFormVoC(best.shape, ratio) - bestVoc) < 1e-9;
        if (agree) ++scbAgree;
      }
    }
    table.addRow(cells);
  }
  table.print(std::cout);

  std::printf("\nSquare-Corner wins %d/%d cells past the Fig. 13 crossover "
              "(SCB/PCB/SCO at ratios with P_r > crossover)\n",
              scOverlapWins, scOverlapCells);
  std::printf("SCB model winner agrees with closed-form VoC ranking in "
              "%d/%d ratios (crossover at P_r = %.1f for R_r = S_r = 1)\n",
              scbAgree, scbCells, squareCornerCrossover(1, 1));
  std::cout << "\nNote: the paper's \"Square-Corner optimal at ALL ratios "
               "under bulk overlap\" is its quoted TWO-processor result. With "
               "three processors R and S never own a full pivot line, so "
               "their remainder pins SCO/PCO execution and the winner follows "
               "the VoC ranking — overlap merely subsidises the Square-Corner "
               "near the crossover. See EXPERIMENTS.md (E5).\n";
  const bool ok = scOverlapCells > 0 && scOverlapWins == scOverlapCells &&
                  scbAgree == scbCells;
  std::cout << (ok ? "RESULT: winners track the closed-form VoC ranking; the "
                     "Square-Corner takes over past the Fig. 13 crossover.\n"
                   : "RESULT: pattern differs — inspect table.\n");
  return ok ? 0 : 1;
}
