// E12 — serving-layer load generator: the plan oracle under concurrent,
// skewed traffic.
//
// The ROADMAP's north star is a system that answers "which shape should
// these processors use?" at production request rates. This harness drives
// src/serve's Oracle from many threads with a Zipf-skewed key popularity
// (a hot set dominates, a long tail forces cold solves and evictions),
// mixing tier-A (ranked candidates) and tier-B (DFA-search-backed)
// requests, then reports QPS, cache hit rate and per-tier latency
// percentiles. A calibration pass measures one uncached tier-B solve at
// --cold-n so the report can state the headline ratio: how much faster a
// hot-key cache hit is than recomputing the search-backed answer.
//
// Self-check (RESULT line): every request answered, the hot set actually
// hit, and hot-key hits at least 100x faster than the tier-B cold solve.
// Machine-readable output: --json=BENCH_serve.json (written by default).
//
//   ./serve_loadgen [--threads=8] [--requests=12000] [--keys=48] [--skew=1.0]
//                   [--n=120] [--runs=3] [--tierb-every=4] [--capacity=4096]
//                   [--cold-n=1000] [--cold-runs=1] [--seed=1]
//                   [--bandwidth-mbs=1000] [--flops=1e9]
//                   [--json=BENCH_serve.json]
#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/oracle.hpp"
#include "support/flags.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

/// Builds the deterministic key universe: ratios cycle through the paper's
/// eleven, n through three sizes, algorithms through all five; every
/// `tierbEvery`-th key asks for the search-backed tier.
std::vector<PlanRequest> buildUniverse(int keys, int baseN, int runs,
                                       int tierbEvery) {
  const auto& ratios = paperRatios();
  const std::array<int, 3> ns = {baseN / 2, (3 * baseN) / 4, baseN};
  std::vector<PlanRequest> universe;
  universe.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    PlanRequest req;
    req.ratio = ratios[static_cast<std::size_t>(i) % ratios.size()];
    req.n = std::max(12, ns[static_cast<std::size_t>(i / 11) % ns.size()]);
    req.algo = kAllAlgos[static_cast<std::size_t>(i) % kAllAlgos.size()];
    if (tierbEvery > 0 && i % tierbEvery == tierbEvery - 1) {
      req.tier = PlanTier::kSearch;
      req.searchRuns = runs;
    }
    universe.push_back(req);
  }
  return universe;
}

/// Zipf CDF over ranks 1..K with exponent `skew`: key 0 is the hottest.
std::vector<double> zipfCdf(std::size_t keys, double skew) {
  std::vector<double> cdf(keys);
  double total = 0.0;
  for (std::size_t k = 0; k < keys; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::string jsonHistogram(const LatencyHistogram::Snapshot& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"p50_s\": %.9g, \"p95_s\": %.9g, "
                "\"p99_s\": %.9g}",
                static_cast<unsigned long long>(h.count), h.p50, h.p95,
                h.p99);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int threads =
      std::max(1, static_cast<int>(flags.i64("threads", 8)));
  const std::int64_t requests = flags.i64("requests", 12000);
  const int keys = std::max(1, static_cast<int>(flags.i64("keys", 48)));
  const double skew = flags.f64("skew", 1.0);
  const int baseN = static_cast<int>(flags.i64("n", 120));
  const int runs = std::max(1, static_cast<int>(flags.i64("runs", 3)));
  const int tierbEvery = static_cast<int>(flags.i64("tierb-every", 4));
  const int coldN = static_cast<int>(flags.i64("cold-n", 1000));
  const int coldRuns = std::max(1, static_cast<int>(flags.i64("cold-runs", 1)));
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 1));
  const std::string jsonPath = flags.str("json", "BENCH_serve.json");

  OracleOptions options;
  options.machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  options.machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);
  options.cacheCapacity =
      static_cast<std::size_t>(flags.i64("capacity", 4096));
  Oracle oracle(options);

  const std::vector<PlanRequest> universe =
      buildUniverse(keys, baseN, runs, tierbEvery);
  const std::vector<double> cdf = zipfCdf(universe.size(), skew);

  std::cout << "E12 (serving): " << requests << " requests, " << threads
            << " threads, " << keys << " keys (Zipf skew " << skew
            << "), tier-B budget " << runs << " walks\n\n";

  // --- Load phase ---------------------------------------------------------
  std::atomic<std::int64_t> answered{0};
  std::atomic<std::int64_t> failed{0};
  LatencyHistogram endToEnd;
  Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const Rng master(seed);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      Rng rng = master.split(static_cast<std::uint64_t>(t));
      const std::int64_t share =
          requests / threads + (t < requests % threads ? 1 : 0);
      for (std::int64_t i = 0; i < share; ++i) {
        const double u = rng.real();
        const std::size_t idx = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        try {
          const PlanResponse r =
              oracle.plan(universe[std::min(idx, universe.size() - 1)]);
          endToEnd.record(r.latencySeconds);
          answered.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const double wallSeconds = wall.seconds();
  const double qps = static_cast<double>(answered.load()) / wallSeconds;

  // --- Calibration: one uncached tier-B solve -----------------------------
  PlanRequest cold;
  cold.n = coldN;
  cold.ratio = Ratio{5, 2, 1};
  cold.algo = Algo::kSCB;
  cold.tier = PlanTier::kSearch;
  cold.searchRuns = coldRuns;
  cold.searchSeed = seed;
  const PlanAnswer coldAnswer = oracle.solveUncached(cold);

  // --- Report -------------------------------------------------------------
  const OracleStats stats = oracle.stats();
  const double hitRate = answered.load() > 0
                             ? static_cast<double>(stats.cache.hits) /
                                   static_cast<double>(answered.load())
                             : 0.0;
  const double hotP50 = stats.hitLatency.p50;
  const double speedup =
      hotP50 > 0.0 ? coldAnswer.solveSeconds / hotP50 : 0.0;

  Table table({"metric", "value"});
  table.addRow("answered", {static_cast<double>(answered.load())});
  table.addRow("QPS", {qps});
  table.addRow("hit rate", {hitRate});
  table.addRow("hits", {static_cast<double>(stats.cache.hits)});
  table.addRow("misses", {static_cast<double>(stats.cache.misses)});
  table.addRow("coalesced", {static_cast<double>(stats.cache.coalesced)});
  table.addRow("evictions", {static_cast<double>(stats.cache.evictions)});
  table.addRow("hit p50 (us)", {stats.hitLatency.p50 * 1e6});
  table.addRow("hit p99 (us)", {stats.hitLatency.p99 * 1e6});
  table.addRow("tier-A solve p50 (us)", {stats.tierASolves.p50 * 1e6});
  table.addRow("tier-B solve p50 (us)", {stats.tierBSolves.p50 * 1e6});
  table.addRow("cold tier-B solve (s)", {coldAnswer.solveSeconds});
  table.addRow("hot-hit speedup vs cold B", {speedup});
  table.print(std::cout);

  // --- BENCH_serve.json ---------------------------------------------------
  {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    char head[512];
    std::snprintf(head, sizeof(head),
                  "{\n"
                  "  \"bench\": \"serve_loadgen\",\n"
                  "  \"threads\": %d,\n"
                  "  \"requests\": %lld,\n"
                  "  \"answered\": %lld,\n"
                  "  \"failed\": %lld,\n"
                  "  \"keys\": %d,\n"
                  "  \"skew\": %.6g,\n"
                  "  \"wall_seconds\": %.9g,\n"
                  "  \"qps\": %.9g,\n",
                  threads, static_cast<long long>(requests),
                  static_cast<long long>(answered.load()),
                  static_cast<long long>(failed.load()), keys, skew,
                  wallSeconds, qps);
    char counters[512];
    std::snprintf(
        counters, sizeof(counters),
        "  \"hits\": %llu,\n  \"misses\": %llu,\n  \"coalesced\": %llu,\n"
        "  \"evictions\": %llu,\n  \"hit_rate\": %.9g,\n",
        static_cast<unsigned long long>(stats.cache.hits),
        static_cast<unsigned long long>(stats.cache.misses),
        static_cast<unsigned long long>(stats.cache.coalesced),
        static_cast<unsigned long long>(stats.cache.evictions), hitRate);
    char tail[512];
    std::snprintf(tail, sizeof(tail),
                  "  \"cold\": {\"n\": %d, \"runs\": %d, "
                  "\"solve_seconds\": %.9g},\n"
                  "  \"hot_hit_p50_seconds\": %.9g,\n"
                  "  \"speedup_hot_vs_cold_b\": %.9g\n"
                  "}\n",
                  coldN, coldRuns, coldAnswer.solveSeconds, hotP50, speedup);
    out << head << counters
        << "  \"end_to_end\": " << jsonHistogram(endToEnd.snapshot()) << ",\n"
        << "  \"hit_latency\": " << jsonHistogram(stats.hitLatency) << ",\n"
        << "  \"tier_a_solve\": " << jsonHistogram(stats.tierASolves) << ",\n"
        << "  \"tier_b_solve\": " << jsonHistogram(stats.tierBSolves) << ",\n"
        << tail;
    std::cout << "\nreport written to " << jsonPath << "\n";
  }

  const bool ok = failed.load() == 0 && answered.load() == requests &&
                  stats.cache.hits > 0 && speedup >= 100.0;
  std::cout << (ok ? "\nRESULT: served every request; hot-key hits >= 100x "
                     "faster than the tier-B cold path.\n"
                   : "\nRESULT: serving targets missed.\n");
  return ok ? 0 : 1;
}
