// E3 — paper Fig. 13: SCB cost surface, Square-Corner vs Block-Rectangle.
//
// The paper plots the closed-form SCB communication cost of both shapes over
// R_r ∈ [1, 10] × P_r ∈ [1, 20] (S_r = 1) and shows the Square-Corner
// undercutting the Block-Rectangle at high heterogeneity, beyond its
// feasibility wall P_r = 2√R_r. This harness prints the same surface as a
// winner map plus the crossover front, and cross-checks each closed form
// against a grid-built partition. Reproduction criteria: (a) SC is
// infeasible left of the wall, (b) SC wins in the high-P_r / low-R_r corner,
// (c) crossover P_r grows with R_r.
//
//   ./fig13_surface [--n=200] [--pmax=20] [--rmax=10] [--csv=path]
//                   [--json=path]
//
// --json writes the same grid as a machine-diffable document (sorted keys,
// %.17g doubles, one cell object per line) so the atlas builder's measured
// surface (`pushpart atlas build`) can be differenced against these closed
// forms point by point.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "model/closed_form.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 200));
  const int pmax = static_cast<int>(flags.i64("pmax", 20));
  const int rmax = static_cast<int>(flags.i64("rmax", 10));

  CsvWriter csv;
  if (flags.has("csv"))
    csv = CsvWriter(flags.str("csv", ""),
                    {"Pr", "Rr", "squareCornerVoC", "blockRectangleVoC"});

  std::ofstream json;
  if (flags.has("json")) {
    json.open(flags.str("json", ""), std::ios::trunc);
    if (!json)
      throw std::runtime_error("cannot open --json=" + flags.str("json", ""));
    json << "{\n  \"experiment\": \"fig13_surface\",\n  \"pmax\": " << pmax
         << ",\n  \"rmax\": " << rmax << ",\n  \"cells\": [\n";
  }
  bool firstJsonCell = true;

  std::cout << "E3 (paper Fig. 13): SCB cost, Square-Corner (SC) vs "
               "Block-Rectangle (BR), S_r = 1\n"
            << "cells: '#' SC infeasible (P_r <= 2*sqrt(R_r)), 'S' SC wins, "
               "'B' BR wins\n\n";

  std::printf("      R_r:");
  for (int r = 1; r <= rmax; ++r) std::printf("%3d", r);
  std::printf("\n");
  for (int p = pmax; p >= 1; --p) {
    std::printf("P_r %3d | ", p);
    for (int r = 1; r <= rmax; ++r) {
      if (p < r) {  // ratio invalid (P must be fastest)
        std::printf("  .");
        continue;
      }
      const Ratio ratio{static_cast<double>(p), static_cast<double>(r), 1};
      const double sc = closedFormVoC(CandidateShape::kSquareCorner, ratio);
      const double br = closedFormVoC(CandidateShape::kBlockRectangle, ratio);
      csv.row({static_cast<double>(p), static_cast<double>(r), sc, br});
      if (json.is_open()) {
        char cell[256];
        // Infinity is not JSON: the SC-infeasible wall travels as null.
        char scText[40];
        if (std::isinf(sc))
          std::snprintf(scText, sizeof(scText), "null");
        else
          std::snprintf(scText, sizeof(scText), "%.17g", sc);
        std::snprintf(cell, sizeof(cell),
                      "    {\"pr\": %d, \"rr\": %d, \"sc\": %s, "
                      "\"br\": %.17g, \"winner\": \"%s\"}",
                      p, r, scText, br,
                      std::isinf(sc) ? "infeasible"
                                     : (sc < br ? "Square-Corner"
                                                : "Block-Rectangle"));
        json << (firstJsonCell ? "" : ",\n") << cell;
        firstJsonCell = false;
      }
      if (std::isinf(sc)) {
        std::printf("  #");
      } else {
        std::printf("  %c", sc < br ? 'S' : 'B');
      }
    }
    std::printf("\n");
  }

  if (json.is_open()) {
    json << "\n  ],\n  \"crossover\": [\n";
    for (int r = 1; r <= rmax; ++r) {
      char line[128];
      std::snprintf(line, sizeof(line),
                    "    {\"rr\": %d, \"pr\": %.17g, \"wall\": %.17g}%s\n", r,
                    squareCornerCrossover(r, 1),
                    2.0 * std::sqrt(static_cast<double>(r)),
                    r < rmax ? "," : "");
      json << line;
    }
    json << "  ]\n}\n";
    if (!json)
      throw std::runtime_error("write to --json file failed");
    std::cout << "json surface written to " << flags.str("json", "") << "\n";
  }

  std::cout << "\nCrossover front (smallest P_r where SC beats BR):\n";
  std::printf("%4s  %12s  %14s\n", "R_r", "crossover P_r", "feasibility wall");
  bool shapeHolds = true;
  double prev = 0.0;
  for (int r = 1; r <= rmax; ++r) {
    const double cross = squareCornerCrossover(r, 1);
    const double wall = 2.0 * std::sqrt(static_cast<double>(r));
    std::printf("%4d  %12.3f  %14.3f\n", r, cross, wall);
    if (cross < prev || cross < wall) shapeHolds = false;
    prev = cross;
  }

  // Cross-check closed forms against grid-measured VoC at one ratio.
  const Ratio probe{10, 2, 1};
  const double scCf = closedFormVoC(CandidateShape::kSquareCorner, probe);
  const double brCf = closedFormVoC(CandidateShape::kBlockRectangle, probe);
  const auto scQ = makeCandidate(CandidateShape::kSquareCorner, n, probe);
  const auto brQ = makeCandidate(CandidateShape::kBlockRectangle, n, probe);
  const double scMeas =
      static_cast<double>(scQ.volumeOfCommunication()) / (1.0 * n * n);
  const double brMeas =
      static_cast<double>(brQ.volumeOfCommunication()) / (1.0 * n * n);
  std::printf(
      "\ncross-check at 10:2:1, n=%d: SC closed-form %.4f vs grid %.4f; "
      "BR closed-form %.4f vs grid %.4f\n",
      n, scCf, scMeas, brCf, brMeas);

  const bool ok = shapeHolds && std::fabs(scCf - scMeas) < 0.05 &&
                  std::fabs(brCf - brMeas) < 0.05;
  std::cout << (ok ? "RESULT: surface shape matches paper Fig. 13 — SC wins "
                     "at high heterogeneity, crossover rises with R_r.\n"
                   : "RESULT: MISMATCH with expected Fig. 13 shape.\n");
  return ok ? 0 : 1;
}
