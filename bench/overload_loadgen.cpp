// E14 — overload resilience: the plan oracle at 4x saturation with
// deadlines, admission control, and warm-restart snapshots.
//
// E12 (serve_loadgen) shows the happy path: a cache-friendly mix served at
// high QPS. This harness asks the opposite question — what happens when the
// offered load is a multiple of what the solver can sustain? The answer the
// serving layer promises (DESIGN.md §12) is "degrade, don't collapse":
//
//   * overload phase: `multiplier` x `max-concurrency` closed-loop client
//     threads issue cache-busting tier-B requests under a per-request
//     deadline. Admission bounds the in-flight solves and the waiting room;
//     everything else is shed immediately. Admitted requests finish near
//     their deadline — cancelled cooperatively mid-search and served
//     truncated or closed-form-only, each marked as such.
//   * warm-restart phase: a hot-key workload populates a second oracle, its
//     cache is snapshotted, and a cold oracle restored from the snapshot
//     replays the same trace. The restored hit rate must reach >= 90% of
//     the pre-restart hit rate within the first 1k requests.
//
// Self-check (RESULT line): shed rate < 100%, goodput > 0, p99 of accepted
// requests <= 2x the deadline, zero answers served past their deadline
// without a degrade/truncation mark, and the warm-restart hit-rate bar.
// Machine-readable output: --json=BENCH_overload.json (written by default).
//
//   ./overload_loadgen [--deadline-ms=50] [--max-concurrency=2]
//                      [--max-queue=4] [--multiplier=4]
//                      [--requests-per-thread=8] [--n=240] [--runs=64]
//                      [--hot-every=4] [--warm-keys=32]
//                      [--warm-requests=1000] [--seed=1]
//                      [--snapshot=overload_cache.snap]
//                      [--json=BENCH_overload.json]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/oracle.hpp"
#include "serve/snapshot.hpp"
#include "support/flags.hpp"
#include "support/histogram.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

/// Deterministic per-slot request. Slot 0 is the shared hot key (tier A,
/// cached after its first solve); every other slot is a unique tier-B
/// request — distinct seeds defeat the cache so each one costs a solve.
PlanRequest overloadRequest(int slot, int n, int runs) {
  PlanRequest req;
  req.n = n;
  req.ratio = Ratio{5, 2, 1};
  req.algo = Algo::kSCB;
  if (slot == 0) return req;  // hot tier-A key
  req.tier = PlanTier::kSearch;
  req.searchRuns = runs;
  req.searchSeed = static_cast<std::uint64_t>(slot);
  return req;
}

/// Small mixed key set for the warm-restart phase: cheap tier-A keys plus a
/// sprinkle of low-budget tier-B keys, all solvable in microseconds to
/// milliseconds so the phase stays fast on one core.
std::vector<PlanRequest> warmUniverse(int keys) {
  const auto& ratios = paperRatios();
  std::vector<PlanRequest> universe;
  universe.reserve(static_cast<std::size_t>(keys));
  for (int i = 0; i < keys; ++i) {
    PlanRequest req;
    req.ratio = ratios[static_cast<std::size_t>(i) % ratios.size()];
    req.n = 24 + 12 * (i % 5);
    req.algo = kAllAlgos[static_cast<std::size_t>(i) % kAllAlgos.size()];
    if (i % 8 == 7) {
      req.tier = PlanTier::kSearch;
      req.searchRuns = 2;
    }
    universe.push_back(req);
  }
  return universe;
}

double hitRateOver(const Oracle& oracle, std::uint64_t hitsBefore,
                   int requests) {
  const std::uint64_t hits = oracle.stats().cache.hits - hitsBefore;
  return requests > 0 ? static_cast<double>(hits) / requests : 0.0;
}

std::string jsonHistogram(const LatencyHistogram::Snapshot& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %llu, \"p50_s\": %.9g, \"p95_s\": %.9g, "
                "\"p99_s\": %.9g}",
                static_cast<unsigned long long>(h.count), h.p50, h.p95,
                h.p99);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double deadlineSeconds = flags.f64("deadline-ms", 50.0) / 1e3;
  const int maxConcurrency =
      std::max(1, static_cast<int>(flags.i64("max-concurrency", 2)));
  const int maxQueue = std::max(0, static_cast<int>(flags.i64("max-queue", 4)));
  const int multiplier =
      std::max(1, static_cast<int>(flags.i64("multiplier", 4)));
  const int perThread =
      std::max(1, static_cast<int>(flags.i64("requests-per-thread", 8)));
  const int n = std::max(12, static_cast<int>(flags.i64("n", 240)));
  const int runs = std::max(1, static_cast<int>(flags.i64("runs", 64)));
  const int hotEvery = std::max(2, static_cast<int>(flags.i64("hot-every", 4)));
  const int warmKeys =
      std::max(1, static_cast<int>(flags.i64("warm-keys", 32)));
  const int warmRequests =
      std::max(1, static_cast<int>(flags.i64("warm-requests", 1000)));
  const std::string snapshotPath =
      flags.str("snapshot", "overload_cache.snap");
  const std::string jsonPath = flags.str("json", "BENCH_overload.json");

  const int clientThreads = multiplier * maxConcurrency;
  const int totalRequests = clientThreads * perThread;

  std::cout << "E14 (overload): " << clientThreads << " clients ("
            << multiplier << "x concurrency " << maxConcurrency << ", queue "
            << maxQueue << "), deadline " << deadlineSeconds * 1e3
            << " ms, tier-B budget " << runs << " walks at n=" << n << "\n\n";

  // --- Overload phase -----------------------------------------------------
  OracleOptions options;
  options.admission.maxConcurrency = maxConcurrency;
  options.admission.maxQueue = maxQueue;
  options.cancelCheckEvery = 256;  // poll often: deadlines are tens of ms
  Oracle oracle(options);

  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> degraded{0};
  std::atomic<std::int64_t> truncated{0};
  std::atomic<std::int64_t> withinDeadline{0};
  std::atomic<std::int64_t> within2x{0};
  std::atomic<std::int64_t> lateUnmarked{0};
  std::atomic<std::int64_t> failed{0};
  LatencyHistogram acceptedLatency;

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clientThreads));
  for (int t = 0; t < clientThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (int i = 0; i < perThread; ++i) {
        // Every hotEvery-th request re-asks the shared hot key; the rest
        // are unique cold tier-B keys that each demand a fresh solve.
        const int slot =
            (i % hotEvery == hotEvery - 1) ? 0 : 1 + t * perThread + i;
        PlanCallOptions call;
        call.deadline = Deadline::after(deadlineSeconds);
        try {
          const PlanResponse r = oracle.plan(overloadRequest(slot, n, runs), call);
          if (r.shed) {
            shed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          accepted.fetch_add(1, std::memory_order_relaxed);
          acceptedLatency.record(r.latencySeconds);
          if (!r.answer.fullFidelity())
            degraded.fetch_add(1, std::memory_order_relaxed);
          if (r.answer.truncated)
            truncated.fetch_add(1, std::memory_order_relaxed);
          if (r.latencySeconds <= deadlineSeconds)
            withinDeadline.fetch_add(1, std::memory_order_relaxed);
          if (r.latencySeconds <= 2.0 * deadlineSeconds)
            within2x.fetch_add(1, std::memory_order_relaxed);
          // The contract under test: an answer that came back after its
          // deadline must carry a degrade/truncation mark.
          if (r.deadlineExceeded && r.answer.fullFidelity())
            lateUnmarked.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  const OracleStats overloadStats = oracle.stats();
  const auto latency = acceptedLatency.snapshot();
  const double shedRate =
      static_cast<double>(shed.load()) / totalRequests;
  // Goodput: accepted answers that were still useful — delivered within the
  // 2x-deadline window the acceptance bar allows for p99.
  const std::int64_t goodput = within2x.load();

  Table table({"metric", "value"});
  table.addRow("offered", {static_cast<double>(totalRequests)});
  table.addRow("accepted", {static_cast<double>(accepted.load())});
  table.addRow("shed", {static_cast<double>(shed.load())});
  table.addRow("shed rate", {shedRate});
  table.addRow("degraded", {static_cast<double>(degraded.load())});
  table.addRow("truncated", {static_cast<double>(truncated.load())});
  table.addRow("within deadline", {static_cast<double>(withinDeadline.load())});
  table.addRow("goodput (<= 2x deadline)", {static_cast<double>(goodput)});
  table.addRow("late unmarked", {static_cast<double>(lateUnmarked.load())});
  table.addRow("accepted p50 (ms)", {latency.p50 * 1e3});
  table.addRow("accepted p99 (ms)", {latency.p99 * 1e3});
  table.addRow("breaker trips",
               {static_cast<double>(overloadStats.breaker.trips)});
  table.print(std::cout);

  // --- Warm-restart phase -------------------------------------------------
  const std::vector<PlanRequest> universe = warmUniverse(warmKeys);
  const auto replay = [&universe](Oracle& o, int requests) {
    for (int i = 0; i < requests; ++i)
      o.plan(universe[static_cast<std::size_t>(i) % universe.size()]);
  };

  Oracle warmOracle(OracleOptions{});
  replay(warmOracle, warmRequests);  // populate
  const std::uint64_t preHits = warmOracle.stats().cache.hits;
  replay(warmOracle, warmRequests);  // steady state
  const double preRestartHitRate =
      hitRateOver(warmOracle, preHits, warmRequests);
  const std::size_t saved = warmOracle.saveSnapshot(snapshotPath);

  Oracle restored(OracleOptions{});
  const SnapshotLoadReport report = restored.loadSnapshot(snapshotPath);
  replay(restored, warmRequests);
  const double warmHitRate = hitRateOver(restored, 0, warmRequests);
  const double warmRatio =
      preRestartHitRate > 0.0 ? warmHitRate / preRestartHitRate : 0.0;

  std::printf(
      "\nwarm restart: %zu entries snapshotted, %zu restored (%zu skipped); "
      "hit rate %.4g -> %.4g (%.3gx) over %d requests\n",
      saved, report.loaded, report.skipped, preRestartHitRate, warmHitRate,
      warmRatio, warmRequests);

  // --- BENCH_overload.json ------------------------------------------------
  {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    char head[768];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"bench\": \"overload_loadgen\",\n"
        "  \"deadline_s\": %.9g,\n"
        "  \"max_concurrency\": %d,\n"
        "  \"max_queue\": %d,\n"
        "  \"multiplier\": %d,\n"
        "  \"offered\": %d,\n"
        "  \"accepted\": %lld,\n"
        "  \"shed\": %lld,\n"
        "  \"shed_rate\": %.9g,\n"
        "  \"degraded\": %lld,\n"
        "  \"truncated\": %lld,\n"
        "  \"within_deadline\": %lld,\n"
        "  \"goodput_2x\": %lld,\n"
        "  \"late_unmarked\": %lld,\n"
        "  \"failed\": %lld,\n",
        deadlineSeconds, maxConcurrency, maxQueue, multiplier, totalRequests,
        static_cast<long long>(accepted.load()),
        static_cast<long long>(shed.load()), shedRate,
        static_cast<long long>(degraded.load()),
        static_cast<long long>(truncated.load()),
        static_cast<long long>(withinDeadline.load()),
        static_cast<long long>(goodput),
        static_cast<long long>(lateUnmarked.load()),
        static_cast<long long>(failed.load()));
    char breaker[256];
    std::snprintf(
        breaker, sizeof(breaker),
        "  \"breaker_trips\": %llu,\n  \"breaker_open_serves\": %llu,\n"
        "  \"admission_timeouts\": %llu,\n  \"queue_full\": %llu,\n",
        static_cast<unsigned long long>(overloadStats.breaker.trips),
        static_cast<unsigned long long>(overloadStats.breakerOpenServes),
        static_cast<unsigned long long>(overloadStats.admission.shedTimeout),
        static_cast<unsigned long long>(
            overloadStats.admission.shedQueueFull));
    char warm[512];
    std::snprintf(
        warm, sizeof(warm),
        "  \"warm_restart\": {\"snapshot_entries\": %zu, \"restored\": %zu, "
        "\"skipped\": %zu, \"pre_hit_rate\": %.9g, \"warm_hit_rate\": %.9g, "
        "\"ratio\": %.9g, \"requests\": %d}\n"
        "}\n",
        saved, report.loaded, report.skipped, preRestartHitRate, warmHitRate,
        warmRatio, warmRequests);
    out << head << breaker
        << "  \"accepted_latency\": " << jsonHistogram(latency) << ",\n"
        << warm;
    std::cout << "report written to " << jsonPath << "\n";
  }
  std::remove(snapshotPath.c_str());

  const bool overloadOk =
      failed.load() == 0 && shedRate < 1.0 && goodput > 0 &&
      lateUnmarked.load() == 0 &&
      latency.p99 <= 2.0 * deadlineSeconds;
  const bool warmOk = warmRatio >= 0.9;
  const bool ok = overloadOk && warmOk;
  std::cout << (ok ? "\nRESULT: degraded gracefully at overload and "
                     "warm-restarted from the snapshot.\n"
                   : "\nRESULT: overload-resilience targets missed.\n");
  if (!overloadOk)
    std::printf("  overload bar failed: shedRate=%.3g goodput=%lld "
                "lateUnmarked=%lld p99=%.4gs (limit %.4gs)\n",
                shedRate, static_cast<long long>(goodput),
                static_cast<long long>(lateUnmarked.load()), latency.p99,
                2.0 * deadlineSeconds);
  if (!warmOk)
    std::printf("  warm-restart bar failed: ratio %.3g < 0.9\n", warmRatio);
  return ok ? 0 : 1;
}
