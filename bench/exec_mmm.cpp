// E7 — Fig. 14 analogue on the real executor: threaded kij MMM with
// duty-cycle throttled workers.
//
// The paper measured Square-Corner vs Block-Rectangle on three real nodes
// whose speed ratio was enforced by a /proc CPU limiter. This harness does
// the shared-memory equivalent: three threads compute their partitions of a
// real double-precision MMM, throttled to the ratio, with the communication
// phase charged by the Hockney model. It reports measured wall/compute
// seconds per shape and verifies every product against the serial
// reference. Reproduction criteria: results verify exactly, emulated comm
// of SC drops below BR as P_r grows, and ratio-shaped partitions balance
// the throttled workers.
//
//   ./exec_mmm [--n=192] [--bandwidth-mbs=100] [--ratios=4:1:1,12:1:1]
//
// The high-heterogeneity point is 12:1:1 rather than 10:1:1 because the
// Fig. 13 crossover for R_r = S_r = 1 sits at P_r = 9.66 — at exactly
// 10:1:1 integer rounding of the square sides makes the comparison a
// coin flip at small n.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include <algorithm>

#include "exec/kij_executor.hpp"
#include "shapes/candidates.hpp"
#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 192));

  std::vector<Ratio> ratios;
  {
    std::istringstream in(flags.str("ratios", "4:1:1,12:1:1"));
    std::string token;
    while (std::getline(in, token, ',')) ratios.push_back(Ratio::parse(token));
  }

  Machine machine;
  machine.sendElementSeconds = 8.0 / (flags.f64("bandwidth-mbs", 100.0) * 1e6);

  std::cout << "E7 (Fig. 14 analogue, real executor): threaded kij MMM, "
               "n=" << n << ", throttled workers\n\n";

  Table table({"ratio", "shape", "comm (s)", "wall (s)", "P busy (s)",
               "S busy (s)", "max|err|"});
  bool allVerified = true;
  bool scWinsCommAtHighHet = false;
  for (const Ratio& ratio : ratios) {
    machine.ratio = ratio;
    double scComm = -1, brComm = -1;
    for (CandidateShape shape :
         {CandidateShape::kSquareCorner, CandidateShape::kBlockRectangle}) {
      if (!candidateFeasible(shape, n, ratio)) continue;
      const Partition q = makeCandidate(shape, n, ratio);
      ExecOptions opts;
      opts.machine = machine;
      opts.verify = true;
      const ExecResult r = runParallelMMM(Algo::kSCB, q, opts);
      allVerified = allVerified && r.maxAbsError < 1e-9;
      if (shape == CandidateShape::kSquareCorner) scComm = r.commSeconds;
      if (shape == CandidateShape::kBlockRectangle) brComm = r.commSeconds;
      char err[32];
      std::snprintf(err, sizeof(err), "%.1e", r.maxAbsError);
      table.addRow({ratio.str(), candidateName(shape),
                    formatNumber(r.commSeconds), formatNumber(r.wallSeconds),
                    formatNumber(r.computeSeconds[procSlot(Proc::P)]),
                    formatNumber(r.computeSeconds[procSlot(Proc::S)]), err});
    }
    if (ratio.p / std::max(ratio.r, ratio.s) >= 11 && scComm > 0 &&
        scComm < brComm)
      scWinsCommAtHighHet = true;
  }
  table.print(std::cout);

  std::cout << (allVerified
                    ? "\nall products verified element-exact against the "
                      "serial kij reference\n"
                    : "\nVERIFICATION FAILURE\n");
  std::cout << (scWinsCommAtHighHet
                    ? "RESULT: Square-Corner communicates less than "
                      "Block-Rectangle at high heterogeneity (matches "
                      "paper Fig. 14).\n"
                    : "RESULT: expected SC comm win not observed.\n");
  return (allVerified && scWinsCommAtHighHet) ? 0 : 1;
}
