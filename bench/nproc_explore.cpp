// E9 — the paper's §XI direction: beyond three processors.
//
// Two parts:
//   1. Two-processor validation: the generalized engine rebuilds the prior
//      work's candidates and reproduces the classical 3:1 crossover the
//      paper quotes in §II (Square-Corner beats Straight-Line iff P_r > 3).
//   2. Four-and-more-processor exploration: randomized condensation runs
//      through the k-ary Push engine, reporting how often every slow
//      processor ends (asymptotically) rectangular and how strongly VoC
//      contracts — the experimental groundwork for the k ≥ 4 taxonomy the
//      paper leaves open.
//
//   ./nproc_explore [--n=48] [--runs=30] [--seed=9]
//                   [--speeds=8:4:2:1,4:2:2:1:1,...]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "family/family.hpp"
#include "nproc/nsearch.hpp"
#include "nproc/nshapes.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 48));
  const int runs = static_cast<int>(flags.i64("runs", 30));
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 9));

  std::cout << "E9 (paper Sec. XI direction): the generalized k-processor "
               "engine\n\n";

  // --- Part 1: two-processor validation ---------------------------------
  std::cout << "Two-processor validation (prior-work claims quoted in the "
               "paper's Sec. II):\n";
  Table two({"P_r", "StraightLine VoC/N^2", "SquareCorner VoC/N^2", "winner"});
  bool crossoverOk = true;
  for (double p : {1.0, 2.0, 3.0, 4.0, 6.0, 10.0, 15.0}) {
    const auto sl = makeTwoProcCandidate(TwoProcShape::kStraightLine, 200, p);
    const auto sc = makeTwoProcCandidate(TwoProcShape::kSquareCorner, 200, p);
    const double slV =
        static_cast<double>(sl.volumeOfCommunication()) / (200.0 * 200.0);
    const double scV =
        static_cast<double>(sc.volumeOfCommunication()) / (200.0 * 200.0);
    const bool scWins = scV < slV;
    if (p > kTwoProcCrossover + 0.5 && !scWins) crossoverOk = false;
    if (p < kTwoProcCrossover - 0.5 && scWins) crossoverOk = false;
    char buf[3][32];
    std::snprintf(buf[0], 32, "%.0f", p);
    std::snprintf(buf[1], 32, "%.4f", slV);
    std::snprintf(buf[2], 32, "%.4f", scV);
    two.addRow({buf[0], buf[1], buf[2],
                scWins ? "Square-Corner" : "Straight-Line"});
  }
  two.print(std::cout);
  std::printf("crossover at P_r = %.0f (classical result: 3)\n\n",
              kTwoProcCrossover);

  // --- Part 2: k >= 4 exploration ----------------------------------------
  std::vector<NSpeeds> vectors;
  if (flags.has("speeds")) {
    std::istringstream in(flags.str("speeds", ""));
    std::string token;
    while (std::getline(in, token, ',')) vectors.push_back(NSpeeds::parse(token));
  } else {
    for (const char* spec :
         {"8:4:2:1", "4:2:2:1:1", "10:3:2:1", "6:5:4:3:2:1"})
      vectors.push_back(NSpeeds::parse(spec));
  }

  std::cout << "k-processor condensation (" << runs << " runs each, n=" << n
            << "):\n";
  Table table({"speeds", "k", "allRect runs", "avg rect procs", "avg overlaps",
               "avg VoC shrink", "candidate dominates"});
  bool condensesEverywhere = true;
  bool candidatesDominate = true;
  std::vector<std::string> bestLines;
  for (const NSpeeds& speeds : vectors) {
    // Best structured candidate across every registered family (canonical,
    // layered, hierarchical — DESIGN.md §17). For 4-processor vectors this
    // is the weak Postulate 1 check — search outputs must never undercut
    // the candidate pool; for other k the best candidate is reported but
    // only the k=4 case is asserted (the canonical k=4 constructions are
    // the ones the taxonomy argument covers).
    std::int64_t bestCandidate = -1;
    std::string bestName = "n/a";
    builtinFamilies().forEachN(
        n, speeds, FamilySet::all(), [&](const NFamilyCandidate& c) {
          const auto voc = c.partition.volumeOfCommunication();
          if (bestCandidate < 0 || voc < bestCandidate) {
            bestCandidate = voc;
            bestName = c.name;
          }
        });
    const bool assertDominance =
        speeds.speeds.size() == 4 && bestCandidate >= 0;

    Rng master(seed);
    int allRect = 0;
    int dominated = 0;
    double rectProcs = 0, overlaps = 0, shrink = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng = master.split(static_cast<std::uint64_t>(run));
      const auto result = runNSearch(n, speeds, rng);
      allRect += result.stats.allSlowRectangular ? 1 : 0;
      rectProcs += result.stats.rectangularProcs;
      overlaps += result.stats.overlappingPairs;
      shrink += 1.0 - static_cast<double>(result.vocEnd) /
                          static_cast<double>(result.vocStart);
      if (result.vocEnd > result.vocStart) condensesEverywhere = false;
      if (assertDominance) {
        if (bestCandidate <= result.vocEnd) ++dominated;
        else candidatesDominate = false;
      }
    }
    char cells[5][32];
    std::snprintf(cells[0], 32, "%d/%d", allRect, runs);
    std::snprintf(cells[1], 32, "%.2f/%d", rectProcs / runs,
                  static_cast<int>(speeds.speeds.size()) - 1);
    std::snprintf(cells[2], 32, "%.2f", overlaps / runs);
    std::snprintf(cells[3], 32, "%.0f%%", 100.0 * shrink / runs);
    if (assertDominance) {
      std::snprintf(cells[4], 32, "%d/%d", dominated, runs);
    } else {
      std::snprintf(cells[4], 32, "n/a");
    }
    table.addRow({speeds.str(), std::to_string(speeds.speeds.size()),
                  cells[0], cells[1], cells[2], cells[3], cells[4]});
    if (bestCandidate >= 0) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  best family candidate for %s: %s (VoC %lld)",
                    speeds.str().c_str(), bestName.c_str(),
                    static_cast<long long>(bestCandidate));
      bestLines.emplace_back(line);
    }
  }
  table.print(std::cout);
  for (const std::string& line : bestLines) std::cout << line << "\n";

  const bool ok = crossoverOk && condensesEverywhere && candidatesDominate;
  std::cout << (ok ? "\nRESULT: 3:1 two-processor crossover reproduced; the "
                     "k-ary Push condenses every run without increasing VoC; "
                     "canonical k=4 candidates dominate every search output "
                     "— the paper's extensibility claim holds.\n"
                   : "\nRESULT: unexpected behaviour in the generalized "
                     "engine.\n");
  return ok ? 0 : 1;
}
