// E18 — drift-adaptive serving: bounded regret under wandering speeds,
// a slow window and a kill/rejoin window, plus a constant-speed control.
//
// The harness drives the src/adapt drift drill (DESIGN.md §16) through a
// long, fully seeded scenario and fails the run unless the adaptive loop
// earns its keep:
//
//   * main run: three nodes whose speeds wander as a bounded multiplicative
//     random walk, with a 2.5x slow window on node 0 over the second fifth
//     of the drill and a kill/rejoin window on node 1 over [50%, 70%). The
//     AdaptiveSession sees only telemetry (sim/mmm_sim PhaseSamples remapped
//     to physical nodes); every phase is scored against an omniscient oracle
//     that re-selects the optimal shape at the exact true speeds.
//   * control run: the same scenario with wanderStep = 0 and no faults. A
//     well-damped session must replan exactly zero times — any replan here
//     is hysteresis failing to absorb estimator noise.
//
// Self-check (RESULT line, and the markers CI greps for):
//   REGRET_OK      cumulative Σ served / Σ omniscient <= --regret-bound;
//   RECONVERGED    every fault window saw a replan while live and the served
//                  plan returned to within tolerance of omniscient within
//                  reconvergePhases of the window closing;
//   CONTROL_OK     zero replans, zero invalidations in the control run.
// The markers print only when the bar passes, so a grep is a real check.
// Machine-readable output: --json=BENCH_drift.json (written by default).
//
//   ./drift_loadgen [--phases=300] [--seed=42] [--n=96] [--wander=0.05]
//                   [--stale-gap-pct=5] [--hysteresis=2] [--min-replan-s=0]
//                   [--regret-bound=1.25] [--json=BENCH_drift.json]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "adapt/drill.hpp"
#include "serve/oracle.hpp"
#include "support/flags.hpp"

using namespace pushpart;

namespace {

/// The shared scenario: knobs from flags, fault windows at fixed fractions
/// of the drill so --phases scales the whole story instead of clipping it.
DriftScenarioOptions scenarioFromFlags(const Flags& flags) {
  DriftScenarioOptions options;
  options.phases = std::max(20, static_cast<int>(flags.i64("phases", 300)));
  options.seed = static_cast<std::uint64_t>(flags.i64("seed", 42));
  options.n = std::max(12, static_cast<int>(flags.i64("n", 96)));
  options.wanderStep = flags.f64("wander", 0.05);
  options.regretBound = flags.f64("regret-bound", 1.25);
  options.session.staleGapPct = flags.f64("stale-gap-pct", 5.0);
  options.session.hysteresisPhases =
      static_cast<int>(flags.i64("hysteresis", 2));
  options.session.minReplanSeconds = flags.f64("min-replan-s", 0.0);

  const double duration = options.phases * options.phaseSeconds;
  options.faults.slowNodes.push_back(
      SlowNode{0, 0.2 * duration, 0.4 * duration, 2.5});
  options.faults.kills.push_back(NodeKill{1, 0.5 * duration, 0.7 * duration});
  return options;
}

std::string windowJson(const FaultWindowReport& w) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"fault\": \"%s\", \"node\": %d, \"begin_s\": %g, "
                "\"end_s\": %g, \"replan_during\": %s, \"reconverged\": %s, "
                "\"reconverged_after_phases\": %d}",
                w.kill ? "kill" : "slow", w.node, w.begin, w.end,
                w.replanDuring ? "true" : "false",
                w.reconverged ? "true" : "false", w.reconvergedAfterPhases);
  return buf;
}

std::string statsJson(const AdaptiveStats& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"phases\": %llu, \"warmup\": %llu, \"stale_verdicts\": %llu, "
      "\"replans\": %llu, \"hysteresis_holds\": %llu, "
      "\"interval_holds\": %llu, \"invalidations\": %llu}",
      static_cast<unsigned long long>(s.phases),
      static_cast<unsigned long long>(s.warmupPhases),
      static_cast<unsigned long long>(s.staleVerdicts),
      static_cast<unsigned long long>(s.replans),
      static_cast<unsigned long long>(s.hysteresisHolds),
      static_cast<unsigned long long>(s.intervalHolds),
      static_cast<unsigned long long>(s.invalidations));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string jsonPath = flags.str("json", "BENCH_drift.json");

  const DriftScenarioOptions scenario = scenarioFromFlags(flags);
  std::printf(
      "E18 (drift): %d phases at n=%d, wander %g, stale gap %g%%, "
      "hysteresis %d, regret bound %.3gx\n",
      scenario.phases, scenario.n, scenario.wanderStep,
      scenario.session.staleGapPct, scenario.session.hysteresisPhases,
      scenario.regretBound);
  for (const SlowNode& s : scenario.faults.slowNodes)
    std::printf("  fault: slow node %d by %gx over [%g, %g)s\n", s.node,
                s.factor, s.begin, s.end);
  for (const NodeKill& k : scenario.faults.kills)
    std::printf("  fault: kill node %d at %gs, rejoin %gs\n", k.node, k.at,
                k.rejoinAt.value_or(-1.0));

  // --- Main run: wander + faults -----------------------------------------
  OracleOptions oracleOptions;
  oracleOptions.machine.ratio = Ratio{8, 3, 1.5};
  Oracle oracle(oracleOptions);
  const DriftDrillReport report = runDriftDrill(oracle, scenario);

  std::printf("\nmain run: %llu replans, %llu invalidations, "
              "%llu stale verdicts over %llu phases\n",
              static_cast<unsigned long long>(report.stats.replans),
              static_cast<unsigned long long>(report.stats.invalidations),
              static_cast<unsigned long long>(report.stats.staleVerdicts),
              static_cast<unsigned long long>(report.stats.phases));
  std::printf("estimator: %llu clamped, %llu stall demotions, "
              "%llu death demotions, %llu recoveries\n",
              static_cast<unsigned long long>(report.estimator.clampedSamples),
              static_cast<unsigned long long>(report.estimator.stallDemotions),
              static_cast<unsigned long long>(report.estimator.deathDemotions),
              static_cast<unsigned long long>(report.estimator.recoveries));
  for (const FaultWindowReport& w : report.windows)
    std::printf("window: %s node %d [%g, %g)s — replan during: %s, "
                "reconverged: %s (after %d phases)\n",
                w.kill ? "kill" : "slow", w.node, w.begin, w.end,
                w.replanDuring ? "yes" : "NO", w.reconverged ? "yes" : "NO",
                w.reconvergedAfterPhases);

  const bool regretOk = report.regretOk(scenario.regretBound);
  bool windowsOk = !report.windows.empty();
  for (const FaultWindowReport& w : report.windows)
    windowsOk = windowsOk && w.replanDuring && w.reconverged;

  if (regretOk)
    std::printf("REGRET_OK factor=%.4fx (bound %.3gx)\n",
                report.regretFactor(), scenario.regretBound);
  else
    std::printf("REGRET_FAIL factor=%.4fx exceeds bound %.3gx\n",
                report.regretFactor(), scenario.regretBound);
  if (windowsOk)
    std::printf("RECONVERGED all %zu fault windows\n", report.windows.size());
  else
    std::printf("RECONVERGE_FAIL: a fault window missed its replan or "
                "never re-converged\n");

  // --- Control run: constant speeds, no faults ---------------------------
  DriftScenarioOptions control = scenario;
  control.wanderStep = 0.0;
  control.faults = ClusterFaultPlan{};
  Oracle controlOracle(oracleOptions);
  const DriftDrillReport controlReport = runDriftDrill(controlOracle, control);

  const bool controlOk = controlReport.stats.replans == 0 &&
                         controlReport.stats.invalidations == 0;
  std::printf("\ncontrol run: %llu replans, %llu invalidations, "
              "regret %.4fx over %llu constant-speed phases\n",
              static_cast<unsigned long long>(controlReport.stats.replans),
              static_cast<unsigned long long>(
                  controlReport.stats.invalidations),
              controlReport.regretFactor(),
              static_cast<unsigned long long>(controlReport.stats.phases));
  if (controlOk)
    std::printf("CONTROL_OK zero replans at constant speed\n");
  else
    std::printf("CONTROL_FAIL: the damped session replanned with nothing "
                "drifting\n");

  // --- BENCH_drift.json ---------------------------------------------------
  {
    std::ofstream out(jsonPath);
    if (!out) {
      std::cerr << "cannot write " << jsonPath << "\n";
      return 1;
    }
    char head[512];
    std::snprintf(head, sizeof(head),
                  "{\n"
                  "  \"bench\": \"drift_loadgen\",\n"
                  "  \"phases\": %d,\n"
                  "  \"n\": %d,\n"
                  "  \"seed\": %llu,\n"
                  "  \"wander_step\": %.9g,\n"
                  "  \"stale_gap_pct\": %.9g,\n"
                  "  \"hysteresis_phases\": %d,\n"
                  "  \"regret_bound\": %.9g,\n"
                  "  \"regret_factor\": %.9g,\n"
                  "  \"control_regret_factor\": %.9g,\n",
                  scenario.phases, scenario.n,
                  static_cast<unsigned long long>(scenario.seed),
                  scenario.wanderStep, scenario.session.staleGapPct,
                  scenario.session.hysteresisPhases, scenario.regretBound,
                  report.regretFactor(), controlReport.regretFactor());
    out << head << "  \"windows\": [";
    for (std::size_t i = 0; i < report.windows.size(); ++i)
      out << (i ? ", " : "") << windowJson(report.windows[i]);
    out << "],\n"
        << "  \"session\": " << statsJson(report.stats) << ",\n"
        << "  \"control\": " << statsJson(controlReport.stats) << ",\n"
        << "  \"regret_ok\": " << (regretOk ? "true" : "false") << ",\n"
        << "  \"reconverged\": " << (windowsOk ? "true" : "false") << ",\n"
        << "  \"control_ok\": " << (controlOk ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "report written to " << jsonPath << "\n";
  }

  const bool ok = regretOk && windowsOk && controlOk;
  std::cout << (ok ? "\nRESULT: bounded regret, re-converged after every "
                     "fault window, quiet at constant speed.\n"
                   : "\nRESULT: drift-adaptation targets missed.\n");
  return ok ? 0 : 1;
}
