// Beyond three processors: condense a four-processor partition with the
// generalized Push engine (paper §XI: "the ultimate aim is to determine the
// optimal data partitioning shape ... for any number of heterogeneous
// processors").
//
//   ./four_processors [--n=40] [--speeds=8:4:2:1] [--seed=11]
#include <cstdio>
#include <iostream>

#include "nproc/nsearch.hpp"
#include "support/flags.hpp"

using namespace pushpart;

namespace {

// Coarse ASCII rendering for k processors: digits by owner index.
void render(const NPartition& q, int maxCells) {
  const int blocks = std::min(q.n(), maxCells);
  for (int bi = 0; bi < blocks; ++bi) {
    const int i0 = bi * q.n() / blocks, i1 = (bi + 1) * q.n() / blocks;
    for (int bj = 0; bj < blocks; ++bj) {
      const int j0 = bj * q.n() / blocks, j1 = (bj + 1) * q.n() / blocks;
      std::vector<int> tally(static_cast<std::size_t>(q.procs()), 0);
      for (int i = i0; i < i1; ++i)
        for (int j = j0; j < j1; ++j)
          ++tally[static_cast<std::size_t>(q.at(i, j))];
      int best = 0;
      for (int p = 1; p < q.procs(); ++p)
        if (tally[static_cast<std::size_t>(p)] >
            tally[static_cast<std::size_t>(best)])
          best = p;
      std::putchar(best == 0 ? '.' : static_cast<char>('0' + best));
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 40));
  const auto speeds = NSpeeds::parse(flags.str("speeds", "8:4:2:1"));
  Rng rng(static_cast<std::uint64_t>(flags.i64("seed", 11)));

  std::cout << "Condensing a " << n << "x" << n << " matrix over "
            << speeds.speeds.size() << " processors with speeds "
            << speeds.str() << "\n\n";

  NPartition q0 = randomNPartition(n, speeds, rng);
  std::cout << "start (VoC " << q0.volumeOfCommunication() << "):\n";
  render(q0, 40);

  Rng searchRng(static_cast<std::uint64_t>(flags.i64("seed", 11)));
  const NSearchResult result = runNSearch(n, speeds, searchRng);

  std::cout << "\ncondensed after " << result.pushesApplied << " pushes (VoC "
            << result.vocEnd << "):\n";
  render(result.final, 40);

  std::printf(
      "\n%d of %d slow processors ended asymptotically rectangular; "
      "%d overlapping rectangle pairs; VoC shrank %.0f%%\n",
      result.stats.rectangularProcs, result.stats.slowProcs,
      result.stats.overlappingPairs,
      100.0 * (1.0 - static_cast<double>(result.vocEnd) /
                         static_cast<double>(result.vocStart)));
  return 0;
}
