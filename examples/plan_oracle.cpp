// Embed the partition-plan oracle in-process — the serving layer's library
// API (src/serve), as an application would use it.
//
//   ./plan_oracle [--n=120] [--ratio=5:2:1] [--algo=SCO] [--runs=4]
//
// Issues the same search-backed question three times: cold (a tier-B solve
// runs the budgeted DFA batch), hot (served from the cache), and once as a
// scaled ratio with R/S swapped (5:1:2 scaled by 3 = 15:3:6) to show request
// canonicalization folding equivalent machines onto one cache entry. Prints
// each answer's tier and latency, then the oracle's serving stats.
#include <cstdio>
#include <iostream>

#include "serve/oracle.hpp"
#include "support/flags.hpp"

using namespace pushpart;

namespace {

void show(const char* label, const PlanResponse& r) {
  std::printf("%-28s %-9s %-22s exec %.6gs  VoC %lld  latency %.3gus\n",
              label, r.cacheHit ? "hit" : (r.coalesced ? "coalesced" : "miss"),
              candidateName(r.answer.shape), r.answer.model.execSeconds,
              static_cast<long long>(r.answer.voc),
              r.latencySeconds * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  PlanRequest req;
  req.n = static_cast<int>(flags.i64("n", 120));
  req.ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  const std::string algoStr = flags.str("algo", "SCO");
  for (Algo a : kAllAlgos)
    if (algoStr == algoName(a)) req.algo = a;
  req.tier = PlanTier::kSearch;
  req.searchRuns = static_cast<int>(flags.i64("runs", 4));

  Oracle oracle;
  std::cout << "key: " << canonicalize(req).text << "\n\n";

  show("cold (tier-B DFA batch):", oracle.plan(req));
  show("hot (same request):", oracle.plan(req));

  // Same machine, written differently: scale every speed by 3 and swap the
  // R/S labels. Canonicalization folds it onto the entry above.
  PlanRequest alias = req;
  alias.ratio = Ratio{req.ratio.p * 3, req.ratio.s * 3, req.ratio.r * 3};
  show("aliased ratio (scaled):", oracle.plan(alias));

  const OracleStats stats = oracle.stats();
  std::printf(
      "\ncache: %llu hits / %llu misses / %llu coalesced (%zu resident)\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.coalesced),
      stats.cache.entries);
  if (stats.tierBSolves.count > 0)
    std::printf("tier-B solves: %llu, p50 %.3gms\n",
                static_cast<unsigned long long>(stats.tierBSolves.count),
                stats.tierBSolves.p50 * 1e3);

  // The whole point of the serving layer: one solve answered three requests.
  return stats.cache.misses == 1 && stats.cache.hits == 2 ? 0 : 1;
}
