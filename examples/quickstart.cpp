// Quickstart: build a partition, measure its communication volume, run the
// Push operation, and compare against a canonical candidate shape.
//
//   ./quickstart [--n=30] [--ratio=3:1:1] [--seed=7]
//
// Walks through the library's core types in ~5 minutes of reading:
// Partition / Ratio (grid), tryPush (push), the candidate constructors
// (shapes) and the SCB performance model (model).
#include <cstdio>
#include <iostream>

#include "grid/builder.hpp"
#include "grid/render.hpp"
#include "model/models.hpp"
#include "push/beautify.hpp"
#include "push/push.hpp"
#include "shapes/archetype.hpp"
#include "shapes/candidates.hpp"
#include "support/flags.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 30));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "3:1:1"));
  Rng rng(static_cast<std::uint64_t>(flags.i64("seed", 7)));

  std::cout << "== 1. A random partition of a " << n << "x" << n
            << " matrix over processors P:R:S = " << ratio.str() << " ==\n";
  Partition q = randomPartition(n, ratio, rng);
  std::cout << renderAscii(q, 30);
  std::cout << summaryLine(q) << "\n\n";

  std::cout << "== 2. One Push operation (paper Section IV-A) ==\n";
  const PushOutcome out = tryPush(q, Proc::R, Direction::Down);
  if (out.applied) {
    std::cout << "Pushed R Down using " << pushTypeName(out.type) << ": moved "
              << out.elementsMoved << " elements, VoC " << out.vocBefore
              << " -> " << out.vocAfter << "\n\n";
  } else {
    std::cout << "No legal Push Down on R from this start state.\n\n";
  }

  std::cout << "== 3. Condense fully (beautify: every direction, both "
               "processors) ==\n";
  const BeautifyResult condensed = beautify(q);
  std::cout << renderAscii(q, 30);
  std::cout << condensed.pushesApplied << " pushes, VoC "
            << condensed.vocBefore << " -> " << condensed.vocAfter << "\n";
  std::cout << "Shape classification: " << classifyArchetype(q).str()
            << "\n\n";

  std::cout << "== 4. Compare with the canonical candidates (Fig. 10) ==\n";
  Machine machine;
  machine.ratio = ratio;
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, n, ratio)) {
      std::printf("%-24s infeasible for this ratio (Thm 9.1)\n",
                  candidateName(shape));
      continue;
    }
    const Partition candidate = makeCandidate(shape, n, ratio);
    const ModelResult model = evalModel(Algo::kSCB, candidate, machine);
    std::printf("%-24s VoC=%8lld   SCB exec=%.6f s\n", candidateName(shape),
                static_cast<long long>(candidate.volumeOfCommunication()),
                model.execSeconds);
  }
  std::cout << "\nCondensed random shape has VoC " << q.volumeOfCommunication()
            << " — candidates communicate no more than condensed shapes.\n";
  return 0;
}
