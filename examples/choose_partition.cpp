// Pick the best data-partition shape for a heterogeneous machine —
// the downstream use case of the paper's whole programme.
//
//   ./choose_partition [--n=120] [--ratio=10:1:1] [--algo=SCB]
//                      [--topology=full|star] [--bandwidth-mbs=1000]
//                      [--flops=1e9]
//
// Ranks the six canonical candidates (paper Fig. 10) under the chosen MMM
// algorithm and network model, prints the predicted times, and renders the
// winner.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "grid/render.hpp"
#include "model/optimal.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

namespace {

Algo parseAlgo(const std::string& name) {
  for (Algo algo : kAllAlgos)
    if (name == algoName(algo)) return algo;
  throw std::invalid_argument("unknown algorithm '" + name +
                              "' (expected SCB, PCB, SCO, PCO or PIO)");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 120));
  const Algo algo = parseAlgo(flags.str("algo", "SCB"));
  const std::string topoStr = flags.str("topology", "full");
  const Topology topology =
      topoStr == "star" ? Topology::kStar : Topology::kFullyConnected;

  Machine machine;
  machine.ratio = Ratio::parse(flags.str("ratio", "10:1:1"));
  machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);
  machine.baseFlopSeconds = 1.0 / flags.f64("flops", 1e9);

  std::cout << "Ranking candidate shapes for ratio " << machine.ratio.str()
            << ", algorithm " << algoName(algo) << ", "
            << topologyName(topology) << " topology, n=" << n << "\n\n";

  const auto ranked = rankCandidates(algo, n, machine, topology);
  Table table({"shape", "VoC", "comm (s)", "overlap (s)", "comp (s)",
               "exec (s)"});
  for (const RankedCandidate& r : ranked) {
    table.addRow(candidateName(r.shape),
                 {static_cast<double>(r.voc), r.model.commSeconds,
                  r.model.overlapSeconds, r.model.compSeconds,
                  r.model.execSeconds});
  }
  table.print(std::cout);

  if (!ranked.empty()) {
    const auto& best = ranked.front();
    std::cout << "\nRecommended: " << candidateName(best.shape) << "\n\n";
    const Partition q = makeCandidate(best.shape, n, machine.ratio);
    std::cout << renderAscii(q, 30);
  }

  std::cout << "\n(Shapes missing from the table are infeasible for this "
               "ratio — e.g. the Square-Corner below the Thm 9.1 boundary "
               "P_r > 2*sqrt(R_r*S_r).)\n";
  return 0;
}
