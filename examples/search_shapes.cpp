// Run the paper's DFA search and watch partitions condense (paper §V–VII).
//
//   ./search_shapes [--n=60] [--ratio=2:1:1] [--runs=12] [--seed=3]
//                   [--trace] [--threads=0]
//
// Performs `runs` randomized walks (random q0, random push schedule) and
// tallies the archetypes of the condensed shapes — a small-scale rerun of
// the experiment behind the paper's Fig. 5. With --trace, the first run also
// prints snapshots of the partition as it condenses (Fig. 7 style).
#include <cstdio>
#include <iostream>

#include "dfa/batch.hpp"
#include "grid/builder.hpp"
#include "grid/render.hpp"
#include "shapes/archetype.hpp"
#include "support/flags.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BatchOptions options;
  options.n = static_cast<int>(flags.i64("n", 60));
  options.ratio = Ratio::parse(flags.str("ratio", "2:1:1"));
  options.runs = static_cast<int>(flags.i64("runs", 12));
  options.threads = static_cast<int>(flags.i64("threads", 0));
  options.seed = static_cast<std::uint64_t>(flags.i64("seed", 3));
  const bool trace = flags.b("trace", false);

  std::cout << "DFA search: n=" << options.n << " ratio=" << options.ratio.str()
            << " runs=" << options.runs << "\n\n";

  int tally[kNumArchetypes] = {};
  std::int64_t totalPushes = 0;
  const BatchSummary summary = runBatch(options, [&](const BatchRun& run) {
    const ArchetypeInfo info = classifyArchetype(run.result.final);
    ++tally[static_cast<int>(info.archetype)];
    totalPushes += run.result.pushesApplied;
    std::printf("run %2d  schedule[%-40s]  pushes=%6lld  VoC %8lld -> %8lld  "
                "archetype %s\n",
                run.runIndex, run.schedule.str().c_str(),
                static_cast<long long>(run.result.pushesApplied),
                static_cast<long long>(run.result.vocStart),
                static_cast<long long>(run.result.vocEnd),
                archetypeName(info.archetype));
  });

  std::cout << "\nArchetype tally (paper Fig. 5: only A-D should appear):\n";
  for (int a = 0; a < kNumArchetypes; ++a) {
    std::printf("  %-8s %d\n", archetypeName(static_cast<Archetype>(a)),
                tally[a]);
  }
  std::printf("total pushes applied: %lld\n",
              static_cast<long long>(totalPushes));
  for (const BatchFailure& f : summary.failures)
    std::fprintf(stderr, "run %d failed: %s\n", f.runIndex, f.message.c_str());

  if (trace) {
    std::cout << "\n== Example run trace (Fig. 7 style) ==\n";
    Rng rng(options.seed);
    Schedule schedule = Schedule::random(rng);
    DfaOptions dfaOpts;
    dfaOpts.traceEvery = std::max(1, options.n / 2);
    dfaOpts.traceCells = 30;
    const auto result = runDfa(
        randomPartition(options.n, options.ratio, rng), schedule, dfaOpts);
    std::cout << "schedule: " << schedule.str() << "\n";
    for (const TraceSnapshot& snap : result.trace) {
      std::printf("\nafter %lld pushes (VoC %lld):\n",
                  static_cast<long long>(snap.pushesApplied),
                  static_cast<long long>(snap.voc));
      std::cout << snap.art;
    }
  }
  return 0;
}
