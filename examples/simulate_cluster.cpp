// End-to-end: simulate and actually execute a partitioned MMM.
//
//   ./simulate_cluster [--n=96] [--ratio=5:2:1] [--shape=Block-Rectangle]
//                      [--alpha-us=50] [--bandwidth-mbs=1000]
//
// First runs every algorithm on the discrete-event cluster simulator
// (message-level Hockney network, star vs fully-connected), then executes a
// real threaded kij multiplication with duty-cycle throttled workers and
// verifies it against the serial reference — the library's two substitutes
// for the paper's 3-node Open-MPI/ATLAS testbed.
#include <cstdio>
#include <iostream>

#include "exec/kij_executor.hpp"
#include "shapes/candidates.hpp"
#include "sim/mmm_sim.hpp"
#include "support/flags.hpp"
#include "support/table.hpp"

using namespace pushpart;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.i64("n", 96));
  const Ratio ratio = Ratio::parse(flags.str("ratio", "5:2:1"));
  const CandidateShape shape =
      candidateFromName(flags.str("shape", "Block-Rectangle"));

  if (!candidateFeasible(shape, n, ratio)) {
    std::cerr << candidateName(shape) << " is infeasible for ratio "
              << ratio.str() << "\n";
    return 1;
  }
  const Partition q = makeCandidate(shape, n, ratio);

  SimOptions sim;
  sim.machine.ratio = ratio;
  sim.machine.alphaSeconds = flags.f64("alpha-us", 50.0) * 1e-6;
  sim.machine.sendElementSeconds =
      8.0 / (flags.f64("bandwidth-mbs", 1000.0) * 1e6);

  std::cout << "== Discrete-event simulation: " << candidateName(shape)
            << ", n=" << n << ", ratio " << ratio.str() << " ==\n\n";
  Table pretty({"algo", "topology", "comm (s)", "exec (s)", "messages"});
  for (Algo algo : kAllAlgos) {
    for (Topology topo : {Topology::kFullyConnected, Topology::kStar}) {
      sim.topology = topo;
      const SimResult r = simulateMMM(algo, q, sim);
      char comm[32], exec[32], msgs[32];
      std::snprintf(comm, sizeof(comm), "%.6f", r.commSeconds);
      std::snprintf(exec, sizeof(exec), "%.6f", r.execSeconds);
      std::snprintf(msgs, sizeof(msgs), "%lld",
                    static_cast<long long>(r.network.messagesSent));
      pretty.addRow({algoName(algo), topologyName(topo), comm, exec, msgs});
    }
  }
  pretty.print(std::cout);

  std::cout << "\n== Real threaded execution (throttled workers, verified) "
               "==\n\n";
  ExecOptions exec;
  exec.machine = sim.machine;
  exec.verify = true;
  const ExecResult run = runParallelMMM(Algo::kPCB, q, exec);
  std::printf("wall time        %.4f s\n", run.wallSeconds);
  std::printf("emulated comm    %.6f s (%lld elements)\n", run.commSeconds,
              static_cast<long long>(run.commElements));
  for (Proc x : kAllProcs) {
    std::printf("worker %c busy   %.4f s (speed %.0f)\n", procName(x),
                run.computeSeconds[procSlot(x)], ratio.speed(x));
  }
  std::printf("max |error| vs serial reference: %.3e — %s\n", run.maxAbsError,
              run.maxAbsError < 1e-9 ? "VERIFIED" : "MISMATCH");
  return run.maxAbsError < 1e-9 ? 0 : 2;
}
