#include "dfa/batch.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "grid/builder.hpp"
#include "support/check.hpp"

namespace pushpart {

void runBatch(const BatchOptions& options,
              const std::function<void(const BatchRun&)>& onResult) {
  PUSHPART_CHECK(options.runs >= 0);
  PUSHPART_CHECK(options.n > 0);
  PUSHPART_CHECK_MSG(options.ratio.valid(),
                     "invalid ratio " << options.ratio.str());

  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = options.threads > 0
                          ? options.threads
                          : static_cast<int>(hw > 0 ? hw : 2);

  std::atomic<int> next{0};
  std::mutex resultMutex;
  std::exception_ptr firstError;
  std::mutex errorMutex;

  const Rng master(options.seed);

  auto worker = [&]() {
    try {
      for (;;) {
        const int run = next.fetch_add(1);
        if (run >= options.runs) return;
        // Independent, reproducible stream per run index.
        Rng rng = master.split(static_cast<std::uint64_t>(run));

        Schedule schedule = Schedule::random(rng);
        Partition q0 =
            rng.chance(options.clusteredStartFraction)
                ? randomClusteredPartition(options.n, options.ratio, rng)
                : randomPartition(options.n, options.ratio, rng);
        BatchRun ctx(run, schedule,
                     runDfa(std::move(q0), schedule, options.dfa));

        std::lock_guard<std::mutex> lock(resultMutex);
        onResult(ctx);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::current_exception();
      next.store(options.runs);  // drain remaining work
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace pushpart
