#include "dfa/batch.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "grid/builder.hpp"
#include "rle/engine.hpp"
#include "support/check.hpp"

namespace pushpart {

BatchSummary runBatch(const BatchOptions& options,
                      const std::function<void(const BatchRun&)>& onResult) {
  PUSHPART_CHECK_MSG(options.runs >= 0,
                     "BatchOptions.runs must be >= 0, got " << options.runs);
  PUSHPART_CHECK_MSG(options.threads >= 0,
                     "BatchOptions.threads must be >= 0 (0 = hardware "
                     "concurrency), got " << options.threads);
  PUSHPART_CHECK(options.n > 0);
  PUSHPART_CHECK_MSG(options.ratio.valid(),
                     "invalid ratio " << options.ratio.str());
  // Reject out-of-range (or NaN) fractions here with a precise message
  // instead of letting rng.chance() see a nonsensical probability.
  PUSHPART_CHECK_MSG(options.clusteredStartFraction >= 0.0 &&
                         options.clusteredStartFraction <= 1.0,
                     "BatchOptions.clusteredStartFraction must be in [0,1], "
                     "got " << options.clusteredStartFraction);

  const unsigned hw = std::thread::hardware_concurrency();
  const int threads = options.threads > 0
                          ? options.threads
                          : static_cast<int>(hw > 0 ? hw : 2);

  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  std::atomic<int> truncatedRuns{0};
  std::atomic<int> skippedRuns{0};
  std::mutex resultMutex;
  std::mutex failureMutex;
  std::vector<BatchFailure> failures;

  const Rng master(options.seed);

  // The batch token governs every walk: in-flight runs observe it at their
  // next DFA check point, unclaimed runs are skipped outright.
  DfaOptions dfaOptions = options.dfa;
  dfaOptions.cancel = options.cancel;

  auto worker = [&]() {
    for (;;) {
      const int run = next.fetch_add(1);
      if (run >= options.runs) return;
      if (options.cancel.cancelled()) {
        skippedRuns.fetch_add(1);
        continue;  // keep draining indices so skipped runs are counted
      }
      // A failed run — walk or callback — is recorded and skipped; the
      // worker stays alive and the rest of the batch still runs.
      try {
        // Independent, reproducible stream per run index.
        Rng rng = master.split(static_cast<std::uint64_t>(run));

        // The RNG draw order is engine-independent (schedule, then the grid
        // q0 builders), so kRle and kGrid batches walk the same start states
        // under the same schedules and — the engines being lockstep-equal —
        // produce bit-identical results.
        Schedule schedule = Schedule::random(rng);
        Partition q0 =
            rng.chance(options.clusteredStartFraction)
                ? randomClusteredPartition(options.n, options.ratio, rng)
                : randomPartition(options.n, options.ratio, rng);
        DfaResult res =
            options.engine == BatchEngine::kRle
                ? [&] {
                    DfaResultT<RlePartition> fast = runDfaT(
                        RlePartition(q0), schedule, dfaOptions);
                    // Convert back to the element grid so every downstream
                    // consumer (serve, atlas, benches) stays engine-agnostic.
                    DfaResult out(fast.final.toPartition());
                    out.stop = fast.stop;
                    out.pushesApplied = fast.pushesApplied;
                    out.sweeps = fast.sweeps;
                    out.vocStart = fast.vocStart;
                    out.vocEnd = fast.vocEnd;
                    out.beautify = fast.beautify;
                    out.trace = std::move(fast.trace);
                    return out;
                  }()
                : runDfa(std::move(q0), schedule, dfaOptions);
        BatchRun ctx(run, schedule, std::move(res));
        const bool cancelled = ctx.result.stop == DfaStop::kCancelled;

        {
          std::lock_guard<std::mutex> lock(resultMutex);
          onResult(ctx);
        }
        (cancelled ? truncatedRuns : completed).fetch_add(1);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(failureMutex);
        failures.push_back({run, e.what()});
      } catch (...) {
        std::lock_guard<std::mutex> lock(failureMutex);
        failures.push_back({run, "unknown error"});
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  // Thread interleaving decides recording order; report deterministically.
  std::sort(failures.begin(), failures.end(),
            [](const BatchFailure& a, const BatchFailure& b) {
              return a.runIndex < b.runIndex;
            });
  return BatchSummary{completed.load(), truncatedRuns.load(),
                      skippedRuns.load(), std::move(failures)};
}

}  // namespace pushpart
