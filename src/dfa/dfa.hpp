// The DFA search program (paper §V–§VI): random start state, repeated Push,
// condensed accept states.
//
// The paper frames the search as a DFA: states Q are all element arrangements,
// the alphabet Σ is (active processor, direction), the transition function δ
// is the Push operation, q0 is random, and the accept states F are the fixed
// points where no legal Push remains. runDfa drives one such walk to an
// accept state:
//
//   * It sweeps the schedule's slots round-robin, applying every push that
//     fires; a full sweep with no applied push means the partition is
//     condensed w.r.t. the schedule's direction set (paper §VI-C).
//   * VoC-preserving pushes (Types Five/Six) could in principle wander or
//     cycle forever; state hashing at non-improving sweep boundaries detects
//     cycles, and a stall cap bounds plateaus (design ablation in DESIGN.md).
//   * Optionally a beautify pass (paper §VIII-C) then applies the strictly
//     improving pushes the schedule never selected, turning Archetype C
//     interlocks into Archetype A.
//
// The walk is a template over the engine state (runDfaT): the element-exact
// Partition and the run-length RlePartition (src/rle) both drive it through
// the shared push engine, and a lockstep walk makes identical decisions on
// either state. Cycle detection uses the state's own hash(); the two hashes
// differ as functions but agree on what matters — a state repeats on one
// engine iff it repeats on the other (modulo hash collisions, which only
// ever cause a premature plateau verdict).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dfa/schedule.hpp"
#include "grid/partition.hpp"
#include "grid/render.hpp"
#include "push/beautify.hpp"
#include "push/engine.hpp"
#include "push/push.hpp"
#include "support/deadline.hpp"

namespace pushpart {

struct DfaOptions {
  /// Hard cap on applied pushes (safety net; never hit in practice).
  std::int64_t maxPushes = 50'000'000;
  /// Snapshot the partition every `traceEvery` applied pushes (0 = off).
  std::int64_t traceEvery = 0;
  /// Rendering budget for trace snapshots (characters per side).
  int traceCells = 50;
  /// Run the beautify pass on the condensed result (paper §VIII-C).
  bool beautifyResult = true;
  /// Consecutive non-improving sweeps tolerated before declaring a stall.
  int maxStalledSweeps = 50;
  /// Cooperative cancellation: polled at every sweep boundary and every
  /// `cancelCheckEvery` applied pushes. A cancelled walk stops with
  /// DfaStop::kCancelled and returns its current (always-valid) partition —
  /// never an exception, never a torn state. The beautify pass is skipped
  /// for cancelled walks (the caller asked for time back, not polish).
  CancelToken cancel;
  std::int64_t cancelCheckEvery = 1024;
};

/// Point-in-time view of a run, for Fig. 7 style visualisation.
struct TraceSnapshot {
  std::int64_t pushesApplied = 0;
  std::int64_t voc = 0;
  std::string art;  ///< renderAscii() at options.traceCells granularity.
};

/// Why the walk stopped.
enum class DfaStop {
  kCondensed,     ///< Full sweep with no applicable push — an accept state.
  kCycle,         ///< Revisited a state on a VoC plateau.
  kStalled,       ///< Too many non-improving sweeps.
  kPushBudget,    ///< options.maxPushes exhausted.
  kCancelled,     ///< options.cancel fired; best-so-far state returned.
};

constexpr const char* dfaStopName(DfaStop s) {
  switch (s) {
    case DfaStop::kCondensed: return "condensed";
    case DfaStop::kCycle: return "cycle";
    case DfaStop::kStalled: return "stalled";
    case DfaStop::kPushBudget: return "push-budget";
    case DfaStop::kCancelled: return "cancelled";
  }
  return "?";
}

template <typename Q>
struct DfaResultT {
  /// Engine states are not default-constructible, so neither is the result;
  /// the runner seeds it with the start state and mutates in place.
  explicit DfaResultT(Q start) : final(std::move(start)) {}

  Q final;  ///< The accept-state partition (post-beautify if enabled).
  DfaStop stop = DfaStop::kCondensed;
  std::int64_t pushesApplied = 0;
  std::int64_t sweeps = 0;
  std::int64_t vocStart = 0;
  std::int64_t vocEnd = 0;
  BeautifyResult beautify;  ///< Zeroed when options.beautifyResult is false.
  std::vector<TraceSnapshot> trace;
};

using DfaResult = DfaResultT<Partition>;

/// Trace-rendering hook, resolved by argument-dependent lookup so run-length
/// states can render without the DFA knowing about them (src/rle provides
/// the RlePartition overload).
inline std::string dfaTraceArt(const Partition& q, int cells) {
  return renderAscii(q, cells);
}

/// Runs the DFA from `q0` under `schedule` on any engine state. The returned
/// partition is an accept state of the schedule's direction set (and, with
/// beautify on, has no strictly-improving push in any direction).
template <typename Q>
DfaResultT<Q> runDfaT(Q q0, const Schedule& schedule,
                      const DfaOptions& options = {}) {
  PUSHPART_CHECK_MSG(!schedule.slots.empty(), "schedule has no slots");
  DfaResultT<Q> result(std::move(q0));
  Q& q = result.final;
  result.vocStart = q.volumeOfCommunication();

  auto maybeSnapshot = [&](bool force) {
    if (options.traceEvery <= 0) return;
    if (!force && (result.trace.empty()
                       ? result.pushesApplied < 1
                       : result.pushesApplied - result.trace.back().pushesApplied <
                             options.traceEvery))
      return;
    result.trace.push_back({result.pushesApplied, q.volumeOfCommunication(),
                            dfaTraceArt(q, options.traceCells)});
  };
  maybeSnapshot(true);  // q0

  std::unordered_set<std::uint64_t> plateauStates;
  int stalledSweeps = 0;
  bool running = true;
  const std::int64_t cancelEvery =
      options.cancelCheckEvery > 0 ? options.cancelCheckEvery : 1;

  // Sweep boundaries and every cancelEvery-th push poll the token; a push is
  // transactional, so stopping between pushes always leaves a valid state.
  if (options.cancel.cancelled()) {
    result.stop = DfaStop::kCancelled;
    running = false;
  }

  while (running) {
    ++result.sweeps;
    bool anyApplied = false;
    bool anyImproved = false;
    for (const ScheduleSlot& slot : schedule.slots) {
      const PushOutcome out = tryPushState(q, slot.active, slot.dir);
      if (!out.applied) continue;
      anyApplied = true;
      anyImproved |= out.improvedVoC();
      ++result.pushesApplied;
      maybeSnapshot(false);
      if (result.pushesApplied >= options.maxPushes) {
        result.stop = DfaStop::kPushBudget;
        running = false;
        break;
      }
      if (result.pushesApplied % cancelEvery == 0 &&
          options.cancel.cancelled()) {
        result.stop = DfaStop::kCancelled;
        running = false;
        break;
      }
    }
    if (!running) break;

    if (options.cancel.cancelled()) {
      result.stop = DfaStop::kCancelled;
      break;
    }

    if (!anyApplied) {
      result.stop = DfaStop::kCondensed;
      break;
    }
    if (anyImproved) {
      stalledSweeps = 0;
      plateauStates.clear();
      continue;
    }
    // A sweep that applied only VoC-preserving pushes: detect cycles by
    // state hash, and bound how long a plateau may wander.
    if (!plateauStates.insert(q.hash()).second) {
      result.stop = DfaStop::kCycle;
      break;
    }
    if (++stalledSweeps >= options.maxStalledSweeps) {
      result.stop = DfaStop::kStalled;
      break;
    }
  }

  if (options.beautifyResult && result.stop != DfaStop::kCancelled)
    result.beautify = beautifyState(q);

  result.vocEnd = q.volumeOfCommunication();
  maybeSnapshot(true);  // final state
  return result;
}

/// Grid-typed entry point (the historical API; all serving-layer callers use
/// this signature).
DfaResult runDfa(Partition q0, const Schedule& schedule,
                 const DfaOptions& options = {});

}  // namespace pushpart
