// The DFA search program (paper §V–§VI): random start state, repeated Push,
// condensed accept states.
//
// The paper frames the search as a DFA: states Q are all element arrangements,
// the alphabet Σ is (active processor, direction), the transition function δ
// is the Push operation, q0 is random, and the accept states F are the fixed
// points where no legal Push remains. runDfa drives one such walk to an
// accept state:
//
//   * It sweeps the schedule's slots round-robin, applying every push that
//     fires; a full sweep with no applied push means the partition is
//     condensed w.r.t. the schedule's direction set (paper §VI-C).
//   * VoC-preserving pushes (Types Five/Six) could in principle wander or
//     cycle forever; state hashing at non-improving sweep boundaries detects
//     cycles, and a stall cap bounds plateaus (design ablation in DESIGN.md).
//   * Optionally a beautify pass (paper §VIII-C) then applies the strictly
//     improving pushes the schedule never selected, turning Archetype C
//     interlocks into Archetype A.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfa/schedule.hpp"
#include "grid/partition.hpp"
#include "push/beautify.hpp"
#include "push/push.hpp"
#include "support/deadline.hpp"

namespace pushpart {

struct DfaOptions {
  /// Hard cap on applied pushes (safety net; never hit in practice).
  std::int64_t maxPushes = 50'000'000;
  /// Snapshot the partition every `traceEvery` applied pushes (0 = off).
  std::int64_t traceEvery = 0;
  /// Rendering budget for trace snapshots (characters per side).
  int traceCells = 50;
  /// Run the beautify pass on the condensed result (paper §VIII-C).
  bool beautifyResult = true;
  /// Consecutive non-improving sweeps tolerated before declaring a stall.
  int maxStalledSweeps = 50;
  /// Cooperative cancellation: polled at every sweep boundary and every
  /// `cancelCheckEvery` applied pushes. A cancelled walk stops with
  /// DfaStop::kCancelled and returns its current (always-valid) partition —
  /// never an exception, never a torn state. The beautify pass is skipped
  /// for cancelled walks (the caller asked for time back, not polish).
  CancelToken cancel;
  std::int64_t cancelCheckEvery = 1024;
};

/// Point-in-time view of a run, for Fig. 7 style visualisation.
struct TraceSnapshot {
  std::int64_t pushesApplied = 0;
  std::int64_t voc = 0;
  std::string art;  ///< renderAscii() at options.traceCells granularity.
};

/// Why the walk stopped.
enum class DfaStop {
  kCondensed,     ///< Full sweep with no applicable push — an accept state.
  kCycle,         ///< Revisited a state on a VoC plateau.
  kStalled,       ///< Too many non-improving sweeps.
  kPushBudget,    ///< options.maxPushes exhausted.
  kCancelled,     ///< options.cancel fired; best-so-far state returned.
};

constexpr const char* dfaStopName(DfaStop s) {
  switch (s) {
    case DfaStop::kCondensed: return "condensed";
    case DfaStop::kCycle: return "cycle";
    case DfaStop::kStalled: return "stalled";
    case DfaStop::kPushBudget: return "push-budget";
    case DfaStop::kCancelled: return "cancelled";
  }
  return "?";
}

struct DfaResult {
  /// Partition is not default-constructible, so neither is DfaResult; the
  /// runner seeds it with the start state and mutates in place.
  explicit DfaResult(Partition start) : final(std::move(start)) {}

  Partition final;  ///< The accept-state partition (post-beautify if enabled).
  DfaStop stop = DfaStop::kCondensed;
  std::int64_t pushesApplied = 0;
  std::int64_t sweeps = 0;
  std::int64_t vocStart = 0;
  std::int64_t vocEnd = 0;
  BeautifyResult beautify;  ///< Zeroed when options.beautifyResult is false.
  std::vector<TraceSnapshot> trace;
};

/// Runs the DFA from `q0` under `schedule`. The returned partition is an
/// accept state of the schedule's direction set (and, with beautify on, has
/// no strictly-improving push in any direction).
DfaResult runDfa(Partition q0, const Schedule& schedule,
                 const DfaOptions& options = {});

}  // namespace pushpart
