// Multi-threaded batch driver for DFA experiments (paper §VII).
//
// The paper ran ~10,000 DFA walks per speed ratio by fanning instances out
// over a cluster; this driver does the same with worker threads on one
// machine. Every run gets an independent RNG stream derived from the batch
// seed, so results are reproducible regardless of thread interleaving: run r
// always uses stream split(r).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dfa/dfa.hpp"
#include "grid/ratio.hpp"
#include "support/deadline.hpp"

namespace pushpart {

/// Which engine state runs the walks. Both make identical decisions (the
/// differential suite in src/verify enforces it); kRle is the default
/// because its run-granular legality scans are an order of magnitude faster
/// on the condensed states walks spend most of their time in
/// (bench/micro_push). kGrid remains for differential testing and as the
/// element-exact fallback.
enum class BatchEngine { kRle, kGrid };

constexpr const char* batchEngineName(BatchEngine e) {
  switch (e) {
    case BatchEngine::kRle: return "rle";
    case BatchEngine::kGrid: return "grid";
  }
  return "?";
}

struct BatchOptions {
  int n = 100;                ///< Matrix size per run (paper: 1000).
  Ratio ratio{2, 1, 1};
  int runs = 100;             ///< Walks to perform (paper: ~10,000). Must be >= 0.
  int threads = 0;            ///< 0 = hardware_concurrency. Must be >= 0.
  std::uint64_t seed = 1;     ///< Batch seed; run r uses stream split(r).
  /// Fraction of runs that use the clustered q0 builder instead of the
  /// paper's scattered builder, diversifying start states. Must be in [0,1];
  /// runBatch rejects anything else (including NaN) with a CheckError.
  double clusteredStartFraction = 0.25;
  /// Cooperative cancellation for the whole batch. Polled before every run
  /// is claimed, and threaded into each run's DfaOptions so in-flight walks
  /// stop at their next check point. A cancelled batch returns best-so-far:
  /// completed runs were delivered normally, the summary is marked
  /// truncated, and nothing throws. (Any token already set on `dfa.cancel`
  /// is replaced by this one.)
  CancelToken cancel;
  /// Engine state for the walks. Results are converted back to the element
  /// grid either way, so consumers are engine-agnostic; with a fixed seed
  /// the two engines produce bit-identical batches.
  BatchEngine engine = BatchEngine::kRle;
  DfaOptions dfa;
};

/// Context handed to the per-run callback.
struct BatchRun {
  BatchRun(int index, Schedule sched, DfaResult res)
      : runIndex(index), schedule(std::move(sched)), result(std::move(res)) {}

  int runIndex;
  Schedule schedule;
  DfaResult result;
};

/// One run that did not finish: the DFA walk or the onResult callback threw.
struct BatchFailure {
  int runIndex = 0;
  std::string message;  ///< what() of the exception (or "unknown error").
};

/// Batch outcome: how many runs completed and which ones failed. A batch
/// with failures still ran every other run to completion.
struct BatchSummary {
  int completed = 0;      ///< Runs whose walk reached a natural stop.
  int truncatedRuns = 0;  ///< Runs delivered with DfaStop::kCancelled.
  int skippedRuns = 0;    ///< Runs never started (cancel fired first).
  std::vector<BatchFailure> failures;  ///< Sorted by runIndex.

  bool allCompleted() const { return failures.empty() && !truncated(); }
  /// True when cancellation cut the batch short: some runs were skipped or
  /// stopped mid-walk. Completed runs' results are valid best-so-far
  /// evidence.
  bool truncated() const { return truncatedRuns > 0 || skippedRuns > 0; }
};

/// Executes `options.runs` DFA walks, invoking `onResult` for each completed
/// run. The callback is serialized (called under a mutex, from worker
/// threads) so aggregation code needs no locking of its own.
///
/// A run that throws — from the walk itself or from `onResult` — is recorded
/// in the returned summary (index + message) and the batch carries on with
/// the remaining runs; worker threads never die and nothing is rethrown.
/// Callers that require a clean batch should check summary.allCompleted().
///
/// Cancellation (options.cancel) is cooperative: runs already in flight stop
/// at their next DFA check point and are delivered to `onResult` with
/// result.stop == DfaStop::kCancelled (consumers may filter on it); runs not
/// yet claimed are skipped. The summary reports both counts.
BatchSummary runBatch(const BatchOptions& options,
                      const std::function<void(const BatchRun&)>& onResult);

}  // namespace pushpart
