// Partition instantiation of the state-generic DFA walk (runDfaT in
// dfa.hpp); the run-length engine instantiates the same template through
// src/rle.
#include "dfa/dfa.hpp"

namespace pushpart {

DfaResult runDfa(Partition q0, const Schedule& schedule,
                 const DfaOptions& options) {
  return runDfaT(std::move(q0), schedule, options);
}

}  // namespace pushpart
