#include "dfa/dfa.hpp"

#include <unordered_set>

#include "grid/render.hpp"
#include "support/check.hpp"

namespace pushpart {

DfaResult runDfa(Partition q0, const Schedule& schedule,
                 const DfaOptions& options) {
  PUSHPART_CHECK_MSG(!schedule.slots.empty(), "schedule has no slots");
  DfaResult result(std::move(q0));
  Partition& q = result.final;
  result.vocStart = q.volumeOfCommunication();

  auto maybeSnapshot = [&](bool force) {
    if (options.traceEvery <= 0) return;
    if (!force && (result.trace.empty()
                       ? result.pushesApplied < 1
                       : result.pushesApplied - result.trace.back().pushesApplied <
                             options.traceEvery))
      return;
    result.trace.push_back({result.pushesApplied, q.volumeOfCommunication(),
                            renderAscii(q, options.traceCells)});
  };
  maybeSnapshot(true);  // q0

  std::unordered_set<std::uint64_t> plateauStates;
  int stalledSweeps = 0;
  bool running = true;
  const std::int64_t cancelEvery =
      options.cancelCheckEvery > 0 ? options.cancelCheckEvery : 1;

  // Sweep boundaries and every cancelEvery-th push poll the token; a push is
  // transactional, so stopping between pushes always leaves a valid state.
  if (options.cancel.cancelled()) {
    result.stop = DfaStop::kCancelled;
    running = false;
  }

  while (running) {
    ++result.sweeps;
    bool anyApplied = false;
    bool anyImproved = false;
    for (const ScheduleSlot& slot : schedule.slots) {
      const PushOutcome out = tryPush(q, slot.active, slot.dir);
      if (!out.applied) continue;
      anyApplied = true;
      anyImproved |= out.improvedVoC();
      ++result.pushesApplied;
      maybeSnapshot(false);
      if (result.pushesApplied >= options.maxPushes) {
        result.stop = DfaStop::kPushBudget;
        running = false;
        break;
      }
      if (result.pushesApplied % cancelEvery == 0 &&
          options.cancel.cancelled()) {
        result.stop = DfaStop::kCancelled;
        running = false;
        break;
      }
    }
    if (!running) break;

    if (options.cancel.cancelled()) {
      result.stop = DfaStop::kCancelled;
      break;
    }

    if (!anyApplied) {
      result.stop = DfaStop::kCondensed;
      break;
    }
    if (anyImproved) {
      stalledSweeps = 0;
      plateauStates.clear();
      continue;
    }
    // A sweep that applied only VoC-preserving pushes: detect cycles by
    // state hash, and bound how long a plateau may wander.
    if (!plateauStates.insert(q.hash()).second) {
      result.stop = DfaStop::kCycle;
      break;
    }
    if (++stalledSweeps >= options.maxStalledSweeps) {
      result.stop = DfaStop::kStalled;
      break;
    }
  }

  if (options.beautifyResult && result.stop != DfaStop::kCancelled)
    result.beautify = beautify(q);

  result.vocEnd = q.volumeOfCommunication();
  maybeSnapshot(true);  // final state
  return result;
}

}  // namespace pushpart
