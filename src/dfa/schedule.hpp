// Randomized push schedules (paper §VI-A1).
//
// A schedule fixes, for each slow processor, the subset of directions it may
// be pushed in and the interleaving order of (processor, direction) slots.
// The paper randomizes all three choices per run so no preconceived notion of
// the final shape biases the search: one run may push R only Down; another
// interleaves R:{Down,Left} with S:{Up,Right}; and so on.
#pragma once

#include <string>
#include <vector>

#include "grid/proc.hpp"
#include "push/direction.hpp"
#include "support/rng.hpp"

namespace pushpart {

/// One (active processor, direction) pair the DFA cycles through.
struct ScheduleSlot {
  Proc active = Proc::R;
  Direction dir = Direction::Down;

  friend bool operator==(const ScheduleSlot&, const ScheduleSlot&) = default;
};

/// An ordered list of slots; the DFA sweeps them round-robin.
struct Schedule {
  std::vector<ScheduleSlot> slots;

  /// Paper §VI-A1: for each of R and S independently draw how many
  /// directions (1–4), which directions, then shuffle the combined slot
  /// order (covering single-direction, alternating and interleaved cases).
  static Schedule random(Rng& rng);

  /// Every (slow processor, direction) combination, fixed order. Used by
  /// beautify-style full sweeps and tests.
  static Schedule full();

  /// The directions slot list mentions for `p` (deduplicated, stable order).
  std::vector<Direction> directionsFor(Proc p) const;

  /// Human-readable, e.g. "R:Down R:Left S:Up".
  std::string str() const;
};

}  // namespace pushpart
