#include "dfa/schedule.hpp"

#include <algorithm>

namespace pushpart {

Schedule Schedule::random(Rng& rng) {
  Schedule out;
  // Randomly choose which slow processor is considered first (paper §VI-A).
  std::vector<Proc> procs(kSlowProcs.begin(), kSlowProcs.end());
  rng.shuffle(procs);

  for (Proc p : procs) {
    // 1–4 directions, distinct, in random order.
    std::vector<Direction> dirs(kAllDirections.begin(), kAllDirections.end());
    rng.shuffle(dirs);
    const auto howMany = 1 + rng.below(4);
    dirs.resize(howMany);
    for (Direction d : dirs) out.slots.push_back({p, d});
  }
  // Shuffle the combined order so direction applications interleave across
  // processors as well as within one.
  rng.shuffle(out.slots);
  return out;
}

Schedule Schedule::full() {
  Schedule out;
  for (Proc p : kSlowProcs)
    for (Direction d : kAllDirections) out.slots.push_back({p, d});
  return out;
}

std::vector<Direction> Schedule::directionsFor(Proc p) const {
  std::vector<Direction> dirs;
  for (const auto& slot : slots) {
    if (slot.active != p) continue;
    if (std::find(dirs.begin(), dirs.end(), slot.dir) == dirs.end())
      dirs.push_back(slot.dir);
  }
  return dirs;
}

std::string Schedule::str() const {
  std::string out;
  for (const auto& slot : slots) {
    if (!out.empty()) out += ' ';
    out += procName(slot.active);
    out += ':';
    out += directionName(slot.dir);
  }
  return out;
}

}  // namespace pushpart
