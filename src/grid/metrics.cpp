#include "grid/metrics.hpp"

#include <bit>
#include <vector>

namespace pushpart {

ProcComm procComm(const Partition& q, Proc x) {
  ProcComm out;
  out.elements = q.count(x);
  out.rowsUsed = q.rowsUsed(x);
  out.colsUsed = q.colsUsed(x);
  const auto n = static_cast<std::int64_t>(q.n());
  out.sendVolume = n * out.rowsUsed + n * out.colsUsed - out.elements;
  return out;
}

std::array<ProcComm, kNumProcs> allProcComm(const Partition& q) {
  std::array<ProcComm, kNumProcs> out;
  for (Proc x : kAllProcs) out[static_cast<std::size_t>(procIndex(x))] = procComm(q, x);
  return out;
}

std::int64_t volumeOfCommunication(const Partition& q) {
  return q.volumeOfCommunication();
}

std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> pairVolumes(
    const Partition& q) {
  std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> v{};
  const int n = q.n();
  for (Proc s : kAllProcs) {
    for (Proc r : kAllProcs) {
      if (s == r) continue;
      std::int64_t total = 0;
      for (int i = 0; i < n; ++i)
        if (q.rowHas(r, i)) total += q.rowCount(s, i);
      for (int j = 0; j < n; ++j)
        if (q.colHas(r, j)) total += q.colCount(s, j);
      v[procSlot(s)][procSlot(r)] = total;
    }
  }
  return v;
}

std::int64_t overlapElements(const Partition& q, Proc x) {
  const int n = q.n();
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    if (q.rowCount(x, i) != n) continue;  // pivot row i not fully owned
    for (int j = 0; j < n; ++j)
      if (q.colCount(x, j) == n) ++total;  // (i,j) is X's and both pivots are
  }
  return total;
}

std::int64_t overlapFlopSteps(const Partition& q, Proc x) {
  // Σ_{i,j,k} M[i][j]·M[i][k]·M[k][j]  where M is X's ownership mask.
  // Rewritten as Σ over owned cells (i,k) of dot(row_i, row_k) using packed
  // 64-bit row bitsets: O(#owned · N/64).
  const int n = q.n();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(n) * words, 0);
  for (int i = 0; i < n; ++i) {
    if (q.rowCount(x, i) == 0) continue;
    auto* row = &rows[static_cast<std::size_t>(i) * words];
    for (int j = 0; j < n; ++j)
      if (q.at(i, j) == x)
        row[static_cast<std::size_t>(j) / 64] |=
            (std::uint64_t{1} << (static_cast<std::size_t>(j) % 64));
  }
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    if (q.rowCount(x, i) == 0) continue;
    const auto* ri = &rows[static_cast<std::size_t>(i) * words];
    for (int k = 0; k < n; ++k) {
      if (q.at(i, k) != x) continue;
      const auto* rk = &rows[static_cast<std::size_t>(k) * words];
      for (std::size_t w = 0; w < words; ++w)
        total += std::popcount(ri[w] & rk[w]);
    }
  }
  return total;
}

}  // namespace pushpart
