#include "grid/builder.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/check.hpp"

namespace pushpart {

Partition randomPartition(int n, const Ratio& ratio, Rng& rng) {
  Partition q(n, Proc::P);
  const auto counts = ratio.elementCounts(n);
  for (Proc x : kSlowProcs) {
    std::int64_t remaining = counts[static_cast<std::size_t>(procIndex(x))];
    // Paper §VI-A2: draw random (row, col) pairs; claim the cell if it still
    // belongs to P. P always holds the plurality of cells (ratio assumption),
    // so rejection stays cheap; still, fall back to a sweep when the tail of
    // free cells gets sparse enough that rejection would thrash.
    std::int64_t attempts = 0;
    const std::int64_t attemptBudget = 20 * q.cellCount();
    while (remaining > 0 && attempts < attemptBudget) {
      ++attempts;
      const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (q.at(i, j) == Proc::P) {
        q.set(i, j, x);
        --remaining;
      }
    }
    for (int i = 0; i < n && remaining > 0; ++i)
      for (int j = 0; j < n && remaining > 0; ++j)
        if (q.at(i, j) == Proc::P) {
          q.set(i, j, x);
          --remaining;
        }
    PUSHPART_CHECK(remaining == 0);
  }
  return q;
}

Partition randomClusteredPartition(int n, const Ratio& ratio, Rng& rng) {
  Partition q(n, Proc::P);
  const auto counts = ratio.elementCounts(n);
  for (Proc x : kSlowProcs) {
    std::int64_t remaining = counts[static_cast<std::size_t>(procIndex(x))];
    while (remaining > 0) {
      // Drop a random small rectangle of cells; clip to the grid and to
      // cells still owned by P.
      const int maxSide = std::max(2, n / 4);
      const int h = static_cast<int>(
          1 + rng.below(static_cast<std::uint64_t>(maxSide)));
      const int w = static_cast<int>(
          1 + rng.below(static_cast<std::uint64_t>(maxSide)));
      const int i0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const int j0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      for (int i = i0; i < std::min(n, i0 + h) && remaining > 0; ++i)
        for (int j = j0; j < std::min(n, j0 + w) && remaining > 0; ++j)
          if (q.at(i, j) == Proc::P) {
            q.set(i, j, x);
            --remaining;
          }
    }
  }
  return q;
}

Partition fromAscii(const std::string& art) {
  std::vector<std::string> rows;
  std::istringstream in(art);
  std::string line;
  while (std::getline(in, line)) {
    // Trim surrounding whitespace so raw string literals can be indented.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    rows.push_back(line.substr(b, e - b + 1));
  }
  if (rows.empty()) throw std::invalid_argument("fromAscii: empty art");
  const int n = static_cast<int>(rows.size());
  for (const auto& r : rows)
    if (static_cast<int>(r.size()) != n)
      throw std::invalid_argument("fromAscii: grid must be square, row '" + r +
                                  "' has length " + std::to_string(r.size()) +
                                  " but there are " + std::to_string(n) +
                                  " rows");
  Partition q(n, Proc::P);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      switch (rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        case 'P': q.set(i, j, Proc::P); break;
        case 'R': q.set(i, j, Proc::R); break;
        case 'S': q.set(i, j, Proc::S); break;
        default:
          throw std::invalid_argument(
              "fromAscii: cell characters must be P, R or S");
      }
    }
  return q;
}

std::string toAscii(const Partition& q) {
  std::string out;
  out.reserve(static_cast<std::size_t>(q.n()) *
              static_cast<std::size_t>(q.n() + 1));
  for (int i = 0; i < q.n(); ++i) {
    for (int j = 0; j < q.n(); ++j) out += procName(q.at(i, j));
    if (i + 1 < q.n()) out += '\n';
  }
  return out;
}

}  // namespace pushpart
