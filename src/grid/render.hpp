// Coarse ASCII rendering of partitions (paper Fig. 7 style).
//
// The paper visualises a 1000×1000 partition at 1/100 granularity: each
// displayed box covers a 100×100 block and is coloured by the majority owner.
// renderAscii does the same with characters: P → '.', R → 'r', S → 'S'.
#pragma once

#include <string>

#include "grid/partition.hpp"

namespace pushpart {

/// Renders `q` as at most maxCells×maxCells characters, each showing the
/// majority owner of its block. When n <= maxCells the rendering is exact
/// (one character per cell).
std::string renderAscii(const Partition& q, int maxCells = 50);

/// One-line stats header: "n=… VoC=… R:… S:… P:…" for trace logs.
std::string summaryLine(const Partition& q);

}  // namespace pushpart
