#include "grid/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "grid/builder.hpp"

namespace pushpart {

void savePartition(const Partition& q, std::ostream& os) {
  os << "pushpart-partition v1\n";
  os << "n " << q.n() << '\n';
  os << toAscii(q) << '\n';
}

void savePartition(const Partition& q, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("savePartition: cannot open " + path);
  savePartition(q, out);
}

Partition loadPartition(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != "pushpart-partition v1")
    throw std::runtime_error("loadPartition: bad magic '" + magic + "'");
  std::string nline;
  std::getline(is, nline);
  std::istringstream nparse(nline);
  std::string key;
  int n = 0;
  nparse >> key >> n;
  if (key != "n" || n <= 0)
    throw std::runtime_error("loadPartition: bad size line '" + nline + "'");
  std::string art, line;
  for (int i = 0; i < n; ++i) {
    if (!std::getline(is, line))
      throw std::runtime_error("loadPartition: truncated grid");
    art += line;
    art += '\n';
  }
  Partition q = fromAscii(art);
  if (q.n() != n)
    throw std::runtime_error("loadPartition: grid size disagrees with header");
  return q;
}

Partition loadPartition(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadPartition: cannot open " + path);
  return loadPartition(in);
}

}  // namespace pushpart
