#include "grid/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "grid/builder.hpp"

namespace pushpart {

void savePartition(const Partition& q, std::ostream& os) {
  os << "pushpart-partition v1\n";
  os << "n " << q.n() << '\n';
  os << toAscii(q) << '\n';
}

void savePartition(const Partition& q, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("savePartition: cannot open " + path);
  savePartition(q, out);
}

Partition loadPartition(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != "pushpart-partition v1")
    throw std::runtime_error("loadPartition: bad magic '" + magic + "'");
  std::string nline;
  std::getline(is, nline);
  std::istringstream nparse(nline);
  std::string key;
  long long n = 0;
  if (!(nparse >> key >> n) || key != "n")
    throw std::runtime_error("loadPartition: bad size line '" + nline + "'");
  std::string trailing;
  if (nparse >> trailing)
    throw std::runtime_error("loadPartition: trailing junk '" + trailing +
                             "' in size line '" + nline + "'");
  if (n <= 0)
    throw std::runtime_error("loadPartition: n must be positive, got " +
                             std::to_string(n));
  // A malformed or hostile header must not drive an O(n²) allocation:
  // 16384² cells (256M) is already far beyond any realistic partition file.
  constexpr long long kMaxN = 16384;
  if (n > kMaxN)
    throw std::runtime_error("loadPartition: n " + std::to_string(n) +
                             " exceeds the supported maximum " +
                             std::to_string(kMaxN));
  std::string art, line;
  for (long long i = 0; i < n; ++i) {
    if (!std::getline(is, line))
      throw std::runtime_error("loadPartition: truncated grid (got " +
                               std::to_string(i) + " of " + std::to_string(n) +
                               " rows)");
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    if (static_cast<long long>(line.size()) != n)
      throw std::runtime_error(
          "loadPartition: row " + std::to_string(i) + " has " +
          std::to_string(line.size()) + " cells, expected " +
          std::to_string(n));
    for (std::size_t j = 0; j < line.size(); ++j) {
      const char c = line[j];
      if (c != 'P' && c != 'R' && c != 'S')
        throw std::runtime_error(
            "loadPartition: invalid cell '" + std::string(1, c) + "' at row " +
            std::to_string(i) + ", column " + std::to_string(j) +
            " (expected P, R or S)");
    }
    art += line;
    art += '\n';
  }
  Partition q = fromAscii(art);
  if (q.n() != n)
    throw std::runtime_error("loadPartition: grid size disagrees with header");
  return q;
}

Partition loadPartition(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadPartition: cannot open " + path);
  return loadPartition(in);
}

}  // namespace pushpart
