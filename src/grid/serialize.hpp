// Partition persistence.
//
// The DFA batch runner can dump condensed shapes for offline inspection
// (the paper published its shape outputs at hcl.ucd.ie); this module gives a
// small self-describing text format:
//
//   pushpart-partition v1
//   n <N>
//   <N lines of P/R/S characters>
#pragma once

#include <iosfwd>
#include <string>

#include "grid/partition.hpp"

namespace pushpart {

/// Writes the v1 text format.
void savePartition(const Partition& q, std::ostream& os);
void savePartition(const Partition& q, const std::string& path);

/// Reads the v1 text format. Throws std::runtime_error on malformed input.
Partition loadPartition(std::istream& is);
Partition loadPartition(const std::string& path);

}  // namespace pushpart
