// The data-partition grid q : [0,N)² → {R, S, P} with incremental metrics.
//
// This is the central data structure of the library. It stores the paper's
// partition function q(i,j) (§IV) as a dense N×N cell grid and maintains,
// incrementally under single-cell reassignment:
//
//   * per-processor per-row / per-column element counts,
//   * per-processor totals and used-row / used-column counts (i_X, j_X of
//     Eq. 6),
//   * per-row / per-column distinct-owner counts c_i, c_j and their sums, so
//     the Volume of Communication (Eq. 1) is an O(1) query,
//   * lazily-recomputed enclosing rectangles.
//
// Every mutation is O(1); a full VoC recompute would be O(N·kNumProcs). The
// DFA search performs millions of cell moves per run, which is why the
// counters are incremental (see bench/micro_push for the measured gap).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "grid/proc.hpp"
#include "grid/rect.hpp"

namespace pushpart {

class Partition {
 public:
  /// N×N grid with every cell assigned to `fill` (default: the fastest
  /// processor P, matching the paper's q0 initialisation, §VI-A2).
  explicit Partition(int n, Proc fill = Proc::P);

  int n() const { return n_; }
  std::int64_t cellCount() const {
    return static_cast<std::int64_t>(n_) * n_;
  }

  /// Owner of cell (i, j).
  Proc at(int i, int j) const { return cells_[index(i, j)]; }

  /// Reassigns cell (i, j) to processor `p`, updating all counters.
  void set(int i, int j, Proc p);

  /// Swaps the owners of two cells (no-op if they already match).
  void swapCells(int i1, int j1, int i2, int j2);

  // --- Occupancy queries (all O(1)) -------------------------------------

  /// # elements of processor p in row i.
  int rowCount(Proc p, int i) const {
    return rowCnt_[procSlot(p)][static_cast<std::size_t>(i)];
  }
  /// # elements of processor p in column j.
  int colCount(Proc p, int j) const {
    return colCnt_[procSlot(p)][static_cast<std::size_t>(j)];
  }
  bool rowHas(Proc p, int i) const { return rowCount(p, i) > 0; }
  bool colHas(Proc p, int j) const { return colCount(p, j) > 0; }

  /// Total elements assigned to p (∈X in the paper).
  std::int64_t count(Proc p) const { return total_[procSlot(p)]; }

  /// i_X — number of rows containing at least one element of p (Eq. 6).
  int rowsUsed(Proc p) const { return rowsUsed_[procSlot(p)]; }
  /// j_X — number of columns containing at least one element of p (Eq. 6).
  int colsUsed(Proc p) const { return colsUsed_[procSlot(p)]; }

  /// c_i — number of distinct processors owning elements in row i (Eq. 1).
  int procsInRow(int i) const { return ci_[static_cast<std::size_t>(i)]; }
  /// c_j — number of distinct processors owning elements in column j.
  int procsInCol(int j) const { return cj_[static_cast<std::size_t>(j)]; }

  /// Volume of Communication, Eq. 1:
  ///   VoC = Σ_i N(c_i − 1) + Σ_j N(c_j − 1).
  /// O(1): maintained from the running sums of c_i and c_j.
  std::int64_t volumeOfCommunication() const;

  /// Tightest axis-aligned rectangle around p's elements; empty when p owns
  /// nothing. O(1) when cached, O(N) to recompute after a mutation.
  const Rect& enclosingRect(Proc p) const;

  // --- Identity ----------------------------------------------------------

  /// 64-bit FNV-1a over the cell grid; used for cycle detection in the DFA.
  std::uint64_t hash() const;

  bool operator==(const Partition& o) const {
    return n_ == o.n_ && cells_ == o.cells_;
  }

  /// Full O(N²) recomputation of every counter, for validation in tests.
  /// Throws CheckError if any incremental counter disagrees.
  void validateCounters() const;

 private:
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  void recomputeRect(Proc p) const;

  int n_;
  std::vector<Proc> cells_;

  // Incremental counters. rowCnt_[x][i] = #elements of processor x in row i.
  std::array<std::vector<std::int32_t>, kNumProcs> rowCnt_;
  std::array<std::vector<std::int32_t>, kNumProcs> colCnt_;
  std::array<std::int64_t, kNumProcs> total_{};
  std::array<std::int32_t, kNumProcs> rowsUsed_{};
  std::array<std::int32_t, kNumProcs> colsUsed_{};

  // c_i / c_j per line plus running sums for O(1) VoC.
  std::vector<std::int8_t> ci_, cj_;
  std::int64_t ciSum_ = 0;
  std::int64_t cjSum_ = 0;

  // Lazily maintained enclosing rectangles.
  mutable std::array<Rect, kNumProcs> rect_{};
  mutable std::array<bool, kNumProcs> rectDirty_{};
};

}  // namespace pushpart
