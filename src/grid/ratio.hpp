// Processor speed ratios P_r : R_r : S_r.
//
// The paper normalizes S_r = 1 and requires P to be the (equal-)fastest
// processor (assumption 2, §IV). A Ratio carries the three relative speeds,
// parses/prints the "5:2:1" notation used throughout the paper, and converts
// speeds into per-processor element counts for an N×N matrix: processor X is
// assigned ⌊N²·X_r/T⌉ elements where T = P_r + R_r + S_r (Eq. 12).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "grid/proc.hpp"

namespace pushpart {

struct Ratio {
  double p = 1.0;  ///< P_r, the fastest processor's relative speed.
  double r = 1.0;  ///< R_r.
  double s = 1.0;  ///< S_r; the paper normalizes this to 1.

  /// Sum of the relative speeds, T in the paper's Eq. 12.
  double total() const { return p + r + s; }

  /// Relative speed of one processor.
  double speed(Proc x) const;

  /// Fraction of the matrix owned by processor X: X_r / T.
  double fraction(Proc x) const { return speed(x) / total(); }

  /// Element counts {eR, eS, eP} for an N×N matrix, summing exactly to N².
  /// R and S counts are floored; P absorbs both remainders (it is the
  /// largest share by assumption, and flooring keeps eP >= eR, eS even
  /// when P ties R in speed — see the .cpp comment).
  std::array<std::int64_t, kNumProcs> elementCounts(int n) const;

  /// Normalized copy with s == 1 (divides all three by s).
  Ratio normalized() const;

  /// True when the assumptions of §IV hold: all speeds positive and
  /// p >= max(r, s).
  bool valid() const;

  /// Parses "P:R:S", e.g. "5:2:1". Throws std::invalid_argument on bad input.
  static Ratio parse(const std::string& text);

  /// "P:R:S" with compact number formatting.
  std::string str() const;

  friend bool operator==(const Ratio&, const Ratio&) = default;
};

/// The eleven ratios studied experimentally in the paper (§VII).
const std::array<Ratio, 11>& paperRatios();

}  // namespace pushpart
