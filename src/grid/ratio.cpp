#include "grid/ratio.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "support/check.hpp"
#include "support/csv.hpp"

namespace pushpart {

double Ratio::speed(Proc x) const {
  switch (x) {
    case Proc::P: return p;
    case Proc::R: return r;
    case Proc::S: return s;
  }
  return 0.0;
}

std::array<std::int64_t, kNumProcs> Ratio::elementCounts(int n) const {
  PUSHPART_CHECK(n > 0);
  PUSHPART_CHECK_MSG(valid(), "invalid ratio " << str());
  const double t = total();
  const auto n2 = static_cast<std::int64_t>(n) * n;
  // Floor (not round-to-nearest) so eP = n² − eR − eS ≥ n²·p/t ≥ eR, eS even
  // when P ties R in speed: the assumption "P holds the largest share" then
  // survives integer rounding.
  const auto eR = static_cast<std::int64_t>(
      std::floor(static_cast<double>(n2) * r / t));
  const auto eS = static_cast<std::int64_t>(
      std::floor(static_cast<double>(n2) * s / t));
  const auto eP = n2 - eR - eS;
  PUSHPART_CHECK_MSG(eP >= 0 && eR >= 0 && eS >= 0,
                     "element counts underflow for ratio " << str() << ", n="
                                                           << n);
  std::array<std::int64_t, kNumProcs> out{};
  out[procIndex(Proc::R)] = eR;
  out[procIndex(Proc::S)] = eS;
  out[procIndex(Proc::P)] = eP;
  return out;
}

Ratio Ratio::normalized() const {
  PUSHPART_CHECK(s > 0);
  return Ratio{p / s, r / s, 1.0};
}

bool Ratio::valid() const {
  return p > 0 && r > 0 && s > 0 && p >= r && p >= s;
}

Ratio Ratio::parse(const std::string& text) {
  Ratio out;
  double* slots[3] = {&out.p, &out.r, &out.s};
  const char* cur = text.c_str();
  for (int i = 0; i < 3; ++i) {
    char* end = nullptr;
    *slots[i] = std::strtod(cur, &end);
    if (end == cur)
      throw std::invalid_argument("Ratio::parse: bad ratio '" + text + "'");
    cur = end;
    if (i < 2) {
      if (*cur != ':')
        throw std::invalid_argument("Ratio::parse: expected ':' in '" + text +
                                    "'");
      ++cur;
    }
  }
  if (*cur != '\0')
    throw std::invalid_argument("Ratio::parse: trailing junk in '" + text +
                                "'");
  if (!(out.p > 0 && out.r > 0 && out.s > 0))
    throw std::invalid_argument("Ratio::parse: speeds must be positive in '" +
                                text + "'");
  return out;
}

std::string Ratio::str() const {
  return formatNumber(p) + ":" + formatNumber(r) + ":" + formatNumber(s);
}

const std::array<Ratio, 11>& paperRatios() {
  static const std::array<Ratio, 11> ratios = {
      Ratio{2, 1, 1}, Ratio{3, 1, 1}, Ratio{4, 1, 1},  Ratio{5, 1, 1},
      Ratio{10, 1, 1}, Ratio{2, 2, 1}, Ratio{3, 2, 1}, Ratio{4, 2, 1},
      Ratio{5, 2, 1}, Ratio{5, 3, 1}, Ratio{5, 4, 1}};
  return ratios;
}

}  // namespace pushpart
