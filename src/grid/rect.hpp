// Axis-aligned integer rectangles (half-open), used for enclosing rectangles.
//
// The Push operation is defined relative to each processor's *enclosing
// rectangle* — the tightest axis-aligned box around its elements (paper §II).
// Rectangles here are half-open: rows [rowBegin, rowEnd), cols [colBegin,
// colEnd); an empty rectangle has rowBegin == rowEnd == colBegin == colEnd == 0.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>

namespace pushpart {

struct Rect {
  int rowBegin = 0;
  int rowEnd = 0;
  int colBegin = 0;
  int colEnd = 0;

  static Rect empty() { return {}; }

  bool isEmpty() const { return rowBegin >= rowEnd || colBegin >= colEnd; }

  int height() const { return isEmpty() ? 0 : rowEnd - rowBegin; }
  int width() const { return isEmpty() ? 0 : colEnd - colBegin; }
  std::int64_t area() const {
    return static_cast<std::int64_t>(height()) * width();
  }

  bool contains(int i, int j) const {
    return i >= rowBegin && i < rowEnd && j >= colBegin && j < colEnd;
  }

  /// True when `inner` lies entirely within *this. Empty rects are contained
  /// in everything.
  bool contains(const Rect& inner) const {
    if (inner.isEmpty()) return true;
    if (isEmpty()) return false;
    return inner.rowBegin >= rowBegin && inner.rowEnd <= rowEnd &&
           inner.colBegin >= colBegin && inner.colEnd <= colEnd;
  }

  /// True when the two rectangles share at least one cell.
  bool overlaps(const Rect& o) const {
    if (isEmpty() || o.isEmpty()) return false;
    return rowBegin < o.rowEnd && o.rowBegin < rowEnd && colBegin < o.colEnd &&
           o.colBegin < colEnd;
  }

  /// Intersection (empty if disjoint).
  Rect intersect(const Rect& o) const {
    Rect r{std::max(rowBegin, o.rowBegin), std::min(rowEnd, o.rowEnd),
           std::max(colBegin, o.colBegin), std::min(colEnd, o.colEnd)};
    if (r.isEmpty()) return empty();
    return r;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[rows " << r.rowBegin << ".." << r.rowEnd << ") x [cols "
            << r.colBegin << ".." << r.colEnd << ")";
}

}  // namespace pushpart
