// Processor identifiers.
//
// The paper (§IV) names the three heterogeneous processors P, R and S with
// speed ratio P_r : R_r : S_r, S_r = 1 and P fastest, and encodes a partition
// as q(i,j) ∈ {0 = R, 1 = S, 2 = P}. We keep that encoding so partitions
// serialize exactly as the paper's q function.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pushpart {

/// One of the three heterogeneous processors. Values match the paper's
/// q(i,j) encoding: R=0, S=1, P=2.
enum class Proc : std::uint8_t { R = 0, S = 1, P = 2 };

inline constexpr int kNumProcs = 3;

/// All processors in q-encoding order {R, S, P}.
inline constexpr std::array<Proc, kNumProcs> kAllProcs = {Proc::R, Proc::S,
                                                          Proc::P};

/// The two slower processors — the only legal *active* processors for a Push
/// (paper §VI-C: elements of the largest processor are never moved).
inline constexpr std::array<Proc, 2> kSlowProcs = {Proc::R, Proc::S};

/// Index of a processor into per-processor arrays.
constexpr int procIndex(Proc p) { return static_cast<int>(p); }

/// procIndex as an unsigned array slot (avoids sign-conversion noise at
/// subscript sites).
constexpr std::size_t procSlot(Proc p) { return static_cast<std::size_t>(p); }

/// Inverse of procIndex. `i` must be in [0, kNumProcs).
constexpr Proc procFromIndex(int i) { return static_cast<Proc>(i); }

/// Single-letter name: 'R', 'S' or 'P'.
constexpr char procName(Proc p) {
  switch (p) {
    case Proc::R: return 'R';
    case Proc::S: return 'S';
    case Proc::P: return 'P';
  }
  return '?';
}

}  // namespace pushpart
