// Communication metrics over a partition (paper Eqs. 1 and 6).
//
// Free functions layered on Partition's O(1) counters. These are the
// quantities the five performance models consume: the global Volume of
// Communication and the per-processor send volumes d_X.
#pragma once

#include <array>
#include <cstdint>

#include "grid/partition.hpp"

namespace pushpart {

/// Per-processor communication summary.
struct ProcComm {
  std::int64_t elements = 0;   ///< ∈X — elements assigned to X.
  int rowsUsed = 0;            ///< i_X — rows containing elements of X.
  int colsUsed = 0;            ///< j_X — columns containing elements of X.
  /// Elements X must *send*: (N·i_X + N·j_X) − ∈X (Eq. 6 numerator). Every
  /// element of a pivot row/column X touches must reach the other owners of
  /// that row/column; X's own elements need no send.
  std::int64_t sendVolume = 0;
};

/// Computes the Eq. 6 summary for one processor.
ProcComm procComm(const Partition& q, Proc x);

/// All three summaries, indexed by procIndex().
std::array<ProcComm, kNumProcs> allProcComm(const Partition& q);

/// Volume of Communication, Eq. 1 (alias of the Partition method; kept as a
/// free function so call sites can stay metric-centric).
std::int64_t volumeOfCommunication(const Partition& q);

/// Directed per-pair communication volumes under kij semantics.
/// pairVolumes(q)[s][r] = elements processor s must send to processor r:
/// an element (i,j) of s travels to r when r owns cells in row i (r will
/// need it as the A(i,k)-pivot) or, separately, in column j (as the
/// B(k,j)-pivot) — both uses counted, matching Eq. 1:
///   Σ_{s≠r} pairVolumes[s][r] == volumeOfCommunication(q).
/// Diagonal entries are zero. Indexed by procIndex().
std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> pairVolumes(
    const Partition& q);

/// True when x's cells exactly fill its enclosing rectangle (and x owns at
/// least one cell). Templated over the engine state (Partition or
/// RlePartition): only the O(1) counter API is consumed.
template <typename Q>
bool isRectangle(const Q& q, Proc x) {
  const Rect r = q.enclosingRect(x);
  return !r.isEmpty() && q.count(x) == r.area();
}

/// True when x's cells fill its enclosing rectangle except for missing cells
/// confined to a single edge row or edge column of that rectangle (paper
/// Fig. 3's *asymptotically rectangular*). Exact rectangles qualify.
/// Templated like isRectangle; the beautify pass evaluates it on both
/// engines.
template <typename Q>
bool isAsymptoticallyRectangular(const Q& q, Proc x) {
  const Rect r = q.enclosingRect(x);
  if (r.isEmpty()) return false;
  if (q.count(x) == r.area()) return true;

  // All missing cells must lie in one edge row or one edge column of r.
  // Check each of the four edges: removing that line, the remainder must be
  // completely full, and the edge itself may be partial (it is non-empty by
  // definition of the enclosing rectangle).
  auto rowFull = [&](int i) { return q.rowCount(x, i) >= r.width(); };
  auto colFull = [&](int j) { return q.colCount(x, j) >= r.height(); };

  auto allRowsFullExcept = [&](int skip) {
    for (int i = r.rowBegin; i < r.rowEnd; ++i)
      if (i != skip && !rowFull(i)) return false;
    return true;
  };
  auto allColsFullExcept = [&](int skip) {
    for (int j = r.colBegin; j < r.colEnd; ++j)
      if (j != skip && !colFull(j)) return false;
    return true;
  };

  // A partial top or bottom row: every other row of the rectangle is full
  // (full rows imply full columns elsewhere automatically).
  if (allRowsFullExcept(r.rowBegin)) return true;
  if (allRowsFullExcept(r.rowEnd - 1)) return true;
  if (allColsFullExcept(r.colBegin)) return true;
  if (allColsFullExcept(r.colEnd - 1)) return true;
  return false;
}

/// Number of elements processor X can compute with zero communication under
/// bulk overlap (SCO/PCO): C(i,j) owned by X such that X owns *every* element
/// of pivot row i and pivot column j it needs — i.e. rows i and columns j
/// fully owned by X. Counted as fully-computable C elements.
std::int64_t overlapElements(const Partition& q, Proc x);

/// Total kij flop-steps processor X can run during bulk overlap: for each
/// C(i,j) owned by X, the number of pivots k with both A(i,k) and B(k,j)
/// owned by X. This is the finer-grained (per-k) overlap measure; O(N²) with
/// an O(N) precomputation per row/column pair via ownership run-length
/// tables. Used by the simulator's overlap phase.
std::int64_t overlapFlopSteps(const Partition& q, Proc x);

}  // namespace pushpart
