#include "grid/render.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "support/check.hpp"

namespace pushpart {

namespace {
char glyph(Proc p) {
  switch (p) {
    case Proc::P: return '.';
    case Proc::R: return 'r';
    case Proc::S: return 'S';
  }
  return '?';
}
}  // namespace

std::string renderAscii(const Partition& q, int maxCells) {
  PUSHPART_CHECK(maxCells > 0);
  const int n = q.n();
  const int blocks = std::min(n, maxCells);
  std::string out;
  out.reserve(static_cast<std::size_t>(blocks) *
              static_cast<std::size_t>(blocks + 1));
  for (int bi = 0; bi < blocks; ++bi) {
    const int i0 = bi * n / blocks;
    const int i1 = (bi + 1) * n / blocks;
    for (int bj = 0; bj < blocks; ++bj) {
      const int j0 = bj * n / blocks;
      const int j1 = (bj + 1) * n / blocks;
      std::array<std::int64_t, kNumProcs> tally{};
      for (int i = i0; i < i1; ++i)
        for (int j = j0; j < j1; ++j)
          ++tally[static_cast<std::size_t>(procIndex(q.at(i, j)))];
      Proc best = Proc::P;
      std::int64_t bestCount = -1;
      for (Proc x : kAllProcs) {
        const auto c = tally[static_cast<std::size_t>(procIndex(x))];
        if (c > bestCount) {
          bestCount = c;
          best = x;
        }
      }
      out += glyph(best);
    }
    out += '\n';
  }
  return out;
}

std::string summaryLine(const Partition& q) {
  std::ostringstream os;
  os << "n=" << q.n() << " VoC=" << q.volumeOfCommunication();
  for (Proc x : kAllProcs) {
    os << ' ' << procName(x) << ":" << q.count(x) << " (rows " << q.rowsUsed(x)
       << ", cols " << q.colsUsed(x) << ")";
  }
  return os.str();
}

}  // namespace pushpart
