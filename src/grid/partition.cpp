#include "grid/partition.hpp"

#include "support/check.hpp"
#include "support/scan.hpp"

namespace pushpart {

Partition::Partition(int n, Proc fill) : n_(n) {
  PUSHPART_CHECK_MSG(n > 0, "Partition size must be positive, got " << n);
  const auto nz = static_cast<std::size_t>(n);
  cells_.assign(nz * nz, fill);
  for (int x = 0; x < kNumProcs; ++x) {
    rowCnt_[static_cast<std::size_t>(x)].assign(nz, 0);
    colCnt_[static_cast<std::size_t>(x)].assign(nz, 0);
  }
  const auto fi = static_cast<std::size_t>(procIndex(fill));
  rowCnt_[fi].assign(nz, n);
  colCnt_[fi].assign(nz, n);
  total_[fi] = static_cast<std::int64_t>(n) * n;
  rowsUsed_[fi] = n;
  colsUsed_[fi] = n;
  ci_.assign(nz, 1);
  cj_.assign(nz, 1);
  ciSum_ = n;
  cjSum_ = n;
  rectDirty_.fill(true);
}

void Partition::set(int i, int j, Proc p) {
  PUSHPART_CHECK_MSG(i >= 0 && i < n_ && j >= 0 && j < n_,
                     "cell (" << i << "," << j << ") out of range for n=" << n_);
  const std::size_t idx = index(i, j);
  const Proc old = cells_[idx];
  if (old == p) return;
  cells_[idx] = p;

  const auto oi = static_cast<std::size_t>(procIndex(old));
  const auto pi = static_cast<std::size_t>(procIndex(p));
  const auto iz = static_cast<std::size_t>(i);
  const auto jz = static_cast<std::size_t>(j);

  // Row counters for the departing processor.
  if (--rowCnt_[oi][iz] == 0) {
    --rowsUsed_[oi];
    --ci_[iz];
    --ciSum_;
  }
  if (--colCnt_[oi][jz] == 0) {
    --colsUsed_[oi];
    --cj_[jz];
    --cjSum_;
  }
  --total_[oi];

  // Row counters for the arriving processor.
  if (rowCnt_[pi][iz]++ == 0) {
    ++rowsUsed_[pi];
    ++ci_[iz];
    ++ciSum_;
  }
  if (colCnt_[pi][jz]++ == 0) {
    ++colsUsed_[pi];
    ++cj_[jz];
    ++cjSum_;
  }
  ++total_[pi];

  rectDirty_[oi] = true;
  rectDirty_[pi] = true;
}

void Partition::swapCells(int i1, int j1, int i2, int j2) {
  const Proc a = at(i1, j1);
  const Proc b = at(i2, j2);
  if (a == b) return;
  set(i1, j1, b);
  set(i2, j2, a);
}

std::int64_t Partition::volumeOfCommunication() const {
  // Eq. 1 with the sums of c_i and c_j kept incrementally:
  //   Σ_i N(c_i − 1) = N·(Σ c_i − N).
  return static_cast<std::int64_t>(n_) * (ciSum_ - n_) +
         static_cast<std::int64_t>(n_) * (cjSum_ - n_);
}

const Rect& Partition::enclosingRect(Proc p) const {
  const auto pi = static_cast<std::size_t>(procIndex(p));
  if (rectDirty_[pi]) recomputeRect(p);
  return rect_[pi];
}

void Partition::recomputeRect(Proc p) const {
  const auto pi = static_cast<std::size_t>(procIndex(p));
  rectDirty_[pi] = false;
  if (total_[pi] == 0) {
    rect_[pi] = Rect::empty();
    return;
  }
  // total_ > 0 here, so the scans cannot come back empty.
  const auto& rows = rowCnt_[pi];
  const auto& cols = colCnt_[pi];
  const int top = static_cast<int>(firstNonZero(rows));
  const int bottom = static_cast<int>(lastNonZero(rows));
  const int left = static_cast<int>(firstNonZero(cols));
  const int right = static_cast<int>(lastNonZero(cols));
  rect_[pi] = Rect{top, bottom + 1, left, right + 1};
}

std::uint64_t Partition::hash() const {
  // FNV-1a over the raw cell bytes; collisions only risk a premature cycle
  // verdict in the DFA, never a correctness violation.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (Proc c : cells_) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

void Partition::validateCounters() const {
  std::array<std::vector<std::int32_t>, kNumProcs> rowCnt, colCnt;
  const auto nz = static_cast<std::size_t>(n_);
  for (auto& v : rowCnt) v.assign(nz, 0);
  for (auto& v : colCnt) v.assign(nz, 0);
  std::array<std::int64_t, kNumProcs> total{};
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j) {
      const auto x = static_cast<std::size_t>(procIndex(at(i, j)));
      ++rowCnt[x][static_cast<std::size_t>(i)];
      ++colCnt[x][static_cast<std::size_t>(j)];
      ++total[x];
    }

  std::int64_t ciSum = 0, cjSum = 0;
  for (int i = 0; i < n_; ++i) {
    int ci = 0, cj = 0;
    for (int x = 0; x < kNumProcs; ++x) {
      const auto xz = static_cast<std::size_t>(x);
      const auto iz = static_cast<std::size_t>(i);
      PUSHPART_CHECK_MSG(rowCnt[xz][iz] == rowCnt_[xz][iz],
                         "rowCnt mismatch proc=" << x << " row=" << i);
      PUSHPART_CHECK_MSG(colCnt[xz][iz] == colCnt_[xz][iz],
                         "colCnt mismatch proc=" << x << " col=" << i);
      if (rowCnt[xz][iz] > 0) ++ci;
      if (colCnt[xz][iz] > 0) ++cj;
    }
    PUSHPART_CHECK_MSG(ci == procsInRow(i), "c_i mismatch at row " << i);
    PUSHPART_CHECK_MSG(cj == procsInCol(i), "c_j mismatch at col " << i);
    ciSum += ci;
    cjSum += cj;
  }
  PUSHPART_CHECK(ciSum == ciSum_);
  PUSHPART_CHECK(cjSum == cjSum_);

  for (int x = 0; x < kNumProcs; ++x) {
    const auto xz = static_cast<std::size_t>(x);
    PUSHPART_CHECK_MSG(total[xz] == total_[xz], "total mismatch proc=" << x);
    int rowsUsed = 0, colsUsed = 0;
    for (std::size_t i = 0; i < nz; ++i) {
      if (rowCnt[xz][i] > 0) ++rowsUsed;
      if (colCnt[xz][i] > 0) ++colsUsed;
    }
    PUSHPART_CHECK_MSG(rowsUsed == rowsUsed_[xz], "rowsUsed mismatch proc=" << x);
    PUSHPART_CHECK_MSG(colsUsed == colsUsed_[xz], "colsUsed mismatch proc=" << x);
  }
}

}  // namespace pushpart
