// Partition construction: the paper's randomized q0 plus test helpers.
#pragma once

#include <string>

#include "grid/partition.hpp"
#include "grid/ratio.hpp"
#include "support/rng.hpp"

namespace pushpart {

/// Random start state q0 per the paper §VI-A2: all cells start on the fastest
/// processor P; then for each slower processor X in turn, random (i, j)
/// positions are drawn and assigned to X when still owned by P, until X holds
/// its ratio share of elements.
Partition randomPartition(int n, const Ratio& ratio, Rng& rng);

/// Random start state where the slower processors receive *contiguous random
/// rectangles-of-cells runs* instead of isolated cells. Covers a different
/// corner of the start-state space (clustered rather than scattered q0);
/// used by the batch runner to diversify searches.
Partition randomClusteredPartition(int n, const Ratio& ratio, Rng& rng);

/// Builds a partition from ASCII art, one row per line, characters
/// 'P', 'R', 'S' (whitespace-trimmed, blank lines skipped). All rows must
/// have equal length and the grid must be square. Intended for tests:
///
///   fromAscii("PPR\n"
///             "PSR\n"
///             "PPR\n");
Partition fromAscii(const std::string& art);

/// Inverse of fromAscii (no trailing newline).
std::string toAscii(const Partition& q);

}  // namespace pushpart
