// RlePartition instantiation of the state-generic push/beautify/DFA engine.
//
// These are the same overload names the grid exposes (tryPush, beautify,
// fullyCondensed, ...), so differential tests and callers read identically
// on either state; all decisions are made by the shared templates in
// push/engine.hpp. dfaTraceArt is the ADL hook runDfaT uses to render trace
// snapshots without dfa/ depending on rle/.
#pragma once

#include <string>

#include "grid/render.hpp"
#include "push/engine.hpp"
#include "rle/rle_partition.hpp"

namespace pushpart {

inline PushOutcome tryPush(RlePartition& q, Proc active, Direction dir,
                           const PushOptions& options = {}) {
  return tryPushState(q, active, dir, options);
}

inline bool pushAvailable(const RlePartition& q, Proc active,
                          std::span<const Direction> dirs,
                          const PushOptions& options = {}) {
  return pushAvailableState(q, active, dirs, options);
}

inline BeautifyResult beautify(RlePartition& q) { return beautifyState(q); }

inline bool compactRegion(RlePartition& q, Proc x) {
  return compactRegionState(q, x);
}

inline bool fullyCondensed(const RlePartition& q) {
  return fullyCondensedState(q);
}

/// Trace-rendering hook for runDfaT<RlePartition> (found by ADL). Rendering
/// is off the hot path — traces are explicitly requested — so materialising
/// the element grid is fine.
inline std::string dfaTraceArt(const RlePartition& q, int cells) {
  return renderAscii(q.toPartition(), cells);
}

}  // namespace pushpart
