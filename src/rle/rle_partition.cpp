#include "rle/rle_partition.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/scan.hpp"

namespace pushpart {

namespace {

/// Index of the run containing position `pos`: the first run whose exclusive
/// end exceeds it. Binary search keeps the alternating-owner worst case
/// (N runs per line) at O(log N).
std::size_t runIndex(const std::vector<RlePartition::Run>& runs, int pos) {
  const auto it = std::upper_bound(
      runs.begin(), runs.end(), pos,
      [](int p, const RlePartition::Run& r) { return p < r.end; });
  return static_cast<std::size_t>(it - runs.begin());
}

}  // namespace

RlePartition::RlePartition(int n, Proc fill) : n_(n) {
  PUSHPART_CHECK_MSG(n > 0, "RlePartition size must be positive, got " << n);
  const auto nz = static_cast<std::size_t>(n);
  rowRuns_.assign(nz, {Run{static_cast<std::int32_t>(n), fill}});
  colRuns_.assign(nz, {Run{static_cast<std::int32_t>(n), fill}});
  for (int x = 0; x < kNumProcs; ++x) {
    rowCnt_[static_cast<std::size_t>(x)].assign(nz, 0);
    colCnt_[static_cast<std::size_t>(x)].assign(nz, 0);
  }
  const auto fi = static_cast<std::size_t>(procIndex(fill));
  rowCnt_[fi].assign(nz, n);
  colCnt_[fi].assign(nz, n);
  total_[fi] = static_cast<std::int64_t>(n) * n;
  rowsUsed_[fi] = n;
  colsUsed_[fi] = n;
  ci_.assign(nz, 1);
  cj_.assign(nz, 1);
  ciSum_ = n;
  cjSum_ = n;
  rectDirty_.fill(true);
}

RlePartition::RlePartition(const Partition& q) : n_(q.n()) {
  rebuildFrom(q);
}

void RlePartition::rebuildFrom(const Partition& q) {
  const int n = n_;
  const auto nz = static_cast<std::size_t>(n);
  rowRuns_.assign(nz, {});
  colRuns_.assign(nz, {});
  for (int i = 0; i < n; ++i) {
    auto& runs = rowRuns_[static_cast<std::size_t>(i)];
    Proc owner = q.at(i, 0);
    for (int j = 1; j < n; ++j) {
      const Proc next = q.at(i, j);
      if (next != owner) {
        runs.push_back({static_cast<std::int32_t>(j), owner});
        owner = next;
      }
    }
    runs.push_back({static_cast<std::int32_t>(n), owner});
  }
  for (int j = 0; j < n; ++j) {
    auto& runs = colRuns_[static_cast<std::size_t>(j)];
    Proc owner = q.at(0, j);
    for (int i = 1; i < n; ++i) {
      const Proc next = q.at(i, j);
      if (next != owner) {
        runs.push_back({static_cast<std::int32_t>(i), owner});
        owner = next;
      }
    }
    runs.push_back({static_cast<std::int32_t>(n), owner});
  }

  // Counters are recomputed from scratch rather than copied from q: the
  // converting constructor is a second, independent maintenance path that
  // the differential suite checks against the grid's.
  for (int x = 0; x < kNumProcs; ++x) {
    rowCnt_[static_cast<std::size_t>(x)].assign(nz, 0);
    colCnt_[static_cast<std::size_t>(x)].assign(nz, 0);
  }
  total_.fill(0);
  rowsUsed_.fill(0);
  colsUsed_.fill(0);
  ci_.assign(nz, 0);
  cj_.assign(nz, 0);
  for (int i = 0; i < n; ++i) {
    std::int32_t begin = 0;
    for (const Run& run : rowRuns_[static_cast<std::size_t>(i)]) {
      const auto slot = procSlot(run.owner);
      const std::int32_t len = run.end - begin;
      rowCnt_[slot][static_cast<std::size_t>(i)] += len;
      total_[slot] += len;
      begin = run.end;
    }
  }
  for (int j = 0; j < n; ++j) {
    std::int32_t begin = 0;
    for (const Run& run : colRuns_[static_cast<std::size_t>(j)]) {
      colCnt_[procSlot(run.owner)][static_cast<std::size_t>(j)] +=
          run.end - begin;
      begin = run.end;
    }
  }
  ciSum_ = 0;
  cjSum_ = 0;
  for (std::size_t i = 0; i < nz; ++i) {
    for (int x = 0; x < kNumProcs; ++x) {
      const auto xz = static_cast<std::size_t>(x);
      if (rowCnt_[xz][i] > 0) ++ci_[i];
      if (colCnt_[xz][i] > 0) ++cj_[i];
    }
    ciSum_ += ci_[i];
    cjSum_ += cj_[i];
  }
  for (int x = 0; x < kNumProcs; ++x) {
    const auto xz = static_cast<std::size_t>(x);
    for (std::size_t i = 0; i < nz; ++i) {
      if (rowCnt_[xz][i] > 0) ++rowsUsed_[xz];
      if (colCnt_[xz][i] > 0) ++colsUsed_[xz];
    }
  }
  rectDirty_.fill(true);
}

Partition RlePartition::toPartition() const {
  Partition out(n_, Proc::P);
  for (int i = 0; i < n_; ++i) {
    std::int32_t begin = 0;
    for (const Run& run : rowRuns_[static_cast<std::size_t>(i)]) {
      if (run.owner != Proc::P)
        for (std::int32_t j = begin; j < run.end; ++j) out.set(i, j, run.owner);
      begin = run.end;
    }
  }
  return out;
}

Proc RlePartition::at(int i, int j) const {
  const auto& runs = rowRuns_[static_cast<std::size_t>(i)];
  return runs[runIndex(runs, j)].owner;
}

RlePartition::Run RlePartition::rowRunAt(int i, int j) const {
  const auto& runs = rowRuns_[static_cast<std::size_t>(i)];
  return runs[runIndex(runs, j)];
}

RlePartition::Run RlePartition::colRunAt(int j, int i) const {
  const auto& runs = colRuns_[static_cast<std::size_t>(j)];
  return runs[runIndex(runs, i)];
}

std::int64_t RlePartition::totalRuns() const {
  std::int64_t total = 0;
  for (const auto& runs : rowRuns_)
    total += static_cast<std::int64_t>(runs.size());
  return total;
}

void RlePartition::lineSet(std::vector<Run>& runs, int pos, Proc p) {
  const std::size_t idx = runIndex(runs, pos);
  const Run run = runs[idx];
  const std::int32_t begin = idx > 0 ? runs[idx - 1].end : 0;
  const bool atBegin = pos == begin;
  const bool atEnd = pos == run.end - 1;
  const auto pos32 = static_cast<std::int32_t>(pos);

  if (atBegin && atEnd) {
    // A length-1 run flips owner entirely; merging with equal-owner
    // neighbours restores maximality. (Both neighbours differ from the old
    // owner by invariant, so no further merges can cascade.)
    const bool leftMerges = idx > 0 && runs[idx - 1].owner == p;
    const bool rightMerges = idx + 1 < runs.size() && runs[idx + 1].owner == p;
    const auto it = runs.begin() + static_cast<std::ptrdiff_t>(idx);
    if (leftMerges && rightMerges) {
      runs.erase(it - 1, it + 1);  // right neighbour absorbs all three
    } else if (leftMerges) {
      runs[idx - 1].end = run.end;
      runs.erase(it);
    } else if (rightMerges) {
      runs.erase(it);  // right neighbour's implicit begin extends left
    } else {
      runs[idx].owner = p;
    }
  } else if (atBegin) {
    if (idx > 0 && runs[idx - 1].owner == p) {
      runs[idx - 1].end = pos32 + 1;  // left neighbour grows over pos
    } else {
      runs.insert(runs.begin() + static_cast<std::ptrdiff_t>(idx),
                  Run{pos32 + 1, p});
    }
  } else if (atEnd) {
    runs[idx].end = pos32;  // shrink; pos now belongs to whatever follows
    if (!(idx + 1 < runs.size() && runs[idx + 1].owner == p))
      runs.insert(runs.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                  Run{run.end, p});
  } else {
    // Interior split: [begin,pos) old, [pos,pos+1) p, [pos+1,end) old.
    runs[idx].end = pos32;
    const Run tail[2] = {Run{pos32 + 1, p}, Run{run.end, run.owner}};
    runs.insert(runs.begin() + static_cast<std::ptrdiff_t>(idx) + 1, tail,
                tail + 2);
  }
}

void RlePartition::set(int i, int j, Proc p) {
  PUSHPART_CHECK_MSG(i >= 0 && i < n_ && j >= 0 && j < n_,
                     "cell (" << i << "," << j << ") out of range for n=" << n_);
  const Proc old = at(i, j);
  if (old == p) return;
  lineSet(rowRuns_[static_cast<std::size_t>(i)], j, p);
  lineSet(colRuns_[static_cast<std::size_t>(j)], i, p);

  const auto oi = static_cast<std::size_t>(procIndex(old));
  const auto pi = static_cast<std::size_t>(procIndex(p));
  const auto iz = static_cast<std::size_t>(i);
  const auto jz = static_cast<std::size_t>(j);

  // Line counters for the departing processor.
  if (--rowCnt_[oi][iz] == 0) {
    --rowsUsed_[oi];
    --ci_[iz];
    --ciSum_;
  }
  if (--colCnt_[oi][jz] == 0) {
    --colsUsed_[oi];
    --cj_[jz];
    --cjSum_;
  }
  --total_[oi];

  // Line counters for the arriving processor.
  if (rowCnt_[pi][iz]++ == 0) {
    ++rowsUsed_[pi];
    ++ci_[iz];
    ++ciSum_;
  }
  if (colCnt_[pi][jz]++ == 0) {
    ++colsUsed_[pi];
    ++cj_[jz];
    ++cjSum_;
  }
  ++total_[pi];

  rectDirty_[oi] = true;
  rectDirty_[pi] = true;
}

void RlePartition::swapCells(int i1, int j1, int i2, int j2) {
  const Proc a = at(i1, j1);
  const Proc b = at(i2, j2);
  if (a == b) return;
  set(i1, j1, b);
  set(i2, j2, a);
}

const Rect& RlePartition::enclosingRect(Proc p) const {
  const auto pi = static_cast<std::size_t>(procIndex(p));
  if (rectDirty_[pi]) recomputeRect(p);
  return rect_[pi];
}

void RlePartition::recomputeRect(Proc p) const {
  const auto pi = static_cast<std::size_t>(procIndex(p));
  rectDirty_[pi] = false;
  if (total_[pi] == 0) {
    rect_[pi] = Rect::empty();
    return;
  }
  // total_ > 0 here, so the scans cannot come back empty.
  const auto& rows = rowCnt_[pi];
  const auto& cols = colCnt_[pi];
  const int top = static_cast<int>(firstNonZero(rows));
  const int bottom = static_cast<int>(lastNonZero(rows));
  const int left = static_cast<int>(firstNonZero(cols));
  const int right = static_cast<int>(lastNonZero(cols));
  rect_[pi] = Rect{top, bottom + 1, left, right + 1};
}

std::uint64_t RlePartition::hash() const {
  // FNV-1a over the row runs. The run form is canonical, so equal states
  // hash equally; collisions only risk a premature cycle verdict in the
  // DFA, never a correctness violation.
  std::uint64_t h = 0xCBF29CE484222325ull;
  const auto mix = [&h](std::uint64_t byte) {
    h ^= byte;
    h *= 0x100000001B3ull;
  };
  for (const auto& runs : rowRuns_) {
    for (const Run& run : runs) {
      const auto end = static_cast<std::uint32_t>(run.end);
      mix(end & 0xFF);
      mix((end >> 8) & 0xFF);
      mix((end >> 16) & 0xFF);
      mix(static_cast<std::uint64_t>(run.owner));
    }
  }
  return h;
}

bool RlePartition::sameOwners(const Partition& q) const {
  if (q.n() != n_) return false;
  for (int i = 0; i < n_; ++i) {
    std::int32_t begin = 0;
    for (const Run& run : rowRuns_[static_cast<std::size_t>(i)]) {
      for (std::int32_t j = begin; j < run.end; ++j)
        if (q.at(i, j) != run.owner) return false;
      begin = run.end;
    }
  }
  return true;
}

void RlePartition::validateCounters() const {
  const auto nz = static_cast<std::size_t>(n_);
  PUSHPART_CHECK(rowRuns_.size() == nz && colRuns_.size() == nz);

  // Normalisation: every line tiled by strictly increasing maximal runs.
  const auto checkLine = [this](const std::vector<Run>& runs, const char* kind,
                                std::size_t line) {
    PUSHPART_CHECK_MSG(!runs.empty(), kind << " " << line << " has no runs");
    std::int32_t prev = 0;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      PUSHPART_CHECK_MSG(runs[r].end > prev,
                         kind << " " << line << " run " << r
                              << " is empty or out of order");
      PUSHPART_CHECK_MSG(
          r == 0 || runs[r].owner != runs[r - 1].owner,
          kind << " " << line << " run " << r << " is not maximal");
      prev = runs[r].end;
    }
    PUSHPART_CHECK_MSG(prev == n_,
                       kind << " " << line << " does not cover [0,n)");
  };
  for (std::size_t i = 0; i < nz; ++i) checkLine(rowRuns_[i], "row", i);
  for (std::size_t j = 0; j < nz; ++j) checkLine(colRuns_[j], "col", j);

  // The column representation must describe the same owners as the rows.
  for (int j = 0; j < n_; ++j) {
    std::int32_t begin = 0;
    for (const Run& run : colRuns_[static_cast<std::size_t>(j)]) {
      for (std::int32_t i = begin; i < run.end; ++i)
        PUSHPART_CHECK_MSG(at(i, j) == run.owner,
                           "row/col run disagreement at (" << i << "," << j
                                                           << ")");
      begin = run.end;
    }
  }

  // Full recount of every incremental counter.
  std::array<std::vector<std::int32_t>, kNumProcs> rowCnt, colCnt;
  for (auto& v : rowCnt) v.assign(nz, 0);
  for (auto& v : colCnt) v.assign(nz, 0);
  std::array<std::int64_t, kNumProcs> total{};
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j) {
      const auto x = static_cast<std::size_t>(procIndex(at(i, j)));
      ++rowCnt[x][static_cast<std::size_t>(i)];
      ++colCnt[x][static_cast<std::size_t>(j)];
      ++total[x];
    }

  std::int64_t ciSum = 0, cjSum = 0;
  for (int i = 0; i < n_; ++i) {
    int ci = 0, cj = 0;
    for (int x = 0; x < kNumProcs; ++x) {
      const auto xz = static_cast<std::size_t>(x);
      const auto iz = static_cast<std::size_t>(i);
      PUSHPART_CHECK_MSG(rowCnt[xz][iz] == rowCnt_[xz][iz],
                         "rowCnt mismatch proc=" << x << " row=" << i);
      PUSHPART_CHECK_MSG(colCnt[xz][iz] == colCnt_[xz][iz],
                         "colCnt mismatch proc=" << x << " col=" << i);
      if (rowCnt[xz][iz] > 0) ++ci;
      if (colCnt[xz][iz] > 0) ++cj;
    }
    PUSHPART_CHECK_MSG(ci == procsInRow(i), "c_i mismatch at row " << i);
    PUSHPART_CHECK_MSG(cj == procsInCol(i), "c_j mismatch at col " << i);
    ciSum += ci;
    cjSum += cj;
  }
  PUSHPART_CHECK(ciSum == ciSum_);
  PUSHPART_CHECK(cjSum == cjSum_);

  for (int x = 0; x < kNumProcs; ++x) {
    const auto xz = static_cast<std::size_t>(x);
    PUSHPART_CHECK_MSG(total[xz] == total_[xz], "total mismatch proc=" << x);
    int rowsUsed = 0, colsUsed = 0;
    for (std::size_t i = 0; i < nz; ++i) {
      if (rowCnt[xz][i] > 0) ++rowsUsed;
      if (colCnt[xz][i] > 0) ++colsUsed;
    }
    PUSHPART_CHECK_MSG(rowsUsed == rowsUsed_[xz],
                       "rowsUsed mismatch proc=" << x);
    PUSHPART_CHECK_MSG(colsUsed == colsUsed_[xz],
                       "colsUsed mismatch proc=" << x);
  }
}

}  // namespace pushpart
