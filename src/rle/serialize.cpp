#include "rle/serialize.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "grid/serialize.hpp"

namespace pushpart {

namespace {

char procChar(Proc p) {
  switch (p) {
    case Proc::R: return 'R';
    case Proc::S: return 'S';
    case Proc::P: return 'P';
  }
  return '?';
}

}  // namespace

void saveRlePartition(const RlePartition& q, std::ostream& os) {
  os << "pushpart-partition v1\n";
  os << "n " << q.n() << '\n';
  std::string line;
  for (int i = 0; i < q.n(); ++i) {
    line.clear();
    std::int32_t begin = 0;
    for (const RlePartition::Run& run : q.rowRuns(i)) {
      line.append(static_cast<std::size_t>(run.end - begin),
                  procChar(run.owner));
      begin = run.end;
    }
    os << line << '\n';
  }
}

void saveRlePartition(const RlePartition& q, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveRlePartition: cannot open " + path);
  saveRlePartition(q, out);
}

RlePartition loadRlePartition(std::istream& is) {
  return RlePartition(loadPartition(is));
}

RlePartition loadRlePartition(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadRlePartition: cannot open " + path);
  return loadRlePartition(in);
}

}  // namespace pushpart
