// Run-length partition state with incremental VoC — the fast engine.
//
// The element-exact Partition (src/grid) stores one owner byte per cell, so
// every push legality scan walks O(N) cells and a failed attemptType pass
// costs O(N²). But the states the DFA actually spends its time in are
// (nearly) condensed: each row and column holds a handful of maximal
// same-owner *runs* (three solid regions ≈ ≤3 runs per line). This class
// stores exactly those runs, for every physical row AND every physical
// column — both orientations are needed because the four push directions map
// logical rows onto physical rows (Down/Up) or physical columns
// (Right/Left).
//
// A run is {end, owner}: the exclusive end index, with the begin implicit
// from the predecessor (or 0). Runs are maximal (adjacent owners differ) and
// tile [0, N). A single-cell reassignment touches only the runs it splits or
// merges — O(runs-in-line) — and updates the same incremental counter set
// the grid maintains (per-line per-processor counts, totals, used lines,
// distinct-owner counts c_i/c_j and their sums), so VoC stays an O(1) query
// and rowHas/colHas stay O(1) lookups.
//
// The push engine (push/engine.hpp) detects this class through the
// HasOwnerRuns concept and scans destinations run-by-run instead of
// cell-by-cell, which is where the order-of-magnitude win on condensed
// states comes from (bench/micro_push measures it). The grid remains the
// reference implementation: the counter maintenance here is written
// independently, and src/verify locksteps the two engines move-for-move.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "grid/partition.hpp"
#include "grid/proc.hpp"
#include "grid/rect.hpp"

namespace pushpart {

class RlePartition {
 public:
  /// One maximal same-owner segment of a line: covers [previous run's end,
  /// end). The first run of a line begins at 0.
  struct Run {
    std::int32_t end;
    Proc owner;
    bool operator==(const Run&) const = default;
  };

  /// N×N state with every cell assigned to `fill` (one run per line).
  explicit RlePartition(int n, Proc fill = Proc::P);

  /// Exact conversion from the element grid (O(N²), used at engine
  /// boundaries and in the differential tests).
  explicit RlePartition(const Partition& q);

  /// Materialises the element grid (O(N²)); the inverse of the converting
  /// constructor.
  Partition toPartition() const;

  int n() const { return n_; }
  std::int64_t cellCount() const {
    return static_cast<std::int64_t>(n_) * n_;
  }

  /// Owner of cell (i, j). O(log runs-in-row).
  Proc at(int i, int j) const;

  /// Reassigns cell (i, j) to processor `p`, splitting/merging the affected
  /// row and column runs and updating all counters. O(runs-in-line).
  void set(int i, int j, Proc p);

  /// Swaps the owners of two cells (no-op if they already match).
  void swapCells(int i1, int j1, int i2, int j2);

  // --- Run queries --------------------------------------------------------

  /// The run of row i containing column j (end is the exclusive column
  /// index). Detected by the push engine's HasOwnerRuns concept.
  Run rowRunAt(int i, int j) const;
  /// The run of column j containing row i (end is the exclusive row index).
  Run colRunAt(int j, int i) const;

  std::span<const Run> rowRuns(int i) const {
    return rowRuns_[static_cast<std::size_t>(i)];
  }
  std::span<const Run> colRuns(int j) const {
    return colRuns_[static_cast<std::size_t>(j)];
  }
  int rowRunCount(int i) const {
    return static_cast<int>(rowRuns_[static_cast<std::size_t>(i)].size());
  }
  int colRunCount(int j) const {
    return static_cast<int>(colRuns_[static_cast<std::size_t>(j)].size());
  }
  /// Total runs across all rows (the row representation only; the column
  /// representation mirrors it). The compression ratio N²/totalRuns is the
  /// quantity the fast engine exploits.
  std::int64_t totalRuns() const;

  // --- Occupancy queries (all O(1), mirroring Partition) ------------------

  int rowCount(Proc p, int i) const {
    return rowCnt_[procSlot(p)][static_cast<std::size_t>(i)];
  }
  int colCount(Proc p, int j) const {
    return colCnt_[procSlot(p)][static_cast<std::size_t>(j)];
  }
  bool rowHas(Proc p, int i) const { return rowCount(p, i) > 0; }
  bool colHas(Proc p, int j) const { return colCount(p, j) > 0; }

  std::int64_t count(Proc p) const { return total_[procSlot(p)]; }

  int rowsUsed(Proc p) const { return rowsUsed_[procSlot(p)]; }
  int colsUsed(Proc p) const { return colsUsed_[procSlot(p)]; }

  int procsInRow(int i) const { return ci_[static_cast<std::size_t>(i)]; }
  int procsInCol(int j) const { return cj_[static_cast<std::size_t>(j)]; }

  /// Volume of Communication, Eq. 1 — O(1) from the running c_i/c_j sums.
  std::int64_t volumeOfCommunication() const {
    return static_cast<std::int64_t>(n_) * (ciSum_ - n_) +
           static_cast<std::int64_t>(n_) * (cjSum_ - n_);
  }

  /// Tightest axis-aligned rectangle around p's elements; empty when p owns
  /// nothing. O(1) when cached, O(N) to recompute after a mutation.
  const Rect& enclosingRect(Proc p) const;

  // --- Identity -----------------------------------------------------------

  /// 64-bit FNV-1a over the row runs ((end, owner) pairs). NOT comparable
  /// with Partition::hash() — but cycle detection only needs "same state,
  /// same hash" within one engine, and a state repeats on this engine iff
  /// its element image repeats on the grid.
  std::uint64_t hash() const;

  /// Structural equality (same n, same owners — runs are canonical, so run
  /// equality is owner equality).
  bool operator==(const RlePartition& o) const {
    return n_ == o.n_ && rowRuns_ == o.rowRuns_;
  }

  /// True when every cell owner matches the element grid's.
  bool sameOwners(const Partition& q) const;

  /// Full O(N²) revalidation: run normalisation (coverage, strictly
  /// increasing ends, maximality), row/column representation agreement, and
  /// every incremental counter. Throws CheckError on any mismatch.
  void validateCounters() const;

 private:
  void lineSet(std::vector<Run>& runs, int pos, Proc p);
  void recomputeRect(Proc p) const;
  void rebuildFrom(const Partition& q);

  int n_;
  std::vector<std::vector<Run>> rowRuns_;
  std::vector<std::vector<Run>> colRuns_;

  // Incremental counters, maintained independently of (but shaped like) the
  // grid's: the differential suite cross-checks the two maintenance paths.
  std::array<std::vector<std::int32_t>, kNumProcs> rowCnt_;
  std::array<std::vector<std::int32_t>, kNumProcs> colCnt_;
  std::array<std::int64_t, kNumProcs> total_{};
  std::array<std::int32_t, kNumProcs> rowsUsed_{};
  std::array<std::int32_t, kNumProcs> colsUsed_{};

  std::vector<std::int8_t> ci_, cj_;
  std::int64_t ciSum_ = 0;
  std::int64_t cjSum_ = 0;

  mutable std::array<Rect, kNumProcs> rect_{};
  mutable std::array<bool, kNumProcs> rectDirty_{};
};

}  // namespace pushpart
