// Run-length state persistence.
//
// Same v1 text format as grid/serialize.hpp — the two engines' files are
// interchangeable byte-for-byte, so corpus counterexamples recorded by
// either engine replay on both. The saver emits straight from the runs (no
// element grid materialised); the loader reuses the grid loader's strict
// validation and converts, so both engines reject exactly the same inputs.
#pragma once

#include <iosfwd>
#include <string>

#include "rle/rle_partition.hpp"

namespace pushpart {

/// Writes the v1 text format (identical bytes to savePartition on the same
/// owners).
void saveRlePartition(const RlePartition& q, std::ostream& os);
void saveRlePartition(const RlePartition& q, const std::string& path);

/// Reads the v1 text format. Throws std::runtime_error on malformed input.
RlePartition loadRlePartition(std::istream& is);
RlePartition loadRlePartition(const std::string& path);

}  // namespace pushpart
