#include "plan/rebalance.hpp"

#include <cmath>
#include <utility>

#include "push/push.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

/// Condenses `q` by repeatedly applying strictly VoC-decreasing pushes to
/// the surviving slow processors. allowEqualVoC=false means every applied
/// push lowers the (integer, bounded-below) VoC, so the sweep terminates.
void condense(Partition& q, Proc dead) {
  const PushOptions options{.allowEqualVoC = false};
  bool improved = true;
  while (improved) {
    improved = false;
    for (Proc active : kSlowProcs) {
      if (active == dead || q.count(active) == 0) continue;
      for (Direction dir : kAllDirections) {
        while (tryPush(q, active, dir, options).applied) improved = true;
      }
    }
  }
}

/// Row-major list of the cells `dead` owns.
std::vector<std::pair<int, int>> deadCells(const Partition& q, Proc dead) {
  std::vector<std::pair<int, int>> cells;
  cells.reserve(static_cast<std::size_t>(q.count(dead)));
  const int n = q.n();
  for (int i = 0; i < n; ++i) {
    if (!q.rowHas(dead, i)) continue;
    for (int j = 0; j < n; ++j)
      if (q.at(i, j) == dead) cells.emplace_back(i, j);
  }
  return cells;
}

/// Banded candidate: the first `quota[s0]` dead cells (row-major) go to the
/// faster survivor, the rest to the other — contiguous runs keep the
/// survivors' shapes blocky before condensing.
Partition bandedCandidate(const Partition& q,
                          const std::vector<std::pair<int, int>>& cells,
                          Proc s0, Proc s1, std::int64_t quota0) {
  Partition out = q;
  std::int64_t assigned = 0;
  for (const auto& [i, j] : cells) {
    out.set(i, j, assigned < quota0 ? s0 : s1);
    ++assigned;
  }
  return out;
}

/// Greedy candidate: each dead cell goes to whichever quota-holding survivor
/// yields the lower VoC right now; ties break toward the survivor with more
/// quota left, then toward the faster survivor.
Partition greedyCandidate(const Partition& q,
                          const std::vector<std::pair<int, int>>& cells,
                          Proc s0, Proc s1, std::int64_t quota0,
                          std::int64_t quota1) {
  Partition out = q;
  std::int64_t left0 = quota0;
  std::int64_t left1 = quota1;
  for (const auto& [i, j] : cells) {
    Proc pick = s0;
    if (left0 == 0) {
      pick = s1;
    } else if (left1 == 0) {
      pick = s0;
    } else {
      out.set(i, j, s0);
      const std::int64_t voc0 = out.volumeOfCommunication();
      out.set(i, j, s1);
      const std::int64_t voc1 = out.volumeOfCommunication();
      if (voc0 < voc1) pick = s0;
      else if (voc1 < voc0) pick = s1;
      else pick = left0 >= left1 ? s0 : s1;
    }
    out.set(i, j, pick);
    if (pick == s0) --left0;
    else --left1;
  }
  return out;
}

}  // namespace

RebalanceResult rebalanceOnDeath(const Partition& q, Proc dead,
                                 const Ratio& ratio, int fromPivot) {
  PUSHPART_CHECK_MSG(ratio.valid(), "invalid speed ratio " << ratio.str());
  PUSHPART_CHECK_MSG(fromPivot >= 0 && fromPivot <= q.n(),
                     "fromPivot " << fromPivot << " outside [0, " << q.n()
                                  << "]");

  // The two survivors, faster first (q-encoding order breaks speed ties).
  Proc s0 = Proc::P;
  Proc s1 = Proc::P;
  bool haveS0 = false;
  for (Proc p : kAllProcs) {
    if (p == dead) continue;
    if (!haveS0) {
      s0 = p;
      haveS0 = true;
    } else {
      s1 = p;
    }
  }
  if (ratio.speed(s1) > ratio.speed(s0)) std::swap(s0, s1);

  RebalanceResult result;
  result.dead = dead;
  result.fromPivot = fromPivot;
  result.vocBefore = q.volumeOfCommunication();
  result.reassigned = q.count(dead);

  // Split the dead processor's cells in proportion to survivor speeds; the
  // faster survivor absorbs the rounding remainder.
  const double share1 =
      ratio.speed(s1) / (ratio.speed(s0) + ratio.speed(s1));
  const std::int64_t quota1 = static_cast<std::int64_t>(
      std::llround(static_cast<double>(result.reassigned) * share1));
  const std::int64_t quota0 = result.reassigned - quota1;
  result.gained[procSlot(s0)] = quota0;
  result.gained[procSlot(s1)] = quota1;

  const std::vector<std::pair<int, int>> cells = deadCells(q, dead);
  PUSHPART_CHECK(static_cast<std::int64_t>(cells.size()) ==
                 result.reassigned);

  Partition banded = bandedCandidate(q, cells, s0, s1, quota0);
  condense(banded, dead);
  Partition greedy = greedyCandidate(q, cells, s0, s1, quota0, quota1);
  condense(greedy, dead);

  result.after = greedy.volumeOfCommunication() <
                         banded.volumeOfCommunication()
                     ? std::move(greedy)
                     : std::move(banded);
  result.vocAfter = result.after.volumeOfCommunication();
  PUSHPART_CHECK(result.after.count(dead) == 0);
  PUSHPART_CHECK(result.after.count(s0) == q.count(s0) + quota0);
  PUSHPART_CHECK(result.after.count(s1) == q.count(s1) + quota1);

  result.deltaPlan = buildElementPlanRange(result.after, fromPivot);
  result.deltaPlanVerified =
      verifyElementPlanRange(result.after, result.deltaPlan, fromPivot);
  return result;
}

}  // namespace pushpart
