#include "plan/comm_plan.hpp"

#include <set>
#include <tuple>

#include "support/check.hpp"

namespace pushpart {

std::vector<PivotTransfers> buildElementPlanRange(const Partition& q,
                                                  int firstPivot) {
  const int n = q.n();
  PUSHPART_CHECK_MSG(firstPivot >= 0 && firstPivot <= n,
                     "firstPivot " << firstPivot << " outside [0, " << n
                                   << "]");
  std::vector<PivotTransfers> plan;
  plan.reserve(static_cast<std::size_t>(n - firstPivot));
  for (int k = firstPivot; k < n; ++k) {
    PivotTransfers step;
    step.pivot = k;
    // A(i, k): needed by every processor computing C cells in row i.
    for (int i = 0; i < n; ++i) {
      const Proc owner = q.at(i, k);
      for (Proc r : kAllProcs) {
        if (r == owner || !q.rowHas(r, i)) continue;
        step.aColumn.push_back({i, k, owner, r});
      }
    }
    // B(k, j): needed by every processor computing C cells in column j.
    for (int j = 0; j < n; ++j) {
      const Proc owner = q.at(k, j);
      for (Proc r : kAllProcs) {
        if (r == owner || !q.colHas(r, j)) continue;
        step.bRow.push_back({k, j, owner, r});
      }
    }
    plan.push_back(std::move(step));
  }
  return plan;
}

std::vector<PivotTransfers> buildElementPlan(const Partition& q) {
  return buildElementPlanRange(q, 0);
}

std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> planVolumes(
    const std::vector<PivotTransfers>& plan) {
  std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> v{};
  for (const PivotTransfers& step : plan) {
    for (const ElementTransfer& t : step.aColumn)
      ++v[procSlot(t.from)][procSlot(t.to)];
    for (const ElementTransfer& t : step.bRow)
      ++v[procSlot(t.from)][procSlot(t.to)];
  }
  return v;
}

namespace {

/// Directed volumes the suffix [firstPivot, N) requires, recounted from
/// per-line occupancy (independently of any plan).
std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> rangeVolumes(
    const Partition& q, int firstPivot) {
  std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> v{};
  const int n = q.n();
  for (int k = firstPivot; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      const Proc owner = q.at(i, k);
      for (Proc r : kAllProcs)
        if (r != owner && q.rowHas(r, i)) ++v[procSlot(owner)][procSlot(r)];
    }
    for (int j = 0; j < n; ++j) {
      const Proc owner = q.at(k, j);
      for (Proc r : kAllProcs)
        if (r != owner && q.colHas(r, j)) ++v[procSlot(owner)][procSlot(r)];
    }
  }
  return v;
}

}  // namespace

bool verifyElementPlanRange(const Partition& q,
                            const std::vector<PivotTransfers>& plan,
                            int firstPivot) {
  const int n = q.n();
  if (firstPivot < 0 || firstPivot > n) return false;
  if (static_cast<int>(plan.size()) != n - firstPivot) return false;

  // (1) Validity: coordinates match the pivot, senders own what they send,
  // receivers genuinely need it, nobody is sent their own data.
  // (2) Uniqueness: no duplicate deliveries.
  // Kind 0 = A-column transfer, kind 1 = B-row transfer.
  std::set<std::tuple<int, int, int, int>> seen;  // (kind, pivot, line, to)
  for (int k = firstPivot; k < n; ++k) {
    const PivotTransfers& step = plan[static_cast<std::size_t>(k - firstPivot)];
    if (step.pivot != k) return false;
    for (const ElementTransfer& t : step.aColumn) {
      if (t.j != k) return false;
      if (q.at(t.i, t.j) != t.from) return false;
      if (t.to == t.from) return false;
      if (!q.rowHas(t.to, t.i)) return false;  // nobody needs it there
      if (!seen.insert({0, k, t.i, procIndex(t.to)}).second) return false;
    }
    for (const ElementTransfer& t : step.bRow) {
      if (t.i != k) return false;
      if (q.at(t.i, t.j) != t.from) return false;
      if (t.to == t.from) return false;
      if (!q.colHas(t.to, t.j)) return false;
      if (!seen.insert({1, k, t.j, procIndex(t.to)}).second) return false;
    }
  }

  // (3) Completeness: valid + unique transfers are a subset of the needed
  // set, so matching the directed volumes of the pivot range exactly
  // implies equality.
  const auto got = planVolumes(plan);
  const auto want = rangeVolumes(q, firstPivot);
  if (got != want) return false;
  if (firstPivot == 0) {
    // Full-range cross-check against the O(1)-maintained Eq. 1 volumes.
    if (want != pairVolumes(q)) return false;
  }
  return true;
}

bool verifyElementPlan(const Partition& q,
                       const std::vector<PivotTransfers>& plan) {
  return verifyElementPlanRange(q, plan, 0);
}

}  // namespace pushpart
