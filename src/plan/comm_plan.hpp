// Executable communication schedules for partitioned kij MMM.
//
// The models and simulator reason about communication *volumes*; a real
// implementation (the paper's testbed used Open-MPI) needs the actual
// schedule: which element goes from whom to whom at which pivot step. This
// module derives that schedule from a partition under the kij semantics of
// §II — the owner of C(i,j) needs A(i,k) for every pivot k (delivered by the
// owner of cell (i,k)) and B(k,j) (owner of (k,j)) — and proves it sound:
// verifyElementPlan checks every remote operand of every (element, pivot)
// pair is delivered exactly once, and the aggregate volumes equal the Eq. 1
// Volume of Communication.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "grid/metrics.hpp"
#include "grid/partition.hpp"

namespace pushpart {

/// One element crossing processor boundaries.
struct ElementTransfer {
  int i = 0;          ///< Matrix row of the element.
  int j = 0;          ///< Matrix column of the element.
  Proc from = Proc::P;
  Proc to = Proc::P;

  friend bool operator==(const ElementTransfer&,
                         const ElementTransfer&) = default;
};

/// All transfers needed before pivot step k can execute everywhere.
struct PivotTransfers {
  int pivot = 0;
  /// A(i, pivot) deliveries — the pivot column of A.
  std::vector<ElementTransfer> aColumn;
  /// B(pivot, j) deliveries — the pivot row of B.
  std::vector<ElementTransfer> bRow;

  std::size_t size() const { return aColumn.size() + bRow.size(); }
};

/// The full element-level schedule: one entry per pivot, in pivot order.
/// Interleaving algorithms (PIO) send entry k while computing step k−1; the
/// bulk algorithms (SCB/PCB/SCO/PCO) concatenate all entries up front.
std::vector<PivotTransfers> buildElementPlan(const Partition& q);

/// Schedule for the pivot suffix [firstPivot, N) only — the *failover
/// epoch* after a mid-run repartition (plan/rebalance.hpp): the surviving
/// processors replay exactly the remaining pivots under the new ownership.
/// firstPivot == 0 reproduces buildElementPlan; firstPivot == N is an empty
/// (trivially complete) plan.
std::vector<PivotTransfers> buildElementPlanRange(const Partition& q,
                                                  int firstPivot);

/// Aggregated directed volumes of a plan, indexed [from][to].
std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> planVolumes(
    const std::vector<PivotTransfers>& plan);

/// Soundness check: every remote operand of every (owned C element, pivot)
/// pair is delivered exactly once, nothing superfluous is sent, and no
/// processor is sent data it owns. Returns true when the plan is exact.
/// O(N²·procs) using per-line occupancy, not O(N³).
bool verifyElementPlan(const Partition& q,
                       const std::vector<PivotTransfers>& plan);

/// Range-restricted soundness check for a failover epoch: the plan must
/// cover the pivots [firstPivot, N) of `q` exactly — same validity,
/// uniqueness and completeness rules as verifyElementPlan, with expected
/// volumes recounted over the suffix only. firstPivot == 0 is equivalent to
/// verifyElementPlan.
bool verifyElementPlanRange(const Partition& q,
                            const std::vector<PivotTransfers>& plan,
                            int firstPivot);

}  // namespace pushpart
