// Degrade-to-survivors repartitioning after a processor death.
//
// When a processor dies mid-run, its elements — and the C partials it had
// accumulated — are gone; the two survivors must finish the multiplication
// alone. This module computes the *failover partition*: the dead
// processor's cells are reassigned to the survivors in proportion to their
// relative speeds, then the shape is condensed with the paper's Push
// machinery (strictly VoC-decreasing pushes only, so the sweep terminates)
// to find a low-VoC two-processor completion shape. The accompanying delta
// communication schedule covers exactly the remaining pivots
// [fromPivot, N) of the new partition and is checked sound with
// verifyElementPlanRange.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "grid/partition.hpp"
#include "grid/ratio.hpp"
#include "plan/comm_plan.hpp"

namespace pushpart {

/// Outcome of a degrade-to-survivors repartition.
struct RebalanceResult {
  Partition after;  ///< Failover partition; `dead` owns nothing in it.
  Proc dead = Proc::P;
  int fromPivot = 0;  ///< First pivot of the failover epoch.
  /// Cells each survivor gained from the dead processor (0 for `dead`).
  std::array<std::int64_t, kNumProcs> gained{};
  std::int64_t reassigned = 0;  ///< Total cells moved off the dead processor.
  std::int64_t vocBefore = 0;   ///< VoC of the original three-proc partition.
  std::int64_t vocAfter = 0;    ///< VoC of `after` (two survivors).
  /// Element schedule for pivots [fromPivot, N) under `after`.
  std::vector<PivotTransfers> deltaPlan;
  /// verifyElementPlanRange(after, deltaPlan, fromPivot) — always checked.
  bool deltaPlanVerified = false;

  RebalanceResult() : after(1) {}
};

/// Reassigns every cell of `dead` to the two survivors, splitting the count
/// in proportion to their `ratio` speeds (the faster survivor absorbs
/// rounding). Two quota-respecting candidates are built — a row-major banded
/// split and a greedy per-cell minimum-VoC assignment — each condensed by
/// Push sweeps over the surviving slow processors with allowEqualVoC=false,
/// and the lower-VoC result wins. `fromPivot` ∈ [0, N] selects the failover
/// epoch for the emitted delta schedule. Throws CheckError on an invalid
/// ratio or fromPivot.
RebalanceResult rebalanceOnDeath(const Partition& q, Proc dead,
                                 const Ratio& ratio, int fromPivot);

}  // namespace pushpart
