// Time budgets and cooperative cancellation for the serving stack.
//
// The oracle's overload story (DESIGN.md §12) needs three small pieces:
//
//   Clock       an injectable monotonic time source. Production code uses the
//               steady-clock singleton; tests drive a FakeClock so deadline
//               behaviour is deterministic instead of wall-clock flaky.
//   Deadline    an absolute instant on some Clock. Cheap to copy and to poll;
//               a default-constructed Deadline is unlimited (never expires).
//   CancelToken a shared cancellation flag, optionally tied to a Deadline.
//               Copies share the flag, so a caller keeps one copy and threads
//               another through BatchOptions/DfaOptions; the solver polls
//               cancelled() at safe points and stops with best-so-far state.
//
// Cancellation here is strictly cooperative: nothing is interrupted, no
// exception is thrown at the cancellee — code that observes cancelled()
// finishes its current indivisible step and returns what it has, flagged as
// truncated. That is what lets the oracle promise "never a torn Partition".
#pragma once

#include <atomic>
#include <limits>
#include <memory>

namespace pushpart {

/// Monotonic time source, in seconds from an arbitrary origin.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double nowSeconds() const = 0;

  /// The process-wide steady-clock instance (thread-safe, never destroyed
  /// before any caller needs it).
  static const Clock& steady();
};

/// Manually-advanced clock for tests. advance()/set() are thread-safe so a
/// test can move time forward while another thread polls a deadline.
class FakeClock : public Clock {
 public:
  explicit FakeClock(double startSeconds = 0.0) : now_(startSeconds) {}

  double nowSeconds() const override {
    return now_.load(std::memory_order_acquire);
  }

  void set(double seconds) { now_.store(seconds, std::memory_order_release); }

  void advance(double seconds) {
    double cur = now_.load(std::memory_order_relaxed);
    while (!now_.compare_exchange_weak(cur, cur + seconds,
                                       std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<double> now_;
};

/// An absolute expiry instant on a Clock. Default-constructed deadlines are
/// unlimited. The clock must outlive every Deadline built on it (trivially
/// true for Clock::steady(); tests keep their FakeClock alive).
class Deadline {
 public:
  Deadline() = default;  ///< Unlimited: never expires.

  /// Expires `seconds` from now on `clock`. Non-positive budgets produce an
  /// already-expired deadline (remaining() == 0), not an unlimited one.
  static Deadline after(double seconds, const Clock& clock = Clock::steady());

  /// Explicitly unlimited (same as default construction; reads better at
  /// call sites).
  static Deadline unlimited() { return Deadline(); }

  bool isUnlimited() const { return clock_ == nullptr; }

  /// True once the clock has reached the expiry instant. Unlimited deadlines
  /// never expire.
  bool expired() const {
    return clock_ != nullptr && clock_->nowSeconds() >= expiresAt_;
  }

  /// Seconds until expiry: clamped at 0 once expired, +infinity when
  /// unlimited.
  double remainingSeconds() const;

 private:
  const Clock* clock_ = nullptr;  ///< nullptr = unlimited.
  double expiresAt_ = 0.0;
};

/// Shared cooperative-cancellation flag, optionally deadline-backed.
/// cancelled() is true after any holder calls requestCancel() or once any
/// attached deadline expires. Copies share one flag; a default-constructed
/// token is live (cancellable) but inert until someone cancels it.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  explicit CancelToken(Deadline deadline)
      : flag_(std::make_shared<std::atomic<bool>>(false)),
        deadline_(deadline) {}

  /// Requests cooperative cancellation; visible to every copy of the token.
  void requestCancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const {
    if (flag_->load(std::memory_order_acquire) || deadline_.expired())
      return true;
    for (const DeadlineLink* link = inherited_.get(); link != nullptr;
         link = link->next.get())
      if (link->deadline.expired()) return true;
    return false;
  }

  const Deadline& deadline() const { return deadline_; }

  /// A token sharing this token's flag, additionally bound to `deadline`.
  /// This is a *merge*, never a replacement: every deadline the token
  /// already carried keeps cancelling it — in particular, merging a fresh
  /// budget onto a token whose own deadline has already expired must not
  /// resurrect it. How the oracle combines a caller's cancel flag with the
  /// per-call time budget, and how the cluster router layers per-attempt
  /// budgets onto a caller token across replica retries.
  CancelToken withDeadline(const Deadline& deadline) const {
    CancelToken merged = *this;
    if (!deadline_.isUnlimited())
      merged.inherited_ =
          std::make_shared<const DeadlineLink>(DeadlineLink{deadline_, inherited_});
    merged.deadline_ = deadline;
    return merged;
  }

 private:
  /// Immutable chain of the deadlines superseded by withDeadline(). Shared
  /// between copies (links are never mutated after construction), so a token
  /// observed concurrently from retry paths stays race-free.
  struct DeadlineLink {
    Deadline deadline;
    std::shared_ptr<const DeadlineLink> next;
  };

  std::shared_ptr<std::atomic<bool>> flag_;
  Deadline deadline_;
  std::shared_ptr<const DeadlineLink> inherited_;
};

}  // namespace pushpart
