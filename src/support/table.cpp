#include "support/table.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"
#include "support/csv.hpp"

namespace pushpart {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PUSHPART_CHECK(!header_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  PUSHPART_CHECK_MSG(cells.size() == header_.size(),
                     "row arity " << cells.size() << " != header arity "
                                  << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::addRow(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(formatNumber(v));
  addRow(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << "  ";
      // Left-align the first column (labels), right-align the rest (numbers).
      const auto pad = widths[c] - cells[c].size();
      if (c == 0) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << '\n';
  };

  printRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) printRow(r);
}

}  // namespace pushpart
