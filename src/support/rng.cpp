#include "support/rng.hpp"

#include "support/check.hpp"

namespace pushpart {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would make xoshiro emit zeros forever; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway for defence in depth.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PUSHPART_CHECK(bound > 0);
  // Lemire 2019: multiply-shift with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  PUSHPART_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? (*this)() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::real() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

Rng Rng::split(std::uint64_t index) const {
  // Mix the parent seed with the stream index through splitmix64 so adjacent
  // indices land in unrelated parts of the sequence space.
  std::uint64_t sm = seed_ ^ (0xA24BAED4963EE407ull + index * 0x9FB21C651E98DF25ull);
  return Rng(splitmix64(sm));
}

}  // namespace pushpart
