#include "support/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "support/check.hpp"

namespace pushpart {

namespace {

bool needsQuoting(const std::string& f) {
  return f.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& f) {
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  emit(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (!out_.is_open()) return;
  PUSHPART_CHECK_MSG(fields.size() == width_,
                     "CSV row has " << fields.size() << " fields, header has "
                                    << width_);
  emit(fields);
}

void CsvWriter::row(std::initializer_list<double> fields) {
  if (!out_.is_open()) return;
  std::vector<std::string> strs;
  strs.reserve(fields.size());
  for (double v : fields) strs.push_back(formatNumber(v));
  row(strs);
}

void CsvWriter::emit(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << (needsQuoting(fields[i]) ? quoted(fields[i]) : fields[i]);
  }
  out_ << '\n';
}

std::string formatNumber(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integers up to 2^53 print exactly without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace pushpart
