#include "support/histogram.hpp"

#include <cmath>

namespace pushpart {

namespace {
constexpr double kFloorSeconds = 1e-9;  // bucket 0 lower bound
constexpr double kLog2Growth = 0.25;    // buckets grow by 2^(1/4)
}  // namespace

double LatencyHistogram::bucketFloor(int i) {
  return kFloorSeconds * std::exp2(kLog2Growth * i);
}

int LatencyHistogram::bucketFor(double seconds) {
  if (!(seconds > kFloorSeconds)) return 0;  // also catches NaN / negatives
  const int i =
      static_cast<int>(std::floor(std::log2(seconds / kFloorSeconds) /
                                  kLog2Growth));
  return i >= kBuckets ? kBuckets - 1 : i;
}

void LatencyHistogram::record(double seconds) {
  counts_[static_cast<std::size_t>(bucketFor(seconds))].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::percentile(double q) const {
  std::array<std::uint64_t, kBuckets> local{};
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    local[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += local[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based (q = 0 -> first sample).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += local[static_cast<std::size_t>(i)];
    if (seen >= target) {
      // Geometric midpoint of [floor(i), floor(i+1)).
      return bucketFloor(i) * std::exp2(kLog2Growth * 0.5);
    }
  }
  return bucketFloor(kBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    s.count += c;
    s.sumSeconds += static_cast<double>(c) * bucketFloor(i) *
                    std::exp2(kLog2Growth * 0.5);
  }
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

}  // namespace pushpart
