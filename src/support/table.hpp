// Aligned console tables for bench output.
//
// The bench binaries regenerate the paper's tables/figures as text; this
// printer keeps the rows readable (right-aligned numerics, padded headers)
// without pulling in a formatting library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pushpart {

/// Collects rows of string cells and prints them column-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are numbers.
  void addRow(const std::string& label, const std::vector<double>& values);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with 2-space gutters and a rule under the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pushpart
