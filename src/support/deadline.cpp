#include "support/deadline.hpp"

#include <chrono>

namespace pushpart {

namespace {

/// Real monotonic clock: steady_clock relative to the first use.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

  double nowSeconds() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         origin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace

const Clock& Clock::steady() {
  static const SteadyClock instance;
  return instance;
}

Deadline Deadline::after(double seconds, const Clock& clock) {
  Deadline d;
  d.clock_ = &clock;
  d.expiresAt_ = clock.nowSeconds() + (seconds > 0.0 ? seconds : 0.0);
  return d;
}

double Deadline::remainingSeconds() const {
  if (clock_ == nullptr) return std::numeric_limits<double>::infinity();
  const double left = expiresAt_ - clock_->nowSeconds();
  return left > 0.0 ? left : 0.0;
}

}  // namespace pushpart
