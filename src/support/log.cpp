#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace pushpart {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel logLevel() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (expected debug|info|warn|error)");
}

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

}  // namespace pushpart
