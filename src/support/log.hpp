// Leveled stderr logging for long-running batch searches.
//
// The DFA batch runner executes thousands of randomized searches; progress
// lines go to stderr so stdout stays clean for the experiment tables.
#pragma once

#include <sstream>
#include <string>

namespace pushpart {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Parses "debug" | "info" | "warn" | "error" (the --log-level flag values).
/// Throws std::invalid_argument on anything else.
LogLevel parseLogLevel(const std::string& name);

/// Thread-safe: the formatted line is written with a single stream insertion.
void logMessage(LogLevel level, const std::string& message);

namespace detail {
/// Builds the message with stream syntax, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace pushpart

#define PUSHPART_LOG(level) ::pushpart::detail::LogLine(::pushpart::LogLevel::level)
