// Checked assertions that stay on in Release builds.
//
// The Push engine's correctness guarantees (volume of communication never
// increases, enclosing rectangles never grow) are enforced at runtime; the
// cost of the checks is negligible next to the grid scans they guard, so we
// keep them in every build type rather than relying on NDEBUG-stripped
// assert().
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pushpart {

/// Thrown when a PUSHPART_CHECK fails. Carries file:line plus the failed
/// expression so test failures point at the violated invariant directly.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "PUSHPART_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace pushpart

/// Always-on invariant check. Throws pushpart::CheckError on failure.
#define PUSHPART_CHECK(expr)                                               \
  do {                                                                     \
    if (!(expr))                                                           \
      ::pushpart::detail::checkFailed(#expr, __FILE__, __LINE__, "");      \
  } while (false)

/// Always-on invariant check with a streamed message:
///   PUSHPART_CHECK_MSG(a == b, "a=" << a << " b=" << b);
#define PUSHPART_CHECK_MSG(expr, stream_expr)                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << stream_expr;                                                  \
      ::pushpart::detail::checkFailed(#expr, __FILE__, __LINE__,           \
                                      os_.str());                          \
    }                                                                      \
  } while (false)
