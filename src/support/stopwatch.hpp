// Wall-clock stopwatch for harness timing.
#pragma once

#include <chrono>

namespace pushpart {

/// Monotonic wall-clock timer. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pushpart
