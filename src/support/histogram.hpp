// Lock-free log-bucketed latency histogram for the serving layer.
//
// The plan oracle (src/serve) records solve and cache-hit latencies from many
// threads at once; a histogram with fixed logarithmic buckets and atomic
// counters makes record() wait-free and percentile extraction cheap. Buckets
// grow by 2^(1/4) (~19%) starting at 1 ns, so any reported percentile is
// within one bucket (≤ 19%) of the true value — plenty for p50/p95/p99
// reporting, where the interesting differences are orders of magnitude.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace pushpart {

/// Thread-safe histogram of durations in seconds. record() is wait-free
/// (one relaxed atomic increment); readers see a consistent-enough view for
/// monitoring (percentiles over concurrently-updated counters are approximate
/// by nature).
class LatencyHistogram {
 public:
  /// 2^(1/4) bucket growth from 1 ns; 168 buckets reach ~3.8e3 s.
  static constexpr int kBuckets = 168;

  LatencyHistogram() = default;

  // Atomic counters are not copyable; histograms live inside long-lived
  // stats blocks and are read via snapshot().
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one duration. Non-finite or negative values clamp to bucket 0.
  void record(double seconds);

  /// Point-in-time copy with the derived statistics pre-computed.
  struct Snapshot {
    std::uint64_t count = 0;
    double sumSeconds = 0.0;  ///< Approximate (bucket midpoints).
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    double meanSeconds() const {
      return count == 0 ? 0.0 : sumSeconds / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

  std::uint64_t count() const;

  /// Value at quantile q in [0, 1] (0 when empty). Returns the geometric
  /// midpoint of the bucket containing the q-th sample.
  double percentile(double q) const;

  /// Resets every bucket to zero. Not atomic with respect to concurrent
  /// record() calls; callers quiesce writers first.
  void reset();

  /// Lower bound (seconds) of bucket i — exposed for tests.
  static double bucketFloor(int i);

 private:
  static int bucketFor(double seconds);

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

}  // namespace pushpart
