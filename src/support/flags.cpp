#include "support/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace pushpart {

namespace {

bool looksLikeValue(const std::string& s) {
  // A token following `--name` is treated as its value unless it is itself a
  // flag. A lone "-5" is a value (negative number), "--x" is a flag.
  return s.rfind("--", 0) != 0;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      tok.erase(0, 2);
      const auto eq = tok.find('=');
      if (eq != std::string::npos) {
        values_[tok.substr(0, eq)] = tok.substr(eq + 1);
      } else if (i + 1 < argc && looksLikeValue(argv[i + 1])) {
        values_[tok] = argv[++i];
      } else {
        values_[tok] = "true";
      }
    } else {
      positional_.push_back(tok);
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::str(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::i64(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  return v;
}

double Flags::f64(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  return v;
}

bool Flags::b(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace pushpart
