// Branch-light occupancy scans over count arrays.
//
// The enclosing-rectangle recomputation reduces to "first/last nonzero entry
// of an int32 count array". A naive element-at-a-time loop serialises on the
// early-exit branch; these helpers OR eight lanes per step so the compiler
// can vectorise the block test and only the final block is examined
// element-wise. On the counter arrays both engines maintain, this is the
// only remaining O(N) scan on the push hot path.
#pragma once

#include <cstdint>
#include <span>

namespace pushpart {

/// Index of the first nonzero entry, or size when all entries are zero.
inline std::size_t firstNonZero(std::span<const std::int32_t> v) {
  const std::size_t size = v.size();
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    // The OR tree has no cross-iteration dependence, so the whole block
    // loads and reduces in vector registers.
    const std::int32_t any = v[i] | v[i + 1] | v[i + 2] | v[i + 3] | v[i + 4] |
                             v[i + 5] | v[i + 6] | v[i + 7];
    if (any != 0) break;
  }
  for (; i < size; ++i)
    if (v[i] != 0) return i;
  return size;
}

/// Index of the last nonzero entry, or size when all entries are zero.
inline std::size_t lastNonZero(std::span<const std::int32_t> v) {
  const std::size_t size = v.size();
  std::size_t i = size;
  for (; i >= 8; i -= 8) {
    const std::int32_t any = v[i - 1] | v[i - 2] | v[i - 3] | v[i - 4] |
                             v[i - 5] | v[i - 6] | v[i - 7] | v[i - 8];
    if (any != 0) break;
  }
  while (i > 0) {
    --i;
    if (v[i] != 0) return i;
  }
  return size;
}

}  // namespace pushpart
