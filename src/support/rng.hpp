// Deterministic, seedable random number generation.
//
// The DFA search program (paper §VI) depends on randomised start states and
// push schedules. For reproducible experiments every random decision flows
// through one Rng instance seeded from the command line, so a (seed, N,
// ratio) triple fully determines a run. We use xoshiro256** rather than
// std::mt19937 because it is faster, has a smaller state, and its streams are
// trivially splittable for the multi-threaded batch runner.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pushpart {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by iterating splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double real();

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator for worker thread `index`.
  /// Equivalent to jumping a fresh splitmix64 stream; streams with distinct
  /// indices from the same parent never share state.
  Rng split(std::uint64_t index) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;  // remembered for split()
};

}  // namespace pushpart
