// CSV emission for bench harnesses.
//
// Every experiment binary prints a human-readable table to stdout and can
// also persist the raw series as CSV (`--csv=path`) so plots of the paper's
// figures can be regenerated offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace pushpart {

/// Streams rows of comma-separated values to a file. Fields containing
/// commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// No-op writer: row() calls are discarded. Lets call sites write
  /// unconditionally whether or not --csv was given.
  CsvWriter() = default;

  void row(const std::vector<std::string>& fields);

  /// Convenience for mixed numeric rows.
  void row(std::initializer_list<double> fields);

  bool enabled() const { return out_.is_open(); }

 private:
  void emit(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::size_t width_ = 0;
};

/// Formats a double compactly (trims trailing zeros, max 6 significant
/// decimals) — used by both CSV and console tables.
std::string formatNumber(double v);

}  // namespace pushpart
