// Minimal command-line flag parser for bench and example binaries.
//
// Every bench binary must run with no arguments (paper-default parameters)
// yet allow full-scale runs (`--n=1000 --runs=10000`). Flags look like
// `--name=value` or `--name value`; bare `--name` sets a boolean.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pushpart {

/// Parsed command-line flags with typed, defaulted accessors.
class Flags {
 public:
  Flags() = default;

  /// Parses argv. Throws std::invalid_argument on malformed input
  /// (e.g. a positional token that is not attached to any flag).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string str(const std::string& name, const std::string& fallback) const;
  std::int64_t i64(const std::string& name, std::int64_t fallback) const;
  double f64(const std::string& name, double fallback) const;
  bool b(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags that were set (for --help style diagnostics).
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pushpart
