// Two-processor candidate shapes — the prior-work baseline the paper builds
// on (its reference [8], summarized in §II).
//
// The two-processor study proved three condensed shape families and two
// headline results this module makes executable against the k-ary engine:
//
//   * Straight-Line: the slow processor takes a full-height strip.
//     Normalized VoC = 1 (every row has both owners; columns are private).
//   * Square-Corner: the slow processor takes a corner square of side
//     a = √(1/T). Normalized VoC = 2a = 2/√T.
//   * Rectangle-Corner: a non-square w×h corner rectangle, VoC = w + h —
//     always at least the Square-Corner's by AM–GM, which is the paper's
//     "Rectangle-Corner always inferior" result.
//
// Square-Corner beats Straight-Line iff 2/√T < 1 ⇔ T > 4 ⇔ P_r > 3 —
// the 3:1 crossover quoted throughout the paper. Tests validate both facts
// on grids built here.
#pragma once

#include "nproc/npartition.hpp"
#include "nproc/nsearch.hpp"  // NSpeeds

namespace pushpart {

enum class TwoProcShape {
  kStraightLine = 0,
  kSquareCorner = 1,
  kRectangleCorner = 2,
};

constexpr const char* twoProcShapeName(TwoProcShape s) {
  switch (s) {
    case TwoProcShape::kStraightLine: return "Straight-Line";
    case TwoProcShape::kSquareCorner: return "Square-Corner";
    case TwoProcShape::kRectangleCorner: return "Rectangle-Corner";
  }
  return "?";
}

/// Builds the canonical two-processor partition on an n×n grid for speed
/// ratio p : 1 (processor 0 fast, processor 1 slow). The Rectangle-Corner
/// uses aspect ratio `aspect` (width/height, must be > 0; 1 degenerates to
/// the Square-Corner). Exact element counts; asymptotically rectangular.
NPartition makeTwoProcCandidate(TwoProcShape shape, int n, double p,
                                double aspect = 2.0);

/// Normalized closed-form VoC (VoC / N²) of the canonical two-processor
/// shapes; the Rectangle-Corner takes the same `aspect` parameter.
double twoProcClosedFormVoC(TwoProcShape shape, double p, double aspect = 2.0);

/// The classical crossover: the Square-Corner beats the Straight-Line for
/// P_r above this value (= 3, from 2/√(P_r+1) < 1).
constexpr double kTwoProcCrossover = 3.0;

// --- Four-processor candidate shapes (extension of the paper's program) ---
//
// The paper stops at three processors; these are the natural k = 4
// generalizations of its Archetype A family, used to test the weak form of
// Postulate 1 beyond k = 3: condensation search outputs should never
// communicate less than the best of these.

enum class FourProcShape {
  /// The three slow processors take squares in three corners of the matrix
  /// (the Square-Corner generalization). Feasible when adjacent squares
  /// share no rows/columns: side_i + side_j ≤ n for corner-adjacent pairs.
  kCornerSquares = 0,
  /// The three slow processors split a full-width bottom strip side by side
  /// (the Block-Rectangle generalization). Always feasible.
  kBlockColumns = 1,
  /// All four processors as full-height column strips — the classical 1-D
  /// rectangular partition. Always feasible.
  kColumnStrips = 2,
};

constexpr const char* fourProcShapeName(FourProcShape s) {
  switch (s) {
    case FourProcShape::kCornerSquares: return "Corner-Squares";
    case FourProcShape::kBlockColumns: return "Block-Columns";
    case FourProcShape::kColumnStrips: return "Column-Strips";
  }
  return "?";
}

/// Feasibility of the k = 4 candidate at integer granularity. `speeds` must
/// have exactly four entries.
bool fourProcFeasible(FourProcShape shape, int n, const NSpeeds& speeds);

/// Builds the candidate with exact element counts. Throws
/// std::invalid_argument when infeasible.
NPartition makeFourProcCandidate(FourProcShape shape, int n,
                                 const NSpeeds& speeds);

}  // namespace pushpart
