#include "nproc/nsearch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <unordered_set>

#include "support/check.hpp"
#include "support/csv.hpp"

namespace pushpart {

double NSpeeds::total() const {
  double t = 0;
  for (double s : speeds) t += s;
  return t;
}

bool NSpeeds::valid() const {
  if (speeds.size() < 2) return false;
  for (double s : speeds)
    if (!(s > 0)) return false;
  for (std::size_t i = 1; i < speeds.size(); ++i)
    if (speeds[i] > speeds[0]) return false;
  return true;
}

std::vector<std::int64_t> NSpeeds::elementCounts(int n) const {
  PUSHPART_CHECK(n > 0);
  PUSHPART_CHECK_MSG(valid(), "invalid speed vector " << str());
  const double t = total();
  const auto n2 = static_cast<std::int64_t>(n) * n;
  std::vector<std::int64_t> counts(speeds.size(), 0);
  std::int64_t assigned = 0;
  for (std::size_t i = 1; i < speeds.size(); ++i) {
    counts[i] = static_cast<std::int64_t>(
        std::floor(static_cast<double>(n2) * speeds[i] / t));
    assigned += counts[i];
  }
  counts[0] = n2 - assigned;  // the fastest absorbs rounding, as with P
  PUSHPART_CHECK(counts[0] >= 0);
  return counts;
}

NSpeeds NSpeeds::parse(const std::string& text) {
  NSpeeds out;
  const char* cur = text.c_str();
  while (true) {
    char* end = nullptr;
    const double v = std::strtod(cur, &end);
    if (end == cur)
      throw std::invalid_argument("NSpeeds::parse: bad vector '" + text + "'");
    if (v <= 0)
      throw std::invalid_argument("NSpeeds::parse: speeds must be positive");
    out.speeds.push_back(v);
    cur = end;
    if (*cur == '\0') break;
    if (*cur != ':')
      throw std::invalid_argument("NSpeeds::parse: expected ':' in '" + text +
                                  "'");
    ++cur;
  }
  if (out.speeds.size() < 2)
    throw std::invalid_argument("NSpeeds::parse: need at least two speeds");
  return out;
}

std::string NSpeeds::str() const {
  std::string s;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    if (i) s += ':';
    s += formatNumber(speeds[i]);
  }
  return s;
}

NPartition randomNPartition(int n, const NSpeeds& speeds, Rng& rng) {
  const int k = static_cast<int>(speeds.speeds.size());
  NPartition q(n, k);
  const auto counts = speeds.elementCounts(n);
  for (NProcId p = 1; p < k; ++p) {
    std::int64_t remaining = counts[static_cast<std::size_t>(p)];
    std::int64_t attempts = 0;
    const std::int64_t budget = 20 * q.cellCount();
    while (remaining > 0 && attempts < budget) {
      ++attempts;
      const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (q.at(i, j) == 0) {
        q.set(i, j, p);
        --remaining;
      }
    }
    for (int i = 0; i < n && remaining > 0; ++i)
      for (int j = 0; j < n && remaining > 0; ++j)
        if (q.at(i, j) == 0) {
          q.set(i, j, p);
          --remaining;
        }
    PUSHPART_CHECK(remaining == 0);
  }
  return q;
}

std::vector<NScheduleSlot> randomNSchedule(int procs, Rng& rng) {
  PUSHPART_CHECK(procs >= 2);
  std::vector<NScheduleSlot> slots;
  for (NProcId p = 1; p < procs; ++p) {
    std::vector<Direction> dirs(kAllDirections.begin(), kAllDirections.end());
    rng.shuffle(dirs);
    dirs.resize(1 + rng.below(4));
    for (Direction d : dirs) slots.push_back({p, d});
  }
  rng.shuffle(slots);
  return slots;
}

NShapeStats summarizeShape(const NPartition& q) {
  NShapeStats stats;
  stats.procs = q.procs();
  stats.voc = q.volumeOfCommunication();
  stats.slowProcs = q.procs() - 1;
  for (NProcId p = 1; p < q.procs(); ++p)
    if (q.isAsymptoticallyRectangular(p)) ++stats.rectangularProcs;
  stats.allSlowRectangular = stats.rectangularProcs == stats.slowProcs;
  for (NProcId a = 1; a < q.procs(); ++a)
    for (NProcId b = a + 1; b < q.procs(); ++b)
      if (q.enclosingRect(a).overlaps(q.enclosingRect(b)))
        ++stats.overlappingPairs;
  return stats;
}

NSearchResult runNSearch(int n, const NSpeeds& speeds, Rng& rng,
                         std::int64_t maxPushes) {
  NSearchResult result{randomNPartition(n, speeds, rng), 0, 0, 0, {}};
  NPartition& q = result.final;
  result.vocStart = q.volumeOfCommunication();

  const auto schedule = randomNSchedule(q.procs(), rng);
  std::unordered_set<std::uint64_t> plateau;
  bool running = true;
  while (running) {
    bool anyApplied = false;
    bool anyImproved = false;
    for (const NScheduleSlot& slot : schedule) {
      const auto out = tryPushN(q, slot.active, slot.dir);
      if (!out.applied) continue;
      anyApplied = true;
      anyImproved |= out.improvedVoC();
      if (++result.pushesApplied >= maxPushes) {
        running = false;
        break;
      }
    }
    if (!anyApplied) break;
    if (anyImproved) {
      plateau.clear();
    } else if (!plateau.insert(q.hash()).second) {
      break;  // equal-VoC cycle across sweeps
    }
  }

  result.pushesApplied += condenseN(q);  // unrestricted directions
  result.vocEnd = q.volumeOfCommunication();
  result.stats = summarizeShape(q);
  return result;
}

}  // namespace pushpart
