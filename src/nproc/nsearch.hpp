// Randomized condensation search for k processors (paper §XI direction).
//
// The k-ary analogue of the DFA program: random start state sized by a
// speed vector, random per-processor direction subsets, round-robin pushes
// to a fixed point, then a summary of the condensed geometry. For k = 3 this
// reproduces the paper's experiment through the generalized engine; for
// k ≥ 4 it explores the territory the paper names as future work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nproc/npush.hpp"
#include "support/rng.hpp"

namespace pushpart {

/// Relative speeds; speeds[0] is the fastest processor (validated).
struct NSpeeds {
  std::vector<double> speeds;

  double total() const;
  bool valid() const;

  /// Element counts summing exactly to n²; processor 0 absorbs rounding.
  std::vector<std::int64_t> elementCounts(int n) const;

  /// Parses "8:4:2:1". Throws std::invalid_argument on bad input.
  static NSpeeds parse(const std::string& text);

  std::string str() const;
};

/// Scattered random start state (paper §VI-A2 generalized): all cells on
/// processor 0; each slower processor claims random still-unclaimed cells.
NPartition randomNPartition(int n, const NSpeeds& speeds, Rng& rng);

/// One randomized (processor, direction) schedule slot.
struct NScheduleSlot {
  NProcId active;
  Direction dir;
};

/// Random schedule: 1–4 directions per slow processor, shuffled order.
std::vector<NScheduleSlot> randomNSchedule(int procs, Rng& rng);

/// Geometry summary of a condensed k-ary partition.
struct NShapeStats {
  int procs = 0;
  std::int64_t voc = 0;
  int rectangularProcs = 0;   ///< slow processors that are asymptotically rect
  int slowProcs = 0;
  bool allSlowRectangular = false;
  /// Pairs of slow processors whose enclosing rectangles overlap.
  int overlappingPairs = 0;
};

NShapeStats summarizeShape(const NPartition& q);

struct NSearchResult {
  NPartition final;
  std::int64_t pushesApplied = 0;
  std::int64_t vocStart = 0;
  std::int64_t vocEnd = 0;
  NShapeStats stats;
};

/// Full walk: schedule-restricted round-robin pushes to a fixed point, then
/// an unrestricted condenseN pass (the k-ary beautify).
NSearchResult runNSearch(int n, const NSpeeds& speeds, Rng& rng,
                         std::int64_t maxPushes = 50'000'000);

}  // namespace pushpart
