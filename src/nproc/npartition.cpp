#include "nproc/npartition.hpp"

#include "support/check.hpp"

namespace pushpart {

NPartition::NPartition(int n, int procs) : n_(n), procs_(procs) {
  PUSHPART_CHECK_MSG(n > 0, "NPartition size must be positive, got " << n);
  PUSHPART_CHECK_MSG(procs >= 2 && procs <= 64,
                     "NPartition supports 2..64 processors, got " << procs);
  const auto nz = static_cast<std::size_t>(n);
  const auto kz = static_cast<std::size_t>(procs);
  cells_.assign(nz * nz, 0);
  rowCnt_.assign(kz, std::vector<std::int32_t>(nz, 0));
  colCnt_.assign(kz, std::vector<std::int32_t>(nz, 0));
  total_.assign(kz, 0);
  rowsUsed_.assign(kz, 0);
  colsUsed_.assign(kz, 0);
  rowCnt_[0].assign(nz, n);
  colCnt_[0].assign(nz, n);
  total_[0] = static_cast<std::int64_t>(n) * n;
  rowsUsed_[0] = n;
  colsUsed_[0] = n;
  ci_.assign(nz, 1);
  cj_.assign(nz, 1);
  ciSum_ = n;
  cjSum_ = n;
}

void NPartition::set(int i, int j, NProcId p) {
  PUSHPART_CHECK_MSG(i >= 0 && i < n_ && j >= 0 && j < n_,
                     "cell (" << i << "," << j << ") out of range, n=" << n_);
  PUSHPART_CHECK_MSG(p >= 0 && p < procs_,
                     "processor " << p << " out of range, k=" << procs_);
  const std::size_t idx = index(i, j);
  const NProcId old = cells_[idx];
  if (old == p) return;
  cells_[idx] = p;

  const auto oi = slot(old);
  const auto pi = slot(p);
  const auto iz = static_cast<std::size_t>(i);
  const auto jz = static_cast<std::size_t>(j);

  if (--rowCnt_[oi][iz] == 0) {
    --rowsUsed_[oi];
    --ci_[iz];
    --ciSum_;
  }
  if (--colCnt_[oi][jz] == 0) {
    --colsUsed_[oi];
    --cj_[jz];
    --cjSum_;
  }
  --total_[oi];

  if (rowCnt_[pi][iz]++ == 0) {
    ++rowsUsed_[pi];
    ++ci_[iz];
    ++ciSum_;
  }
  if (colCnt_[pi][jz]++ == 0) {
    ++colsUsed_[pi];
    ++cj_[jz];
    ++cjSum_;
  }
  ++total_[pi];
}

std::int64_t NPartition::volumeOfCommunication() const {
  return static_cast<std::int64_t>(n_) * (ciSum_ - n_) +
         static_cast<std::int64_t>(n_) * (cjSum_ - n_);
}

Rect NPartition::enclosingRect(NProcId p) const {
  if (total_[slot(p)] == 0) return Rect::empty();
  const auto& rows = rowCnt_[slot(p)];
  const auto& cols = colCnt_[slot(p)];
  int top = 0;
  while (rows[static_cast<std::size_t>(top)] == 0) ++top;
  int bottom = n_ - 1;
  while (rows[static_cast<std::size_t>(bottom)] == 0) --bottom;
  int left = 0;
  while (cols[static_cast<std::size_t>(left)] == 0) ++left;
  int right = n_ - 1;
  while (cols[static_cast<std::size_t>(right)] == 0) --right;
  return Rect{top, bottom + 1, left, right + 1};
}

bool NPartition::isAsymptoticallyRectangular(NProcId p) const {
  const Rect r = enclosingRect(p);
  if (r.isEmpty()) return false;
  if (count(p) == r.area()) return true;
  auto rowFull = [&](int i) { return rowCount(p, i) >= r.width(); };
  auto colFull = [&](int j) { return colCount(p, j) >= r.height(); };
  auto allRowsFullExcept = [&](int skip) {
    for (int i = r.rowBegin; i < r.rowEnd; ++i)
      if (i != skip && !rowFull(i)) return false;
    return true;
  };
  auto allColsFullExcept = [&](int skip) {
    for (int j = r.colBegin; j < r.colEnd; ++j)
      if (j != skip && !colFull(j)) return false;
    return true;
  };
  return allRowsFullExcept(r.rowBegin) || allRowsFullExcept(r.rowEnd - 1) ||
         allColsFullExcept(r.colBegin) || allColsFullExcept(r.colEnd - 1);
}

std::uint64_t NPartition::hash() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (NProcId c : cells_) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

void NPartition::validateCounters() const {
  const auto nz = static_cast<std::size_t>(n_);
  const auto kz = static_cast<std::size_t>(procs_);
  std::vector<std::vector<std::int32_t>> rowCnt(
      kz, std::vector<std::int32_t>(nz, 0));
  std::vector<std::vector<std::int32_t>> colCnt(
      kz, std::vector<std::int32_t>(nz, 0));
  std::vector<std::int64_t> total(kz, 0);
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j) {
      const auto x = slot(at(i, j));
      ++rowCnt[x][static_cast<std::size_t>(i)];
      ++colCnt[x][static_cast<std::size_t>(j)];
      ++total[x];
    }
  std::int64_t ciSum = 0, cjSum = 0;
  for (std::size_t i = 0; i < nz; ++i) {
    int ci = 0, cj = 0;
    for (std::size_t x = 0; x < kz; ++x) {
      PUSHPART_CHECK(rowCnt[x][i] == rowCnt_[x][i]);
      PUSHPART_CHECK(colCnt[x][i] == colCnt_[x][i]);
      if (rowCnt[x][i] > 0) ++ci;
      if (colCnt[x][i] > 0) ++cj;
    }
    PUSHPART_CHECK(ci == ci_[i]);
    PUSHPART_CHECK(cj == cj_[i]);
    ciSum += ci;
    cjSum += cj;
  }
  PUSHPART_CHECK(ciSum == ciSum_);
  PUSHPART_CHECK(cjSum == cjSum_);
  for (std::size_t x = 0; x < kz; ++x) {
    PUSHPART_CHECK(total[x] == total_[x]);
    int ru = 0, cu = 0;
    for (std::size_t i = 0; i < nz; ++i) {
      if (rowCnt[x][i] > 0) ++ru;
      if (colCnt[x][i] > 0) ++cu;
    }
    PUSHPART_CHECK(ru == rowsUsed_[x]);
    PUSHPART_CHECK(cu == colsUsed_[x]);
  }
}

}  // namespace pushpart
