// K-processor generalization of the partition grid (paper §XI).
//
// The paper's conclusion positions the three-processor study as "an
// excellent starting point for four or more processors" and notes that both
// the analytical method and the search program extend to any processor
// count. This module is that extension: NPartition stores q : [0,N)² →
// {0..k-1} for arbitrary k ≥ 2 with the same incremental metrics as the
// three-processor Partition (per-line occupancy, O(1) Volume of
// Communication, enclosing rectangles). Processor indices are plain ints;
// by convention the *fastest* processor has index 0 and is never pushed
// (mirroring P in the three-processor API).
#pragma once

#include <cstdint>
#include <vector>

#include "grid/rect.hpp"

namespace pushpart {

/// Processor index in a k-processor partition; 0 is the fastest.
using NProcId = int;

class NPartition {
 public:
  /// n×n grid over `procs` processors, all cells assigned to processor 0.
  NPartition(int n, int procs);

  int n() const { return n_; }
  int procs() const { return procs_; }
  std::int64_t cellCount() const {
    return static_cast<std::int64_t>(n_) * n_;
  }

  NProcId at(int i, int j) const {
    return cells_[index(i, j)];
  }

  /// Reassigns cell (i, j), updating all counters. p must be in [0, procs).
  void set(int i, int j, NProcId p);

  // --- Occupancy queries (all O(1)) -------------------------------------

  int rowCount(NProcId p, int i) const {
    return rowCnt_[slot(p)][static_cast<std::size_t>(i)];
  }
  int colCount(NProcId p, int j) const {
    return colCnt_[slot(p)][static_cast<std::size_t>(j)];
  }
  bool rowHas(NProcId p, int i) const { return rowCount(p, i) > 0; }
  bool colHas(NProcId p, int j) const { return colCount(p, j) > 0; }

  std::int64_t count(NProcId p) const { return total_[slot(p)]; }
  int rowsUsed(NProcId p) const { return rowsUsed_[slot(p)]; }
  int colsUsed(NProcId p) const { return colsUsed_[slot(p)]; }

  /// c_i / c_j — number of distinct owners in a line (Eq. 1 generalized).
  int procsInRow(int i) const { return ci_[static_cast<std::size_t>(i)]; }
  int procsInCol(int j) const { return cj_[static_cast<std::size_t>(j)]; }

  /// VoC = Σ_i N(c_i − 1) + Σ_j N(c_j − 1), O(1).
  std::int64_t volumeOfCommunication() const;

  /// Tightest box around p's cells (empty when p owns nothing). O(N).
  Rect enclosingRect(NProcId p) const;

  /// True when p's cells fill the enclosing rectangle except for missing
  /// cells confined to one edge line (the Fig. 3 notion, k-ary).
  bool isAsymptoticallyRectangular(NProcId p) const;

  /// FNV-1a over cells (cycle detection).
  std::uint64_t hash() const;

  bool operator==(const NPartition& o) const {
    return n_ == o.n_ && procs_ == o.procs_ && cells_ == o.cells_;
  }

  /// O(N²·k) recomputation of every counter; throws CheckError on mismatch.
  void validateCounters() const;

 private:
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  static std::size_t slot(NProcId p) { return static_cast<std::size_t>(p); }

  int n_;
  int procs_;
  std::vector<NProcId> cells_;
  std::vector<std::vector<std::int32_t>> rowCnt_, colCnt_;  // [proc][line]
  std::vector<std::int64_t> total_;
  std::vector<std::int32_t> rowsUsed_, colsUsed_;
  std::vector<std::int16_t> ci_, cj_;
  std::int64_t ciSum_ = 0;
  std::int64_t cjSum_ = 0;
};

}  // namespace pushpart
