// The Push operation generalized to k processors.
//
// Identical structure to the three-processor engine (push/push.hpp): clean
// the active processor's leading edge line, relocate inward under the
// six-type legality ladder, commit transactionally only when the Volume of
// Communication does not increase, no processor's enclosing rectangle grows
// and element counts are conserved. Differences from the k = 3 engine:
//
//   * the active processor is any index except 0 (the fastest);
//   * displaced-owner predicates apply to whichever of the k−1 other
//     processors owns the destination cell;
//   * owners other than processor 0 must keep the vacated edge cell inside
//     their pre-push enclosing rectangle (the same conservative containment
//     rule as the k = 3 engine, now for k−2 "third parties").
#pragma once

#include <cstdint>

#include "nproc/npartition.hpp"
#include "push/direction.hpp"
#include "push/push.hpp"  // PushType, PushOptions

namespace pushpart {

struct NPushOutcome {
  bool applied = false;
  PushType type = PushType::kType1;
  Direction direction = Direction::Down;
  NProcId active = 1;
  std::int64_t vocBefore = 0;
  std::int64_t vocAfter = 0;
  int elementsMoved = 0;

  bool improvedVoC() const { return applied && vocAfter < vocBefore; }
};

/// Attempts one Push of `active`'s edge in `dir`. `active` must not be the
/// fastest processor (index 0).
NPushOutcome tryPushN(NPartition& q, NProcId active, Direction dir,
                      const PushOptions& options = {});

/// K-ary region compaction (the normalisation half of beautify, see
/// push/beautify.hpp): re-lays processor x's cells as a solid edge-aligned
/// block inside its enclosing rectangle (or a rowsUsed × colsUsed corner box
/// when the region is fragmented), swapping only with processor-0 cells.
/// Commits only when VoC does not increase and no slow processor's
/// rectangle grows. Returns whether the partition changed.
bool compactRegionN(NPartition& q, NProcId x);

/// Applies pushes for every non-fastest processor in every direction,
/// interleaved with compaction, until neither applies (the k-ary beautify).
/// Returns pushes applied. Terminates by the same rect-area potential
/// argument as beautify() plus compaction idempotence.
std::int64_t condenseN(NPartition& q, const PushOptions& options = {});

}  // namespace pushpart
