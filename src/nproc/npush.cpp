#include "nproc/npush.hpp"

#include <limits>
#include <optional>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace pushpart {

namespace {

/// Direction-canonicalising coordinate adapter (the k-ary analogue of
/// push/oriented.hpp): logical (r, c) with Down canonical.
class NOriented {
 public:
  NOriented(NPartition& q, Direction dir) : q_(q), dir_(dir) {}

  int n() const { return q_.n(); }

  NProcId at(int r, int c) const {
    const auto [i, j] = phys(r, c);
    return q_.at(i, j);
  }

  void setLogged(int r, int c, NProcId p,
                 std::vector<std::pair<std::pair<int, int>, NProcId>>& log) {
    const auto [i, j] = phys(r, c);
    const NProcId prev = q_.at(i, j);
    if (prev == p) return;
    log.push_back({{i, j}, prev});
    q_.set(i, j, p);
  }

  bool rowHas(NProcId p, int r) const {
    switch (dir_) {
      case Direction::Down: return q_.rowHas(p, r);
      case Direction::Up: return q_.rowHas(p, n() - 1 - r);
      case Direction::Right: return q_.colHas(p, r);
      case Direction::Left: return q_.colHas(p, n() - 1 - r);
    }
    return false;
  }

  bool colHas(NProcId p, int c) const {
    switch (dir_) {
      case Direction::Down:
      case Direction::Up: return q_.colHas(p, c);
      case Direction::Right:
      case Direction::Left: return q_.rowHas(p, c);
    }
    return false;
  }

  Rect rect(NProcId p) const {
    const Rect r = q_.enclosingRect(p);
    if (r.isEmpty()) return Rect::empty();
    switch (dir_) {
      case Direction::Down:
        return r;
      case Direction::Up:
        return Rect{n() - r.rowEnd, n() - r.rowBegin, r.colBegin, r.colEnd};
      case Direction::Right:
        return Rect{r.colBegin, r.colEnd, r.rowBegin, r.rowEnd};
      case Direction::Left:
        return Rect{n() - r.colEnd, n() - r.colBegin, r.rowBegin, r.rowEnd};
    }
    return r;
  }

  std::pair<int, int> physPair(int r, int c) const {
    const auto [i, j] = phys(r, c);
    return {i, j};
  }

 private:
  struct P {
    int i;
    int j;
  };
  P phys(int r, int c) const {
    switch (dir_) {
      case Direction::Down: return {r, c};
      case Direction::Up: return {n() - 1 - r, c};
      case Direction::Right: return {c, r};
      case Direction::Left: return {c, n() - 1 - r};
    }
    return {r, c};
  }

  NPartition& q_;
  Direction dir_;
};

enum class Req { kAnd, kOr, kNone };

struct TypeRule {
  Req activeDest;
  Req ownerPresence;
  bool strictImprovement;
};

constexpr TypeRule ruleFor(PushType t) {
  switch (t) {
    case PushType::kType1: return {Req::kAnd, Req::kAnd, true};
    case PushType::kType2: return {Req::kAnd, Req::kOr, true};
    case PushType::kType3: return {Req::kOr, Req::kAnd, true};
    case PushType::kType4: return {Req::kOr, Req::kNone, true};
    case PushType::kType5: return {Req::kNone, Req::kAnd, false};
    case PushType::kType6: return {Req::kNone, Req::kNone, false};
  }
  return {Req::kAnd, Req::kAnd, true};
}

bool meets(Req req, bool inRow, bool inCol) {
  switch (req) {
    case Req::kAnd: return inRow && inCol;
    case Req::kOr: return inRow || inCol;
    case Req::kNone: return true;
  }
  return false;
}

using UndoLog = std::vector<std::pair<std::pair<int, int>, NProcId>>;

void rollbackN(NPartition& q, const UndoLog& log) {
  for (auto it = log.rbegin(); it != log.rend(); ++it)
    q.set(it->first.first, it->first.second, it->second);
}

}  // namespace

NPushOutcome tryPushN(NPartition& q, NProcId active, Direction dir,
                      const PushOptions& options) {
  PUSHPART_CHECK_MSG(active != 0,
                     "the fastest processor (index 0) is never pushed");
  PUSHPART_CHECK(active > 0 && active < q.procs());

  NPushOutcome out;
  out.direction = dir;
  out.active = active;
  out.vocBefore = q.volumeOfCommunication();
  out.vocAfter = out.vocBefore;

  NOriented view(q, dir);
  const int k = q.procs();

  std::vector<Rect> rectBefore(static_cast<std::size_t>(k));
  std::vector<std::int64_t> countBefore(static_cast<std::size_t>(k));
  for (NProcId p = 0; p < k; ++p) {
    rectBefore[static_cast<std::size_t>(p)] = view.rect(p);
    countBefore[static_cast<std::size_t>(p)] = q.count(p);
  }

  for (PushType type :
       {PushType::kType1, PushType::kType2, PushType::kType3, PushType::kType4,
        PushType::kType5, PushType::kType6}) {
    const TypeRule rule = ruleFor(type);
    if (!options.allowEqualVoC && !rule.strictImprovement) break;

    const Rect r = view.rect(active);
    if (r.isEmpty() || r.height() < 2) break;  // no interior to move into
    const int kRow = r.rowBegin;

    std::vector<int> sources;
    for (int c = r.colBegin; c < r.colEnd; ++c)
      if (view.at(kRow, c) == active) sources.push_back(c);
    if (sources.empty()) break;

    UndoLog log;
    // Far-edge-first monotone cursor (see push/push.cpp for why).
    int g = r.rowEnd - 1;
    int h = r.colBegin;
    bool failed = false;
    for (int c : sources) {
      bool found = false;
      while (g > kRow && !found) {
        while (h < r.colEnd) {
          const NProcId owner = view.at(g, h);
          if (owner != active &&
              meets(rule.activeDest, view.rowHas(active, g),
                    view.colHas(active, h)) &&
              meets(rule.ownerPresence, view.rowHas(owner, kRow),
                    view.colHas(owner, c)) &&
              // Third-party owners must keep the vacated edge cell inside
              // their pre-push rectangle; the fastest processor (0) is
              // unconstrained, as P is in the 3-processor engine in effect
              // (its rectangle is almost always the whole matrix).
              (owner == 0 ||
               rectBefore[static_cast<std::size_t>(owner)].contains(kRow,
                                                                    c))) {
            view.setLogged(kRow, c, owner, log);
            view.setLogged(g, h, active, log);
            found = true;
            ++h;
            break;
          }
          ++h;
        }
        if (!found) {
          h = r.colBegin;
          --g;
        }
      }
      if (!found) {
        failed = true;
        break;
      }
    }
    if (failed) {
      rollbackN(q, log);
      continue;
    }

    const std::int64_t vocAfter = q.volumeOfCommunication();
    const bool vocOk = rule.strictImprovement ? (vocAfter < out.vocBefore)
                                              : (vocAfter <= out.vocBefore);
    if (!vocOk) {
      rollbackN(q, log);
      continue;
    }
    for (NProcId p = 1; p < k; ++p) {  // processor 0's box is unconstrained
      PUSHPART_CHECK_MSG(
          rectBefore[static_cast<std::size_t>(p)].contains(view.rect(p)),
          "k-ary push enlarged the rectangle of processor " << p);
    }
    for (NProcId p = 0; p < k; ++p)
      PUSHPART_CHECK(q.count(p) == countBefore[static_cast<std::size_t>(p)]);

    out.applied = true;
    out.type = type;
    out.vocAfter = vocAfter;
    out.elementsMoved = static_cast<int>(sources.size());
    return out;
  }

  return out;
}

namespace {

/// One attempted re-layout of x, filling in rank order; mirrors
/// tryCompactLayout in push/beautify.cpp for the k-ary grid. Gains come only
/// from processor 0, so compactions of different slow processors cannot
/// displace each other (no livelock) and each is idempotent.
template <typename RankFn>
bool tryCompactLayoutN(NPartition& q, NProcId x, const Rect& rect,
                       RankFn rank) {
  const std::int64_t own = q.count(x);
  auto targetIsX = [&](int i, int j) { return rank(i, j) < own; };

  std::vector<std::pair<int, int>> gain, release;
  for (int i = rect.rowBegin; i < rect.rowEnd; ++i)
    for (int j = rect.colBegin; j < rect.colEnd; ++j) {
      const NProcId owner = q.at(i, j);
      const bool isX = owner == x;
      if (targetIsX(i, j) && !isX) {
        if (owner != 0) return false;
        gain.push_back({i, j});
      } else if (!targetIsX(i, j) && isX) {
        release.push_back({i, j});
      }
    }
  if (gain.empty()) return false;
  PUSHPART_CHECK(gain.size() == release.size());

  const std::int64_t vocBefore = q.volumeOfCommunication();
  std::vector<Rect> rectBefore(static_cast<std::size_t>(q.procs()));
  for (NProcId p = 1; p < q.procs(); ++p)
    rectBefore[static_cast<std::size_t>(p)] = q.enclosingRect(p);

  for (const auto& [i, j] : gain) q.set(i, j, x);
  for (const auto& [i, j] : release) q.set(i, j, 0);

  bool ok = q.volumeOfCommunication() <= vocBefore;
  for (NProcId p = 1; p < q.procs(); ++p)
    ok = ok &&
         rectBefore[static_cast<std::size_t>(p)].contains(q.enclosingRect(p));
  if (!ok) {
    for (const auto& [i, j] : release) q.set(i, j, x);
    for (const auto& [i, j] : gain) q.set(i, j, 0);
    return false;
  }
  return true;
}

}  // namespace

bool compactRegionN(NPartition& q, NProcId x) {
  PUSHPART_CHECK(x > 0 && x < q.procs());
  const Rect rect = q.enclosingRect(x);
  if (rect.isEmpty()) return false;
  if (q.count(x) == rect.area()) return false;
  if (q.isAsymptoticallyRectangular(x)) return false;

  const auto W = static_cast<std::int64_t>(rect.width());
  const auto H = static_cast<std::int64_t>(rect.height());
  const int rb = rect.rowBegin, re = rect.rowEnd;
  const int cb = rect.colBegin, ce = rect.colEnd;

  const auto partialTop = [=](int i, int j) {
    return static_cast<std::int64_t>(re - 1 - i) * W + (j - cb);
  };
  const auto partialBottom = [=](int i, int j) {
    return static_cast<std::int64_t>(i - rb) * W + (j - cb);
  };
  const auto partialRight = [=](int i, int j) {
    return static_cast<std::int64_t>(j - cb) * H + (i - rb);
  };
  const auto partialLeft = [=](int i, int j) {
    return static_cast<std::int64_t>(ce - 1 - j) * H + (i - rb);
  };
  if (tryCompactLayoutN(q, x, rect, partialTop) ||
      tryCompactLayoutN(q, x, rect, partialBottom) ||
      tryCompactLayoutN(q, x, rect, partialRight) ||
      tryCompactLayoutN(q, x, rect, partialLeft))
    return true;

  // Fragmented regions: a rowsUsed × colsUsed corner box has the same line
  // footprint (see push/beautify.cpp).
  const auto rowsUsed = static_cast<std::int64_t>(q.rowsUsed(x));
  const auto colsUsed = static_cast<std::int64_t>(q.colsUsed(x));
  if (rowsUsed >= H && colsUsed >= W) return false;
  const int bh = static_cast<int>(rowsUsed);
  const int bw = static_cast<int>(colsUsed);
  const Rect corners[4] = {
      Rect{re - bh, re, cb, cb + bw},
      Rect{re - bh, re, ce - bw, ce},
      Rect{rb, rb + bh, cb, cb + bw},
      Rect{rb, rb + bh, ce - bw, ce},
  };
  const auto boxRank = [](const Rect& box, bool fromBottom) {
    return [box, fromBottom](int i, int j) -> std::int64_t {
      if (!box.contains(i, j))
        return std::numeric_limits<std::int64_t>::max();
      const std::int64_t row =
          fromBottom ? (box.rowEnd - 1 - i) : (i - box.rowBegin);
      return row * box.width() + (j - box.colBegin);
    };
  };
  for (const Rect& box : corners)
    for (bool fromBottom : {true, false})
      if (tryCompactLayoutN(q, x, rect, boxRank(box, fromBottom))) return true;
  return false;
}

std::int64_t condenseN(NPartition& q, const PushOptions& options) {
  std::int64_t applied = 0;
  std::unordered_set<std::uint64_t> seen;  // cycle guard (see beautify)
  bool any = true;
  while (any) {
    any = false;
    for (NProcId p = 1; p < q.procs(); ++p) {
      for (Direction d : kAllDirections) {
        while (tryPushN(q, p, d, options).applied) {
          ++applied;
          any = true;
        }
      }
    }
    for (NProcId p = 1; p < q.procs(); ++p) {
      if (compactRegionN(q, p)) any = true;
    }
    if (any && !seen.insert(q.hash()).second) break;
  }
  return applied;
}

}  // namespace pushpart
