#include "nproc/nshapes.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pushpart {

namespace {

/// Fills `count` cells of processor 1 into the column band [c0, c1), rows
/// bottom-up within each row sweep, claiming only processor-0 cells.
void fillBandRows(NPartition& q, int c0, int c1, std::int64_t count) {
  std::int64_t remaining = count;
  for (int i = q.n() - 1; i >= 0 && remaining > 0; --i)
    for (int c = c0; c < c1 && remaining > 0; ++c)
      if (q.at(i, c) == 0) {
        q.set(i, c, 1);
        --remaining;
      }
  PUSHPART_CHECK_MSG(remaining == 0, "two-proc band too small");
}

/// Column-major fill from the right edge: full n-row columns plus one
/// partial column — the Straight-Line needs its strip columns owned by the
/// slow processor alone, so the partial line must be a column, not a row.
void fillColumnsFromRight(NPartition& q, std::int64_t count) {
  std::int64_t remaining = count;
  for (int c = q.n() - 1; c >= 0 && remaining > 0; --c)
    for (int i = q.n() - 1; i >= 0 && remaining > 0; --i)
      if (q.at(i, c) == 0) {
        q.set(i, c, 1);
        --remaining;
      }
  PUSHPART_CHECK_MSG(remaining == 0, "two-proc strip too small");
}

}  // namespace

NPartition makeTwoProcCandidate(TwoProcShape shape, int n, double p,
                                double aspect) {
  PUSHPART_CHECK_MSG(p >= 1.0, "fast processor must be at least as fast");
  PUSHPART_CHECK(aspect > 0);
  NPartition q(n, 2);
  const double t = p + 1.0;
  const auto n2 = static_cast<std::int64_t>(n) * n;
  const auto slow = static_cast<std::int64_t>(
      std::floor(static_cast<double>(n2) / t));
  PUSHPART_CHECK_MSG(slow > 0, "grid too small for the slow processor");

  switch (shape) {
    case TwoProcShape::kStraightLine: {
      // Full-height strip on the right: full columns plus one partial
      // column, so strip columns are single-owner.
      fillColumnsFromRight(q, slow);
      break;
    }
    case TwoProcShape::kSquareCorner: {
      const int a = std::max(
          1, static_cast<int>(std::llround(std::sqrt(
                 static_cast<double>(slow)))));
      PUSHPART_CHECK_MSG(a <= n, "square does not fit");
      fillBandRows(q, n - a, n, slow);  // bottom-right corner
      break;
    }
    case TwoProcShape::kRectangleCorner: {
      // width/height = aspect, area = slow.
      const double hIdeal = std::sqrt(static_cast<double>(slow) / aspect);
      int h = std::clamp(static_cast<int>(std::llround(hIdeal)), 1, n);
      int w = std::clamp(
          static_cast<int>((slow + h - 1) / h), 1, n);
      while (static_cast<std::int64_t>(w) * h < slow && h < n) {
        ++h;
        w = std::clamp(static_cast<int>((slow + h - 1) / h), 1, n);
      }
      PUSHPART_CHECK_MSG(static_cast<std::int64_t>(w) * h >= slow,
                         "rectangle does not fit");
      // Fill bottom-right w×h box bottom-up.
      std::int64_t remaining = slow;
      for (int i = n - 1; i >= n - h && remaining > 0; --i)
        for (int j = n - w; j < n && remaining > 0; ++j) {
          q.set(i, j, 1);
          --remaining;
        }
      PUSHPART_CHECK(remaining == 0);
      break;
    }
  }
  return q;
}

namespace {

/// Near-square side for `count` cells.
int sideFor(std::int64_t count) {
  return std::max(1, static_cast<int>(std::llround(
                         std::sqrt(static_cast<double>(count)))));
}

/// Fills `count` cells of processor `p` row-major within the given box,
/// scanning rows from `fromBottom` ? bottom-up : top-down, claiming only
/// processor-0 cells.
void fillBox(NPartition& q, NProcId p, int r0, int r1, int c0, int c1,
             bool fromBottom, std::int64_t count) {
  std::int64_t remaining = count;
  if (fromBottom) {
    for (int i = r1 - 1; i >= r0 && remaining > 0; --i)
      for (int j = c0; j < c1 && remaining > 0; ++j)
        if (q.at(i, j) == 0) {
          q.set(i, j, p);
          --remaining;
        }
  } else {
    for (int i = r0; i < r1 && remaining > 0; ++i)
      for (int j = c0; j < c1 && remaining > 0; ++j)
        if (q.at(i, j) == 0) {
          q.set(i, j, p);
          --remaining;
        }
  }
  PUSHPART_CHECK_MSG(remaining == 0, "four-proc box too small");
}

}  // namespace

bool fourProcFeasible(FourProcShape shape, int n, const NSpeeds& speeds) {
  if (speeds.speeds.size() != 4 || !speeds.valid() || n <= 0) return false;
  const auto counts = speeds.elementCounts(n);
  for (NProcId p = 1; p < 4; ++p)
    if (counts[static_cast<std::size_t>(p)] <= 0) return false;

  switch (shape) {
    case FourProcShape::kCornerSquares: {
      // Squares at top-left (1), top-right (2), bottom-left (3). Corner-
      // adjacent pairs must not share rows or columns.
      const int a1 = sideFor(counts[1]);
      const int a2 = sideFor(counts[2]);
      const int a3 = sideFor(counts[3]);
      const auto h1 = (counts[1] + a1 - 1) / a1;
      const auto h2 = (counts[2] + a2 - 1) / a2;
      const auto h3 = (counts[3] + a3 - 1) / a3;
      return a1 + a2 <= n &&            // 1 and 2 share the top rows
             h1 + h3 <= n &&            // 1 and 3 share the left columns
             a3 <= n && h2 <= n;
    }
    case FourProcShape::kBlockColumns:
    case FourProcShape::kColumnStrips: {
      std::int64_t widths = 0;
      for (NProcId p = 1; p < 4; ++p)
        widths += (counts[static_cast<std::size_t>(p)] + n - 1) / n;
      return widths <= n;
    }
  }
  return false;
}

NPartition makeFourProcCandidate(FourProcShape shape, int n,
                                 const NSpeeds& speeds) {
  if (!fourProcFeasible(shape, n, speeds))
    throw std::invalid_argument(std::string(fourProcShapeName(shape)) +
                                " infeasible for n=" + std::to_string(n) +
                                " speeds " + speeds.str());
  const auto counts = speeds.elementCounts(n);
  NPartition q(n, 4);

  switch (shape) {
    case FourProcShape::kCornerSquares: {
      const int a1 = sideFor(counts[1]);
      const int a2 = sideFor(counts[2]);
      const int a3 = sideFor(counts[3]);
      fillBox(q, 1, 0, n, 0, a1, /*fromBottom=*/false, counts[1]);
      fillBox(q, 2, 0, n, n - a2, n, /*fromBottom=*/false, counts[2]);
      fillBox(q, 3, 0, n, 0, a3, /*fromBottom=*/true, counts[3]);
      break;
    }
    case FourProcShape::kBlockColumns: {
      // Full-width bottom strip split into three bottom-aligned bands, lane
      // boundaries proportional to the counts (the k = 4 Block-Rectangle).
      const std::int64_t slowTotal = counts[1] + counts[2] + counts[3];
      int c0 = 0;
      std::int64_t assigned = 0;
      for (NProcId p = 1; p < 4; ++p) {
        std::int64_t c1w;
        if (p == 3) {
          c1w = n - c0;
        } else {
          assigned += counts[static_cast<std::size_t>(p)];
          const auto target = static_cast<std::int64_t>(std::llround(
              static_cast<double>(n) * static_cast<double>(assigned) /
              static_cast<double>(slowTotal)));
          c1w = std::max<std::int64_t>(target - c0, 1);
        }
        const int c1 = std::min(n, c0 + static_cast<int>(c1w));
        fillBox(q, p, 0, n, c0, c1, /*fromBottom=*/true,
                counts[static_cast<std::size_t>(p)]);
        c0 = c1;
      }
      break;
    }
    case FourProcShape::kColumnStrips: {
      // Slow processors take full-height strips from the right; processor 0
      // keeps the left block. Column-major right-to-left fills claim only
      // free cells, so each strip starts where the previous one ended and
      // strip columns stay (almost) single-owner.
      for (NProcId p = 1; p < 4; ++p) {
        std::int64_t remaining = counts[static_cast<std::size_t>(p)];
        for (int c = n - 1; c >= 0 && remaining > 0; --c)
          for (int i = n - 1; i >= 0 && remaining > 0; --i)
            if (q.at(i, c) == 0) {
              q.set(i, c, p);
              --remaining;
            }
        PUSHPART_CHECK(remaining == 0);
      }
      break;
    }
  }
  return q;
}

double twoProcClosedFormVoC(TwoProcShape shape, double p, double aspect) {
  PUSHPART_CHECK(p >= 1.0);
  const double t = p + 1.0;
  const double share = 1.0 / t;
  switch (shape) {
    case TwoProcShape::kStraightLine:
      return 1.0;  // every row carries both owners; columns are private
    case TwoProcShape::kSquareCorner:
      return 2.0 * std::sqrt(share);
    case TwoProcShape::kRectangleCorner: {
      // Rows cost h only while the rectangle leaves room beside it (w < 1);
      // a full-width rectangle's rows are single-owner, and symmetrically
      // for columns — the degenerate cases collapse to straight lines.
      const double h = std::min(1.0, std::sqrt(share / aspect));
      const double w = std::min(1.0, aspect * h);
      double voc = 0.0;
      if (w < 1.0) voc += h;
      if (h < 1.0) voc += w;
      return voc;
    }
  }
  return 0.0;
}

}  // namespace pushpart
