#include "bounds/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pushpart {

std::int64_t minLineSpan(std::int64_t cells, int n) {
  if (cells <= 0) return 0;
  const auto nn = static_cast<std::int64_t>(n);
  PUSHPART_CHECK_MSG(cells <= nn * nn,
                     "minLineSpan: " << cells << " cells exceed n=" << n);
  // r + c is convex along the r·c = cells frontier with its minimum at
  // r = √cells; only the integer neighbours of the root can win, after
  // clamping both sides to the [1, n] box.
  const auto root = static_cast<std::int64_t>(
      std::floor(std::sqrt(static_cast<double>(cells))));
  std::int64_t best = 2 * nn;  // r = c = n always satisfies r·c >= cells.
  for (std::int64_t r = std::max<std::int64_t>(1, root - 1);
       r <= std::min(nn, root + 2); ++r) {
    const std::int64_t c = (cells + r - 1) / r;  // smallest c with r·c >= cells
    if (c > nn) continue;
    best = std::min(best, r + c);
  }
  return best;
}

std::int64_t vocLowerBound(int n, const std::vector<std::int64_t>& counts) {
  if (n <= 0) return 0;
  const auto nn = static_cast<std::int64_t>(n);
  std::int64_t spans = 0;
  for (const std::int64_t e : counts) spans += minLineSpan(e, n);
  return std::max<std::int64_t>(0, nn * spans - 2 * nn * nn);
}

std::int64_t vocLowerBound(int n, const Ratio& ratio) {
  const auto counts = ratio.elementCounts(n);
  return vocLowerBound(n, {counts.begin(), counts.end()});
}

double normalizedVocLowerBound(const Ratio& ratio) {
  double sum = 0.0;
  for (const Proc x : kAllProcs) sum += std::sqrt(ratio.fraction(x));
  return std::max(0.0, 2.0 * sum - 2.0);
}

double optimalityGapPct(std::int64_t voc, std::int64_t bound) {
  if (voc <= bound) return 0.0;
  const auto denom = static_cast<double>(std::max<std::int64_t>(1, bound));
  return 100.0 * static_cast<double>(voc - bound) / denom;
}

}  // namespace pushpart
