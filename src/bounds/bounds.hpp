// Memory-independent communication lower bounds (Al Daas et al.,
// arXiv 2205.13407, specialized to the paper's owner-computes 2D model).
//
// The Eq. 1 Volume of Communication of any partition q of an N×N grid obeys
// an exact identity: since Σ_X rowsUsed_X = Σ_i c_i (each processor present
// in row i contributes once to c_i, and symmetrically for columns),
//
//   VoC = Σ_i N(c_i − 1) + Σ_j N(c_j − 1)
//       = N·Σ_X (rowsUsed_X + colsUsed_X) − 2N².
//
// Processor X's cells fit inside its rowsUsed_X × colsUsed_X bounding lines,
// so rowsUsed_X · colsUsed_X ≥ e_X, and the minimum of r + c subject to
// r·c ≥ e and 1 ≤ r, c ≤ N is attained near r = c = √e (the AM–GM /
// Loomis–Whitney step of the memory-independent bound). Hence for ANY
// partition with element counts {e_X}:
//
//   VoC ≥ N·Σ_X minLineSpan(e_X, N) − 2N²          (integer form)
//   VoC/N² ≥ 2·Σ_X √(e_X/N²) − 2                   (continuous form)
//
// This holds for every arrangement — not just our candidate families — so
// (voc − bound)/bound is a certified optimality gap: "this plan communicates
// within X% of any possible partition".
#pragma once

#include <cstdint>
#include <vector>

#include "grid/ratio.hpp"

namespace pushpart {

/// min{r + c : r·c ≥ cells, 1 ≤ r, c ≤ n} — the smallest number of grid
/// lines (rows plus columns) that can bound a region of `cells` cells.
/// Returns 0 for cells <= 0. Requires cells <= n².
std::int64_t minLineSpan(std::int64_t cells, int n);

/// Integer lower bound on the VoC of any partition of an n×n grid with the
/// given per-processor element counts (zero counts contribute nothing).
/// Clamped at 0 (for tiny grids the identity can go negative).
std::int64_t vocLowerBound(int n, const std::vector<std::int64_t>& counts);

/// Convenience: the bound at the ratio's exact element counts (Eq. 12) —
/// the per-scenario bound every served 3-processor plan is compared to.
std::int64_t vocLowerBound(int n, const Ratio& ratio);

/// Continuous form, normalized by N²: 2·(√fP + √fR + √fS) − 2 where f_X is
/// X's area fraction. The n → ∞ limit of vocLowerBound(n, ratio)/n².
double normalizedVocLowerBound(const Ratio& ratio);

/// Certified optimality gap, percent: 100·(voc − bound)/bound. A correct
/// bound makes this >= 0 for every realizable partition (the verify suite
/// asserts it). Returns 0 when voc <= bound; guards bound == 0 (degenerate
/// tiny grids) by reporting against a bound of 1.
double optimalityGapPct(std::int64_t voc, std::int64_t bound);

}  // namespace pushpart
