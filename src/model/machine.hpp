// Machine model: heterogeneous processor speeds plus a Hockney network.
//
// The paper models communication with the linear Hockney model
// T_comm = α + β·M (§II) and computation with relative speeds P_r:R_r:S_r.
// A Machine collects the absolute constants so the five algorithm models
// (model/models.hpp) and the discrete-event simulator (sim/) can turn
// element counts into seconds. Fig. 14's setting — N = 5000 doubles on a
// 1000 MB/s network — is the default.
#pragma once

#include <cstdint>

#include "grid/proc.hpp"
#include "grid/ratio.hpp"

namespace pushpart {

struct Machine {
  /// Per-message latency α in seconds (Hockney). The paper's analysis uses
  /// the asymptotic bandwidth term; latency defaults to zero and can be set
  /// for the simulator's finer-grained runs.
  double alphaSeconds = 0.0;

  /// Seconds to move one matrix element (Hockney β times element size).
  /// Default: 8-byte doubles over 1000 MB/s = 8e-9 s/element (Fig. 14).
  double sendElementSeconds = 8.0e-9;

  /// Seconds for the *slowest* processor (S, speed 1) to execute one
  /// multiply-accumulate of the kij loop. Faster processors divide by their
  /// relative speed. Default ≈ 1 Gflop/s of MACs for the baseline node.
  double baseFlopSeconds = 1.0e-9;

  /// Relative processor speeds.
  Ratio ratio{2, 1, 1};

  /// Hockney transfer time for `elements` matrix elements in one message.
  double transferSeconds(std::int64_t elements) const {
    return alphaSeconds +
           sendElementSeconds * static_cast<double>(elements);
  }

  /// Seconds for processor x to perform `macs` multiply-accumulates.
  double computeSeconds(Proc x, std::int64_t macs) const {
    return baseFlopSeconds * static_cast<double>(macs) / ratio.speed(x);
  }
};

}  // namespace pushpart
