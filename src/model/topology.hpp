// Network topologies considered in the paper (§X).
//
// Fully-connected: every processor exchanges data directly (Eqs. 2–9 apply
// as written). Star: one designated hub relays traffic between the other two
// processors, so spoke↔spoke volumes cross two links (store-and-forward).
#pragma once

#include "grid/proc.hpp"

namespace pushpart {

enum class Topology {
  kFullyConnected = 0,
  kStar = 1,  ///< Hub processor relays all spoke-to-spoke traffic.
};

constexpr const char* topologyName(Topology t) {
  switch (t) {
    case Topology::kFullyConnected: return "fully-connected";
    case Topology::kStar: return "star";
  }
  return "?";
}

/// Star-topology configuration: which processor is the hub. The natural
/// choice is the fastest processor P (it usually holds the most data).
struct StarConfig {
  Proc hub = Proc::P;
};

}  // namespace pushpart
