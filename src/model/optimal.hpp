// Optimal-shape selection across the six candidates (paper §X methodology).
//
// For a given ratio, algorithm, topology and machine, rank every feasible
// canonical candidate by its modeled execution time. This is the analysis
// the paper defers to future work; the library provides it as the natural
// downstream API ("which partition should I use on this machine?").
#pragma once

#include <optional>
#include <vector>

#include "model/models.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

struct RankedCandidate {
  CandidateShape shape;
  ModelResult model;
  std::int64_t voc = 0;  ///< Grid-measured Volume of Communication.
};

/// All feasible candidates at integer granularity n, ranked by modeled
/// execution time (ascending — best first). machine.ratio supplies the
/// processor speeds and must match the shapes being compared.
std::vector<RankedCandidate> rankCandidates(
    Algo algo, int n, const Machine& machine,
    Topology topology = Topology::kFullyConnected, StarConfig star = {});

/// Convenience: the winner of rankCandidates. Throws std::runtime_error when
/// no candidate is feasible (degenerate n).
RankedCandidate selectOptimal(Algo algo, int n, const Machine& machine,
                              Topology topology = Topology::kFullyConnected,
                              StarConfig star = {});

/// Re-costs one specific shape at exact request parameters without ranking
/// the whole field — what the atlas certificate uses to check a precomputed
/// winner against the ratio actually asked for. Returns nullopt when the
/// shape is infeasible there.
std::optional<RankedCandidate> rankOne(
    CandidateShape shape, Algo algo, int n, const Machine& machine,
    Topology topology = Topology::kFullyConnected, StarConfig star = {});

}  // namespace pushpart
