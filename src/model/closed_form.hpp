// Closed-form communication costs of the canonical candidate shapes
// (paper §X-A, Fig. 13).
//
// With the matrix normalized to 1×1 and T = P_r + R_r + S_r, the Volume of
// Communication of each canonical shape has a closed form in the ratio
// alone (derived from Eq. 1 over the continuous geometry; a row/column
// contributes (owners − 1)):
//
//   Square-Corner          2(√(R_r/T) + √(S_r/T))
//   Rectangle-Corner       h_R + h_S + 1, h_X = X_r/(T·w_X), w_R+w_S = 1,
//                          w_R = √R_r/(√R_r+√S_r)
//   Square-Rectangle       1 + 2√(S_r/T)
//   Block-Rectangle        1 + (R_r+S_r)/T          (paper: N(R_len + N))
//   L-Rectangle            1 + (P_r+S_r)/T
//   Traditional-Rectangle  1 + (R_r+S_r)/T
//
// Multiply by N² (and T_send) for absolute volumes; tests cross-validate
// these against grid-measured VoC of makeCandidate() to O(N) rounding.
#pragma once

#include "grid/ratio.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

/// Normalized closed-form VoC (VoC / N²) of a canonical shape. Returns +inf
/// when the shape is infeasible for the ratio in the continuous setting
/// (Square-Corner below the Thm 9.1 boundary).
double closedFormVoC(CandidateShape shape, const Ratio& ratio);

/// Absolute SCB communication seconds for an N×N matrix (Fig. 13/14 axis):
/// closedFormVoC · N² · T_send.
double closedFormScbCommSeconds(CandidateShape shape, const Ratio& ratio,
                                int n, double sendElementSeconds);

/// Solves the Fig. 13 crossover: smallest P_r (for given R_r, S_r) at which
/// the Square-Corner's SCB cost drops below the Block-Rectangle's, searched
/// over the feasible region P_r ≥ 2√(R_r·S_r). Returns +inf when the
/// Square-Corner never wins below `maxP`.
double squareCornerCrossover(double rR, double rS, double maxP = 1e4);

}  // namespace pushpart
