#include "model/models.hpp"

#include <algorithm>
#include <array>

#include "grid/metrics.hpp"
#include "support/check.hpp"

namespace pushpart {

namespace {

/// Communication volumes after topology routing.
struct CommVolumes {
  std::int64_t serialTotal = 0;                    ///< Σ link crossings.
  std::array<std::int64_t, kNumProcs> perProc{};   ///< Outbound per processor.
};

CommVolumes routedVolumes(const Partition& q, Topology topology,
                          StarConfig star) {
  const auto v = pairVolumes(q);
  CommVolumes out;
  for (int s = 0; s < kNumProcs; ++s)
    for (int r = 0; r < kNumProcs; ++r)
      out.serialTotal += v[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];

  if (topology == Topology::kFullyConnected) {
    for (int s = 0; s < kNumProcs; ++s)
      for (int r = 0; r < kNumProcs; ++r)
        out.perProc[static_cast<std::size_t>(s)] +=
            v[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];
    return out;
  }

  // Star: spoke↔spoke elements cross two links (spoke→hub, hub→spoke). The
  // hub pays the forwarding on its outbound budget.
  const auto hub = static_cast<std::size_t>(procIndex(star.hub));
  std::int64_t forwarded = 0;
  for (int s = 0; s < kNumProcs; ++s) {
    for (int r = 0; r < kNumProcs; ++r) {
      const auto ss = static_cast<std::size_t>(s);
      const auto rr = static_cast<std::size_t>(r);
      if (v[ss][rr] == 0) continue;
      out.perProc[ss] += v[ss][rr];  // first hop is always the sender's
      if (ss != hub && rr != hub) {
        forwarded += v[ss][rr];
        out.perProc[hub] += v[ss][rr];  // second hop
      }
    }
  }
  out.serialTotal += forwarded;
  return out;
}

}  // namespace

ModelResult evalModel(Algo algo, const Partition& q, const Machine& machine,
                      Topology topology, StarConfig star) {
  PUSHPART_CHECK_MSG(machine.ratio.valid(),
                     "invalid machine ratio " << machine.ratio.str());
  const int n = q.n();
  const CommVolumes vol = routedVolumes(q, topology, star);
  const double tsend = machine.sendElementSeconds;

  // Per-processor computation loads: each owned C element takes N MACs.
  std::array<double, kNumProcs> compFull{};   // all owned elements
  std::array<double, kNumProcs> compOverlap{};
  std::array<double, kNumProcs> compRemainder{};
  std::array<double, kNumProcs> compOneStep{};  // one pivot step (PIO)
  for (Proc x : kAllProcs) {
    const auto xi = procSlot(x);
    const std::int64_t owned = q.count(x);
    compFull[xi] = machine.computeSeconds(x, owned * n);
    const std::int64_t local = overlapElements(q, x);
    compOverlap[xi] = machine.computeSeconds(x, local * n);
    compRemainder[xi] = machine.computeSeconds(x, (owned - local) * n);
    compOneStep[xi] = machine.computeSeconds(x, owned);
  }
  const double maxFull = *std::max_element(compFull.begin(), compFull.end());
  const double maxOverlap =
      *std::max_element(compOverlap.begin(), compOverlap.end());
  const double maxRemainder =
      *std::max_element(compRemainder.begin(), compRemainder.end());
  const double maxStep =
      *std::max_element(compOneStep.begin(), compOneStep.end());

  const double serialComm =
      tsend * static_cast<double>(vol.serialTotal);
  double parallelComm = 0.0;
  for (auto d : vol.perProc)
    parallelComm = std::max(parallelComm, tsend * static_cast<double>(d));

  ModelResult result;
  switch (algo) {
    case Algo::kSCB:
      result.commSeconds = serialComm;
      result.compSeconds = maxFull;
      result.execSeconds = serialComm + maxFull;
      break;
    case Algo::kPCB:
      result.commSeconds = parallelComm;
      result.compSeconds = maxFull;
      result.execSeconds = parallelComm + maxFull;
      break;
    case Algo::kSCO:
      result.commSeconds = serialComm;
      result.overlapSeconds = maxOverlap;
      result.compSeconds = maxRemainder;
      result.execSeconds = std::max(serialComm, maxOverlap) + maxRemainder;
      break;
    case Algo::kPCO:
      result.commSeconds = parallelComm;
      result.overlapSeconds = maxOverlap;
      result.compSeconds = maxRemainder;
      result.execSeconds = std::max(parallelComm, maxOverlap) + maxRemainder;
      break;
    case Algo::kPIO: {
      // Per-step comm: pivot row/column k changes owner mix per k (Eq. 9).
      // Under a star, spoke-owned pivot elements relayed to the other spoke
      // are charged a second crossing (upper bound: every spoke pivot
      // element forwarded).
      double total = 0.0;
      for (int k = 0; k < n; ++k) {
        std::int64_t stepVolume =
            static_cast<std::int64_t>(n) * (q.procsInRow(k) - 1) +
            static_cast<std::int64_t>(n) * (q.procsInCol(k) - 1);
        if (topology == Topology::kStar) {
          for (Proc x : kSlowProcs) {
            if (x == star.hub) continue;
            stepVolume += q.rowCount(x, k) + q.colCount(x, k);
          }
        }
        const double stepComm = tsend * static_cast<double>(stepVolume);
        if (k == 0) {
          total += stepComm;  // priming send
        } else {
          total += std::max(stepComm, maxStep);
        }
        result.commSeconds += stepComm;
      }
      total += maxStep;  // the drain step computes the final pivot
      result.compSeconds = maxStep * n;
      result.execSeconds = total;
      break;
    }
  }
  return result;
}

double commSeconds(Algo algo, const Partition& q, const Machine& machine,
                   Topology topology, StarConfig star) {
  return evalModel(algo, q, machine, topology, star).commSeconds;
}

ModelResult evalPioBlocked(const Partition& q, const Machine& machine,
                           int blockSize, Topology topology, StarConfig star) {
  PUSHPART_CHECK_MSG(blockSize >= 1, "PIO block size must be positive");
  PUSHPART_CHECK_MSG(machine.ratio.valid(),
                     "invalid machine ratio " << machine.ratio.str());
  const int n = q.n();
  const double tsend = machine.sendElementSeconds;

  double maxStep = 0.0;
  for (Proc x : kAllProcs)
    maxStep = std::max(maxStep, machine.computeSeconds(x, q.count(x)));

  auto stepVolume = [&](int k) {
    std::int64_t volume = static_cast<std::int64_t>(n) * (q.procsInRow(k) - 1) +
                          static_cast<std::int64_t>(n) * (q.procsInCol(k) - 1);
    if (topology == Topology::kStar) {
      for (Proc x : kSlowProcs) {
        if (x == star.hub) continue;
        volume += q.rowCount(x, k) + q.colCount(x, k);
      }
    }
    return volume;
  };

  ModelResult result;
  double total = 0.0;
  int k = 0;
  int prevBlockSteps = 0;  // 0 for the priming block: nothing to overlap
  while (k < n) {
    const int blockEnd = std::min(n, k + blockSize);
    std::int64_t blockVolume = 0;
    for (int p = k; p < blockEnd; ++p) blockVolume += stepVolume(p);
    const double blockComm = tsend * static_cast<double>(blockVolume);
    // This block's exchange overlaps the *previous* block's compute.
    total += std::max(blockComm, maxStep * prevBlockSteps);
    result.commSeconds += blockComm;
    prevBlockSteps = blockEnd - k;
    k = blockEnd;
  }
  total += maxStep * prevBlockSteps;  // drain: compute the final block
  result.compSeconds = maxStep * n;
  result.execSeconds = total;
  return result;
}

}  // namespace pushpart
