#include "model/closed_form.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace pushpart {

double closedFormVoC(CandidateShape shape, const Ratio& ratio) {
  PUSHPART_CHECK_MSG(ratio.valid(), "invalid ratio " << ratio.str());
  const double t = ratio.total();
  const double fR = ratio.r / t;
  const double fS = ratio.s / t;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  switch (shape) {
    case CandidateShape::kSquareCorner: {
      const double side = std::sqrt(fR) + std::sqrt(fS);
      if (side > 1.0) return kInf;  // Thm 9.1: squares do not fit
      return 2.0 * side;
    }
    case CandidateShape::kRectangleCorner: {
      const double wR = rectangleCornerSplit(ratio);
      const double wS = 1.0 - wR;
      const double hR = fR / wR;
      const double hS = fS / wS;
      if (hR > 1.0 || hS > 1.0) return kInf;  // corners taller than the matrix
      return hR + hS + 1.0;
    }
    case CandidateShape::kSquareRectangle: {
      const double aS = std::sqrt(fS);
      if (fR + aS > 1.0) return kInf;  // square collides with the strip
      return 1.0 + 2.0 * aS;
    }
    case CandidateShape::kBlockRectangle:
      return 1.0 + fR + fS;
    case CandidateShape::kLRectangle:
      return 1.0 + (1.0 - fR);
    case CandidateShape::kTraditionalRectangle:
      return 1.0 + fR + fS;
  }
  return kInf;
}

double closedFormScbCommSeconds(CandidateShape shape, const Ratio& ratio,
                                int n, double sendElementSeconds) {
  PUSHPART_CHECK(n > 0);
  return closedFormVoC(shape, ratio) * static_cast<double>(n) *
         static_cast<double>(n) * sendElementSeconds;
}

double squareCornerCrossover(double rR, double rS, double maxP) {
  PUSHPART_CHECK(rR > 0 && rS > 0 && maxP > 1);
  // The Square-Corner cost 2(√(R/T)+√(S/T)) decreases in P_r while the
  // Block-Rectangle cost 1+(R+S)/T also decreases; their difference is
  // monotone where defined, so bisect on the sign change over the feasible
  // interval [2√(R·S), maxP].
  auto diff = [&](double p) {
    const Ratio ratio{p, rR, rS};
    return closedFormVoC(CandidateShape::kSquareCorner, ratio) -
           closedFormVoC(CandidateShape::kBlockRectangle, ratio);
  };
  double lo = 2.0 * std::sqrt(rR * rS) + 1e-9;
  if (lo < std::max(rR, rS)) lo = std::max(rR, rS);  // keep ratio valid
  double hi = maxP;
  if (diff(lo) <= 0.0) return lo;  // wins as soon as it is feasible
  if (diff(hi) > 0.0) return std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (diff(mid) > 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace pushpart
