#include "model/optimal.hpp"

#include <algorithm>
#include <stdexcept>

namespace pushpart {

std::vector<RankedCandidate> rankCandidates(Algo algo, int n,
                                            const Machine& machine,
                                            Topology topology,
                                            StarConfig star) {
  std::vector<RankedCandidate> out;
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, n, machine.ratio)) continue;
    const Partition q = makeCandidate(shape, n, machine.ratio);
    RankedCandidate ranked{shape, evalModel(algo, q, machine, topology, star),
                           q.volumeOfCommunication()};
    out.push_back(ranked);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.model.execSeconds < b.model.execSeconds;
                   });
  return out;
}

RankedCandidate selectOptimal(Algo algo, int n, const Machine& machine,
                              Topology topology, StarConfig star) {
  const auto ranked = rankCandidates(algo, n, machine, topology, star);
  if (ranked.empty())
    throw std::runtime_error("selectOptimal: no feasible candidate for n=" +
                             std::to_string(n));
  return ranked.front();
}

std::optional<RankedCandidate> rankOne(CandidateShape shape, Algo algo, int n,
                                       const Machine& machine,
                                       Topology topology, StarConfig star) {
  if (!candidateFeasible(shape, n, machine.ratio)) return std::nullopt;
  const Partition q = makeCandidate(shape, n, machine.ratio);
  return RankedCandidate{shape, evalModel(algo, q, machine, topology, star),
                         q.volumeOfCommunication()};
}

}  // namespace pushpart
