// The five parallel MMM algorithms modeled in the paper (§II).
#pragma once

#include <array>

namespace pushpart {

/// Communication/computation orchestration strategies for parallel kij MMM.
enum class Algo {
  kSCB = 0,  ///< Serial Communication with Barrier (Eq. 2–3).
  kPCB = 1,  ///< Parallel Communication with Barrier (Eq. 4–6).
  kSCO = 2,  ///< Serial Communication with Bulk Overlap (Eq. 7).
  kPCO = 3,  ///< Parallel Communication with Bulk Overlap (Eq. 8).
  kPIO = 4,  ///< Parallel Interleaving Overlap (Eq. 9).
};

inline constexpr std::array<Algo, 5> kAllAlgos = {
    Algo::kSCB, Algo::kPCB, Algo::kSCO, Algo::kPCO, Algo::kPIO};

constexpr const char* algoName(Algo a) {
  switch (a) {
    case Algo::kSCB: return "SCB";
    case Algo::kPCB: return "PCB";
    case Algo::kSCO: return "SCO";
    case Algo::kPCO: return "PCO";
    case Algo::kPIO: return "PIO";
  }
  return "?";
}

}  // namespace pushpart
