// Performance models of the five parallel MMM algorithms (paper §IV-B,
// Eqs. 2–9), evaluated on arbitrary partitions.
//
// Each model turns a partition's communication metrics and per-processor
// computation loads into predicted execution time on a Machine, under a
// fully-connected or star topology. The models share the paper's structure:
//
//   SCB:  T = VoC·T_send                         + max_X comp_X
//   PCB:  T = max_X d_X·T_send                   + max_X comp_X
//   SCO:  T = max(Σ_X d_X·T_send, max_X o_X)     + max_X rem_X
//   PCO:  T = max(max_X d_X·T_send, max_X o_X)   + max_X rem_X
//   PIO:  T = comm(1) + Σ_k max(comm(k+1), max_X step_X) + max_X step_X
//
// where d_X is processor X's *send* volume derived from the directed pair
// volumes (so Σ_X d_X equals the Eq. 1 VoC exactly — the paper's algebraic
// d_X in Eq. 6 counts coverage rather than directed copies; see DESIGN.md),
// o_X is the bulk-overlap computation X performs for the C elements whose
// pivot rows and columns it owns entirely, rem_X the remaining computation,
// and comm(k) the per-pivot-step volume N(c_k_row−1) + N(c_k_col−1).
//
// Star topology: spoke↔spoke traffic relays through the hub. Serial volumes
// count relayed elements twice; parallel per-processor volumes charge the
// hub with the forwarded traffic.
#pragma once

#include "grid/partition.hpp"
#include "model/algo.hpp"
#include "model/machine.hpp"
#include "model/topology.hpp"

namespace pushpart {

/// Predicted timing decomposition for one (algorithm, partition) pair.
struct ModelResult {
  double commSeconds = 0.0;     ///< Pre-barrier / overlapped communication.
  double overlapSeconds = 0.0;  ///< Computation overlapped with comm (SCO/PCO).
  double compSeconds = 0.0;     ///< Post-communication computation.
  double execSeconds = 0.0;     ///< Modeled total execution time.

  /// Exact (bitwise) comparison — the serve cache guarantees hits replay the
  /// cold computation's numbers verbatim.
  friend bool operator==(const ModelResult&, const ModelResult&) = default;
};

/// Evaluates the Eq. 2–9 model for `algo` on `q`. The partition's element
/// counts drive computation time; its row/column occupancy drives
/// communication. `machine.ratio` supplies processor speeds.
ModelResult evalModel(Algo algo, const Partition& q, const Machine& machine,
                      Topology topology = Topology::kFullyConnected,
                      StarConfig star = {});

/// Communication seconds only (the Fig. 14 quantity) — the comm term of the
/// chosen algorithm's model.
double commSeconds(Algo algo, const Partition& q, const Machine& machine,
                   Topology topology = Topology::kFullyConnected,
                   StarConfig star = {});

/// Blocked PIO (paper §II: data is sent "a row and a column — or k rows and
/// columns — at a time"): pivots are grouped into blocks of `blockSize`;
/// block b's data moves while block b−1 computes. blockSize = 1 reproduces
/// evalModel(kPIO); blockSize = N degenerates to SCB (one bulk exchange,
/// then all computation). Intermediate sizes trade pipelining overlap
/// against fewer, larger messages.
ModelResult evalPioBlocked(const Partition& q, const Machine& machine,
                           int blockSize,
                           Topology topology = Topology::kFullyConnected,
                           StarConfig star = {});

}  // namespace pushpart
