// Continuous geometry of the canonical candidate shapes, and exact
// closed-form communication volumes derived from it (paper §X methodology,
// completed).
//
// Every candidate places R and S as axis-aligned rectangles in the unit
// square (P takes the remainder). Given those two rectangles, *all*
// communication quantities of the kij model have closed forms obtained by
// band decomposition: cut the unit square into horizontal bands at every
// rectangle edge; within a band each processor's per-row cell length and
// presence are constant, so the directed volume sender→receiver integrates
// to (band height) × (sender's length) × [receiver present]. Columns are
// symmetric. This yields, without building any grid:
//
//   * the full 3×3 directed pair-volume matrix (fractions of N²),
//   * VoC (cross-checked against model/closed_form.hpp's per-shape formulas),
//   * per-processor send volumes d_X (PCB/SCO/PCO terms),
//   * P's bulk-overlap share (rows and columns untouched by R and S).
//
// evalCandidateClosedForm() turns these into the Eq. 2–8 model predictions
// for any N — useful for paper-scale sweeps (N = 10⁵ and beyond) where grid
// construction would cost O(N²).
#pragma once

#include <array>

#include "grid/proc.hpp"
#include "grid/ratio.hpp"
#include "model/algo.hpp"
#include "model/machine.hpp"
#include "model/models.hpp"
#include "model/topology.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

/// Axis-aligned rectangle in the unit square, [y0, y1) × [x0, x1).
struct RectD {
  double y0 = 0, y1 = 0, x0 = 0, x1 = 0;

  double height() const { return y1 - y0; }
  double width() const { return x1 - x0; }
  double area() const { return height() * width(); }
  bool isEmpty() const { return y1 <= y0 || x1 <= x0; }
};

/// Canonical continuous placement of R and S for a candidate shape.
struct ShapeGeometry {
  RectD r;
  RectD s;
};

/// The canonical placement (§IX-B) in normalized coordinates. Throws
/// std::invalid_argument when the shape is infeasible for the ratio in the
/// continuous setting (Square-Corner below the Thm 9.1 boundary, etc.).
ShapeGeometry candidateGeometry(CandidateShape shape, const Ratio& ratio);

/// Exact directed pair volumes as fractions of N², indexed [from][to] by
/// procIndex(); diagonal zero. Sums to the closed-form VoC.
std::array<std::array<double, kNumProcs>, kNumProcs> geometryPairVolumes(
    const ShapeGeometry& g);

/// Fraction of C elements processor P can compute with zero communication
/// (rows and columns untouched by both rectangles) — the bulk-overlap share.
/// R and S never have one (their pivot lines are always shared).
double geometryOverlapFraction(const ShapeGeometry& g);

/// Eq. 2–8 model prediction for a candidate at matrix size n, from geometry
/// alone — no grid is built, so this is O(1) in n. PIO is excluded (its
/// per-pivot structure needs line-by-line owner counts; use evalModel or
/// evalPioBlocked on a grid).
ModelResult evalCandidateClosedForm(
    Algo algo, CandidateShape shape, int n, const Machine& machine,
    Topology topology = Topology::kFullyConnected, StarConfig star = {});

}  // namespace pushpart
