#include "model/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/check.hpp"

namespace pushpart {

namespace {

[[noreturn]] void infeasible(CandidateShape shape, const Ratio& ratio) {
  throw std::invalid_argument(std::string(candidateName(shape)) +
                              " infeasible for ratio " + ratio.str() +
                              " in the continuous setting");
}

}  // namespace

ShapeGeometry candidateGeometry(CandidateShape shape, const Ratio& ratio) {
  PUSHPART_CHECK_MSG(ratio.valid(), "invalid ratio " << ratio.str());
  const double fR = ratio.fraction(Proc::R);
  const double fS = ratio.fraction(Proc::S);

  switch (shape) {
    case CandidateShape::kSquareCorner: {
      const double aR = std::sqrt(fR);
      const double aS = std::sqrt(fS);
      if (aR + aS > 1.0) infeasible(shape, ratio);  // Thm 9.1
      return {RectD{0, aR, 0, aR}, RectD{1 - aS, 1, 1 - aS, 1}};
    }
    case CandidateShape::kRectangleCorner: {
      const double wR = rectangleCornerSplit(ratio);
      const double wS = 1.0 - wR;
      const double hR = fR / wR;
      const double hS = fS / wS;
      if (hR > 1.0 || hS > 1.0) infeasible(shape, ratio);
      return {RectD{0, hR, 0, wR}, RectD{1 - hS, 1, 1 - wS, 1}};
    }
    case CandidateShape::kSquareRectangle: {
      const double aS = std::sqrt(fS);
      if (fR + aS > 1.0) infeasible(shape, ratio);
      return {RectD{0, 1, 0, fR}, RectD{1 - aS, 1, 1 - aS, 1}};
    }
    case CandidateShape::kBlockRectangle: {
      const double h = fR + fS;
      const double cb = fR / h;
      return {RectD{1 - h, 1, 0, cb}, RectD{1 - h, 1, cb, 1}};
    }
    case CandidateShape::kLRectangle: {
      if (fR >= 1.0) infeasible(shape, ratio);
      const double hS = fS / (1.0 - fR);
      return {RectD{0, 1, 0, fR}, RectD{1 - hS, 1, fR, 1}};
    }
    case CandidateShape::kTraditionalRectangle: {
      const double w = fR + fS;
      const double rb = fR / w;
      return {RectD{0, rb, 1 - w, 1}, RectD{rb, 1, 1 - w, 1}};
    }
  }
  infeasible(shape, ratio);
}

namespace {

/// One axis of the band decomposition. For every maximal interval along the
/// axis on which each processor's cross-section is constant, accumulates
/// (interval length) × (sender's cross-section) into v[sender][receiver]
/// for every *other* receiver present in the interval.
void accumulateAxis(double rLo, double rHi, double rLen, double sLo,
                    double sHi, double sLen,
                    std::array<std::array<double, kNumProcs>, kNumProcs>& v) {
  std::vector<double> cuts = {0.0, 1.0, rLo, rHi, sLo, sHi};
  std::sort(cuts.begin(), cuts.end());
  for (std::size_t b = 0; b + 1 < cuts.size(); ++b) {
    const double lo = std::clamp(cuts[b], 0.0, 1.0);
    const double hi = std::clamp(cuts[b + 1], 0.0, 1.0);
    const double len = hi - lo;
    if (len <= 0) continue;
    const double mid = 0.5 * (lo + hi);
    const bool hasR = mid >= rLo && mid < rHi && rLen > 0;
    const bool hasS = mid >= sLo && mid < sHi && sLen > 0;
    double cross[kNumProcs] = {};
    cross[procSlot(Proc::R)] = hasR ? rLen : 0.0;
    cross[procSlot(Proc::S)] = hasS ? sLen : 0.0;
    cross[procSlot(Proc::P)] =
        1.0 - cross[procSlot(Proc::R)] - cross[procSlot(Proc::S)];
    for (Proc snd : kAllProcs) {
      if (cross[procSlot(snd)] <= 1e-15) continue;
      for (Proc rcv : kAllProcs) {
        if (rcv == snd || cross[procSlot(rcv)] <= 1e-15) continue;
        v[procSlot(snd)][procSlot(rcv)] += len * cross[procSlot(snd)];
      }
    }
  }
}

}  // namespace

std::array<std::array<double, kNumProcs>, kNumProcs> geometryPairVolumes(
    const ShapeGeometry& g) {
  PUSHPART_CHECK_MSG(
      g.r.isEmpty() || g.s.isEmpty() ||
          !(g.r.y0 < g.s.y1 && g.s.y0 < g.r.y1 && g.r.x0 < g.s.x1 &&
            g.s.x0 < g.r.x1),
      "geometryPairVolumes expects disjoint R and S rectangles");
  std::array<std::array<double, kNumProcs>, kNumProcs> v{};
  // Rows: cross-sections are widths; presence keyed by the y interval.
  accumulateAxis(g.r.y0, g.r.y1, g.r.width(), g.s.y0, g.s.y1, g.s.width(), v);
  // Columns: cross-sections are heights; presence keyed by the x interval.
  accumulateAxis(g.r.x0, g.r.x1, g.r.height(), g.s.x0, g.s.x1, g.s.height(),
                 v);
  return v;
}

double geometryOverlapFraction(const ShapeGeometry& g) {
  auto freeMeasure = [](double lo1, double hi1, double lo2, double hi2) {
    // Measure of [0,1] minus the union of the two intervals.
    const double a0 = std::clamp(lo1, 0.0, 1.0), a1 = std::clamp(hi1, 0.0, 1.0);
    const double b0 = std::clamp(lo2, 0.0, 1.0), b1 = std::clamp(hi2, 0.0, 1.0);
    const double lenA = std::max(0.0, a1 - a0);
    const double lenB = std::max(0.0, b1 - b0);
    const double overlap =
        std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
    return 1.0 - (lenA + lenB - overlap);
  };
  const double freeRows = freeMeasure(g.r.y0, g.r.y1, g.s.y0, g.s.y1);
  const double freeCols = freeMeasure(g.r.x0, g.r.x1, g.s.x0, g.s.x1);
  return freeRows * freeCols;
}

ModelResult evalCandidateClosedForm(Algo algo, CandidateShape shape, int n,
                                    const Machine& machine, Topology topology,
                                    StarConfig star) {
  if (algo == Algo::kPIO)
    throw std::invalid_argument(
        "evalCandidateClosedForm: PIO needs per-pivot owner counts; use "
        "evalModel or evalPioBlocked on a grid");
  PUSHPART_CHECK(n > 0);
  PUSHPART_CHECK_MSG(machine.ratio.valid(),
                     "invalid machine ratio " << machine.ratio.str());
  const Ratio& ratio = machine.ratio;
  const ShapeGeometry g = candidateGeometry(shape, ratio);
  const auto frac = geometryPairVolumes(g);
  const double n2 = static_cast<double>(n) * n;
  const double tsend = machine.sendElementSeconds;

  // Topology routing (mirrors models.cpp).
  double serialTotal = 0;
  std::array<double, kNumProcs> perProc{};
  const auto hub = procSlot(star.hub);
  for (Proc s : kAllProcs)
    for (Proc r : kAllProcs) {
      const double vol = frac[procSlot(s)][procSlot(r)] * n2;
      if (vol <= 0) continue;
      serialTotal += vol;
      perProc[procSlot(s)] += vol;
      if (topology == Topology::kStar && procSlot(s) != hub &&
          procSlot(r) != hub) {
        serialTotal += vol;
        perProc[hub] += vol;
      }
    }
  const double serialComm = serialTotal * tsend;
  double parallelComm = 0;
  for (double d : perProc) parallelComm = std::max(parallelComm, d * tsend);

  // Computation loads from areas.
  const double n3 = n2 * static_cast<double>(n);
  double maxFull = 0;
  for (Proc x : kAllProcs)
    maxFull = std::max(maxFull, ratio.fraction(x) * n3 *
                                    machine.baseFlopSeconds / ratio.speed(x));
  const double overlapP = geometryOverlapFraction(g) * n3 *
                          machine.baseFlopSeconds / ratio.speed(Proc::P);
  // Remainders: R and S have zero overlap, so their full load stays; P's
  // shrinks by the overlap share.
  double maxRemainder = 0;
  for (Proc x : kAllProcs) {
    double load = ratio.fraction(x) * n3 * machine.baseFlopSeconds /
                  ratio.speed(x);
    if (x == Proc::P) load -= overlapP;
    maxRemainder = std::max(maxRemainder, load);
  }

  ModelResult result;
  switch (algo) {
    case Algo::kSCB:
      result.commSeconds = serialComm;
      result.compSeconds = maxFull;
      result.execSeconds = serialComm + maxFull;
      break;
    case Algo::kPCB:
      result.commSeconds = parallelComm;
      result.compSeconds = maxFull;
      result.execSeconds = parallelComm + maxFull;
      break;
    case Algo::kSCO:
      result.commSeconds = serialComm;
      result.overlapSeconds = overlapP;
      result.compSeconds = maxRemainder;
      result.execSeconds = std::max(serialComm, overlapP) + maxRemainder;
      break;
    case Algo::kPCO:
      result.commSeconds = parallelComm;
      result.overlapSeconds = overlapP;
      result.compSeconds = maxRemainder;
      result.execSeconds = std::max(parallelComm, overlapP) + maxRemainder;
      break;
    case Algo::kPIO:
      break;  // unreachable (thrown above)
  }
  return result;
}

}  // namespace pushpart
