#include "cluster/cluster.hpp"

#include <sstream>
#include <unordered_set>
#include <utility>

#include "serve/snapshot.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

void ClusterOptions::validate() const {
  PUSHPART_CHECK_MSG(nodes >= 1, "cluster needs at least one node");
  PUSHPART_CHECK_MSG(replication >= 1 && replication <= nodes,
                     "replication factor must be in [1, nodes]");
  PUSHPART_CHECK_MSG(vnodesPerNode >= 1, "need at least one vnode per node");
  PUSHPART_CHECK_MSG(heartbeatIntervalSeconds > 0.0,
                     "heartbeat interval must be positive");
  PUSHPART_CHECK_MSG(suspectAfterSeconds > heartbeatIntervalSeconds,
                     "suspicion threshold must exceed the heartbeat interval");
  PUSHPART_CHECK_MSG(confirmAfterSeconds > suspectAfterSeconds,
                     "confirmation threshold must exceed suspicion");
  PUSHPART_CHECK_MSG(segmentEntries >= 1,
                     "rebalance segments need at least one entry");
}

namespace {
ClusterOptions validated(ClusterOptions options) {
  options.validate();
  return options;
}
}  // namespace

OracleCluster::OracleCluster(ClusterOptions options)
    : options_(validated(std::move(options))),
      clock_(options_.clock != nullptr ? options_.clock : &Clock::steady()),
      ring_(options_.nodes, options_.vnodesPerNode),
      injector_(options_.faults, options_.nodes),
      detector_(options_.nodes,
                DetectorOptions{options_.suspectAfterSeconds,
                                options_.confirmAfterSeconds},
                clock_->nowSeconds()) {
  nodes_.resize(static_cast<std::size_t>(options_.nodes));
  for (Node& node : nodes_)
    node.oracle = std::make_unique<Oracle>(options_.oracle);
}

bool OracleCluster::reachable(int node, double now) const {
  return injector_.nodeUpAt(node, now) &&
         injector_.linkUpAt(kRouterEndpoint, node, now);
}

ClusterResponse OracleCluster::plan(const PlanRequest& req,
                                    const PlanCallOptions& call) {
  Stopwatch timer;
  const CanonicalKey key = canonicalize(req);
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::shared_lock lock(mutex_);
  const double now = clock_->nowSeconds();
  const std::vector<int> owners =
      ring_.ownersFor(key.hash, options_.replication);

  ClusterResponse out;
  const auto recordServe = [&](int owner) {
    // Router end-to-end latency; a slow node's answers arrive late by its
    // active slow factor (no real sleeping — the factor scales the record).
    out.response.latencySeconds =
        timer.seconds() * injector_.slowFactorAt(owner, now);
    latency_.record(out.response.latencySeconds);
    if (owner == owners.front()) {
      primaryServes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      replicaServes_.fetch_add(1, std::memory_order_relaxed);
      if (out.replicaHit) replicaHits_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Phase 1 — read-your-replica: a plan cached on any believed-up, reachable
  // owner is served straight from its cache, primary first. This is what
  // keeps a replicated entry answerable while its primary is dead or cold.
  for (int owner : owners) {
    Node& node = nodes_[static_cast<std::size_t>(owner)];
    if (node.status != NodeStatus::kUp || !reachable(owner, now)) continue;
    if (std::optional<PlanAnswer> cached = node.oracle->peekCached(key)) {
      out.servedBy = owner;
      out.attempts = 1;
      out.replicaHit = owner != owners.front();
      out.response.answer = *std::move(cached);
      out.response.cacheHit = true;
      out.response.key = key.text;
      if (call.deadline.expired()) {
        out.response.deadlineExceeded = true;
        if (out.response.answer.fullFidelity())
          out.response.answer.degrade = DegradeReason::kLate;
      }
      recordServe(owner);
      return out;
    }
  }

  // Phase 2 — solve with retry-on-replica: walk the owner list; a suspect
  // node (believed up, actually unreachable) costs a failed attempt, a
  // shedding node costs a retry, and only exhausting every owner sheds the
  // request at cluster level.
  bool anyAttempted = false;
  PlanCallOptions attempt = call;
  for (int owner : owners) {
    Node& node = nodes_[static_cast<std::size_t>(owner)];
    if (node.status != NodeStatus::kUp) continue;
    ++out.attempts;
    if (!reachable(owner, now)) {
      // The router believes this owner is up (at worst suspect) and tries
      // it; ground truth says otherwise, so the attempt fails over.
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Each attempt layers the call budget onto the caller's token anew;
    // withDeadline merges, so an expired caller stays cancelled across
    // retries and every earlier layer keeps cancelling.
    attempt.cancel = attempt.cancel.withDeadline(call.deadline);
    anyAttempted = true;
    PlanResponse resp = node.oracle->plan(key.request, attempt);
    if (resp.shed) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.servedBy = owner;
    out.replicaHit = owner != owners.front() && resp.cacheHit;
    out.response = std::move(resp);
    if (out.response.answer.fullFidelity() && !out.response.cacheHit)
      replicate(owners, owner, key.text, out.response.answer, now);
    recordServe(owner);
    return out;
  }

  out.clusterShed = true;
  out.clusterShedReason = anyAttempted ? ClusterShedReason::kAllOwnersShedding
                                       : ClusterShedReason::kAllOwnersDown;
  out.response.shed = true;
  out.response.key = key.text;
  out.response.deadlineExceeded = call.deadline.expired();
  out.response.latencySeconds = timer.seconds();
  clusterSheds_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void OracleCluster::replicate(const std::vector<int>& owners, int servedBy,
                              const std::string& keyText,
                              const PlanAnswer& answer, double now) {
  for (int owner : owners) {
    if (owner == servedBy) continue;
    Node& node = nodes_[static_cast<std::size_t>(owner)];
    if (node.status == NodeStatus::kUp && reachable(owner, now)) {
      node.oracle->insertReplica(keyText, answer);
      replicasWritten_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Hinted handoff: park the write for delivery when the owner returns,
      // bounded per target (oldest hints drop first — they are the most
      // likely to be re-replicated by later traffic anyway).
      std::lock_guard<std::mutex> hintsLock(hintsMutex_);
      std::deque<Hint>& parked = hints_[owner];
      if (parked.size() >= options_.maxHintsPerNode) {
        parked.pop_front();
        hintsDropped_.fetch_add(1, std::memory_order_relaxed);
      }
      parked.push_back(Hint{keyText, answer});
      hintsStored_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void OracleCluster::tick() {
  std::unique_lock lock(mutex_);
  const double now = clock_->nowSeconds();

  // 1. Ground-truth kill edges. A kill is a process crash: the node's
  // in-memory state (cache, breaker, counters) is lost at that instant,
  // modeled by swapping in a cold Oracle.
  for (int n = 0; n < options_.nodes; ++n) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    const bool killed = injector_.killedAt(n, now);
    if (killed && !node.killObserved) {
      node.killObserved = true;
      node.oracle = std::make_unique<Oracle>(options_.oracle);
      ++node.coldRestarts;
      logEvent(now,
               "node " + std::to_string(n) + " killed: process state lost");
    } else if (!killed && node.killObserved) {
      node.killObserved = false;
      logEvent(now, "node " + std::to_string(n) +
                        " restarted cold, awaiting rebalance");
    }
  }

  // 2. Heartbeats from every node ground truth can deliver, minus seeded
  // drops — the only channel through which the router learns anything.
  for (int n = 0; n < options_.nodes; ++n)
    if (reachable(n, now) && !injector_.dropHeartbeat())
      detector_.heartbeat(n, now);

  // 3. Detector transitions drive membership: confirmation takes a node out
  // of rotation; recovery rebalances it back in before it serves again.
  for (int n = 0; n < options_.nodes; ++n) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    const NodeHealth health = detector_.observe(n, now);
    if (health != node.lastHealth) {
      if (health == NodeHealth::kSuspect)
        logEvent(now, "node " + std::to_string(n) +
                          " suspected: heartbeats missed");
      else if (health == NodeHealth::kDown)
        logEvent(now, "node " + std::to_string(n) + " confirmed down");
      node.lastHealth = health;
    }
    if (health == NodeHealth::kDown && node.status == NodeStatus::kUp) {
      node.status = NodeStatus::kDown;
    } else if (health == NodeHealth::kAlive &&
               node.status == NodeStatus::kDown) {
      node.status = NodeStatus::kJoining;
      logEvent(now,
               "node " + std::to_string(n) + " rejoining: streaming rebalance");
      const std::size_t restored = rebalanceNode(n, now);
      node.status = NodeStatus::kUp;
      logEvent(now, "node " + std::to_string(n) + " recovered: serving (" +
                        std::to_string(restored) + " entries restored)");
    }
  }
}

std::size_t OracleCluster::rebalanceNode(int target, double now) {
  Node& joining = nodes_[static_cast<std::size_t>(target)];
  std::unordered_set<std::string> seen;
  std::vector<PlanCache::SnapshotEntry> segment;
  std::size_t restored = 0;
  std::uint64_t segments = 0;

  const auto flush = [&]() {
    if (segment.empty()) return;
    // One rebalance segment is one snapshot-format document: serialized by
    // the donor, checksum-verified line by line on receipt. Anything short
    // of a byte-perfect transfer is a bug, not a degraded restore.
    std::ostringstream wire;
    savePlanCacheSegment(segment, wire);
    std::istringstream received(wire.str());
    const SnapshotLoadReport report =
        joining.oracle->loadSnapshotSegment(received);
    PUSHPART_CHECK_MSG(report.clean() && report.loaded == segment.size(),
                       "rebalance segment must transfer byte-perfect");
    restored += report.loaded;
    ++segments;
    segment.clear();
  };

  for (int peer = 0; peer < options_.nodes; ++peer) {
    if (peer == target) continue;
    const Node& donor = nodes_[static_cast<std::size_t>(peer)];
    if (donor.status != NodeStatus::kUp || !reachable(peer, now)) continue;
    for (PlanCache::SnapshotEntry& entry : donor.oracle->exportCacheEntries()) {
      // Only the joining node's share of the ring comes back; keys owned by
      // other nodes stay where they are.
      if (!ring_.owns(target, fnv1a(entry.key), options_.replication))
        continue;
      if (!seen.insert(entry.key).second) continue;
      segment.push_back(std::move(entry));
      if (segment.size() >= options_.segmentEntries) flush();
    }
  }
  flush();

  rebalance_.rebalances += 1;
  rebalance_.segmentsStreamed += segments;
  rebalance_.entriesStreamed += restored;

  // Deliver hinted handoffs: replication writes that happened while the
  // node was away.
  std::deque<Hint> parked;
  {
    std::lock_guard<std::mutex> hintsLock(hintsMutex_);
    const auto it = hints_.find(target);
    if (it != hints_.end()) {
      parked = std::move(it->second);
      hints_.erase(it);
    }
  }
  for (const Hint& hint : parked)
    joining.oracle->insertReplica(hint.keyText, hint.answer);
  hintsDelivered_.fetch_add(parked.size(), std::memory_order_relaxed);

  logEvent(now, "rebalance: node " + std::to_string(target) + " restored " +
                    std::to_string(restored) + " entries in " +
                    std::to_string(segments) + " segments, " +
                    std::to_string(parked.size()) + " hints delivered");
  return restored;
}

ClusterStats OracleCluster::stats() const {
  std::shared_lock lock(mutex_);
  const double now = clock_->nowSeconds();
  ClusterStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.primaryServes = primaryServes_.load(std::memory_order_relaxed);
  s.replicaServes = replicaServes_.load(std::memory_order_relaxed);
  s.replicaHits = replicaHits_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.clusterSheds = clusterSheds_.load(std::memory_order_relaxed);
  s.replicasWritten = replicasWritten_.load(std::memory_order_relaxed);
  s.hintsStored = hintsStored_.load(std::memory_order_relaxed);
  s.hintsDelivered = hintsDelivered_.load(std::memory_order_relaxed);
  s.hintsDropped = hintsDropped_.load(std::memory_order_relaxed);
  s.detector = detector_.counters();
  s.rebalance = rebalance_;
  s.latency = latency_.snapshot();
  s.nodes.reserve(nodes_.size());
  for (int n = 0; n < options_.nodes; ++n) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    s.nodes.push_back(node.oracle->stats());
    s.statuses.push_back(node.status);
    s.health.push_back(detector_.healthAt(n, now));
    s.coldRestarts.push_back(node.coldRestarts);
  }
  return s;
}

std::vector<ClusterEvent> OracleCluster::events() const {
  std::lock_guard<std::mutex> eventsLock(eventsMutex_);
  return events_;
}

std::unordered_map<std::string, int> OracleCluster::replicaCounts() const {
  std::shared_lock lock(mutex_);
  const double now = clock_->nowSeconds();
  std::unordered_map<std::string, int> counts;
  for (int n = 0; n < options_.nodes; ++n) {
    // The census counts every node whose process state survives: a killed
    // node holds nothing, but a merely unreachable one (flap, partition)
    // still has its entries — they were not lost.
    if (injector_.killedAt(n, now)) continue;
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    for (const PlanCache::SnapshotEntry& entry :
         node.oracle->exportCacheEntries())
      ++counts[entry.key];
  }
  return counts;
}

void OracleCluster::logEvent(double at, std::string what) {
  std::lock_guard<std::mutex> eventsLock(eventsMutex_);
  events_.push_back(ClusterEvent{at, std::move(what)});
}

}  // namespace pushpart
