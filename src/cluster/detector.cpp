#include "cluster/detector.hpp"

#include <utility>

#include "support/check.hpp"

namespace pushpart {

void DetectorOptions::validate() const {
  PUSHPART_CHECK_MSG(suspectAfterSeconds > 0.0,
                     "suspectAfterSeconds must be positive");
  PUSHPART_CHECK_MSG(confirmAfterSeconds > suspectAfterSeconds,
                     "confirmAfterSeconds must exceed suspectAfterSeconds");
}

FailureDetector::FailureDetector(int nodeCount, DetectorOptions options,
                                 double startSeconds)
    : options_(std::move(options)) {
  options_.validate();
  PUSHPART_CHECK_MSG(nodeCount >= 1, "detector needs at least one node");
  nodes_.assign(static_cast<std::size_t>(nodeCount),
                NodeState{startSeconds, NodeHealth::kAlive});
}

void FailureDetector::heartbeat(int node, double at) {
  PUSHPART_CHECK(node >= 0 && node < nodeCount());
  NodeState& state = nodes_[static_cast<std::size_t>(node)];
  // Heartbeats never move time backwards (a delayed beat must not shrink
  // the evidence window a fresher beat already established).
  if (at > state.lastHeartbeat) state.lastHeartbeat = at;
}

NodeHealth FailureDetector::healthAt(int node, double now) const {
  PUSHPART_CHECK(node >= 0 && node < nodeCount());
  const double silent =
      now - nodes_[static_cast<std::size_t>(node)].lastHeartbeat;
  if (silent <= options_.suspectAfterSeconds) return NodeHealth::kAlive;
  if (silent <= options_.confirmAfterSeconds) return NodeHealth::kSuspect;
  return NodeHealth::kDown;
}

NodeHealth FailureDetector::observe(int node, double now) {
  const NodeHealth next = healthAt(node, now);
  NodeState& state = nodes_[static_cast<std::size_t>(node)];
  const NodeHealth prev = state.observed;
  if (next != prev) {
    if (next == NodeHealth::kSuspect && prev == NodeHealth::kAlive)
      ++counters_.suspicions;
    else if (next == NodeHealth::kDown)
      ++counters_.confirmations;
    else if (next == NodeHealth::kAlive)
      ++counters_.recoveries;
    state.observed = next;
  }
  return next;
}

double FailureDetector::lastHeartbeatAt(int node) const {
  PUSHPART_CHECK(node >= 0 && node < nodeCount());
  return nodes_[static_cast<std::size_t>(node)].lastHeartbeat;
}

}  // namespace pushpart
