// Heartbeat-based failure detection with suspicion and confirmation.
//
// The router cannot see ground truth — it sees heartbeats. Each cluster
// tick, every reachable node's heartbeat lands here; a node's health is a
// pure function of (now - lastHeartbeat):
//
//   alive    within suspectAfterSeconds of the last heartbeat;
//   suspect  past suspicion but not yet confirmed — the router still *tries*
//            the node (it might be a dropped heartbeat), falling over to a
//            replica when the attempt fails;
//   down     past confirmAfterSeconds — confirmed, the router stops trying
//            and replication writes become hinted handoffs.
//
// The two-threshold design is what makes heartbeat loss survivable: a
// dropped heartbeat or two puts a healthy node in suspicion (where traffic
// still flows) without ever confirming it down. Time is injectable
// (support/deadline.hpp Clock), so tests and drills drive every transition
// with a FakeClock — no real-time sleeps anywhere.
//
// healthAt() is const and pure; observe() (called from the cluster's tick,
// under its exclusive lock) advances the per-node state machine and counts
// suspicion/confirmation/recovery edges.
#pragma once

#include <cstdint>
#include <vector>

namespace pushpart {

enum class NodeHealth {
  kAlive = 0,
  kSuspect,  ///< Heartbeats missed; not yet confirmed down.
  kDown,     ///< Confirmed down.
};

constexpr const char* nodeHealthName(NodeHealth h) {
  switch (h) {
    case NodeHealth::kAlive: return "alive";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kDown: return "down";
  }
  return "?";
}

struct DetectorOptions {
  /// How long after the last heartbeat a node becomes suspect. Must exceed
  /// the heartbeat interval (with slack for dropped beats).
  double suspectAfterSeconds = 0.15;
  /// How long after the last heartbeat suspicion is confirmed as down.
  /// Must be > suspectAfterSeconds.
  double confirmAfterSeconds = 0.4;

  /// Throws CheckError on non-positive or inverted thresholds.
  void validate() const;
};

class FailureDetector {
 public:
  /// Every node starts alive with a heartbeat at `startSeconds`.
  FailureDetector(int nodeCount, DetectorOptions options,
                  double startSeconds = 0.0);

  /// Records a received heartbeat from `node` at time `at`.
  void heartbeat(int node, double at);

  /// Health of `node` at `now`, derived from its last heartbeat. Pure —
  /// safe to call concurrently with other readers.
  NodeHealth healthAt(int node, double now) const;

  /// Advances `node`'s recorded state to its health at `now`, counting
  /// suspicion/confirmation/recovery edges. Returns the new health.
  NodeHealth observe(int node, double now);

  double lastHeartbeatAt(int node) const;
  int nodeCount() const { return static_cast<int>(nodes_.size()); }

  struct Counters {
    std::uint64_t suspicions = 0;     ///< alive -> suspect edges.
    std::uint64_t confirmations = 0;  ///< suspect/alive -> down edges.
    std::uint64_t recoveries = 0;     ///< suspect/down -> alive edges.
  };
  const Counters& counters() const { return counters_; }

 private:
  struct NodeState {
    double lastHeartbeat = 0.0;
    NodeHealth observed = NodeHealth::kAlive;
  };

  DetectorOptions options_;
  std::vector<NodeState> nodes_;
  Counters counters_;
};

}  // namespace pushpart
