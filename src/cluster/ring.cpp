#include "cluster/ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "serve/request.hpp"

namespace pushpart {

HashRing::HashRing(int nodeCount, int vnodesPerNode)
    : nodeCount_(nodeCount), vnodesPerNode_(vnodesPerNode) {
  if (nodeCount < 1)
    throw std::invalid_argument("HashRing: need at least one node, got " +
                                std::to_string(nodeCount));
  if (vnodesPerNode < 1)
    throw std::invalid_argument("HashRing: need at least one vnode, got " +
                                std::to_string(vnodesPerNode));
  points_.reserve(static_cast<std::size_t>(nodeCount) *
                  static_cast<std::size_t>(vnodesPerNode));
  for (int node = 0; node < nodeCount; ++node)
    for (int v = 0; v < vnodesPerNode; ++v)
      // Ring points reuse the cache's FNV-1a so the whole routing story is
      // one hash function. Collisions across (node, vnode) labels are
      // broken deterministically by the (hash, node) sort below.
      points_.push_back({fnv1a("node " + std::to_string(node) + " vnode " +
                               std::to_string(v)),
                         node});
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

std::vector<int> HashRing::ownersFor(std::uint64_t keyHash, int k) const {
  k = std::min(k, nodeCount_);
  std::vector<int> owners;
  if (k < 1) return owners;
  owners.reserve(static_cast<std::size_t>(k));
  // First point at or clockwise of the key's hash (wrapping).
  std::size_t at = static_cast<std::size_t>(
      std::lower_bound(points_.begin(), points_.end(), keyHash,
                       [](const Point& p, std::uint64_t h) {
                         return p.hash < h;
                       }) -
      points_.begin());
  for (std::size_t step = 0;
       step < points_.size() && owners.size() < static_cast<std::size_t>(k);
       ++step) {
    const int node = points_[(at + step) % points_.size()].node;
    if (std::find(owners.begin(), owners.end(), node) == owners.end())
      owners.push_back(node);
  }
  return owners;
}

bool HashRing::owns(int node, std::uint64_t keyHash, int k) const {
  const std::vector<int> owners = ownersFor(keyHash, k);
  return std::find(owners.begin(), owners.end(), node) != owners.end();
}

std::vector<double> HashRing::primaryShares() const {
  std::vector<double> shares(static_cast<std::size_t>(nodeCount_), 0.0);
  const double whole = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < points_.size(); ++i) {
    // The arc ending at point i (clockwise from the previous point) belongs
    // to point i's node.
    const std::uint64_t hi = points_[i].hash;
    const std::uint64_t lo = points_[(i + points_.size() - 1) % points_.size()].hash;
    const double arc =
        i == 0 ? static_cast<double>(hi) + (whole - static_cast<double>(lo))
               : static_cast<double>(hi - lo);
    shares[static_cast<std::size_t>(points_[i].node)] += arc / whole;
  }
  return shares;
}

}  // namespace pushpart
