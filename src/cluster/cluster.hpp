// Replicated, self-healing oracle cluster (DESIGN.md §13).
//
// An OracleCluster runs N simulated serving nodes — each a full Oracle with
// its own PlanCache, admission controller and circuit breaker — behind a
// router that consistent-hashes canonical request keys onto a ring
// (cluster/ring.hpp) and replicates every full-fidelity cache entry across
// the key's k owner nodes. Failures come from a seeded ClusterFaultPlan
// (sim/fault.hpp): nodes are killed and rejoin cold, links partition, nodes
// flap or merely slow down, and the router finds out the only way a real
// router can — heartbeats stop arriving (cluster/detector.hpp).
//
// Cluster-level serving semantics, layered on the per-instance degradation
// ladder of DESIGN.md §12:
//
//   retry-on-replica      a failed or shedding owner costs a retry, not the
//                         request; the router walks the key's owner list;
//   read-your-replica     a plan cached on *any* live owner is served from
//                         cache, even while the primary is dead or cold;
//   shed-as-last-resort   the cluster sheds only when every owner is down
//                         or every live owner shed — one healthy replica
//                         keeps the key answerable;
//   hinted handoff        replication writes aimed at an unreachable owner
//                         are parked (bounded) and delivered on recovery;
//   orchestrated rebalance a rejoining node is restored to the replication
//                         factor by streaming snapshot-format segments
//                         (serve/snapshot.hpp) from live peers, each
//                         checksum-verified on receipt, before it serves.
//
// Everything is deterministic under a FakeClock: time enters only through
// ClusterOptions::clock, fault windows are cluster-clock seconds, and every
// random draw (heartbeat drops) flows through the plan-seeded injector —
// a (options, workload, tick schedule) triple replays exactly.
//
// Concurrency: plan() takes a shared lock (many router threads serve
// concurrently; per-node state is behind each Oracle's own synchronization),
// tick() takes the exclusive lock for membership transitions and rebalance.
// Counters are atomics; the hint store has its own mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/detector.hpp"
#include "cluster/ring.hpp"
#include "serve/oracle.hpp"
#include "sim/fault.hpp"
#include "support/deadline.hpp"
#include "support/histogram.hpp"

namespace pushpart {

struct ClusterOptions {
  int nodes = 3;
  /// Replication factor k: each key lives on its first k ring owners.
  int replication = 2;
  int vnodesPerNode = 32;
  /// Per-node oracle configuration (every node runs the same machine model —
  /// a cluster cache is only coherent for one machine).
  OracleOptions oracle;
  /// Seeded fault scenario for this run (inert by default).
  ClusterFaultPlan faults;
  /// Cluster time source; nullptr = Clock::steady(). Drills use a FakeClock.
  const Clock* clock = nullptr;
  /// How often the driver is expected to tick() — documented cadence for the
  /// detector thresholds below; the cluster itself reads time, never sleeps.
  double heartbeatIntervalSeconds = 0.05;
  double suspectAfterSeconds = 0.15;
  double confirmAfterSeconds = 0.4;
  /// Entries per rebalance segment streamed to a rejoining node.
  std::size_t segmentEntries = 64;
  /// Hinted-handoff bound per down node; beyond it the oldest hints drop.
  std::size_t maxHintsPerNode = 1024;

  /// Throws CheckError on non-positive counts, replication outside
  /// [1, nodes], or inverted detector thresholds.
  void validate() const;
};

/// Router's administrative view of a node (distinct from NodeHealth, the
/// detector's evidence-based view, and from ground truth, which only the
/// fault injector knows).
enum class NodeStatus {
  kUp = 0,
  kDown,     ///< Confirmed down; not routed to, replication writes hint.
  kJoining,  ///< Back in contact, being rebalanced; not yet serving.
};

constexpr const char* nodeStatusName(NodeStatus s) {
  switch (s) {
    case NodeStatus::kUp: return "up";
    case NodeStatus::kDown: return "down";
    case NodeStatus::kJoining: return "joining";
  }
  return "?";
}

/// Why the *cluster* (as opposed to one instance) refused a request.
enum class ClusterShedReason {
  kNone = 0,
  kAllOwnersDown,      ///< No owner was reachable to even try.
  kAllOwnersShedding,  ///< Every reachable owner load-shed.
};

constexpr const char* clusterShedReasonName(ClusterShedReason r) {
  switch (r) {
    case ClusterShedReason::kNone: return "none";
    case ClusterShedReason::kAllOwnersDown: return "all-owners-down";
    case ClusterShedReason::kAllOwnersShedding: return "all-owners-shedding";
  }
  return "?";
}

/// One routed request: the winning node's PlanResponse plus routing metadata.
struct ClusterResponse {
  PlanResponse response;
  int servedBy = -1;       ///< Node that answered; -1 on a cluster shed.
  bool replicaHit = false; ///< Served from a non-primary owner's cache.
  int attempts = 0;        ///< Owner attempts made (1 = first try worked).
  bool clusterShed = false;
  ClusterShedReason clusterShedReason = ClusterShedReason::kNone;
};

/// One line of the cluster's append-only event log (membership transitions,
/// rebalances) — what drills grep for recovery markers.
struct ClusterEvent {
  double at = 0.0;  ///< Cluster-clock seconds.
  std::string what;
};

struct RebalanceStats {
  std::uint64_t rebalances = 0;
  std::uint64_t segmentsStreamed = 0;
  std::uint64_t entriesStreamed = 0;
};

struct ClusterStats {
  // Router counters.
  std::uint64_t requests = 0;
  std::uint64_t primaryServes = 0;  ///< Answered by the key's primary owner.
  std::uint64_t replicaServes = 0;  ///< Answered by a non-primary owner.
  std::uint64_t replicaHits = 0;    ///< ... of which straight from its cache.
  std::uint64_t retries = 0;        ///< Owner attempts that failed over.
  std::uint64_t clusterSheds = 0;   ///< Requests no owner could answer.
  std::uint64_t replicasWritten = 0;
  std::uint64_t hintsStored = 0;
  std::uint64_t hintsDelivered = 0;
  std::uint64_t hintsDropped = 0;
  FailureDetector::Counters detector;
  RebalanceStats rebalance;
  LatencyHistogram::Snapshot latency;  ///< Router end-to-end (slow-node scaled).
  std::vector<OracleStats> nodes;
  std::vector<NodeStatus> statuses;
  std::vector<NodeHealth> health;
  std::vector<std::uint64_t> coldRestarts;  ///< Per-node kill-induced resets.
};

class OracleCluster {
 public:
  explicit OracleCluster(ClusterOptions options);

  OracleCluster(const OracleCluster&) = delete;
  OracleCluster& operator=(const OracleCluster&) = delete;

  /// Routes `req` to its owners with retry-on-replica. Thread-safe; may run
  /// concurrently with tick(). Cluster sheds are reported, never thrown.
  ClusterResponse plan(const PlanRequest& req) { return plan(req, {}); }
  ClusterResponse plan(const PlanRequest& req, const PlanCallOptions& call);

  /// Advances cluster bookkeeping to the clock's current instant: applies
  /// kills, collects heartbeats (minus seeded drops), runs the failure
  /// detector, and rebalances nodes that have come back. Drivers call this
  /// every heartbeatIntervalSeconds of cluster time.
  void tick();

  ClusterStats stats() const;

  /// Copy of the event log (membership transitions, rebalances).
  std::vector<ClusterEvent> events() const;

  /// Resident copies per canonical key text across every node whose process
  /// state survives (a killed node holds nothing; a merely unreachable one
  /// still counts) — the replication-residency census drills use to prove no
  /// replicated entry was lost and that rebalance restored the replication
  /// factor. Reads via exportEntries, so it perturbs no hit counter or LRU
  /// state.
  std::unordered_map<std::string, int> replicaCounts() const;

  const HashRing& ring() const { return ring_; }
  const ClusterOptions& options() const { return options_; }
  double nowSeconds() const { return clock_->nowSeconds(); }

 private:
  struct Node {
    std::unique_ptr<Oracle> oracle;
    NodeStatus status = NodeStatus::kUp;
    NodeHealth lastHealth = NodeHealth::kAlive;
    bool killObserved = false;  ///< Current kill already applied (state lost).
    std::uint64_t coldRestarts = 0;
  };

  struct Hint {
    std::string keyText;
    PlanAnswer answer;
  };

  /// Ground truth: `node` is running and the router can reach it.
  bool reachable(int node, double now) const;

  /// Replicates a freshly solved full-fidelity answer to `owners` other
  /// than `servedBy`; unreachable or down owners get hints.
  void replicate(const std::vector<int>& owners, int servedBy,
                 const std::string& keyText, const PlanAnswer& answer,
                 double now);

  /// Streams every entry `target` owns from live peers, in snapshot-format
  /// segments, into its cache; then delivers parked hints. Caller holds the
  /// exclusive lock. Returns entries restored.
  std::size_t rebalanceNode(int target, double now);

  void logEvent(double at, std::string what);

  ClusterOptions options_;
  const Clock* clock_;
  HashRing ring_;
  ClusterFaultInjector injector_;
  FailureDetector detector_;
  std::vector<Node> nodes_;

  /// plan() shared, tick()/rebalance exclusive.
  mutable std::shared_mutex mutex_;

  mutable std::mutex hintsMutex_;
  std::unordered_map<int, std::deque<Hint>> hints_;

  mutable std::mutex eventsMutex_;
  std::vector<ClusterEvent> events_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> primaryServes_{0};
  std::atomic<std::uint64_t> replicaServes_{0};
  std::atomic<std::uint64_t> replicaHits_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> clusterSheds_{0};
  std::atomic<std::uint64_t> replicasWritten_{0};
  std::atomic<std::uint64_t> hintsStored_{0};
  std::atomic<std::uint64_t> hintsDelivered_{0};
  std::atomic<std::uint64_t> hintsDropped_{0};
  RebalanceStats rebalance_;  ///< Mutated under the exclusive lock only.
  LatencyHistogram latency_;
};

}  // namespace pushpart
