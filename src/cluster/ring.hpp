// Consistent-hash ring: canonical plan-request keys -> owner nodes.
//
// The cluster routes by the serving layer's FNV-1a canonical key hash
// (serve/request.hpp): each node contributes `vnodesPerNode` points to a
// 64-bit ring (the hash of "node <id> vnode <v>"), and a key's owners are
// the first k *distinct* nodes found walking clockwise from the key's hash.
// Virtual nodes smooth the per-node share (with ~32 points a node's share
// is within a few percent of 1/N) and, membase-style, make the ownership
// map a pure function of the member set — the router, the rebalancer and
// the tests all recompute identical owner lists from (members, key, k),
// no ownership table to keep coherent.
//
// Membership here is the *configured* fleet, not the live one: a dead node
// keeps its ranges (so its recovered self rejoins the same ranges) and the
// router simply fails over to the key's surviving owners. That is what
// keeps a kill-rejoin cycle from churning every key's owner list.
#pragma once

#include <cstdint>
#include <vector>

namespace pushpart {

class HashRing {
 public:
  /// A ring over nodes {0, .., nodeCount-1}, each with `vnodesPerNode`
  /// points. Throws std::invalid_argument when either is non-positive.
  HashRing(int nodeCount, int vnodesPerNode = 32);

  int nodeCount() const { return nodeCount_; }
  int vnodesPerNode() const { return vnodesPerNode_; }

  /// The first `k` distinct nodes clockwise from `keyHash` (k is clamped to
  /// nodeCount). Deterministic: a pure function of (ring config, keyHash).
  /// The first entry is the key's primary owner.
  std::vector<int> ownersFor(std::uint64_t keyHash, int k) const;

  /// True when `node` is among ownersFor(keyHash, k).
  bool owns(int node, std::uint64_t keyHash, int k) const;

  /// Fraction of the 64-bit ring owned (as primary) by each node —
  /// exposed for balance tests and the cluster stats surface.
  std::vector<double> primaryShares() const;

 private:
  struct Point {
    std::uint64_t hash;
    int node;
  };

  int nodeCount_;
  int vnodesPerNode_;
  std::vector<Point> points_;  ///< Sorted by hash.
};

}  // namespace pushpart
