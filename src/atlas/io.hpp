// Versioned, checksummed atlas persistence (the snapshot discipline of
// serve/snapshot.hpp applied to the plan surface).
//
//   pushpart-atlas v2
//   grid <prMin> <prMax> <prSteps> <rrMin> <rrMax> <rrSteps>
//   info <n> <algo> <topology> <searchBacked> <searchRuns> <seed>
//        <tieSnapPct> <alphaSeconds> <sendElementSeconds> <baseFlopSeconds>
//   cells <count>
//   c <fnv1a-16-hex> <i> <j> <boundary> <shape> <normVoc> <execSeconds>
//        <runnerUpGapPct> <searchConfirmed> <origin>
//
// Doubles travel as %.17g, so build -> save -> load -> save is
// byte-identical and a loaded cell certifies exactly like the freshly built
// one. Writing is crash-safe (tmp + atomic rename). A wrong magic/version or
// a malformed grid/info header refuses the whole file — guessing at a future
// format would serve wrong plans silently. Per-cell corruption is tolerated:
// a cell whose checksum or field ranges don't verify is skipped and counted,
// and boundary flags are re-derived from the cells that did load, so the
// atlas never claims knowledge a flipped byte destroyed.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "atlas/atlas.hpp"

namespace pushpart {

struct AtlasLoadReport {
  std::shared_ptr<PlanAtlas> atlas;  ///< Null when the file was refused.
  std::size_t loaded = 0;            ///< Cells restored.
  std::size_t skipped = 0;           ///< Corrupt cells left behind.
  bool versionRefused = false;
  std::string error;  ///< Non-empty on refusal/unreadable file.

  bool ok() const { return atlas != nullptr && error.empty(); }
  /// Accepted and every cell verified.
  bool clean() const { return ok() && skipped == 0; }
};

/// Serializes the atlas (solved cells only). The path variant writes
/// <path>.tmp then renames atomically; both return cells written and throw
/// std::runtime_error on I/O failure.
std::size_t saveAtlas(const PlanAtlas& atlas, std::ostream& os);
std::size_t saveAtlas(const PlanAtlas& atlas, const std::string& path);

/// Non-throwing load: refusal and corruption come back in the report.
AtlasLoadReport tryLoadAtlas(std::istream& is);
AtlasLoadReport tryLoadAtlas(const std::string& path);

}  // namespace pushpart
