#include "atlas/io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pushpart {

namespace {

// v2 added the per-cell communication lower-bound gap (lowerBoundGapPct);
// v1 files are refused rather than silently defaulting the gap to zero.
constexpr const char* kMagic = "pushpart-atlas v2";

// Same FNV-1a as the plan-cache snapshot checksums (serve/request.cpp);
// duplicated locally so the atlas layer does not link against serve.
std::uint64_t atlasFnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string checksumHex(const std::string& payload) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(atlasFnv1a(payload)));
  return buf;
}

std::string cellPayload(int i, int j, const AtlasCell& cell) {
  std::ostringstream os;
  os << i << ' ' << j << ' ' << (cell.boundary ? 1 : 0) << ' '
     << static_cast<int>(cell.shape) << ' ' << formatDouble(cell.normVoc)
     << ' ' << formatDouble(cell.execSeconds) << ' '
     << formatDouble(cell.runnerUpGapPct) << ' '
     << formatDouble(cell.lowerBoundGapPct) << ' '
     << (cell.searchConfirmed ? 1 : 0) << ' '
     << static_cast<int>(cell.origin);
  return os.str();
}

bool parseCellPayload(const std::string& payload, const AtlasGridSpec& spec,
                      int& i, int& j, AtlasCell& cell) {
  std::istringstream is(payload);
  int boundary = -1, shape = -1, confirmed = -1, origin = -1;
  if (!(is >> i >> j >> boundary >> shape >> cell.normVoc >>
        cell.execSeconds >> cell.runnerUpGapPct >> cell.lowerBoundGapPct >>
        confirmed >> origin))
    return false;
  std::string trailing;
  if (is >> trailing) return false;
  if (!spec.validCell(i, j)) return false;
  if (boundary < 0 || boundary > 1) return false;
  if (shape < 0 || shape >= kNumCandidates) return false;
  if (confirmed < 0 || confirmed > 1) return false;
  if (origin < 0 || origin > 1) return false;
  if (!std::isfinite(cell.normVoc) || cell.normVoc < 0.0) return false;
  if (!std::isfinite(cell.execSeconds) || cell.execSeconds < 0.0) return false;
  if (!std::isfinite(cell.runnerUpGapPct) || cell.runnerUpGapPct < 0.0)
    return false;
  if (!std::isfinite(cell.lowerBoundGapPct) || cell.lowerBoundGapPct < 0.0)
    return false;
  cell.solved = true;
  cell.boundary = boundary == 1;
  cell.shape = static_cast<CandidateShape>(shape);
  cell.searchConfirmed = confirmed == 1;
  cell.origin = static_cast<CellOrigin>(origin);
  return true;
}

}  // namespace

std::size_t saveAtlas(const PlanAtlas& atlas, std::ostream& os) {
  const AtlasGridSpec& spec = atlas.spec();
  const AtlasBuildInfo& info = atlas.info();
  os << kMagic << '\n';
  os << "grid " << formatDouble(spec.prMin) << ' ' << formatDouble(spec.prMax)
     << ' ' << spec.prSteps << ' ' << formatDouble(spec.rrMin) << ' '
     << formatDouble(spec.rrMax) << ' ' << spec.rrSteps << '\n';
  os << "info " << info.n << ' ' << static_cast<int>(info.algo) << ' '
     << static_cast<int>(info.topology) << ' ' << (info.searchBacked ? 1 : 0)
     << ' ' << info.searchRuns << ' ' << info.seed << ' '
     << formatDouble(info.tieSnapPct) << ' '
     << formatDouble(info.machine.alphaSeconds) << ' '
     << formatDouble(info.machine.sendElementSeconds) << ' '
     << formatDouble(info.machine.baseFlopSeconds) << '\n';

  std::size_t written = 0;
  std::ostringstream body;
  for (int i = 0; i < spec.prSteps; ++i) {
    for (int j = 0; j < spec.rrSteps; ++j) {
      const std::optional<AtlasCell> cell = atlas.cell(i, j);
      if (!cell || !cell->solved) continue;
      const std::string payload = cellPayload(i, j, *cell);
      body << "c " << checksumHex(payload) << ' ' << payload << '\n';
      ++written;
    }
  }
  os << "cells " << written << '\n' << body.str();
  if (!os) throw std::runtime_error("saveAtlas: stream write failed");
  return written;
}

std::size_t saveAtlas(const PlanAtlas& atlas, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::size_t written = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("saveAtlas: cannot open " + tmp);
    written = saveAtlas(atlas, out);
    out.flush();
    if (!out)
      throw std::runtime_error("saveAtlas: write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("saveAtlas: cannot rename " + tmp + " to " +
                             path);
  }
  return written;
}

AtlasLoadReport tryLoadAtlas(std::istream& is) {
  AtlasLoadReport report;
  std::string magic;
  std::getline(is, magic);
  if (!magic.empty() && magic.back() == '\r') magic.pop_back();
  if (magic != kMagic) {
    report.versionRefused = true;
    report.error = "loadAtlas: unsupported atlas version '" + magic +
                   "' (expected '" + std::string(kMagic) + "')";
    return report;
  }

  AtlasGridSpec spec;
  AtlasBuildInfo info;
  {
    std::string line, tag;
    if (!std::getline(is, line)) {
      report.error = "loadAtlas: missing grid line";
      return report;
    }
    std::istringstream ls(line);
    if (!(ls >> tag >> spec.prMin >> spec.prMax >> spec.prSteps >>
          spec.rrMin >> spec.rrMax >> spec.rrSteps) ||
        tag != "grid") {
      report.error = "loadAtlas: malformed grid line";
      return report;
    }
  }
  {
    std::string line, tag;
    int algo = -1, topology = -1, searchBacked = -1;
    if (!std::getline(is, line)) {
      report.error = "loadAtlas: missing info line";
      return report;
    }
    std::istringstream ls(line);
    if (!(ls >> tag >> info.n >> algo >> topology >> searchBacked >>
          info.searchRuns >> info.seed >> info.tieSnapPct >>
          info.machine.alphaSeconds >> info.machine.sendElementSeconds >>
          info.machine.baseFlopSeconds) ||
        tag != "info" || algo < 0 || algo > 4 || topology < 0 ||
        topology > 1 || searchBacked < 0 || searchBacked > 1) {
      report.error = "loadAtlas: malformed info line";
      return report;
    }
    info.algo = static_cast<Algo>(algo);
    info.topology = static_cast<Topology>(topology);
    info.searchBacked = searchBacked == 1;
  }

  try {
    report.atlas = std::make_shared<PlanAtlas>(spec, info);
  } catch (const std::exception& e) {
    report.error = std::string("loadAtlas: invalid header: ") + e.what();
    return report;
  }

  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.rfind("cells ", 0) == 0) continue;
    if (line.rfind("c ", 0) != 0 || line.size() < 2 + 16 + 2 ||
        line[18] != ' ') {
      ++report.skipped;
      continue;
    }
    const std::string checksum = line.substr(2, 16);
    const std::string payload = line.substr(19);
    if (checksum != checksumHex(payload)) {
      ++report.skipped;
      continue;
    }
    int i = -1, j = -1;
    AtlasCell cell;
    if (!parseCellPayload(payload, spec, i, j, cell)) {
      ++report.skipped;
      continue;
    }
    report.atlas->insert(i, j, cell);
    ++report.loaded;
  }
  // Flags are re-derived from the winners that actually loaded: a skipped
  // cell must not leave its neighbors claiming a boundary (or its absence)
  // that the surviving data cannot support.
  report.atlas->markBoundaries();
  return report;
}

AtlasLoadReport tryLoadAtlas(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    AtlasLoadReport report;
    report.error = "loadAtlas: cannot open " + path;
    return report;
  }
  return tryLoadAtlas(in);
}

}  // namespace pushpart
