#include "atlas/builder.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "bounds/bounds.hpp"
#include "dfa/batch.hpp"
#include "model/models.hpp"
#include "model/optimal.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

std::optional<AtlasCell> solveAtlasCell(const AtlasGridSpec& spec,
                                        const AtlasBuildInfo& info, int i,
                                        int j) {
  if (!spec.validCell(i, j)) return std::nullopt;
  const Ratio ratio = spec.ratioAt(i, j);
  Machine machine = info.machine;
  machine.ratio = ratio;

  const std::vector<RankedCandidate> ranked =
      rankCandidates(info.algo, info.n, machine, info.topology);
  if (ranked.empty()) return std::nullopt;

  // Winner snapping: candidates within tieSnapPct of the best form a tie
  // group; the group's smallest enum value is the cell's winner. Without
  // this, shapes with identical closed forms (Block- vs
  // Traditional-Rectangle, both 1 + (R_r+S_r)/T) alternate by O(1/n)
  // integer-granularity rounding and every such cell pair reads as a fake
  // crossover boundary.
  const double bestExec = ranked.front().model.execSeconds;
  const double tieCutoff = bestExec * (1.0 + info.tieSnapPct / 100.0);
  const RankedCandidate* winner = &ranked.front();
  double runnerUpExec = -1.0;
  for (const RankedCandidate& c : ranked) {
    if (c.model.execSeconds <= tieCutoff) {
      if (static_cast<int>(c.shape) < static_cast<int>(winner->shape))
        winner = &c;
    } else if (runnerUpExec < 0.0) {
      runnerUpExec = c.model.execSeconds;
    }
  }

  AtlasCell cell;
  cell.solved = true;
  cell.shape = winner->shape;
  cell.normVoc = static_cast<double>(winner->voc) /
                 (static_cast<double>(info.n) * static_cast<double>(info.n));
  cell.execSeconds = winner->model.execSeconds;
  cell.runnerUpGapPct =
      runnerUpExec < 0.0
          ? AtlasCell::kMaxGapPct
          : std::min(AtlasCell::kMaxGapPct,
                     (runnerUpExec - bestExec) / bestExec * 100.0);
  cell.lowerBoundGapPct = std::min(
      AtlasCell::kMaxGapPct,
      optimalityGapPct(winner->voc, vocLowerBound(info.n, ratio)));

  if (info.searchBacked && info.searchRuns > 0) {
    // The offline analogue of the oracle's tier B: a seeded DFA batch whose
    // condensed finals cross-check the closed-form ranking. Seed = root +
    // cell index, so a rebuild of any subset reproduces bit-identically.
    BatchOptions batch;
    batch.n = info.n;
    batch.ratio = ratio;
    batch.runs = info.searchRuns;
    batch.threads = 1;
    batch.seed = info.seed + static_cast<std::uint64_t>(i) *
                                 static_cast<std::uint64_t>(spec.rrSteps) +
                 static_cast<std::uint64_t>(j);
    double bestSearched = 0.0;
    bool any = false;
    runBatch(batch, [&](const BatchRun& run) {
      if (run.result.stop == DfaStop::kCancelled) return;
      const ModelResult m = evalModel(info.algo, run.result.final, machine,
                                      info.topology);
      if (!any || m.execSeconds < bestSearched) {
        any = true;
        bestSearched = m.execSeconds;
      }
    });
    cell.searchConfirmed = any && bestSearched >= winner->model.execSeconds;
  }
  return cell;
}

std::shared_ptr<PlanAtlas> buildAtlas(const AtlasBuildOptions& options,
                                      AtlasBuildReport* report) {
  Stopwatch timer;
  auto atlas = std::make_shared<PlanAtlas>(options.spec, options.info);

  std::vector<std::pair<int, int>> work;
  for (int i = 0; i < options.spec.prSteps; ++i)
    for (int j = 0; j < options.spec.rrSteps; ++j)
      if (options.spec.validCell(i, j)) work.emplace_back(i, j);

  AtlasBuildReport local;
  local.attempted = work.size();

  int threads = options.threads;
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(work.size()));
  if (threads < 1) threads = 1;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> solved{0};
  std::atomic<std::size_t> confirmed{0};
  std::atomic<std::size_t> done{0};
  std::mutex progressMutex;

  auto worker = [&]() {
    for (;;) {
      const std::size_t w = next.fetch_add(1, std::memory_order_relaxed);
      if (w >= work.size()) return;
      const auto [i, j] = work[w];
      if (std::optional<AtlasCell> cell =
              solveAtlasCell(options.spec, options.info, i, j)) {
        atlas->insert(i, j, *cell);
        solved.fetch_add(1, std::memory_order_relaxed);
        if (cell->searchConfirmed)
          confirmed.fetch_add(1, std::memory_order_relaxed);
      }
      const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.onCell) {
        std::lock_guard<std::mutex> lock(progressMutex);
        options.onCell(d, work.size());
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Per-insert derivation already maintained flags incrementally, but a full
  // pass from the complete winner map is the authoritative statement.
  atlas->markBoundaries();

  local.solved = solved.load();
  local.failed = local.attempted - local.solved;
  local.searchConfirmed = confirmed.load();
  local.boundary = atlas->boundaryCells().size();
  local.seconds = timer.seconds();
  if (report) *report = local;
  return atlas;
}

}  // namespace pushpart
