#include "atlas/prefetch.hpp"

#include "atlas/builder.hpp"

namespace pushpart {

AtlasPrefetcher::AtlasPrefetcher(std::shared_ptr<PlanAtlas> atlas,
                                 AtlasPrefetchOptions options)
    : atlas_(std::move(atlas)), options_(options) {
  worker_ = std::thread([this] { run(); });
}

AtlasPrefetcher::~AtlasPrefetcher() { stop(); }

void AtlasPrefetcher::enqueueOne(int i, int j) {
  if (!atlas_->spec().validCell(i, j)) return;
  const std::optional<AtlasCell> existing = atlas_->cell(i, j);
  if (existing && existing->solved) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  const std::pair<int, int> key{i, j};
  if (queued_.count(key)) return;
  if (queue_.size() >= options_.maxQueue) {
    ++dropped_;
    return;
  }
  queue_.push_back(key);
  queued_.insert(key);
  ++requested_;
  cv_.notify_one();
}

void AtlasPrefetcher::enqueueNeighborhood(int i, int j) {
  enqueueOne(i, j);
  enqueueOne(i - 1, j);
  enqueueOne(i + 1, j);
  enqueueOne(i, j - 1);
  enqueueOne(i, j + 1);
}

void AtlasPrefetcher::run() {
  for (;;) {
    std::pair<int, int> cell;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      cell = queue_.front();
      queue_.pop_front();
      queued_.erase(cell);
    }
    std::optional<AtlasCell> solved =
        solveAtlasCell(atlas_->spec(), atlas_->info(), cell.first,
                       cell.second);
    if (!solved) continue;
    solved->origin = CellOrigin::kPrefetched;
    atlas_->insert(cell.first, cell.second, *solved);
    std::lock_guard<std::mutex> lock(mutex_);
    ++solved_;
  }
}

void AtlasPrefetcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

AtlasPrefetcher::Counters AtlasPrefetcher::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.requested = requested_;
  c.solved = solved_;
  c.dropped = dropped_;
  return c;
}

}  // namespace pushpart
