// Offline atlas construction: solve every valid grid cell of the ratio
// space once, snap near-tied winners, mark crossover boundaries.
//
// Each cell is an independent solve (the sweep is embarrassingly parallel,
// like the paper's §VII cluster fan-out): rank the six canonical candidates
// at the build granularity with the cell's ratio, optionally cross-check the
// ranking with a budgeted tier-B DFA batch (seeded per cell, so a rebuild is
// bit-reproducible regardless of thread interleaving), and record the
// snapped winner plus its measured normalized VoC. Boundary flags are
// derived afterwards from the complete winner map.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "atlas/atlas.hpp"

namespace pushpart {

struct AtlasBuildOptions {
  AtlasGridSpec spec;
  AtlasBuildInfo info;
  /// Worker threads for the cell sweep. 0 = hardware_concurrency.
  int threads = 0;
  /// Progress hook: invoked (serialized) after each cell attempt with cells
  /// done so far and the total to do.
  std::function<void(std::size_t done, std::size_t total)> onCell;
};

struct AtlasBuildReport {
  std::size_t attempted = 0;  ///< Valid cells in the grid.
  std::size_t solved = 0;
  std::size_t failed = 0;     ///< No feasible candidate (left unsolved).
  std::size_t boundary = 0;   ///< Boundary-flagged cells after marking.
  std::size_t searchConfirmed = 0;
  double seconds = 0.0;
};

/// Solves one grid cell: ranked candidates, winner snapping per
/// info.tieSnapPct, measured VoC / n², optional per-cell tier-B batch
/// (seed = info.seed + cell index). Returns nullopt when no candidate is
/// feasible at the cell's ratio. Exposed for the serving-time prefetcher,
/// which must produce cells bit-identical to the offline builder's.
std::optional<AtlasCell> solveAtlasCell(const AtlasGridSpec& spec,
                                        const AtlasBuildInfo& info, int i,
                                        int j);

/// Builds a complete atlas: every valid cell solved (in parallel), then
/// boundaries marked. Throws std::invalid_argument on a bad spec/info.
std::shared_ptr<PlanAtlas> buildAtlas(const AtlasBuildOptions& options,
                                      AtlasBuildReport* report = nullptr);

}  // namespace pushpart
