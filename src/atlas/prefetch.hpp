// Speculative cell prefetch: when a serving lookup misses on an unsolved
// cell, solve that cell and its 4-neighborhood in the background so the
// *next* request in the same ratio region hits.
//
// One worker thread drains a bounded, deduplicated queue of cell
// coordinates; each is solved with solveAtlasCell — bit-identical to what
// the offline builder would have produced (same ranking, same snapping,
// same per-cell seed) — and inserted with origin = kPrefetched. A full
// queue drops requests (counted): prefetch is an optimization, never a
// place to build backpressure. enqueueNeighborhood() is what the oracle
// calls on a miss; stop() drains nothing and joins promptly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "atlas/atlas.hpp"

namespace pushpart {

struct AtlasPrefetchOptions {
  std::size_t maxQueue = 64;  ///< Pending cells beyond this are dropped.
};

class AtlasPrefetcher {
 public:
  /// Starts the worker. The atlas must outlive the prefetcher (the oracle
  /// owns both through shared_ptr / member order).
  explicit AtlasPrefetcher(std::shared_ptr<PlanAtlas> atlas,
                           AtlasPrefetchOptions options = {});
  ~AtlasPrefetcher();

  AtlasPrefetcher(const AtlasPrefetcher&) = delete;
  AtlasPrefetcher& operator=(const AtlasPrefetcher&) = delete;

  /// Queues the cell at (i, j) plus its valid, still-unsolved 4-neighbors.
  /// Already-solved and already-queued cells are filtered out. Thread-safe;
  /// never blocks.
  void enqueueNeighborhood(int i, int j);

  /// Signals the worker and joins. Queued-but-unsolved cells are abandoned.
  void stop();

  struct Counters {
    std::uint64_t requested = 0;  ///< Cells accepted onto the queue.
    std::uint64_t solved = 0;     ///< Cells solved and inserted.
    std::uint64_t dropped = 0;    ///< Cells rejected by the full queue.
  };
  Counters counters() const;

 private:
  void enqueueOne(int i, int j);
  void run();

  std::shared_ptr<PlanAtlas> atlas_;
  AtlasPrefetchOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::pair<int, int>> queue_;
  std::set<std::pair<int, int>> queued_;  ///< Dedup of pending cells.
  bool stopping_ = false;
  std::uint64_t requested_ = 0;
  std::uint64_t solved_ = 0;
  std::uint64_t dropped_ = 0;

  std::thread worker_;
};

}  // namespace pushpart
