#include "atlas/atlas.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>

namespace pushpart {

Ratio AtlasGridSpec::ratioAt(int i, int j) const {
  return Ratio{prMin + prStep() * static_cast<double>(i),
               rrMin + rrStep() * static_cast<double>(j), 1.0};
}

bool AtlasGridSpec::validCell(int i, int j) const {
  if (i < 0 || i >= prSteps || j < 0 || j >= rrSteps) return false;
  // Canonical form requires P_r >= R_r (>= S_r = 1). Compare the generated
  // coordinates, not the indices, so the rule matches what ratioAt solves.
  const Ratio q = ratioAt(i, j);
  return q.p >= q.r;
}

void AtlasGridSpec::validate() const {
  auto bad = [](const std::string& what) {
    throw std::invalid_argument("AtlasGridSpec: " + what);
  };
  if (prSteps < 2 || rrSteps < 2) bad("needs >= 2 steps per axis");
  if (!(prMin >= 1.0) || !(rrMin >= 1.0))
    bad("ratio bounds must be >= 1 (canonical form has S_r = 1)");
  if (!(prMax > prMin) || !(rrMax > rrMin)) bad("max must exceed min");
  if (!(prMax >= rrMin))
    bad("grid holds no cells with P_r >= R_r");
}

PlanAtlas::PlanAtlas(AtlasGridSpec spec, AtlasBuildInfo info)
    : spec_(spec), info_(info), cells_(spec.points()) {
  spec_.validate();
  if (info_.n < 4)
    throw std::invalid_argument("PlanAtlas: build granularity n too small");
}

bool PlanAtlas::assign(const Ratio& ratio, int& i, int& j) const {
  const Ratio q = ratio.normalized();
  if (q.p < spec_.prMin || q.p > spec_.prMax || q.r < spec_.rrMin ||
      q.r > spec_.rrMax)
    return false;
  // Round half up via plain floor arithmetic: a deterministic pure function
  // of the (already %.6g-rounded) canonical doubles, so equal keys always
  // land in the same cell — including exactly at cell edges.
  i = static_cast<int>(std::floor((q.p - spec_.prMin) / spec_.prStep() + 0.5));
  j = static_cast<int>(std::floor((q.r - spec_.rrMin) / spec_.rrStep() + 0.5));
  if (i >= spec_.prSteps) i = spec_.prSteps - 1;
  if (j >= spec_.rrSteps) j = spec_.rrSteps - 1;
  return true;
}

AtlasLookup PlanAtlas::lookup(const Ratio& ratio) const {
  AtlasLookup out;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (!assign(ratio, out.i, out.j)) {
    out.miss = AtlasMissReason::kOutOfRange;
    outOfRange_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  std::shared_lock<std::shared_mutex> lock(mutex_);
  const AtlasCell& cell = cells_[indexOf(out.i, out.j)];
  if (!spec_.validCell(out.i, out.j) || !cell.solved) {
    out.miss = AtlasMissReason::kUnsolved;
    unsolved_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  if (cell.boundary) {
    out.miss = AtlasMissReason::kBoundary;
    boundary_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }

  out.hit = true;
  out.shape = cell.shape;
  out.interpNormVoc = cell.normVoc;
  out.searchConfirmed = cell.searchConfirmed;
  out.origin = cell.origin;

  // Bilinear refinement: when the four grid points surrounding the exact
  // ratio are all solved, off-boundary and agree on the winner, blend their
  // surface values; a crossover anywhere in the quad falls back to the
  // nearest cell's own value (the winner is unambiguous either way — the
  // certificate in serve/oracle.cpp re-costs it at the exact ratio).
  const Ratio q = ratio.normalized();
  const double fx = (q.p - spec_.prMin) / spec_.prStep();
  const double fy = (q.r - spec_.rrMin) / spec_.rrStep();
  int i0 = static_cast<int>(std::floor(fx));
  int j0 = static_cast<int>(std::floor(fy));
  if (i0 >= spec_.prSteps - 1) i0 = spec_.prSteps - 2;
  if (j0 >= spec_.rrSteps - 1) j0 = spec_.rrSteps - 2;
  if (i0 >= 0 && j0 >= 0) {
    const AtlasCell* quad[4] = {
        &cells_[indexOf(i0, j0)], &cells_[indexOf(i0 + 1, j0)],
        &cells_[indexOf(i0, j0 + 1)], &cells_[indexOf(i0 + 1, j0 + 1)]};
    bool uniform = spec_.validCell(i0, j0) && spec_.validCell(i0 + 1, j0) &&
                   spec_.validCell(i0, j0 + 1) &&
                   spec_.validCell(i0 + 1, j0 + 1);
    for (const AtlasCell* c : quad)
      uniform = uniform && c->solved && !c->boundary && c->shape == cell.shape;
    if (uniform) {
      const double tx = fx - i0;
      const double ty = fy - j0;
      out.interpNormVoc =
          quad[0]->normVoc * (1 - tx) * (1 - ty) +
          quad[1]->normVoc * tx * (1 - ty) +
          quad[2]->normVoc * (1 - tx) * ty + quad[3]->normVoc * tx * ty;
      out.bilinear = true;
      // A blended value is only as trustworthy as its least-verified corner.
      for (const AtlasCell* c : quad)
        out.searchConfirmed = out.searchConfirmed && c->searchConfirmed;
    }
  }

  hits_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

std::optional<AtlasCell> PlanAtlas::cell(int i, int j) const {
  if (i < 0 || i >= spec_.prSteps || j < 0 || j >= spec_.rrSteps)
    return std::nullopt;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return cells_[indexOf(i, j)];
}

void PlanAtlas::insert(int i, int j, AtlasCell cell) {
  if (!spec_.validCell(i, j))
    throw std::invalid_argument("PlanAtlas::insert: (" + std::to_string(i) +
                                "," + std::to_string(j) +
                                ") is not a valid cell");
  cell.solved = true;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  cells_[indexOf(i, j)] = cell;
  // The new winner can create or dissolve crossover fronts at the cell and
  // each 4-neighbor; re-derive exactly that neighborhood.
  deriveBoundaryLocked(i, j);
  deriveBoundaryLocked(i - 1, j);
  deriveBoundaryLocked(i + 1, j);
  deriveBoundaryLocked(i, j - 1);
  deriveBoundaryLocked(i, j + 1);
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void PlanAtlas::deriveBoundaryLocked(int i, int j) {
  if (!spec_.validCell(i, j)) return;
  AtlasCell& cell = cells_[indexOf(i, j)];
  if (!cell.solved) return;
  const int di[4] = {-1, 1, 0, 0};
  const int dj[4] = {0, 0, -1, 1};
  bool boundary = false;
  for (int k = 0; k < 4 && !boundary; ++k) {
    const int ni = i + di[k];
    const int nj = j + dj[k];
    if (!spec_.validCell(ni, nj)) continue;
    const AtlasCell& nb = cells_[indexOf(ni, nj)];
    if (nb.solved && nb.shape != cell.shape) boundary = true;
  }
  cell.boundary = boundary;
}

void PlanAtlas::markBoundaries() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (int i = 0; i < spec_.prSteps; ++i)
    for (int j = 0; j < spec_.rrSteps; ++j) deriveBoundaryLocked(i, j);
}

std::size_t PlanAtlas::solvedCells() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::size_t solved = 0;
  for (const AtlasCell& c : cells_)
    if (c.solved) ++solved;
  return solved;
}

std::vector<std::pair<int, int>> PlanAtlas::boundaryCells() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<int, int>> out;
  for (int i = 0; i < spec_.prSteps; ++i)
    for (int j = 0; j < spec_.rrSteps; ++j)
      if (cells_[indexOf(i, j)].solved && cells_[indexOf(i, j)].boundary)
        out.emplace_back(i, j);
  return out;
}

PlanAtlas::Counters PlanAtlas::counters() const {
  Counters c;
  c.lookups = lookups_.load(std::memory_order_relaxed);
  c.hits = hits_.load(std::memory_order_relaxed);
  c.outOfRange = outOfRange_.load(std::memory_order_relaxed);
  c.unsolved = unsolved_.load(std::memory_order_relaxed);
  c.boundary = boundary_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace pushpart
