// The plan-surface atlas: a precomputed grid of solved plans over the
// canonical speed-ratio space (P_r, R_r), S_r = 1.
//
// The paper's Fig. 13 / E3 sweep shows the optimal-shape cost landscape over
// ratio space is smooth with only a few winner-crossover boundaries. The
// atlas exploits that: an offline builder (builder.hpp) solves every grid
// cell once — the same exhaustive-offline / cheap-online split production
// plan-cost estimators use — and the serving layer (serve/oracle.cpp) then
// answers search-tier requests for novel ratios by certified O(1) lookup
// instead of a live tier-B DFA batch.
//
// A cell stores the winning canonical shape at the cell's ratio, the
// winner's normalized Volume of Communication (VoC / n², the Fig. 13
// surface quantity — dimensionless and n-independent up to O(1/n) rounding,
// so the surface transfers across request sizes), the runner-up cost gap,
// and whether an offline tier-B batch confirmed the closed-form ranking.
// The builder snaps near-tied winners (e.g. Block- vs Traditional-Rectangle,
// whose closed forms are identical) onto a canonical representative, so
// boundary detection by neighbor-winner comparison flags genuine crossover
// fronts rather than integer-granularity noise.
//
// Lookup assigns a ratio to its nearest grid point deterministically
// (pure floor arithmetic on the %.6g-rounded canonical ratio — no epsilons,
// so cell assignment at cell edges is stable) and interpolates the cost
// surface bilinearly from the four surrounding grid points when they agree
// on the winner; otherwise it falls back to the nearest cell's value. The
// *certificate* — accepting the atlas answer only when re-costing at the
// exact requested ratio agrees with the surface to within a configured gap —
// lives with the consumer in serve/oracle.cpp; the atlas itself only reports
// what it knows and why a lookup missed.
//
// Thread safety: lookups take a shared lock; inserts (the speculative
// prefetcher, prefetch.hpp) take an exclusive lock and re-derive the
// affected boundary flags. Counters are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "grid/ratio.hpp"
#include "model/algo.hpp"
#include "model/machine.hpp"
#include "model/topology.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

/// A regular grid of ratio points: prSteps × rrSteps points spanning
/// [prMin, prMax] × [rrMin, rrMax] inclusive. Points with P_r < R_r are
/// invalid (the canonical form requires P_r >= R_r >= S_r = 1).
struct AtlasGridSpec {
  double prMin = 1.0;
  double prMax = 20.0;
  int prSteps = 20;  ///< Grid points along P_r (>= 2).
  double rrMin = 1.0;
  double rrMax = 10.0;
  int rrSteps = 10;  ///< Grid points along R_r (>= 2).

  double prStep() const { return (prMax - prMin) / (prSteps - 1); }
  double rrStep() const { return (rrMax - rrMin) / (rrSteps - 1); }

  /// The canonical ratio at grid point (i, j): {prMin + i·step, rrMin +
  /// j·step, 1}.
  Ratio ratioAt(int i, int j) const;

  /// Point indices in range and P_r >= R_r there (a solvable cell).
  bool validCell(int i, int j) const;

  std::size_t points() const {
    return static_cast<std::size_t>(prSteps) *
           static_cast<std::size_t>(rrSteps);
  }

  /// Throws std::invalid_argument on a degenerate grid (steps < 2,
  /// min >= max, bounds below 1).
  void validate() const;

  friend bool operator==(const AtlasGridSpec&, const AtlasGridSpec&) = default;
};

/// How the atlas the cell belongs to was built — granularity, algorithm,
/// topology and machine constants shared by every cell (the per-cell state
/// is the ratio), plus the offline search configuration.
struct AtlasBuildInfo {
  int n = 96;                ///< Grid granularity cells were solved at.
  Algo algo = Algo::kSCB;
  Topology topology = Topology::kFullyConnected;
  Machine machine;           ///< ratio field is ignored (per-cell state).
  bool searchBacked = false; ///< Cells carry an offline tier-B cross-check.
  int searchRuns = 0;        ///< Tier-B walks per cell when searchBacked.
  std::uint64_t seed = 1;    ///< Batch seed root (cell c uses seed + c).
  /// Winners within this percent of the best modeled time snap onto the
  /// smallest CandidateShape enum among them, so identical-cost shapes
  /// (Block- vs Traditional-Rectangle) cannot shimmer into fake boundaries
  /// through integer-granularity noise.
  double tieSnapPct = 1.0;

  friend bool operator==(const AtlasBuildInfo&, const AtlasBuildInfo&) =
      default;
};

/// Where a cell's solution came from.
enum class CellOrigin {
  kBuilt = 0,      ///< Offline builder.
  kPrefetched = 1, ///< Speculative background prefetch on a serving miss.
};

constexpr const char* cellOriginName(CellOrigin o) {
  switch (o) {
    case CellOrigin::kBuilt: return "built";
    case CellOrigin::kPrefetched: return "prefetched";
  }
  return "?";
}

/// One solved grid point of the plan surface.
struct AtlasCell {
  bool solved = false;
  /// A valid, solved 4-neighbor disagrees on the (snapped) winner: this cell
  /// sits on a winner-crossover front and is never served from the surface.
  bool boundary = false;
  CandidateShape shape = CandidateShape::kSquareCorner;  ///< Snapped winner.
  double normVoc = 0.0;      ///< Winner's VoC / n² at the build granularity.
  double execSeconds = 0.0;  ///< Winner's modeled time at the cell ratio.
  /// Cost gap to the best candidate outside the winner's tie group, in
  /// percent of the winner's time (capped at kMaxGapPct when every feasible
  /// candidate ties).
  double runnerUpGapPct = 0.0;
  /// How far the winner's VoC sits above the cell ratio's memory-independent
  /// communication lower bound (src/bounds) at the build granularity, in
  /// percent — the offline analogue of PlanAnswer::optimalityGapPct.
  double lowerBoundGapPct = 0.0;
  bool searchConfirmed = false;  ///< Offline tier-B batch confirmed ranking.
  CellOrigin origin = CellOrigin::kBuilt;

  static constexpr double kMaxGapPct = 1e9;

  friend bool operator==(const AtlasCell&, const AtlasCell&) = default;
};

/// Why a lookup could not produce a surface answer. kWinnerMismatch and
/// kGapExceeded are certificate verdicts recorded by the serving layer
/// (serve/oracle.cpp), not by PlanAtlas::lookup itself.
enum class AtlasMissReason {
  kNone = 0,
  kOutOfRange,      ///< Ratio outside the grid span.
  kUnsolved,        ///< Assigned cell invalid, unsolved, or build-failed.
  kBoundary,        ///< Assigned cell is on a winner-crossover front.
  kWinnerMismatch,  ///< Certificate: surface winner too far from exact best.
  kGapExceeded,     ///< Certificate: surface cost gap above the bound.
};

constexpr const char* atlasMissReasonName(AtlasMissReason r) {
  switch (r) {
    case AtlasMissReason::kNone: return "none";
    case AtlasMissReason::kOutOfRange: return "out-of-range";
    case AtlasMissReason::kUnsolved: return "unsolved";
    case AtlasMissReason::kBoundary: return "boundary";
    case AtlasMissReason::kWinnerMismatch: return "winner-mismatch";
    case AtlasMissReason::kGapExceeded: return "gap-exceeded";
  }
  return "?";
}

/// One lookup's outcome. On a hit, `shape` is the assigned cell's winner and
/// `interpNormVoc` the surface cost at the requested ratio — bilinear over
/// the four surrounding grid points when they are all solved, off-boundary
/// and agree on the winner; the nearest cell's own value otherwise.
struct AtlasLookup {
  bool hit = false;
  AtlasMissReason miss = AtlasMissReason::kNone;
  int i = -1;  ///< Assigned cell (valid for every miss except out-of-range).
  int j = -1;
  CandidateShape shape = CandidateShape::kSquareCorner;
  double interpNormVoc = 0.0;
  bool bilinear = false;
  bool searchConfirmed = false;
  CellOrigin origin = CellOrigin::kBuilt;
};

/// The atlas proper: grid spec + build provenance + cells, behind a
/// shared_mutex so concurrent serving lookups and background prefetch
/// inserts coexist.
class PlanAtlas {
 public:
  /// Validates the spec. Cells start unsolved.
  PlanAtlas(AtlasGridSpec spec, AtlasBuildInfo info);

  PlanAtlas(const PlanAtlas&) = delete;
  PlanAtlas& operator=(const PlanAtlas&) = delete;

  const AtlasGridSpec& spec() const { return spec_; }
  const AtlasBuildInfo& info() const { return info_; }

  /// Deterministic nearest-grid-point assignment (round half up, pure floor
  /// arithmetic — byte-identical inputs always land in the same cell).
  /// Returns false when the ratio lies outside the grid span.
  bool assign(const Ratio& ratio, int& i, int& j) const;

  /// Thread-safe surface lookup (see AtlasLookup). Counts one lookup plus
  /// the outcome on the atlas counters.
  AtlasLookup lookup(const Ratio& ratio) const;

  /// The cell at (i, j), or nullopt when out of range. Unsolved cells are
  /// returned (solved == false) so inspectors can distinguish "invalid"
  /// from "not built".
  std::optional<AtlasCell> cell(int i, int j) const;

  /// Installs (or replaces) a solved cell and re-derives the boundary flags
  /// of the cell and its 4-neighborhood. Throws std::invalid_argument when
  /// (i, j) is not a valid cell. Thread-safe (exclusive lock).
  void insert(int i, int j, AtlasCell cell);

  /// Recomputes every boundary flag from the current winners (the builder
  /// and the loader call this once after bulk insertion).
  void markBoundaries();

  std::size_t solvedCells() const;

  /// Coordinates of every boundary-flagged cell, row-major order — the
  /// `pushpart atlas inspect` boundary report.
  std::vector<std::pair<int, int>> boundaryCells() const;

  struct Counters {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t outOfRange = 0;
    std::uint64_t unsolved = 0;
    std::uint64_t boundary = 0;
    std::uint64_t inserts = 0;
  };
  Counters counters() const;

 private:
  std::size_t indexOf(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(spec_.rrSteps) +
           static_cast<std::size_t>(j);
  }
  /// Boundary rule (callers hold the exclusive lock): a solved cell is
  /// boundary iff some valid, solved 4-neighbor carries a different winner.
  void deriveBoundaryLocked(int i, int j);

  AtlasGridSpec spec_;
  AtlasBuildInfo info_;
  mutable std::shared_mutex mutex_;
  std::vector<AtlasCell> cells_;

  mutable std::atomic<std::uint64_t> lookups_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> outOfRange_{0};
  mutable std::atomic<std::uint64_t> unsolved_{0};
  mutable std::atomic<std::uint64_t> boundary_{0};
  std::atomic<std::uint64_t> inserts_{0};
};

}  // namespace pushpart
