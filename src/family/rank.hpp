// Model-layer ranking across candidate families — the family analogue of
// model/optimal.hpp's rankCandidates, with the Al Daas communication lower
// bound (src/bounds) attached to every entry as a certified optimality gap.
#pragma once

#include <optional>
#include <vector>

#include "family/family.hpp"
#include "model/optimal.hpp"

namespace pushpart {

/// One ranked family candidate: modeled timing plus its VoC distance from
/// the scenario's partition-independent communication lower bound.
struct FamilyRanked {
  FamilyId family = FamilyId::kCanonical;
  std::string name;                      ///< Space-free candidate token.
  std::optional<CandidateShape> shape;   ///< Canonical members only.
  ModelResult model;
  std::int64_t voc = 0;
  double gapPct = 0.0;  ///< 100·(voc − bound)/bound, always >= 0.
};

/// Ranks every feasible candidate of the selected families by modeled
/// execution time (ascending; deterministic tie-break by family id then
/// name). Partitions are built, evaluated and discarded one at a time —
/// only the metadata above is retained.
std::vector<FamilyRanked> rankFamilyCandidates(
    Algo algo, int n, const Machine& machine, FamilySet selection,
    Topology topology = Topology::kFullyConnected, StarConfig star = {});

/// The winner of rankFamilyCandidates, or nullopt when no candidate in the
/// selection is feasible.
std::optional<FamilyRanked> bestFamilyCandidate(
    Algo algo, int n, const Machine& machine, FamilySet selection,
    Topology topology = Topology::kFullyConnected, StarConfig star = {});

}  // namespace pushpart
