#include "family/rank.hpp"

#include <algorithm>

#include "bounds/bounds.hpp"

namespace pushpart {

std::vector<FamilyRanked> rankFamilyCandidates(Algo algo, int n,
                                               const Machine& machine,
                                               FamilySet selection,
                                               Topology topology,
                                               StarConfig star) {
  const std::int64_t bound = vocLowerBound(n, machine.ratio);
  std::vector<FamilyRanked> out;
  builtinFamilies().forEach(
      n, machine.ratio, selection, [&](const FamilyCandidate& c) {
        FamilyRanked r;
        r.family = c.family;
        r.name = c.name;
        r.shape = c.shape;
        r.model = evalModel(algo, c.partition, machine, topology, star);
        r.voc = c.partition.volumeOfCommunication();
        r.gapPct = optimalityGapPct(r.voc, bound);
        out.push_back(std::move(r));
      });
  std::sort(out.begin(), out.end(),
            [](const FamilyRanked& a, const FamilyRanked& b) {
              if (a.model.execSeconds != b.model.execSeconds)
                return a.model.execSeconds < b.model.execSeconds;
              if (a.family != b.family) return a.family < b.family;
              return a.name < b.name;
            });
  return out;
}

std::optional<FamilyRanked> bestFamilyCandidate(Algo algo, int n,
                                                const Machine& machine,
                                                FamilySet selection,
                                                Topology topology,
                                                StarConfig star) {
  // Streaming min — the full sort above is unnecessary for serving.
  const std::int64_t bound = vocLowerBound(n, machine.ratio);
  std::optional<FamilyRanked> best;
  builtinFamilies().forEach(
      n, machine.ratio, selection, [&](const FamilyCandidate& c) {
        FamilyRanked r;
        r.family = c.family;
        r.name = c.name;
        r.shape = c.shape;
        r.model = evalModel(algo, c.partition, machine, topology, star);
        r.voc = c.partition.volumeOfCommunication();
        r.gapPct = optimalityGapPct(r.voc, bound);
        const bool wins =
            !best || r.model.execSeconds < best->model.execSeconds ||
            (r.model.execSeconds == best->model.execSeconds &&
             (r.family < best->family ||
              (r.family == best->family && r.name < best->name)));
        if (wins) best = std::move(r);
      });
  return best;
}

}  // namespace pushpart
