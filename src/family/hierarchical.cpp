#include "family/hierarchical.hpp"

#include <algorithm>
#include <cmath>

#include "family/build.hpp"

namespace pushpart {

namespace fd = family_detail;

namespace {

/// Cells of the box rows [r0, r1) x cols [c0, c1) in row- or column-major
/// order, minus the `hole` box (pass an empty hole for none).
std::vector<std::pair<int, int>> boxCells(int r0, int r1, int c0, int c1,
                                          bool rowMajor, int hr0 = 0,
                                          int hr1 = 0, int hc0 = 0,
                                          int hc1 = 0) {
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(r1 - r0) *
              static_cast<std::size_t>(c1 - c0));
  const auto inHole = [&](int r, int c) {
    return r >= hr0 && r < hr1 && c >= hc0 && c < hc1;
  };
  if (rowMajor) {
    for (int r = r0; r < r1; ++r)
      for (int c = c0; c < c1; ++c)
        if (!inHole(r, c)) out.emplace_back(r, c);
  } else {
    for (int c = c0; c < c1; ++c)
      for (int r = r0; r < r1; ++r)
        if (!inHole(r, c)) out.emplace_back(r, c);
  }
  return out;
}

std::int64_t ceilSqrt(std::int64_t cells) {
  auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(cells))));
  while (side * side < cells) ++side;
  while (side > 1 && (side - 1) * (side - 1) >= cells) --side;
  return side;
}

}  // namespace

std::string hierSpecName(const HierSpec& spec) {
  std::string out = "hier:";
  out += procName(spec.group[0]);
  out += '-';
  out += procName(spec.group[1]);
  out += '@';
  out += groupPlacementName(spec.placement);
  out += ':';
  out += spec.regionRowMajor ? 'r' : 'c';
  out += spec.restRowMajor ? 'r' : 'c';
  return out;
}

std::optional<Partition> makeHierPartition(int n, const Ratio& ratio,
                                           const HierSpec& spec) {
  if (n <= 0 || !ratio.valid()) return std::nullopt;
  if (spec.group[0] == spec.group[1]) return std::nullopt;
  const auto counts = ratio.elementCounts(n);
  const auto countOf = [&](Proc p) { return counts[procSlot(p)]; };
  Proc singleton = Proc::P;
  for (const Proc p : kAllProcs)
    if (p != spec.group[0] && p != spec.group[1]) singleton = p;

  const bool pInGroup =
      spec.group[0] == Proc::P || spec.group[1] == Proc::P;
  // The region belongs to the side without P; P's side takes the remainder
  // (and absorbs all integer slack, like every canonical constructor).
  std::vector<Proc> regionMembers, restMembers;
  if (pInGroup) {
    regionMembers = {singleton};
    restMembers = {spec.group[0], spec.group[1]};
  } else {
    regionMembers = {spec.group[0], spec.group[1]};
    restMembers = {singleton};  // == P
  }
  std::int64_t regionCount = 0;
  for (const Proc p : regionMembers) regionCount += countOf(p);
  if (regionCount <= 0) return std::nullopt;

  // Top-level geometry of the region box.
  int r0 = 0, r1 = n, c0 = 0, c1 = n;
  switch (spec.placement) {
    case GroupPlacement::kCornerSquare: {
      const std::int64_t side = ceilSqrt(regionCount);
      if (side >= n) return std::nullopt;
      r0 = n - static_cast<int>(side);
      c0 = n - static_cast<int>(side);
      break;
    }
    case GroupPlacement::kRightStrip: {
      const std::int64_t w = fd::ceilDiv(regionCount, n);
      if (w >= n) return std::nullopt;
      c0 = n - static_cast<int>(w);
      break;
    }
    case GroupPlacement::kTopStrip: {
      const std::int64_t h = fd::ceilDiv(regionCount, n);
      if (h >= n) return std::nullopt;
      r1 = static_cast<int>(h);
      break;
    }
  }

  Partition q(n, Proc::P);
  // Slice the region into consecutive segments of its cell order.
  const auto region = boxCells(r0, r1, c0, c1, spec.regionRowMajor);
  std::size_t cursor = 0;
  for (const Proc p : regionMembers)
    if (!fd::carveCells(q, Proc::P, p, region, cursor, countOf(p)))
      return std::nullopt;
  // Slice the remainder (rest = everything outside the region box). A
  // member equal to P only advances the cursor — its segment stays P — so
  // the two orders of a {P, X} group place X at opposite ends of the rest.
  const auto rest =
      boxCells(0, n, 0, n, spec.restRowMajor, r0, r1, c0, c1);
  cursor = 0;
  for (const Proc p : restMembers) {
    if (p == Proc::P) {
      cursor += static_cast<std::size_t>(countOf(p));
      continue;
    }
    if (!fd::carveCells(q, Proc::P, p, rest, cursor, countOf(p)))
      return std::nullopt;
  }
  return q;
}

const std::vector<HierSpec>& allHierSpecs() {
  static const std::vector<HierSpec> specs = [] {
    std::vector<HierSpec> out;
    const std::array<std::array<Proc, 2>, 6> groups = {{{Proc::R, Proc::S},
                                                        {Proc::S, Proc::R},
                                                        {Proc::P, Proc::R},
                                                        {Proc::R, Proc::P},
                                                        {Proc::P, Proc::S},
                                                        {Proc::S, Proc::P}}};
    for (const auto& g : groups) {
      const bool pInGroup = g[0] == Proc::P || g[1] == Proc::P;
      for (const GroupPlacement placement :
           {GroupPlacement::kCornerSquare, GroupPlacement::kRightStrip,
            GroupPlacement::kTopStrip}) {
        for (const bool regionRowMajor : {true, false}) {
          for (const bool restRowMajor : {true, false}) {
            // With {R,S} grouped the rest is P alone — one order suffices.
            if (!pInGroup && !restRowMajor) continue;
            out.push_back({g, placement, regionRowMajor, restRowMajor});
          }
        }
      }
    }
    return out;
  }();
  return specs;
}

std::string hierSpecName(const NHierSpec& spec) {
  return "hier:" + std::to_string(spec.a) + ":" + std::to_string(spec.b) +
         ":" + candidateName(spec.top);
}

std::optional<NPartition> makeHierNPartition(int n, const NSpeeds& speeds,
                                             const NHierSpec& spec) {
  const int procs = static_cast<int>(speeds.speeds.size());
  if (n <= 0 || !speeds.valid()) return std::nullopt;
  if (spec.a < 1 || spec.b <= spec.a || spec.b >= procs) return std::nullopt;
  const auto sum = [&](int lo, int hi) {
    double s = 0.0;
    for (int p = lo; p < hi; ++p)
      s += speeds.speeds[static_cast<std::size_t>(p)];
    return s;
  };
  // Super-node ratio: the paper-optimal 3-proc solver runs at the top level
  // over the three contiguous groups.
  const Ratio super{sum(0, spec.a), sum(spec.a, spec.b),
                    sum(spec.b, procs)};
  if (!super.valid() || !candidateFeasible(spec.top, n, super))
    return std::nullopt;
  const Partition top = makeCandidate(spec.top, n, super);

  const auto counts = speeds.elementCounts(n);
  NPartition out(n, procs);
  const std::array<std::pair<Proc, std::pair<int, int>>, 3> groups = {
      {{Proc::P, {0, spec.a}},
       {Proc::R, {spec.a, spec.b}},
       {Proc::S, {spec.b, procs}}}};
  for (const auto& [super_proc, range] : groups) {
    // Explode the super-region into its members: consecutive row-major
    // segments with exact counts; processor 0 absorbs every leftover.
    std::vector<std::pair<int, int>> cells;
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        if (top.at(r, c) == super_proc) cells.emplace_back(r, c);
    std::size_t cursor = 0;
    for (int p = range.first; p < range.second; ++p) {
      if (p == 0) continue;
      if (!fd::carveCells(out, NProcId{0}, NProcId{p}, cells, cursor,
                      counts[static_cast<std::size_t>(p)]))
        return std::nullopt;
    }
  }
  return out;
}

void HierarchicalFamily::enumerate(
    int n, const Ratio& ratio,
    const std::function<void(FamilyCandidate&&)>& emit) const {
  for (const HierSpec& spec : allHierSpecs()) {
    std::optional<Partition> q = makeHierPartition(n, ratio, spec);
    if (!q) continue;
    FamilyCandidate c;
    c.family = FamilyId::kHierarchical;
    c.name = hierSpecName(spec);
    c.partition = *std::move(q);
    emit(std::move(c));
  }
}

void HierarchicalFamily::enumerateN(
    int n, const NSpeeds& speeds,
    const std::function<void(NFamilyCandidate&&)>& emit) const {
  const int procs = static_cast<int>(speeds.speeds.size());
  if (procs < 4) return;  // q=3 is the canonical solver itself.
  for (int a = 1; a + 1 < procs; ++a) {
    for (int b = a + 1; b < procs; ++b) {
      for (const CandidateShape top : kAllCandidates) {
        NHierSpec spec{a, b, top};
        std::optional<NPartition> q = makeHierNPartition(n, speeds, spec);
        if (!q) continue;
        NFamilyCandidate c;
        c.family = FamilyId::kHierarchical;
        c.name = hierSpecName(spec);
        c.partition = *std::move(q);
        emit(std::move(c));
      }
    }
  }
}

}  // namespace pushpart
