#include "family/build.hpp"

#include <algorithm>

namespace pushpart::family_detail {

std::vector<int> allotLines(int n, const std::vector<int>& minLines,
                            const std::vector<double>& targetLines) {
  std::vector<int> out = minLines;
  int used = 0;
  for (const int m : out) used += m;
  if (used > n) return {};
  int surplus = n - used;
  while (surplus > 0) {
    // Hand each surplus line to the band furthest below its target share;
    // ties resolve to the earliest band (deterministic).
    std::size_t pick = 0;
    double bestDeficit = -1e300;
    for (std::size_t k = 0; k < out.size(); ++k) {
      const double deficit = targetLines[k] - static_cast<double>(out[k]);
      if (deficit > bestDeficit) {
        bestDeficit = deficit;
        pick = k;
      }
    }
    ++out[pick];
    --surplus;
  }
  return out;
}

}  // namespace pushpart::family_detail
