// Hierarchical two-level candidate partitions (Quintin/Hasanov/Lastovetsky,
// arXiv 1306.4161): group unequal processors into super-nodes, place the
// groups with the paper's own top-level geometry, then slice each group's
// region among its members.
//
// Three processors: the two grouped processors form one super-node whose
// region is a corner square or an edge strip (the 2-processor top-level
// shapes from the paper's §II prior work); the region — and the L-shaped or
// rectangular remainder — is sliced into exact member counts by consecutive
// segments of a row- or column-major cell order. This yields shapes outside
// the canonical six (e.g. R and S sharing one corner square).
//
// q >= 4 processors: the speed-sorted processors are grouped into three
// contiguous super-nodes, the *paper-optimal 3-processor solver's* canonical
// shapes are built at the super-node ratio, and every super-region is then
// exploded into its members — the recursive composition the related work
// proposes, with the reproduction's own 3-proc shapes at the top level.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "family/family.hpp"

namespace pushpart {

/// Where the non-P side's region sits at the top level.
enum class GroupPlacement {
  kCornerSquare = 0,  ///< Bottom-right square (2-proc Square-Corner).
  kRightStrip = 1,    ///< Full-height right strip (2-proc Straight-Line).
  kTopStrip = 2,      ///< Full-width top strip (the transpose).
};

constexpr const char* groupPlacementName(GroupPlacement p) {
  switch (p) {
    case GroupPlacement::kCornerSquare: return "sq";
    case GroupPlacement::kRightStrip: return "rstrip";
    case GroupPlacement::kTopStrip: return "tstrip";
  }
  return "?";
}

/// One 3-processor two-level spec. `group` holds the two grouped processors
/// in carve order; the third processor is the implied singleton. The region
/// always belongs to the side WITHOUT P (P's side absorbs slack):
/// P in group → the singleton owns the region, the group slices the rest;
/// group = {R, S} → the group slices the region, P keeps the rest.
struct HierSpec {
  std::array<Proc, 2> group = {Proc::R, Proc::S};
  GroupPlacement placement = GroupPlacement::kCornerSquare;
  bool regionRowMajor = true;  ///< Cell order slicing the region.
  bool restRowMajor = true;    ///< Cell order slicing the remainder.
};

/// Space-free token, e.g. "hier:R-S@sq:rr".
std::string hierSpecName(const HierSpec& spec);

/// Builds the spec with exact ratio element counts; nullopt when infeasible
/// (region cannot fit its side at integer granularity).
std::optional<Partition> makeHierPartition(int n, const Ratio& ratio,
                                           const HierSpec& spec);

/// Every grouping x placement x slicing-order combination (deterministic).
const std::vector<HierSpec>& allHierSpecs();

/// One q-processor spec: contiguous groups [0,a) [a,b) [b,q) acting as
/// super-nodes P/R/S for one canonical 3-processor shape.
struct NHierSpec {
  int a = 1;  ///< First cut (group 0 = [0, a)).
  int b = 2;  ///< Second cut (group 1 = [a, b), group 2 = [b, q)).
  CandidateShape top = CandidateShape::kBlockRectangle;
};

std::string hierSpecName(const NHierSpec& spec);

std::optional<NPartition> makeHierNPartition(int n, const NSpeeds& speeds,
                                             const NHierSpec& spec);

class HierarchicalFamily final : public CandidateFamily {
 public:
  FamilyId id() const override { return FamilyId::kHierarchical; }
  const char* description() const override {
    return "two-level grouped partitions composing the 3-proc solver "
           "(arXiv 1306.4161)";
  }
  void enumerate(
      int n, const Ratio& ratio,
      const std::function<void(FamilyCandidate&&)>& emit) const override;
  void enumerateN(
      int n, const NSpeeds& speeds,
      const std::function<void(NFamilyCandidate&&)>& emit) const override;
};

}  // namespace pushpart
