#include "family/layered.hpp"

#include <algorithm>

#include "family/build.hpp"

namespace pushpart {

namespace fd = family_detail;

namespace {

template <typename Spec, typename Namer>
std::string specToken(const Spec& spec, Namer&& memberName) {
  std::string out = "layers:";
  for (std::size_t k = 0; k < spec.layers.size(); ++k) {
    if (k) out += '/';
    for (std::size_t m = 0; m < spec.layers[k].size(); ++m) {
      if (m) out += '-';
      out += memberName(spec.layers[k][m]);
    }
  }
  out += spec.rowBands ? ":r" : ":c";
  return out;
}

}  // namespace

std::string layeredSpecName(const LayeredSpec& spec) {
  return specToken(spec, [](Proc p) { return std::string(1, procName(p)); });
}

std::string layeredSpecName(const NLayeredSpec& spec) {
  return specToken(spec, [](NProcId p) { return std::to_string(p); });
}

std::optional<Partition> makeLayeredPartition(int n, const Ratio& ratio,
                                              const LayeredSpec& spec) {
  if (n <= 0 || !ratio.valid()) return std::nullopt;
  const auto counts = ratio.elementCounts(n);
  std::vector<std::vector<fd::LayerMember<Proc>>> layers;
  for (const auto& band : spec.layers) {
    auto& out = layers.emplace_back();
    for (const Proc p : band) out.push_back({p, counts[procSlot(p)]});
  }
  Partition q(n, Proc::P);
  if (!fd::buildLayeredOnto(q, Proc::P, layers, spec.rowBands))
    return std::nullopt;
  return q;
}

std::optional<NPartition> makeLayeredNPartition(int n, const NSpeeds& speeds,
                                                const NLayeredSpec& spec) {
  if (n <= 0 || !speeds.valid()) return std::nullopt;
  const auto counts = speeds.elementCounts(n);
  std::vector<std::vector<fd::LayerMember<NProcId>>> layers;
  for (const auto& band : spec.layers) {
    auto& out = layers.emplace_back();
    for (const NProcId p : band)
      out.push_back({p, counts[static_cast<std::size_t>(p)]});
  }
  NPartition q(n, static_cast<int>(speeds.speeds.size()));
  if (!fd::buildLayeredOnto(q, NProcId{0}, layers, spec.rowBands))
    return std::nullopt;
  return q;
}

const std::vector<LayeredSpec>& allLayeredSpecs() {
  static const std::vector<LayeredSpec> specs = [] {
    std::vector<LayeredSpec> out;
    std::array<Proc, 3> procs = {Proc::P, Proc::R, Proc::S};
    std::sort(procs.begin(), procs.end());
    // Three singleton bands: every permutation.
    do {
      out.push_back({{{procs[0]}, {procs[1]}, {procs[2]}}, true});
    } while (std::next_permutation(procs.begin(), procs.end()));
    // Two bands: singleton + ordered pair, both stackings.
    std::sort(procs.begin(), procs.end());
    do {
      out.push_back({{{procs[0]}, {procs[1], procs[2]}}, true});
      out.push_back({{{procs[1], procs[2]}, {procs[0]}}, true});
    } while (std::next_permutation(procs.begin(), procs.end()));
    // Both orientations of everything.
    const std::size_t rows = out.size();
    for (std::size_t i = 0; i < rows; ++i) {
      LayeredSpec t = out[i];
      t.rowBands = false;
      out.push_back(std::move(t));
    }
    return out;
  }();
  return specs;
}

std::vector<NLayeredSpec> allNLayeredSpecs(int procs) {
  std::vector<NLayeredSpec> out;
  if (procs < 2) return out;
  // Compositions of the speed-sorted sequence 0..procs-1 into contiguous
  // layers: bit b of the mask cuts between processors b and b+1.
  const unsigned cuts = 1u << (procs - 1);
  for (unsigned mask = 0; mask < cuts; ++mask) {
    NLayeredSpec spec;
    spec.layers.emplace_back();
    for (int p = 0; p < procs; ++p) {
      spec.layers.back().push_back(p);
      if (p + 1 < procs && ((mask >> p) & 1)) spec.layers.emplace_back();
    }
    NLayeredSpec cols = spec;
    cols.rowBands = false;
    out.push_back(std::move(spec));
    out.push_back(std::move(cols));
  }
  return out;
}

void LayeredFamily::enumerate(
    int n, const Ratio& ratio,
    const std::function<void(FamilyCandidate&&)>& emit) const {
  for (const LayeredSpec& spec : allLayeredSpecs()) {
    std::optional<Partition> q = makeLayeredPartition(n, ratio, spec);
    if (!q) continue;
    FamilyCandidate c;
    c.family = FamilyId::kLayered;
    c.name = layeredSpecName(spec);
    c.partition = *std::move(q);
    emit(std::move(c));
  }
}

void LayeredFamily::enumerateN(
    int n, const NSpeeds& speeds,
    const std::function<void(NFamilyCandidate&&)>& emit) const {
  const int procs = static_cast<int>(speeds.speeds.size());
  if (procs < 3) return;  // q=2 strips belong to the canonical family.
  for (const NLayeredSpec& spec : allNLayeredSpecs(procs)) {
    std::optional<NPartition> q = makeLayeredNPartition(n, speeds, spec);
    if (!q) continue;
    NFamilyCandidate c;
    c.family = FamilyId::kLayered;
    c.name = layeredSpecName(spec);
    c.partition = *std::move(q);
    emit(std::move(c));
  }
}

}  // namespace pushpart
