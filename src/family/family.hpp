// The pluggable candidate-family registry (DESIGN.md §17).
//
// The paper proves its six 3-processor shapes optimal within Archetype A;
// the related literature contributes further *families* of structured
// candidates: layer-based partitions for q processors (Liu/Shi/Zhang/
// Robertazzi, arXiv 1812.06329) and hierarchical two-level partitions
// (Quintin/Hasanov/Lastovetsky, arXiv 1306.4161). This module gives every
// consumer — the model-layer ranking (family/rank.hpp), the serving oracle,
// the atlas builder and the benches — one registry to enumerate concrete
// candidates from, instead of each hard-coding its own list.
//
// Every emitted candidate carries *exact* ratio element counts (the same
// Eq. 12 shares the DFA and the canonical constructors use), so candidates
// from different families are directly comparable and the exhaustive
// small-N oracle can cross-check them. Enumeration is deterministic:
// same (n, ratio/speeds, selection) → same candidates in the same order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "grid/partition.hpp"
#include "grid/ratio.hpp"
#include "nproc/npartition.hpp"
#include "nproc/nsearch.hpp"  // NSpeeds
#include "shapes/candidates.hpp"

namespace pushpart {

enum class FamilyId {
  kCanonical = 0,     ///< The paper's six §IX shapes (plus k=2/k=4 analogues).
  kLayered = 1,       ///< Layer-based partitions (arXiv 1812.06329).
  kHierarchical = 2,  ///< Two-level grouped partitions (arXiv 1306.4161).
};

inline constexpr int kNumFamilies = 3;

inline constexpr std::array<FamilyId, kNumFamilies> kAllFamilies = {
    FamilyId::kCanonical, FamilyId::kLayered, FamilyId::kHierarchical};

constexpr const char* familyName(FamilyId f) {
  switch (f) {
    case FamilyId::kCanonical: return "canonical";
    case FamilyId::kLayered: return "layered";
    case FamilyId::kHierarchical: return "hierarchical";
  }
  return "?";
}

/// Parses a family name as printed by familyName. Throws
/// std::invalid_argument on unknown names.
FamilyId familyFromName(const std::string& name);

/// Which families a consumer wants enumerated. A small bitmask value type so
/// OracleOptions and bench flags can carry it by copy.
struct FamilySet {
  unsigned mask = 0;

  static FamilySet all();
  static FamilySet canonicalOnly();
  bool contains(FamilyId f) const { return (mask >> static_cast<int>(f)) & 1; }
  void insert(FamilyId f) { mask |= 1u << static_cast<int>(f); }
  bool empty() const { return mask == 0; }
  /// True when any non-canonical family is selected — the predicate the
  /// oracle uses to decide whether tier A must rank beyond the six shapes.
  bool extended() const { return (mask & ~1u) != 0; }

  /// "all", "canonical", or a comma list like "layered,hierarchical".
  /// Throws std::invalid_argument on unknown names.
  static FamilySet parse(const std::string& text);
  std::string str() const;

  friend bool operator==(const FamilySet&, const FamilySet&) = default;
};

/// One concrete 3-processor candidate: an exact-count partition plus the
/// space-free token naming it ("Square-Corner", "layers:P/R-S:r", ...).
/// Tokens contain no whitespace — they travel inside plan-cache snapshots.
struct FamilyCandidate {
  FamilyId family = FamilyId::kCanonical;
  std::string name;
  /// Set for canonical members only: the CandidateShape this partition is
  /// the constructor output of (atlas certificates re-cost by shape).
  std::optional<CandidateShape> shape;
  Partition partition{1, Proc::P};
};

/// One concrete q-processor candidate (index 0 fastest, as NPartition).
struct NFamilyCandidate {
  FamilyId family = FamilyId::kCanonical;
  std::string name;
  NPartition partition{1, 2};
};

/// A family of structured candidate partitions. Implementations construct
/// members with exact element counts and skip infeasible ones silently.
class CandidateFamily {
 public:
  virtual ~CandidateFamily() = default;
  virtual FamilyId id() const = 0;
  virtual const char* description() const = 0;
  /// 3-processor members at integer granularity n for this ratio.
  virtual void enumerate(
      int n, const Ratio& ratio,
      const std::function<void(FamilyCandidate&&)>& emit) const = 0;
  /// q-processor members; emits nothing when the family has no construction
  /// for this processor count.
  virtual void enumerateN(
      int n, const NSpeeds& speeds,
      const std::function<void(NFamilyCandidate&&)>& emit) const = 0;
};

/// Ordered collection of families. Enumeration visits families in
/// registration order and deduplicates identical partitions across families
/// by grid hash (first emitter wins — canonical is registered first, so a
/// layered spec that reproduces Block-Rectangle is suppressed).
class FamilyRegistry {
 public:
  void add(std::unique_ptr<CandidateFamily> family);
  const CandidateFamily* find(FamilyId id) const;
  const std::vector<std::unique_ptr<CandidateFamily>>& families() const {
    return families_;
  }

  /// Streams each selected family's candidates through `fn` (one live
  /// partition at a time — enumerating n=1000 members never holds the whole
  /// field in memory). Deduplicated by partition hash.
  void forEach(int n, const Ratio& ratio, FamilySet selection,
               const std::function<void(const FamilyCandidate&)>& fn) const;
  void forEachN(int n, const NSpeeds& speeds, FamilySet selection,
                const std::function<void(const NFamilyCandidate&)>& fn) const;

  /// Materialized convenience forms (small n only — verify and tests).
  std::vector<FamilyCandidate> enumerate(int n, const Ratio& ratio,
                                         FamilySet selection) const;
  std::vector<NFamilyCandidate> enumerateN(int n, const NSpeeds& speeds,
                                           FamilySet selection) const;

 private:
  std::vector<std::unique_ptr<CandidateFamily>> families_;
};

/// The process-wide registry with the three built-in members, in id order.
const FamilyRegistry& builtinFamilies();

}  // namespace pushpart
