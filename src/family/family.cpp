#include "family/family.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "family/hierarchical.hpp"
#include "family/layered.hpp"
#include "nproc/nshapes.hpp"

namespace pushpart {

FamilyId familyFromName(const std::string& name) {
  for (const FamilyId f : kAllFamilies)
    if (name == familyName(f)) return f;
  throw std::invalid_argument("unknown candidate family '" + name + "'");
}

FamilySet FamilySet::all() {
  FamilySet s;
  for (const FamilyId f : kAllFamilies) s.insert(f);
  return s;
}

FamilySet FamilySet::canonicalOnly() {
  FamilySet s;
  s.insert(FamilyId::kCanonical);
  return s;
}

FamilySet FamilySet::parse(const std::string& text) {
  if (text == "all") return all();
  FamilySet s;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    s.insert(familyFromName(token));
  }
  if (s.empty())
    throw std::invalid_argument("empty family selection '" + text + "'");
  return s;
}

std::string FamilySet::str() const {
  if (*this == all()) return "all";
  std::string out;
  for (const FamilyId f : kAllFamilies) {
    if (!contains(f)) continue;
    if (!out.empty()) out += ',';
    out += familyName(f);
  }
  return out.empty() ? "none" : out;
}

namespace {

/// Member (1): the paper's six §IX shapes, plus the 2-processor prior-work
/// shapes and the k=4 generalizations for enumerateN — so q-processor sweeps
/// and 3-processor serving draw from the same registry.
class CanonicalFamily final : public CandidateFamily {
 public:
  FamilyId id() const override { return FamilyId::kCanonical; }
  const char* description() const override {
    return "the paper's six 3-processor shapes (Sec. IX)";
  }

  void enumerate(
      int n, const Ratio& ratio,
      const std::function<void(FamilyCandidate&&)>& emit) const override {
    for (const CandidateShape shape : kAllCandidates) {
      if (!candidateFeasible(shape, n, ratio)) continue;
      FamilyCandidate c;
      c.family = FamilyId::kCanonical;
      c.name = candidateName(shape);
      c.shape = shape;
      c.partition = makeCandidate(shape, n, ratio);
      emit(std::move(c));
    }
  }

  void enumerateN(
      int n, const NSpeeds& speeds,
      const std::function<void(NFamilyCandidate&&)>& emit) const override {
    const int procs = static_cast<int>(speeds.speeds.size());
    if (procs == 2) {
      const double p = speeds.speeds[0] / speeds.speeds[1];
      for (const TwoProcShape shape :
           {TwoProcShape::kStraightLine, TwoProcShape::kSquareCorner,
            TwoProcShape::kRectangleCorner}) {
        NFamilyCandidate c;
        c.family = FamilyId::kCanonical;
        c.name = twoProcShapeName(shape);
        c.partition = makeTwoProcCandidate(shape, n, p);
        emit(std::move(c));
      }
    } else if (procs == 3) {
      const Ratio ratio{speeds.speeds[0], speeds.speeds[1], speeds.speeds[2]};
      if (!ratio.valid()) return;
      for (const CandidateShape shape : kAllCandidates) {
        if (!candidateFeasible(shape, n, ratio)) continue;
        const Partition q3 = makeCandidate(shape, n, ratio);
        NPartition q(n, 3);
        for (int r = 0; r < n; ++r)
          for (int c = 0; c < n; ++c) {
            // Index by speed rank: P -> 0, R -> 1, S -> 2.
            const Proc owner = q3.at(r, c);
            if (owner != Proc::P)
              q.set(r, c, owner == Proc::R ? 1 : 2);
          }
        NFamilyCandidate c;
        c.family = FamilyId::kCanonical;
        c.name = candidateName(shape);
        c.partition = std::move(q);
        emit(std::move(c));
      }
    } else if (procs == 4) {
      for (const FourProcShape shape :
           {FourProcShape::kCornerSquares, FourProcShape::kBlockColumns,
            FourProcShape::kColumnStrips}) {
        if (!fourProcFeasible(shape, n, speeds)) continue;
        NFamilyCandidate c;
        c.family = FamilyId::kCanonical;
        c.name = fourProcShapeName(shape);
        c.partition = makeFourProcCandidate(shape, n, speeds);
        emit(std::move(c));
      }
    }
  }
};

}  // namespace

void FamilyRegistry::add(std::unique_ptr<CandidateFamily> family) {
  families_.push_back(std::move(family));
}

const CandidateFamily* FamilyRegistry::find(FamilyId id) const {
  for (const auto& f : families_)
    if (f->id() == id) return f.get();
  return nullptr;
}

void FamilyRegistry::forEach(
    int n, const Ratio& ratio, FamilySet selection,
    const std::function<void(const FamilyCandidate&)>& fn) const {
  std::unordered_set<std::uint64_t> seen;
  for (const auto& f : families_) {
    if (!selection.contains(f->id())) continue;
    f->enumerate(n, ratio, [&](FamilyCandidate&& c) {
      if (!seen.insert(c.partition.hash()).second) return;
      fn(c);
    });
  }
}

void FamilyRegistry::forEachN(
    int n, const NSpeeds& speeds, FamilySet selection,
    const std::function<void(const NFamilyCandidate&)>& fn) const {
  std::unordered_set<std::uint64_t> seen;
  for (const auto& f : families_) {
    if (!selection.contains(f->id())) continue;
    f->enumerateN(n, speeds, [&](NFamilyCandidate&& c) {
      if (!seen.insert(c.partition.hash()).second) return;
      fn(c);
    });
  }
}

std::vector<FamilyCandidate> FamilyRegistry::enumerate(
    int n, const Ratio& ratio, FamilySet selection) const {
  std::vector<FamilyCandidate> out;
  forEach(n, ratio, selection,
          [&](const FamilyCandidate& c) { out.push_back(c); });
  return out;
}

std::vector<NFamilyCandidate> FamilyRegistry::enumerateN(
    int n, const NSpeeds& speeds, FamilySet selection) const {
  std::vector<NFamilyCandidate> out;
  forEachN(n, speeds, selection,
           [&](const NFamilyCandidate& c) { out.push_back(c); });
  return out;
}

const FamilyRegistry& builtinFamilies() {
  static const FamilyRegistry* registry = [] {
    auto* r = new FamilyRegistry();
    r->add(std::make_unique<CanonicalFamily>());
    r->add(std::make_unique<LayeredFamily>());
    r->add(std::make_unique<HierarchicalFamily>());
    return r;
  }();
  return *registry;
}

}  // namespace pushpart
