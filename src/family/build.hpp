// Shared construction primitives for the layered and hierarchical families.
//
// Everything here follows the canonical constructors' discipline
// (shapes/candidates.cpp): the grid starts fully owned by the *base*
// processor (P, or index 0), every other member is carved with its exact
// element count, and any integer-granularity slack simply stays with the
// base owner. Builders return false instead of throwing when an integer
// allotment cannot fit — enumeration skips infeasible specs silently.
//
// Templates are shared between the 3-processor Partition (owners are Proc)
// and the k-ary NPartition (owners are NProcId); both expose the same
// n()/at()/set() surface.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pushpart::family_detail {

inline std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Splits n lines into bands: band k gets at least minLines[k] and the
/// vector sums to n, with the surplus handed out greedily toward each
/// band's real-valued target share targetLines[k] (largest deficit first).
/// Returns an empty vector when Σ minLines > n.
std::vector<int> allotLines(int n, const std::vector<int>& minLines,
                            const std::vector<double>& targetLines);

/// Claims `count` cells still owned by `base` inside the box
/// rows [r0, r1) × cols [c0, c1), scanning row-major (or column-major when
/// `colMajor`). Returns false (leaving a partial carve behind — callers
/// discard the grid) when the box runs out of base-owned cells.
template <typename Part, typename Owner>
bool carveBox(Part& q, Owner base, Owner x, int r0, int r1, int c0, int c1,
              std::int64_t count, bool colMajor = false) {
  std::int64_t remaining = count;
  if (colMajor) {
    for (int c = c0; c < c1 && remaining > 0; ++c)
      for (int r = r0; r < r1 && remaining > 0; ++r)
        if (q.at(r, c) == base) {
          q.set(r, c, x);
          --remaining;
        }
  } else {
    for (int r = r0; r < r1 && remaining > 0; ++r)
      for (int c = c0; c < c1 && remaining > 0; ++c)
        if (q.at(r, c) == base) {
          q.set(r, c, x);
          --remaining;
        }
  }
  return remaining == 0;
}

/// Claims `count` base-owned cells from `cells` starting at *cursor,
/// advancing the cursor past every visited position. Assigning consecutive
/// segments of one ordered cell list to successive owners is how regions of
/// any shape (strips, corner squares, L-remainders) are sliced among group
/// members with exact counts.
template <typename Part, typename Owner>
bool carveCells(Part& q, Owner base, Owner x,
                const std::vector<std::pair<int, int>>& cells,
                std::size_t& cursor, std::int64_t count) {
  std::int64_t remaining = count;
  while (remaining > 0 && cursor < cells.size()) {
    const auto [r, c] = cells[cursor++];
    if (q.at(r, c) != base) continue;
    q.set(r, c, x);
    --remaining;
  }
  return remaining == 0;
}

/// One member of one layer: an owner and its exact cell count.
template <typename Owner>
struct LayerMember {
  Owner owner;
  std::int64_t count = 0;
};

/// Builds a layer-based partition onto `q` (pre-filled with `base`):
/// layers become horizontal bands top→bottom (or vertical bands left→right
/// when !rowBands, i.e. the transpose), members sit side by side across
/// each band in listed order. Band depths and member widths are integer
/// allotments proportional to cell counts; members equal to `base` are
/// never carved (their share materializes as the uncarved remainder).
template <typename Part, typename Owner>
bool buildLayeredOnto(Part& q, Owner base,
                      const std::vector<std::vector<LayerMember<Owner>>>& layers,
                      bool rowBands) {
  const int n = q.n();
  const auto nn = static_cast<std::int64_t>(n);

  // The base owner is never carved — its share is whatever stays uncarved
  // anywhere on the grid — so only the *other* members constrain a band's
  // depth. (This is what makes awkward counts feasible: Σ ceil over every
  // member can overshoot n even when the carved members alone fit.)
  const auto carvedNeed = [&](std::size_t k, std::int64_t d) {
    std::int64_t need = 0;
    for (const auto& m : layers[k])
      if (m.owner != base) need += ceilDiv(m.count, d);
    return need;
  };
  std::vector<int> minDepth;
  std::vector<double> targetDepth;
  for (const auto& layer : layers) {
    std::int64_t total = 0, carved = 0;
    for (const auto& m : layer) {
      total += m.count;
      if (m.owner != base) carved += m.count;
    }
    if (total <= 0) return false;
    minDepth.push_back(
        std::max(1, static_cast<int>(ceilDiv(carved, nn))));
    targetDepth.push_back(static_cast<double>(total) / static_cast<double>(n));
  }
  std::vector<int> depth = allotLines(n, minDepth, targetDepth);

  // A band's carved members each need ceil(count/depth) lines across the
  // band; a proportional depth can leave a band one line short of that sum,
  // so grow tight bands at the expense of slack ones until every band fits.
  for (int pass = 0; pass < n && !depth.empty(); ++pass) {
    int tight = -1;
    for (std::size_t k = 0; k < layers.size(); ++k) {
      if (carvedNeed(k, depth[k]) > nn) {
        tight = static_cast<int>(k);
        break;
      }
    }
    if (tight < 0) break;
    int donor = -1;
    for (std::size_t k = 0; k < layers.size(); ++k) {
      if (static_cast<int>(k) == tight || depth[k] <= minDepth[k]) continue;
      if (carvedNeed(k, depth[k] - 1) <= nn) {
        donor = static_cast<int>(k);
        break;
      }
    }
    if (donor < 0) return false;
    ++depth[static_cast<std::size_t>(tight)];
    --depth[static_cast<std::size_t>(donor)];
  }
  if (depth.empty()) return false;

  int d0 = 0;
  for (std::size_t k = 0; k < layers.size(); ++k) {
    const int d1 = d0 + depth[k];
    std::vector<int> minWidth;
    std::vector<double> targetWidth;
    for (const auto& m : layers[k]) {
      minWidth.push_back(
          m.owner == base ? 0
                          : static_cast<int>(ceilDiv(m.count, depth[k])));
      targetWidth.push_back(static_cast<double>(m.count) /
                            static_cast<double>(depth[k]));
    }
    const std::vector<int> width = allotLines(n, minWidth, targetWidth);
    if (width.empty()) return false;
    int w0 = 0;
    for (std::size_t m = 0; m < layers[k].size(); ++m) {
      const int w1 = w0 + width[m];
      if (layers[k][m].owner != base) {
        const bool ok =
            rowBands ? carveBox(q, base, layers[k][m].owner, d0, d1, w0, w1,
                                layers[k][m].count)
                     : carveBox(q, base, layers[k][m].owner, w0, w1, d0, d1,
                                layers[k][m].count, /*colMajor=*/true);
        if (!ok) return false;
      }
      w0 = w1;
    }
    d0 = d1;
  }
  return true;
}

}  // namespace pushpart::family_detail
