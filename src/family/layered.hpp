// Layer-based candidate partitions (Liu/Shi/Zhang/Robertazzi,
// arXiv 1812.06329) for q >= 3 processors.
//
// The layered scheme slices the unit square into parallel processor bands
// ("layers"), each holding one or more processors side by side; band depths
// and in-band widths follow the speed shares. For three processors the
// family enumerates every ordered layering of {P, R, S} into one, two or
// three bands in both orientations — a superset of the paper's
// Block/Traditional/L geometry that also realizes the orderings the
// canonical constructors fix arbitrarily (which is where it can strictly
// beat them at integer granularity). For q processors it enumerates the
// contiguous compositions of the speed-sorted processor sequence.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "family/family.hpp"

namespace pushpart {

/// One 3-processor layering: bands top→bottom (rowBands) or left→right,
/// members in cross order within each band.
struct LayeredSpec {
  std::vector<std::vector<Proc>> layers;
  bool rowBands = true;
};

/// Space-free token, e.g. "layers:P/R-S:r" (bands joined by '/', members by
/// '-', orientation suffix r|c).
std::string layeredSpecName(const LayeredSpec& spec);

/// Builds the spec at integer granularity with exact ratio element counts;
/// nullopt when the integer allotment cannot fit.
std::optional<Partition> makeLayeredPartition(int n, const Ratio& ratio,
                                              const LayeredSpec& spec);

/// Every ordered layering of {P, R, S} into 2 or 3 bands, both orientations
/// (deterministic order; duplicates across specs are left to the registry's
/// hash dedup).
const std::vector<LayeredSpec>& allLayeredSpecs();

/// One q-processor layering of the speed-sorted processors 0..q-1.
struct NLayeredSpec {
  std::vector<std::vector<NProcId>> layers;
  bool rowBands = true;
};

std::string layeredSpecName(const NLayeredSpec& spec);

std::optional<NPartition> makeLayeredNPartition(int n, const NSpeeds& speeds,
                                                const NLayeredSpec& spec);

/// All contiguous compositions of [0, procs) into layers, both orientations.
std::vector<NLayeredSpec> allNLayeredSpecs(int procs);

/// Registry member wrapping the constructions above.
class LayeredFamily final : public CandidateFamily {
 public:
  FamilyId id() const override { return FamilyId::kLayered; }
  const char* description() const override {
    return "layer-based bands for q >= 3 processors (arXiv 1812.06329)";
  }
  void enumerate(
      int n, const Ratio& ratio,
      const std::function<void(FamilyCandidate&&)>& emit) const override;
  void enumerateN(
      int n, const NSpeeds& speeds,
      const std::function<void(NFamilyCandidate&&)>& emit) const override;
};

}  // namespace pushpart
