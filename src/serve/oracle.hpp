// The partition-plan oracle: a thread-safe serving layer over the search
// stack (paper §IX candidates + §V–§VII DFA search).
//
// One Oracle instance owns a machine model, a sharded LRU answer cache with
// in-flight coalescing, and per-tier latency histograms. plan() is the whole
// API: canonicalize the request, serve from cache when possible, otherwise
// solve on the requested tier —
//
//   tier A (fast):   rank the six canonical candidates by modeled time
//                    (model/optimal.hpp) and recommend the winner;
//   tier B (search): tier A plus a budgeted, seeded DFA batch
//                    (dfa/batch.hpp) whose condensed finals cross-check the
//                    candidate ranking, mirroring how the paper's §VII
//                    experiments validate §IX's shapes.
//
// Answers are deterministic for a canonical key (tier B runs its batch
// single-threaded on a fixed seed by default), so a cache hit is
// bit-identical to the cold computation it replays.
#pragma once

#include <cstdint>
#include <functional>

#include "model/machine.hpp"
#include "serve/answer.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "support/histogram.hpp"

namespace pushpart {

struct OracleOptions {
  /// Machine constants shared by every request (per-request state is the
  /// speed ratio; a cache is only coherent for one machine model).
  Machine machine{};
  std::size_t cacheCapacity = 4096;
  std::size_t cacheShards = 16;
  /// Worker threads for a tier-B batch. 1 keeps the batch deterministic and
  /// avoids thread explosions when the oracle itself is called from many
  /// threads; raise it only for single-client, huge-budget use.
  int searchThreads = 1;
  /// Observability hook: invoked at the start of every underlying (cold)
  /// solve with the canonical key. Runs on the solving thread, outside any
  /// cache lock. Also what makes coalescing deterministically testable.
  std::function<void(const CanonicalKey&)> onSolveStart;
};

/// What one plan() call experienced (the answer plus serving metadata).
struct PlanResponse {
  PlanAnswer answer;
  bool cacheHit = false;
  bool coalesced = false;
  double latencySeconds = 0.0;  ///< End-to-end, as seen by this caller.
  std::string key;              ///< Canonical key text.
};

/// Cache counters plus per-tier latency distributions.
struct OracleStats {
  PlanCache::Counters cache;
  LatencyHistogram::Snapshot hitLatency;    ///< plan() calls served by cache.
  LatencyHistogram::Snapshot tierASolves;   ///< Cold tier-A solve times.
  LatencyHistogram::Snapshot tierBSolves;   ///< Cold tier-B solve times.
};

class Oracle {
 public:
  explicit Oracle(OracleOptions options = {});

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Answers `req`, consulting the cache first. Thread-safe. Throws
  /// std::invalid_argument for malformed requests and std::runtime_error
  /// when no candidate is feasible (degenerate n); failures are never
  /// cached.
  PlanResponse plan(const PlanRequest& req);

  /// Computes `req`'s answer with no cache interaction — the cold path,
  /// exposed for verification and benchmarking.
  PlanAnswer solveUncached(const PlanRequest& req) const;

  OracleStats stats() const;

  const OracleOptions& options() const { return options_; }

 private:
  PlanAnswer solveCanonical(const CanonicalKey& key) const;

  OracleOptions options_;
  PlanCache cache_;
  LatencyHistogram hitLatency_;
  LatencyHistogram tierASolves_;
  LatencyHistogram tierBSolves_;
};

}  // namespace pushpart
