// The partition-plan oracle: a thread-safe serving layer over the search
// stack (paper §IX candidates + §V–§VII DFA search).
//
// One Oracle instance owns a machine model, a sharded LRU answer cache with
// in-flight coalescing, admission control, a tier-B circuit breaker, and
// per-tier latency histograms. plan() is the whole API: canonicalize the
// request, serve from cache when possible, otherwise solve on the requested
// tier —
//
//   tier A (fast):   rank the six canonical candidates by modeled time
//                    (model/optimal.hpp) and recommend the winner;
//   atlas (lookup):  between tier A and tier B for search-tier requests —
//                    when a precomputed plan surface (src/atlas) is
//                    configured and the ratio lands on a solved,
//                    off-boundary cell, re-cost the cell's winner at the
//                    exact requested ratio and serve it iff the certificate
//                    gap stays within the configured bound, skipping the
//                    batch entirely;
//   tier B (search): tier A plus a budgeted, seeded DFA batch
//                    (dfa/batch.hpp) whose condensed finals cross-check the
//                    candidate ranking, mirroring how the paper's §VII
//                    experiments validate §IX's shapes.
//
// Under load the oracle degrades instead of queueing unboundedly, walking
// the ladder of DESIGN.md §12: tier B within the deadline, else tier B
// truncated (best-so-far search evidence), else tier A closed-form only,
// else load-shed rejection. Every degraded answer says so (PlanAnswer's
// servedTier/degrade/truncated) and is never cached, so full-fidelity
// answers stay deterministic: a cache hit is bit-identical to the cold
// computation it replays.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "atlas/atlas.hpp"
#include "atlas/prefetch.hpp"
#include "dfa/batch.hpp"
#include "model/machine.hpp"
#include "serve/admission.hpp"
#include "serve/answer.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "serve/snapshot.hpp"
#include "support/deadline.hpp"
#include "support/histogram.hpp"

namespace pushpart {

struct OracleOptions {
  /// Machine constants shared by every request (per-request state is the
  /// speed ratio; a cache is only coherent for one machine model).
  Machine machine{};
  std::size_t cacheCapacity = 4096;
  std::size_t cacheShards = 16;
  /// Worker threads for a tier-B batch. 1 keeps the batch deterministic and
  /// avoids thread explosions when the oracle itself is called from many
  /// threads; raise it only for single-client, huge-budget use.
  int searchThreads = 1;
  /// Admission control in front of the solver. Disabled by default
  /// (maxConcurrency == 0); cache hits are never subject to admission.
  AdmissionOptions admission;
  /// Tier-B circuit breaker: trips open after `failureThreshold` consecutive
  /// deadline busts, short-circuiting the search tier to closed-form
  /// answers until a half-open probe succeeds.
  BreakerOptions breaker;
  /// How often a tier-B walk polls its cancel token, in applied pushes.
  std::int64_t cancelCheckEvery = 1024;
  /// Engine state for tier-B search walks. The run-length engine (default)
  /// is decision-identical to the element grid — the differential suite in
  /// src/verify enforces it — and an order of magnitude faster on condensed
  /// states, so batches fit tighter deadlines. kGrid remains for
  /// differential serving tests.
  BatchEngine searchEngine = BatchEngine::kRle;
  /// Precomputed plan surface (src/atlas). When set, a search-tier request
  /// whose ratio lands on a solved, off-boundary cell is answered by
  /// certified O(1) lookup instead of a live tier-B batch: the cell's
  /// winner is re-costed at the exact requested ratio and accepted iff the
  /// certificate gap (winner re-cost gap and surface interpolation gap)
  /// stays within atlasGapPct. Null = no atlas tier.
  std::shared_ptr<PlanAtlas> atlas;
  /// Certificate acceptance bound, percent. An atlas answer whose
  /// certificate gap exceeds this falls back to the live search.
  double atlasGapPct = 5.0;
  /// Which candidate families tier A ranks (src/family). Default: canonical
  /// only — the paper's six shapes, with the atlas tier fully usable. An
  /// extended selection also ranks layered/hierarchical members, serves the
  /// family winner when it strictly beats every canonical shape, and skips
  /// the atlas tier (its surface is canonical-only, so its certificates
  /// cannot vouch for extended winners).
  FamilySet families = FamilySet::canonicalOnly();
  /// Speculatively solve the missed cell and its 4-neighborhood in the
  /// background when a lookup lands on an unsolved cell.
  bool atlasPrefetch = true;
  /// Observability hook: invoked at the start of every underlying (cold)
  /// solve with the canonical key. Runs on the solving thread, outside any
  /// cache lock. Also what makes coalescing deterministically testable.
  std::function<void(const CanonicalKey&)> onSolveStart;
  /// Observability hook: invoked after each delivered tier-B search run with
  /// the number of runs delivered so far. Runs on the solving thread. What
  /// makes mid-batch cancellation (the truncated rung) deterministically
  /// testable.
  std::function<void(const CanonicalKey&, int)> onSearchRun;
};

/// Per-call serving options — the request identifies *what* to solve, this
/// says *how long* the caller is willing to wait. Deliberately not part of
/// the canonical key: a deadline changes the serving path, never the
/// full-fidelity answer.
struct PlanCallOptions {
  /// Time budget for this call. Expired mid-solve, it cancels the tier-B
  /// batch cooperatively; expired while coalesced, it abandons the wait.
  Deadline deadline;
  /// Extra cooperative cancel (e.g. client disconnect). Combined with the
  /// deadline: the solve stops when either fires.
  CancelToken cancel;
};

/// Why a request was load-shed instead of answered.
enum class ShedReason {
  kNone = 0,
  kQueueFull,         ///< Admission queue at capacity.
  kAdmissionTimeout,  ///< Deadline expired waiting for an admission slot.
};

constexpr const char* shedReasonName(ShedReason r) {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kAdmissionTimeout: return "admission-timeout";
  }
  return "?";
}

/// What one plan() call experienced (the answer plus serving metadata).
struct PlanResponse {
  PlanAnswer answer;
  bool cacheHit = false;
  bool coalesced = false;
  /// Load-shed: no answer was produced (answer holds defaults). The bottom
  /// rung of the degradation ladder.
  bool shed = false;
  ShedReason shedReason = ShedReason::kNone;
  /// The call finished after its deadline. Always paired with a degrade
  /// mark on the answer (kLate when the answer is otherwise full fidelity).
  bool deadlineExceeded = false;
  double latencySeconds = 0.0;  ///< End-to-end, as seen by this caller.
  std::string key;              ///< Canonical key text.
};

/// Cache counters plus per-tier latency distributions and the overload
/// ledger (degradations by reason, sheds, breaker activity).
struct OracleStats {
  PlanCache::Counters cache;
  AdmissionController::Counters admission;
  CircuitBreaker::Counters breaker;
  BreakerState breakerState = BreakerState::kClosed;
  std::uint64_t shed = 0;             ///< Load-shed responses.
  std::uint64_t degraded = 0;         ///< Answers served below full fidelity.
  std::uint64_t truncatedSearch = 0;  ///< ... of which tier B was cut short.
  std::uint64_t noTimeForSearch = 0;  ///< ... of which tier B never started.
  std::uint64_t breakerOpenServes = 0;  ///< ... short-circuited by the breaker.
  std::uint64_t late = 0;             ///< Full answers marked late.
  // Atlas tier accounting. atlasServed counts certified answers; an
  // uncertified lookup (winner mismatch or certificate gap beyond the
  // bound) falls through to the live search and counts in atlasUncertified.
  std::uint64_t atlasServed = 0;
  std::uint64_t atlasMisses = 0;       ///< Lookup misses (no usable cell).
  std::uint64_t atlasUncertified = 0;  ///< Hits the certificate rejected.
  PlanAtlas::Counters atlasCells;      ///< The atlas's own lookup counters.
  // Per-response source breakdown. Sums (with shed) to every plan() call:
  // a response is exactly one of cache-served (hit or coalesced), atlas-
  // certified, tier-B searched, tier-A closed-form, or shed — so the atlas
  // tier can never mask shed accounting.
  std::uint64_t sourceCache = 0;
  std::uint64_t sourceAtlas = 0;
  std::uint64_t sourceTierA = 0;
  std::uint64_t sourceTierB = 0;
  LatencyHistogram::Snapshot hitLatency;    ///< plan() calls served by cache.
  LatencyHistogram::Snapshot tierASolves;   ///< Cold tier-A solve times.
  LatencyHistogram::Snapshot tierBSolves;   ///< Cold tier-B solve times.
  LatencyHistogram::Snapshot atlasSolves;   ///< Atlas-certified cold serves.

  /// The pinned one-line per-source breakdown shown by the CLI stats:
  /// "sources: atlas=A cache=C tier-A=F tier-B=S shed=X".
  std::string sourcesLine() const;
};

class Oracle {
 public:
  explicit Oracle(OracleOptions options = {});

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Answers `req`, consulting the cache first. Thread-safe. Throws
  /// std::invalid_argument for malformed requests and std::runtime_error
  /// when no candidate is feasible (degenerate n); failures are never
  /// cached. Load shedding and degradation are reported in the response,
  /// never thrown.
  PlanResponse plan(const PlanRequest& req) { return plan(req, {}); }
  PlanResponse plan(const PlanRequest& req, const PlanCallOptions& call);

  /// Computes `req`'s answer with no cache, admission or breaker
  /// interaction — the cold path, exposed for verification and
  /// benchmarking.
  PlanAnswer solveUncached(const PlanRequest& req) const;

  OracleStats stats() const;

  /// Persists the answer cache to `path` (atomic rename; see
  /// serve/snapshot.hpp). Returns entries written.
  std::size_t saveSnapshot(const std::string& path) const;

  /// Warms the answer cache from `path`. Corrupt entries are skipped;
  /// a version mismatch throws and loads nothing.
  SnapshotLoadReport loadSnapshot(const std::string& path);

  /// Non-throwing loadSnapshot: version refusal and unreadable files come
  /// back in the report (versionRefused/error) instead of an exception, so
  /// a serving path can start cold and say exactly why.
  SnapshotLoadReport tryLoadSnapshot(const std::string& path);

  /// Loads one snapshot-format document (e.g. a rebalance segment streamed
  /// by a cluster peer) into the cache, non-throwing. Callers that require
  /// a byte-perfect transfer assert on report.clean().
  SnapshotLoadReport loadSnapshotSegment(std::istream& is);

  // -- Replication surface (src/cluster) ----------------------------------
  // The cluster router replicates full-fidelity cache entries across the
  // key's owner nodes and reads them back from any replica; these are the
  // minimal cache pass-throughs that make an Oracle clusterable without
  // exposing the cache itself.

  /// The cached answer for `key`, if resident (counts a hit and refreshes
  /// LRU — a replica read is real traffic). Never solves, never waits on
  /// in-flight solves.
  std::optional<PlanAnswer> peekCached(const CanonicalKey& key);

  /// Inserts a replicated entry. Only full-fidelity answers are accepted
  /// (the cluster shares the single-process cacheability rule); degraded
  /// answers are ignored. `keyText` must be canonical key text.
  void insertReplica(const std::string& keyText, const PlanAnswer& answer);

  /// Every resident cache entry (deterministic order; see
  /// PlanCache::exportEntries) — what rebalance filters by ring ownership.
  std::vector<PlanCache::SnapshotEntry> exportCacheEntries() const;

  /// Drops the cached answer for `key`, if resident — the drift-adaptive
  /// staleness hook (src/adapt): a plan ruled stale must never be re-served.
  /// Returns whether an entry was dropped (counted in the cache's
  /// staleInvalidations). In-flight solves are unaffected.
  bool invalidateCached(const CanonicalKey& key);

  const OracleOptions& options() const { return options_; }

 private:
  /// The cold solve. `consultBreaker` and `consultAtlas` are false on the
  /// solveUncached path — solveUncached is the atlas-bypassing live
  /// reference the verify subsystem differentials against. Degradation
  /// (breaker open, no time, truncation) is recorded in the returned
  /// answer; the ladder's accounting happens in plan().
  PlanAnswer solveCanonical(const CanonicalKey& key, const CancelToken& cancel,
                            bool consultBreaker, bool consultAtlas) const;

  /// Builds the response for a non-shed answer: latency, lateness marking,
  /// degradation counters, per-source accounting. `freshFallback` marks the
  /// coalesced-timeout path whose answer is a fresh solve, not the
  /// leader's — it classifies by the answer, not as a cache serve.
  PlanResponse finishResponse(const CanonicalKey& key, PlanAnswer answer,
                              bool hit, bool coalesced,
                              const PlanCallOptions& call,
                              double latencySeconds,
                              bool freshFallback = false);

  OracleOptions options_;
  PlanCache cache_;
  mutable AdmissionController admission_;
  mutable CircuitBreaker breaker_;
  /// Background neighborhood prefetch; non-null only when an atlas is
  /// configured with atlasPrefetch. Mutable because the cold solve
  /// (logically const) enqueues speculative work on a miss.
  mutable std::unique_ptr<AtlasPrefetcher> prefetcher_;
  LatencyHistogram hitLatency_;
  LatencyHistogram tierASolves_;
  LatencyHistogram tierBSolves_;
  LatencyHistogram atlasSolves_;
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> truncatedSearch_{0};
  std::atomic<std::uint64_t> noTimeForSearch_{0};
  std::atomic<std::uint64_t> breakerOpenServes_{0};
  std::atomic<std::uint64_t> late_{0};
  mutable std::atomic<std::uint64_t> atlasServed_{0};
  mutable std::atomic<std::uint64_t> atlasMisses_{0};
  mutable std::atomic<std::uint64_t> atlasUncertified_{0};
  std::atomic<std::uint64_t> sourceCache_{0};
  std::atomic<std::uint64_t> sourceAtlas_{0};
  std::atomic<std::uint64_t> sourceTierA_{0};
  std::atomic<std::uint64_t> sourceTierB_{0};
};

}  // namespace pushpart
