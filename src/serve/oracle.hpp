// The partition-plan oracle: a thread-safe serving layer over the search
// stack (paper §IX candidates + §V–§VII DFA search).
//
// One Oracle instance owns a machine model, a sharded LRU answer cache with
// in-flight coalescing, admission control, a tier-B circuit breaker, and
// per-tier latency histograms. plan() is the whole API: canonicalize the
// request, serve from cache when possible, otherwise solve on the requested
// tier —
//
//   tier A (fast):   rank the six canonical candidates by modeled time
//                    (model/optimal.hpp) and recommend the winner;
//   tier B (search): tier A plus a budgeted, seeded DFA batch
//                    (dfa/batch.hpp) whose condensed finals cross-check the
//                    candidate ranking, mirroring how the paper's §VII
//                    experiments validate §IX's shapes.
//
// Under load the oracle degrades instead of queueing unboundedly, walking
// the ladder of DESIGN.md §12: tier B within the deadline, else tier B
// truncated (best-so-far search evidence), else tier A closed-form only,
// else load-shed rejection. Every degraded answer says so (PlanAnswer's
// servedTier/degrade/truncated) and is never cached, so full-fidelity
// answers stay deterministic: a cache hit is bit-identical to the cold
// computation it replays.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <vector>

#include "model/machine.hpp"
#include "serve/admission.hpp"
#include "serve/answer.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "serve/snapshot.hpp"
#include "support/deadline.hpp"
#include "support/histogram.hpp"

namespace pushpart {

struct OracleOptions {
  /// Machine constants shared by every request (per-request state is the
  /// speed ratio; a cache is only coherent for one machine model).
  Machine machine{};
  std::size_t cacheCapacity = 4096;
  std::size_t cacheShards = 16;
  /// Worker threads for a tier-B batch. 1 keeps the batch deterministic and
  /// avoids thread explosions when the oracle itself is called from many
  /// threads; raise it only for single-client, huge-budget use.
  int searchThreads = 1;
  /// Admission control in front of the solver. Disabled by default
  /// (maxConcurrency == 0); cache hits are never subject to admission.
  AdmissionOptions admission;
  /// Tier-B circuit breaker: trips open after `failureThreshold` consecutive
  /// deadline busts, short-circuiting the search tier to closed-form
  /// answers until a half-open probe succeeds.
  BreakerOptions breaker;
  /// How often a tier-B walk polls its cancel token, in applied pushes.
  std::int64_t cancelCheckEvery = 1024;
  /// Observability hook: invoked at the start of every underlying (cold)
  /// solve with the canonical key. Runs on the solving thread, outside any
  /// cache lock. Also what makes coalescing deterministically testable.
  std::function<void(const CanonicalKey&)> onSolveStart;
  /// Observability hook: invoked after each delivered tier-B search run with
  /// the number of runs delivered so far. Runs on the solving thread. What
  /// makes mid-batch cancellation (the truncated rung) deterministically
  /// testable.
  std::function<void(const CanonicalKey&, int)> onSearchRun;
};

/// Per-call serving options — the request identifies *what* to solve, this
/// says *how long* the caller is willing to wait. Deliberately not part of
/// the canonical key: a deadline changes the serving path, never the
/// full-fidelity answer.
struct PlanCallOptions {
  /// Time budget for this call. Expired mid-solve, it cancels the tier-B
  /// batch cooperatively; expired while coalesced, it abandons the wait.
  Deadline deadline;
  /// Extra cooperative cancel (e.g. client disconnect). Combined with the
  /// deadline: the solve stops when either fires.
  CancelToken cancel;
};

/// Why a request was load-shed instead of answered.
enum class ShedReason {
  kNone = 0,
  kQueueFull,         ///< Admission queue at capacity.
  kAdmissionTimeout,  ///< Deadline expired waiting for an admission slot.
};

constexpr const char* shedReasonName(ShedReason r) {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kAdmissionTimeout: return "admission-timeout";
  }
  return "?";
}

/// What one plan() call experienced (the answer plus serving metadata).
struct PlanResponse {
  PlanAnswer answer;
  bool cacheHit = false;
  bool coalesced = false;
  /// Load-shed: no answer was produced (answer holds defaults). The bottom
  /// rung of the degradation ladder.
  bool shed = false;
  ShedReason shedReason = ShedReason::kNone;
  /// The call finished after its deadline. Always paired with a degrade
  /// mark on the answer (kLate when the answer is otherwise full fidelity).
  bool deadlineExceeded = false;
  double latencySeconds = 0.0;  ///< End-to-end, as seen by this caller.
  std::string key;              ///< Canonical key text.
};

/// Cache counters plus per-tier latency distributions and the overload
/// ledger (degradations by reason, sheds, breaker activity).
struct OracleStats {
  PlanCache::Counters cache;
  AdmissionController::Counters admission;
  CircuitBreaker::Counters breaker;
  BreakerState breakerState = BreakerState::kClosed;
  std::uint64_t shed = 0;             ///< Load-shed responses.
  std::uint64_t degraded = 0;         ///< Answers served below full fidelity.
  std::uint64_t truncatedSearch = 0;  ///< ... of which tier B was cut short.
  std::uint64_t noTimeForSearch = 0;  ///< ... of which tier B never started.
  std::uint64_t breakerOpenServes = 0;  ///< ... short-circuited by the breaker.
  std::uint64_t late = 0;             ///< Full answers marked late.
  LatencyHistogram::Snapshot hitLatency;    ///< plan() calls served by cache.
  LatencyHistogram::Snapshot tierASolves;   ///< Cold tier-A solve times.
  LatencyHistogram::Snapshot tierBSolves;   ///< Cold tier-B solve times.
};

class Oracle {
 public:
  explicit Oracle(OracleOptions options = {});

  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  /// Answers `req`, consulting the cache first. Thread-safe. Throws
  /// std::invalid_argument for malformed requests and std::runtime_error
  /// when no candidate is feasible (degenerate n); failures are never
  /// cached. Load shedding and degradation are reported in the response,
  /// never thrown.
  PlanResponse plan(const PlanRequest& req) { return plan(req, {}); }
  PlanResponse plan(const PlanRequest& req, const PlanCallOptions& call);

  /// Computes `req`'s answer with no cache, admission or breaker
  /// interaction — the cold path, exposed for verification and
  /// benchmarking.
  PlanAnswer solveUncached(const PlanRequest& req) const;

  OracleStats stats() const;

  /// Persists the answer cache to `path` (atomic rename; see
  /// serve/snapshot.hpp). Returns entries written.
  std::size_t saveSnapshot(const std::string& path) const;

  /// Warms the answer cache from `path`. Corrupt entries are skipped;
  /// a version mismatch throws and loads nothing.
  SnapshotLoadReport loadSnapshot(const std::string& path);

  /// Non-throwing loadSnapshot: version refusal and unreadable files come
  /// back in the report (versionRefused/error) instead of an exception, so
  /// a serving path can start cold and say exactly why.
  SnapshotLoadReport tryLoadSnapshot(const std::string& path);

  /// Loads one snapshot-format document (e.g. a rebalance segment streamed
  /// by a cluster peer) into the cache, non-throwing. Callers that require
  /// a byte-perfect transfer assert on report.clean().
  SnapshotLoadReport loadSnapshotSegment(std::istream& is);

  // -- Replication surface (src/cluster) ----------------------------------
  // The cluster router replicates full-fidelity cache entries across the
  // key's owner nodes and reads them back from any replica; these are the
  // minimal cache pass-throughs that make an Oracle clusterable without
  // exposing the cache itself.

  /// The cached answer for `key`, if resident (counts a hit and refreshes
  /// LRU — a replica read is real traffic). Never solves, never waits on
  /// in-flight solves.
  std::optional<PlanAnswer> peekCached(const CanonicalKey& key);

  /// Inserts a replicated entry. Only full-fidelity answers are accepted
  /// (the cluster shares the single-process cacheability rule); degraded
  /// answers are ignored. `keyText` must be canonical key text.
  void insertReplica(const std::string& keyText, const PlanAnswer& answer);

  /// Every resident cache entry (deterministic order; see
  /// PlanCache::exportEntries) — what rebalance filters by ring ownership.
  std::vector<PlanCache::SnapshotEntry> exportCacheEntries() const;

  const OracleOptions& options() const { return options_; }

 private:
  /// The cold solve. `consultBreaker` is false on the solveUncached path.
  /// Degradation (breaker open, no time, truncation) is recorded in the
  /// returned answer; the ladder's accounting happens in plan().
  PlanAnswer solveCanonical(const CanonicalKey& key, const CancelToken& cancel,
                            bool consultBreaker) const;

  /// Builds the response for a non-shed answer: latency, lateness marking,
  /// degradation counters.
  PlanResponse finishResponse(const CanonicalKey& key, PlanAnswer answer,
                              bool hit, bool coalesced,
                              const PlanCallOptions& call,
                              double latencySeconds);

  OracleOptions options_;
  PlanCache cache_;
  mutable AdmissionController admission_;
  mutable CircuitBreaker breaker_;
  LatencyHistogram hitLatency_;
  LatencyHistogram tierASolves_;
  LatencyHistogram tierBSolves_;
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> truncatedSearch_{0};
  std::atomic<std::uint64_t> noTimeForSearch_{0};
  std::atomic<std::uint64_t> breakerOpenServes_{0};
  std::atomic<std::uint64_t> late_{0};
};

}  // namespace pushpart
