#include "serve/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "bounds/bounds.hpp"
#include "dfa/batch.hpp"
#include "family/rank.hpp"
#include "model/optimal.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

Oracle::Oracle(OracleOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheCapacity, options_.cacheShards),
      admission_(options_.admission),
      breaker_(options_.breaker) {
  if (options_.atlas && options_.atlasPrefetch)
    prefetcher_ = std::make_unique<AtlasPrefetcher>(options_.atlas);
}

std::string OracleStats::sourcesLine() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sources: atlas=%llu cache=%llu tier-A=%llu tier-B=%llu "
                "shed=%llu",
                static_cast<unsigned long long>(sourceAtlas),
                static_cast<unsigned long long>(sourceCache),
                static_cast<unsigned long long>(sourceTierA),
                static_cast<unsigned long long>(sourceTierB),
                static_cast<unsigned long long>(shed));
  return buf;
}

PlanAnswer Oracle::solveCanonical(const CanonicalKey& key,
                                  const CancelToken& cancel,
                                  bool consultBreaker,
                                  bool consultAtlas) const {
  const PlanRequest& req = key.request;
  Machine machine = options_.machine;
  machine.ratio = req.ratio;

  Stopwatch timer;
  const RankedCandidate best =
      selectOptimal(req.algo, req.n, machine, req.topology, req.star);

  PlanAnswer answer;
  answer.shape = best.shape;
  answer.model = best.model;
  answer.voc = best.voc;
  answer.tier = req.tier;
  answer.servedTier = PlanTier::kFast;
  // Lower-bound evidence rides every answer: the bound depends only on
  // (n, ratio), so one computation covers whichever candidate is served.
  const std::int64_t vocBound = vocLowerBound(req.n, req.ratio);
  answer.optimalityGapPct = pushpart::optimalityGapPct(best.voc, vocBound);
  answer.familyCandidate = candidateName(best.shape);

  // Extended families: rank layered/hierarchical members alongside the six
  // shapes and adopt a family winner only when it *strictly* beats the
  // canonical best — ties keep the paper's shape (and its closed-form
  // pedigree). shape stays the canonical best either way.
  if (options_.families.extended()) {
    if (std::optional<FamilyRanked> fam =
            bestFamilyCandidate(req.algo, req.n, machine, options_.families,
                                req.topology, req.star)) {
      if (fam->model.execSeconds < answer.model.execSeconds) {
        answer.family = fam->family;
        answer.familyCandidate = fam->name;
        answer.model = fam->model;
        answer.voc = fam->voc;
        answer.optimalityGapPct = pushpart::optimalityGapPct(fam->voc, vocBound);
      }
    }
  }

  // The atlas tier: between tier A (we already hold the exact closed-form
  // winner) and tier B (the expensive batch this lookup exists to skip).
  // Only search-tier requests consult it — for tier A the ranking above IS
  // the full answer. Extended-family serving skips it: the surface knows
  // only canonical shapes.
  if (req.tier == PlanTier::kSearch && consultAtlas && options_.atlas &&
      !options_.families.extended()) {
    const AtlasLookup lk = options_.atlas->lookup(req.ratio);
    if (!lk.hit) {
      atlasMisses_.fetch_add(1, std::memory_order_relaxed);
      // An unsolved cell is the one miss prefetch can cure: speculatively
      // build its neighborhood so the next request in this region hits.
      if (lk.miss == AtlasMissReason::kUnsolved && prefetcher_)
        prefetcher_->enqueueNeighborhood(lk.i, lk.j);
    } else {
      // Certificate: (a) the cell's winner, re-costed at the *exact*
      // requested (n, ratio), must model within the bound of the exact best
      // (zero when the shapes agree — the common interior-cell case);
      // (b) the interpolated surface value must agree with the winner's
      // exact normalized VoC, bounding how far the request sits from the
      // solved grid. Either failing means this ratio is not where the
      // surface says it is — fall back to the live search.
      bool certified = false;
      RankedCandidate served = best;
      double winnerGapPct = 0.0;
      if (lk.shape != best.shape) {
        if (std::optional<RankedCandidate> rc = rankOne(
                lk.shape, req.algo, req.n, machine, req.topology, req.star)) {
          served = *rc;
          winnerGapPct = (rc->model.execSeconds - best.model.execSeconds) /
                         best.model.execSeconds * 100.0;
        } else {
          winnerGapPct = AtlasCell::kMaxGapPct;  // Infeasible here: reject.
        }
      }
      if (winnerGapPct <= options_.atlasGapPct) {
        const double exactNorm =
            static_cast<double>(served.voc) /
            (static_cast<double>(req.n) * static_cast<double>(req.n));
        const double surfaceGapPct =
            exactNorm > 0.0
                ? std::fabs(lk.interpNormVoc - exactNorm) / exactNorm * 100.0
                : (lk.interpNormVoc > 0.0 ? AtlasCell::kMaxGapPct : 0.0);
        if (surfaceGapPct <= options_.atlasGapPct) {
          certified = true;
          answer.shape = served.shape;
          answer.model = served.model;
          answer.voc = served.voc;
          answer.familyCandidate = candidateName(served.shape);
          answer.optimalityGapPct =
              pushpart::optimalityGapPct(served.voc, vocBound);
          answer.atlasServed = true;
          answer.atlasCertGapPct = std::max(winnerGapPct, surfaceGapPct);
          answer.atlasI = lk.i;
          answer.atlasJ = lk.j;
          answer.searchConfirmedCandidate = lk.searchConfirmed;
        }
      }
      if (certified) {
        atlasServed_.fetch_add(1, std::memory_order_relaxed);
        answer.solveSeconds = timer.seconds();
        return answer;
      }
      atlasUncertified_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (req.tier == PlanTier::kSearch) {
    if (consultBreaker && !breaker_.allowRequest()) {
      // Ladder rung 3: the breaker is open, serve the closed-form ranking
      // without attempting (or accounting) a search. No recordSuccess /
      // recordFailure here — the protocol only applies after a true
      // allowRequest().
      answer.degrade = DegradeReason::kBreakerOpen;
    } else if (cancel.cancelled()) {
      // The budget is gone before the batch could start: same rung, reached
      // via the deadline. This still counts against the breaker — a run of
      // these means tier B is hopeless at the current load.
      answer.degrade = DegradeReason::kNoTimeForSearch;
      if (consultBreaker) breaker_.recordFailure();
    } else {
      BatchOptions batch;
      batch.n = req.n;
      batch.ratio = req.ratio;
      batch.runs = req.searchRuns;
      batch.threads = options_.searchThreads;
      batch.seed = req.searchSeed;
      batch.cancel = cancel;
      batch.engine = options_.searchEngine;
      batch.dfa.cancelCheckEvery = options_.cancelCheckEvery;

      double bestExec = 0.0;
      std::int64_t bestVoc = 0;
      bool any = false;
      int delivered = 0;
      const BatchSummary summary = runBatch(batch, [&](const BatchRun& run) {
        ++delivered;
        if (options_.onSearchRun) options_.onSearchRun(key, delivered);
        // A cancelled walk's partition is intact (pushes are transactional)
        // but it never reached an accept state; it is not search evidence.
        if (run.result.stop == DfaStop::kCancelled) return;
        const ModelResult m = evalModel(req.algo, run.result.final, machine,
                                        req.topology, req.star);
        if (!any || m.execSeconds < bestExec) {
          any = true;
          bestExec = m.execSeconds;
          bestVoc = run.result.final.volumeOfCommunication();
        }
        ++answer.searchCompleted;
      });
      answer.servedTier = PlanTier::kSearch;
      answer.searchRuns = req.searchRuns;
      answer.searchBestVoc = bestVoc;
      answer.searchBestExecSeconds = bestExec;
      // The search "confirms" the closed-form ranking when no condensed walk
      // modeled faster than the recommended candidate (the paper's §VII
      // outcome). An empty batch confirms nothing.
      answer.searchConfirmedCandidate =
          any && bestExec >= answer.model.execSeconds;
      if (summary.truncated()) {
        // Ladder rung 2: the deadline cancelled the batch mid-flight;
        // completed walks remain best-so-far evidence.
        answer.truncated = true;
        answer.degrade = DegradeReason::kTruncatedSearch;
      }
      if (consultBreaker) {
        if (summary.truncated() || cancel.cancelled())
          breaker_.recordFailure();
        else
          breaker_.recordSuccess();
      }
    }
  }

  answer.solveSeconds = timer.seconds();
  return answer;
}

PlanResponse Oracle::finishResponse(const CanonicalKey& key, PlanAnswer answer,
                                    bool hit, bool coalesced,
                                    const PlanCallOptions& call,
                                    double latencySeconds,
                                    bool freshFallback) {
  // Per-source breakdown (the stats "sources:" line). Exactly one source
  // per response; shed is counted at its own site in plan(), so atlas
  // serves can never hide shed traffic.
  if ((hit || coalesced) && !freshFallback)
    sourceCache_.fetch_add(1, std::memory_order_relaxed);
  else if (answer.atlasServed)
    sourceAtlas_.fetch_add(1, std::memory_order_relaxed);
  else if (answer.servedTier == PlanTier::kSearch)
    sourceTierB_.fetch_add(1, std::memory_order_relaxed);
  else
    sourceTierA_.fetch_add(1, std::memory_order_relaxed);
  PlanResponse response;
  response.cacheHit = hit;
  response.coalesced = coalesced;
  response.latencySeconds = latencySeconds;
  response.key = key.text;
  if (call.deadline.expired()) {
    response.deadlineExceeded = true;
    // The caller must never see a post-deadline answer without a mark. The
    // mark goes on this response's copy only — the cached answer (if any)
    // stays pristine for on-time callers.
    if (answer.fullFidelity()) answer.degrade = DegradeReason::kLate;
  }
  switch (answer.degrade) {
    case DegradeReason::kNone:
      break;
    case DegradeReason::kTruncatedSearch:
      truncatedSearch_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeReason::kNoTimeForSearch:
      noTimeForSearch_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeReason::kBreakerOpen:
      breakerOpenServes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeReason::kLate:
      late_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (!answer.fullFidelity()) degraded_.fetch_add(1, std::memory_order_relaxed);
  response.answer = std::move(answer);
  if (hit) hitLatency_.record(latencySeconds);
  return response;
}

PlanResponse Oracle::plan(const PlanRequest& req,
                          const PlanCallOptions& call) {
  Stopwatch timer;
  const CanonicalKey key = canonicalize(req);

  // Cache hits are served unconditionally: they cost microseconds and are
  // exactly what admission control is trying to protect.
  if (std::optional<PlanAnswer> cached = cache_.tryGet(key))
    return finishResponse(key, *std::move(cached), /*hit=*/true,
                          /*coalesced=*/false, call, timer.seconds());

  AdmissionController::Permit permit(admission_, call.deadline);
  if (!permit.admitted()) {
    // Ladder rung 4: load-shed. No answer; the caller retries or gives up.
    shed_.fetch_add(1, std::memory_order_relaxed);
    PlanResponse response;
    response.shed = true;
    response.shedReason = permit.outcome() == AdmissionOutcome::kQueueFull
                              ? ShedReason::kQueueFull
                              : ShedReason::kAdmissionTimeout;
    response.deadlineExceeded = call.deadline.expired();
    response.latencySeconds = timer.seconds();
    response.key = key.text;
    return response;
  }

  const CancelToken solveCancel = call.cancel.withDeadline(call.deadline);
  const PlanCache::Outcome outcome = cache_.getOrCompute(
      key,
      [this, &key, &solveCancel]() {
        if (options_.onSolveStart) options_.onSolveStart(key);
        PlanAnswer answer = solveCanonical(key, solveCancel,
                                           /*consultBreaker=*/true,
                                           /*consultAtlas=*/true);
        (answer.atlasServed
             ? atlasSolves_
             : answer.tier == PlanTier::kSearch ? tierBSolves_ : tierASolves_)
            .record(answer.solveSeconds);
        return answer;
      },
      call.deadline);

  if (outcome.timedOut) {
    // The coalesced wait expired before the producer delivered. Degrade to a
    // fresh closed-form answer (microseconds) rather than return nothing:
    // for a tier-A request that IS the full answer; for tier B it lands as
    // kNoTimeForSearch. The breaker is not consulted — this caller never
    // attempted a search.
    CancelToken spent;
    spent.requestCancel();
    PlanAnswer answer = solveCanonical(key, spent, /*consultBreaker=*/false,
                                       /*consultAtlas=*/true);
    return finishResponse(key, std::move(answer), /*hit=*/false,
                          /*coalesced=*/true, call, timer.seconds(),
                          /*freshFallback=*/true);
  }

  return finishResponse(key, outcome.answer, outcome.hit, outcome.coalesced,
                        call, timer.seconds());
}

PlanAnswer Oracle::solveUncached(const PlanRequest& req) const {
  // No cache, no breaker, and no atlas: this is the live reference the
  // verify subsystem's atlas-consistency property differentials against.
  return solveCanonical(canonicalize(req), CancelToken(),
                        /*consultBreaker=*/false, /*consultAtlas=*/false);
}

OracleStats Oracle::stats() const {
  OracleStats s;
  s.cache = cache_.counters();
  s.admission = admission_.counters();
  s.breaker = breaker_.counters();
  s.breakerState = breaker_.state();
  s.shed = shed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.truncatedSearch = truncatedSearch_.load(std::memory_order_relaxed);
  s.noTimeForSearch = noTimeForSearch_.load(std::memory_order_relaxed);
  s.breakerOpenServes = breakerOpenServes_.load(std::memory_order_relaxed);
  s.late = late_.load(std::memory_order_relaxed);
  s.atlasServed = atlasServed_.load(std::memory_order_relaxed);
  s.atlasMisses = atlasMisses_.load(std::memory_order_relaxed);
  s.atlasUncertified = atlasUncertified_.load(std::memory_order_relaxed);
  if (options_.atlas) s.atlasCells = options_.atlas->counters();
  s.sourceCache = sourceCache_.load(std::memory_order_relaxed);
  s.sourceAtlas = sourceAtlas_.load(std::memory_order_relaxed);
  s.sourceTierA = sourceTierA_.load(std::memory_order_relaxed);
  s.sourceTierB = sourceTierB_.load(std::memory_order_relaxed);
  s.hitLatency = hitLatency_.snapshot();
  s.tierASolves = tierASolves_.snapshot();
  s.tierBSolves = tierBSolves_.snapshot();
  s.atlasSolves = atlasSolves_.snapshot();
  return s;
}

std::size_t Oracle::saveSnapshot(const std::string& path) const {
  return savePlanCacheSnapshot(cache_, path);
}

SnapshotLoadReport Oracle::loadSnapshot(const std::string& path) {
  return loadPlanCacheSnapshot(cache_, path);
}

SnapshotLoadReport Oracle::tryLoadSnapshot(const std::string& path) {
  return tryLoadPlanCacheSnapshot(cache_, path);
}

SnapshotLoadReport Oracle::loadSnapshotSegment(std::istream& is) {
  return tryLoadPlanCacheSnapshot(cache_, is);
}

std::optional<PlanAnswer> Oracle::peekCached(const CanonicalKey& key) {
  return cache_.tryGet(key);
}

void Oracle::insertReplica(const std::string& keyText,
                           const PlanAnswer& answer) {
  // Replication obeys the same cacheability rule as the local cache: a
  // degraded answer is served once, never stored anywhere.
  if (!answer.fullFidelity()) return;
  cache_.insertWarm(keyText, answer);
}

std::vector<PlanCache::SnapshotEntry> Oracle::exportCacheEntries() const {
  return cache_.exportEntries();
}

bool Oracle::invalidateCached(const CanonicalKey& key) {
  return cache_.invalidate(key);
}

}  // namespace pushpart
