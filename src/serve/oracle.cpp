#include "serve/oracle.hpp"

#include <utility>

#include "dfa/batch.hpp"
#include "model/optimal.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

Oracle::Oracle(OracleOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheCapacity, options_.cacheShards),
      admission_(options_.admission),
      breaker_(options_.breaker) {}

PlanAnswer Oracle::solveCanonical(const CanonicalKey& key,
                                  const CancelToken& cancel,
                                  bool consultBreaker) const {
  const PlanRequest& req = key.request;
  Machine machine = options_.machine;
  machine.ratio = req.ratio;

  Stopwatch timer;
  const RankedCandidate best =
      selectOptimal(req.algo, req.n, machine, req.topology, req.star);

  PlanAnswer answer;
  answer.shape = best.shape;
  answer.model = best.model;
  answer.voc = best.voc;
  answer.tier = req.tier;
  answer.servedTier = PlanTier::kFast;

  if (req.tier == PlanTier::kSearch) {
    if (consultBreaker && !breaker_.allowRequest()) {
      // Ladder rung 3: the breaker is open, serve the closed-form ranking
      // without attempting (or accounting) a search. No recordSuccess /
      // recordFailure here — the protocol only applies after a true
      // allowRequest().
      answer.degrade = DegradeReason::kBreakerOpen;
    } else if (cancel.cancelled()) {
      // The budget is gone before the batch could start: same rung, reached
      // via the deadline. This still counts against the breaker — a run of
      // these means tier B is hopeless at the current load.
      answer.degrade = DegradeReason::kNoTimeForSearch;
      if (consultBreaker) breaker_.recordFailure();
    } else {
      BatchOptions batch;
      batch.n = req.n;
      batch.ratio = req.ratio;
      batch.runs = req.searchRuns;
      batch.threads = options_.searchThreads;
      batch.seed = req.searchSeed;
      batch.cancel = cancel;
      batch.dfa.cancelCheckEvery = options_.cancelCheckEvery;

      double bestExec = 0.0;
      std::int64_t bestVoc = 0;
      bool any = false;
      int delivered = 0;
      const BatchSummary summary = runBatch(batch, [&](const BatchRun& run) {
        ++delivered;
        if (options_.onSearchRun) options_.onSearchRun(key, delivered);
        // A cancelled walk's partition is intact (pushes are transactional)
        // but it never reached an accept state; it is not search evidence.
        if (run.result.stop == DfaStop::kCancelled) return;
        const ModelResult m = evalModel(req.algo, run.result.final, machine,
                                        req.topology, req.star);
        if (!any || m.execSeconds < bestExec) {
          any = true;
          bestExec = m.execSeconds;
          bestVoc = run.result.final.volumeOfCommunication();
        }
        ++answer.searchCompleted;
      });
      answer.servedTier = PlanTier::kSearch;
      answer.searchRuns = req.searchRuns;
      answer.searchBestVoc = bestVoc;
      answer.searchBestExecSeconds = bestExec;
      // The search "confirms" the closed-form ranking when no condensed walk
      // modeled faster than the recommended candidate (the paper's §VII
      // outcome). An empty batch confirms nothing.
      answer.searchConfirmedCandidate =
          any && bestExec >= answer.model.execSeconds;
      if (summary.truncated()) {
        // Ladder rung 2: the deadline cancelled the batch mid-flight;
        // completed walks remain best-so-far evidence.
        answer.truncated = true;
        answer.degrade = DegradeReason::kTruncatedSearch;
      }
      if (consultBreaker) {
        if (summary.truncated() || cancel.cancelled())
          breaker_.recordFailure();
        else
          breaker_.recordSuccess();
      }
    }
  }

  answer.solveSeconds = timer.seconds();
  return answer;
}

PlanResponse Oracle::finishResponse(const CanonicalKey& key, PlanAnswer answer,
                                    bool hit, bool coalesced,
                                    const PlanCallOptions& call,
                                    double latencySeconds) {
  PlanResponse response;
  response.cacheHit = hit;
  response.coalesced = coalesced;
  response.latencySeconds = latencySeconds;
  response.key = key.text;
  if (call.deadline.expired()) {
    response.deadlineExceeded = true;
    // The caller must never see a post-deadline answer without a mark. The
    // mark goes on this response's copy only — the cached answer (if any)
    // stays pristine for on-time callers.
    if (answer.fullFidelity()) answer.degrade = DegradeReason::kLate;
  }
  switch (answer.degrade) {
    case DegradeReason::kNone:
      break;
    case DegradeReason::kTruncatedSearch:
      truncatedSearch_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeReason::kNoTimeForSearch:
      noTimeForSearch_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeReason::kBreakerOpen:
      breakerOpenServes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case DegradeReason::kLate:
      late_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (!answer.fullFidelity()) degraded_.fetch_add(1, std::memory_order_relaxed);
  response.answer = std::move(answer);
  if (hit) hitLatency_.record(latencySeconds);
  return response;
}

PlanResponse Oracle::plan(const PlanRequest& req,
                          const PlanCallOptions& call) {
  Stopwatch timer;
  const CanonicalKey key = canonicalize(req);

  // Cache hits are served unconditionally: they cost microseconds and are
  // exactly what admission control is trying to protect.
  if (std::optional<PlanAnswer> cached = cache_.tryGet(key))
    return finishResponse(key, *std::move(cached), /*hit=*/true,
                          /*coalesced=*/false, call, timer.seconds());

  AdmissionController::Permit permit(admission_, call.deadline);
  if (!permit.admitted()) {
    // Ladder rung 4: load-shed. No answer; the caller retries or gives up.
    shed_.fetch_add(1, std::memory_order_relaxed);
    PlanResponse response;
    response.shed = true;
    response.shedReason = permit.outcome() == AdmissionOutcome::kQueueFull
                              ? ShedReason::kQueueFull
                              : ShedReason::kAdmissionTimeout;
    response.deadlineExceeded = call.deadline.expired();
    response.latencySeconds = timer.seconds();
    response.key = key.text;
    return response;
  }

  const CancelToken solveCancel = call.cancel.withDeadline(call.deadline);
  const PlanCache::Outcome outcome = cache_.getOrCompute(
      key,
      [this, &key, &solveCancel]() {
        if (options_.onSolveStart) options_.onSolveStart(key);
        PlanAnswer answer =
            solveCanonical(key, solveCancel, /*consultBreaker=*/true);
        (answer.tier == PlanTier::kSearch ? tierBSolves_ : tierASolves_)
            .record(answer.solveSeconds);
        return answer;
      },
      call.deadline);

  if (outcome.timedOut) {
    // The coalesced wait expired before the producer delivered. Degrade to a
    // fresh closed-form answer (microseconds) rather than return nothing:
    // for a tier-A request that IS the full answer; for tier B it lands as
    // kNoTimeForSearch. The breaker is not consulted — this caller never
    // attempted a search.
    CancelToken spent;
    spent.requestCancel();
    PlanAnswer answer = solveCanonical(key, spent, /*consultBreaker=*/false);
    return finishResponse(key, std::move(answer), /*hit=*/false,
                          /*coalesced=*/true, call, timer.seconds());
  }

  return finishResponse(key, outcome.answer, outcome.hit, outcome.coalesced,
                        call, timer.seconds());
}

PlanAnswer Oracle::solveUncached(const PlanRequest& req) const {
  return solveCanonical(canonicalize(req), CancelToken(),
                        /*consultBreaker=*/false);
}

OracleStats Oracle::stats() const {
  OracleStats s;
  s.cache = cache_.counters();
  s.admission = admission_.counters();
  s.breaker = breaker_.counters();
  s.breakerState = breaker_.state();
  s.shed = shed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.truncatedSearch = truncatedSearch_.load(std::memory_order_relaxed);
  s.noTimeForSearch = noTimeForSearch_.load(std::memory_order_relaxed);
  s.breakerOpenServes = breakerOpenServes_.load(std::memory_order_relaxed);
  s.late = late_.load(std::memory_order_relaxed);
  s.hitLatency = hitLatency_.snapshot();
  s.tierASolves = tierASolves_.snapshot();
  s.tierBSolves = tierBSolves_.snapshot();
  return s;
}

std::size_t Oracle::saveSnapshot(const std::string& path) const {
  return savePlanCacheSnapshot(cache_, path);
}

SnapshotLoadReport Oracle::loadSnapshot(const std::string& path) {
  return loadPlanCacheSnapshot(cache_, path);
}

SnapshotLoadReport Oracle::tryLoadSnapshot(const std::string& path) {
  return tryLoadPlanCacheSnapshot(cache_, path);
}

SnapshotLoadReport Oracle::loadSnapshotSegment(std::istream& is) {
  return tryLoadPlanCacheSnapshot(cache_, is);
}

std::optional<PlanAnswer> Oracle::peekCached(const CanonicalKey& key) {
  return cache_.tryGet(key);
}

void Oracle::insertReplica(const std::string& keyText,
                           const PlanAnswer& answer) {
  // Replication obeys the same cacheability rule as the local cache: a
  // degraded answer is served once, never stored anywhere.
  if (!answer.fullFidelity()) return;
  cache_.insertWarm(keyText, answer);
}

std::vector<PlanCache::SnapshotEntry> Oracle::exportCacheEntries() const {
  return cache_.exportEntries();
}

}  // namespace pushpart
