#include "serve/oracle.hpp"

#include <utility>

#include "dfa/batch.hpp"
#include "model/optimal.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

Oracle::Oracle(OracleOptions options)
    : options_(std::move(options)),
      cache_(options_.cacheCapacity, options_.cacheShards) {}

PlanAnswer Oracle::solveCanonical(const CanonicalKey& key) const {
  const PlanRequest& req = key.request;
  Machine machine = options_.machine;
  machine.ratio = req.ratio;

  Stopwatch timer;
  const RankedCandidate best =
      selectOptimal(req.algo, req.n, machine, req.topology, req.star);

  PlanAnswer answer;
  answer.shape = best.shape;
  answer.model = best.model;
  answer.voc = best.voc;
  answer.tier = req.tier;

  if (req.tier == PlanTier::kSearch) {
    BatchOptions batch;
    batch.n = req.n;
    batch.ratio = req.ratio;
    batch.runs = req.searchRuns;
    batch.threads = options_.searchThreads;
    batch.seed = req.searchSeed;

    double bestExec = 0.0;
    std::int64_t bestVoc = 0;
    bool any = false;
    runBatch(batch, [&](const BatchRun& run) {
      const ModelResult m = evalModel(req.algo, run.result.final, machine,
                                      req.topology, req.star);
      if (!any || m.execSeconds < bestExec) {
        any = true;
        bestExec = m.execSeconds;
        bestVoc = run.result.final.volumeOfCommunication();
      }
      ++answer.searchCompleted;
    });
    answer.searchRuns = req.searchRuns;
    answer.searchBestVoc = bestVoc;
    answer.searchBestExecSeconds = bestExec;
    // The search "confirms" the closed-form ranking when no condensed walk
    // modeled faster than the recommended candidate (the paper's §VII
    // outcome). An empty batch confirms nothing.
    answer.searchConfirmedCandidate =
        any && bestExec >= answer.model.execSeconds;
  }

  answer.solveSeconds = timer.seconds();
  return answer;
}

PlanResponse Oracle::plan(const PlanRequest& req) {
  Stopwatch timer;
  const CanonicalKey key = canonicalize(req);

  const PlanCache::Outcome outcome =
      cache_.getOrCompute(key, [this, &key]() {
        if (options_.onSolveStart) options_.onSolveStart(key);
        PlanAnswer answer = solveCanonical(key);
        (answer.tier == PlanTier::kSearch ? tierBSolves_ : tierASolves_)
            .record(answer.solveSeconds);
        return answer;
      });

  PlanResponse response;
  response.answer = outcome.answer;
  response.cacheHit = outcome.hit;
  response.coalesced = outcome.coalesced;
  response.latencySeconds = timer.seconds();
  response.key = key.text;
  if (outcome.hit) hitLatency_.record(response.latencySeconds);
  return response;
}

PlanAnswer Oracle::solveUncached(const PlanRequest& req) const {
  return solveCanonical(canonicalize(req));
}

OracleStats Oracle::stats() const {
  OracleStats s;
  s.cache = cache_.counters();
  s.hitLatency = hitLatency_.snapshot();
  s.tierASolves = tierASolves_.snapshot();
  s.tierBSolves = tierBSolves_.snapshot();
  return s;
}

}  // namespace pushpart
