// Plan-request canonicalization for the partition-plan oracle.
//
// A PlanRequest asks the serving layer "which partition shape should these
// three processors use?". Many syntactically different requests are the same
// question: speed ratios are scale-free (6:3:3 ≡ 2:1:1), the R/S labels are
// interchangeable (the models are symmetric under relabeling the two
// non-fastest processors, provided a star hub is relabeled with them), the
// hub is irrelevant on a fully-connected network, and tier-A requests carry
// no search budget. canonicalize() folds every such request onto one
// canonical form — the cache key — so equivalent requests share one cache
// entry and one in-flight computation.
#pragma once

#include <cstdint>
#include <string>

#include "grid/ratio.hpp"
#include "model/algo.hpp"
#include "model/topology.hpp"

namespace pushpart {

/// Which answer path the caller wants.
enum class PlanTier {
  kFast = 0,    ///< Ranked canonical candidates only (model evaluation).
  kSearch = 1,  ///< Candidates cross-checked by a budgeted DFA batch search.
};

constexpr const char* planTierName(PlanTier t) {
  switch (t) {
    case PlanTier::kFast: return "fast";
    case PlanTier::kSearch: return "search";
  }
  return "?";
}

/// One question to the oracle. Machine constants (bandwidth, flop rate) are
/// oracle-level configuration, not per-request state: a cache is only
/// coherent for one machine model.
struct PlanRequest {
  int n = 100;                   ///< Matrix edge length.
  Ratio ratio{2, 1, 1};          ///< P_r : R_r : S_r relative speeds.
  Algo algo = Algo::kSCB;
  Topology topology = Topology::kFullyConnected;
  StarConfig star{};             ///< Hub; only meaningful under kStar.
  PlanTier tier = PlanTier::kFast;
  int searchRuns = 16;           ///< Tier-B budget: DFA walks to perform.
  std::uint64_t searchSeed = 1;  ///< Tier-B batch seed (reproducibility).

  friend bool operator==(const PlanRequest&, const PlanRequest&) = default;
};

/// A canonicalized request plus its serialized cache key.
struct CanonicalKey {
  PlanRequest request;  ///< The canonical form actually solved.
  std::string text;     ///< Human-readable key, unique per canonical form.
  std::uint64_t hash = 0;  ///< FNV-1a of text (shard selector).
};

/// Normalizes `req` into its canonical form and derives the cache key:
///   * ratio: R/S swapped so r >= s, then scaled so s == 1 (6:3:3 -> 2:1:1);
///     an R/S swap relabels a star hub with it; components are rounded to 6
///     significant decimals so float noise cannot split cache entries.
///   * topology: fully-connected forces the (irrelevant) hub to P.
///   * tier: kFast zeroes searchRuns and searchSeed (they don't affect the
///     answer); kSearch keeps both.
/// Throws std::invalid_argument on malformed requests (n <= 0, invalid
/// ratio, non-positive tier-B budget).
CanonicalKey canonicalize(const PlanRequest& req);

/// FNV-1a 64-bit hash (exposed for tests and the cache's shard choice).
std::uint64_t fnv1a(const std::string& text);

}  // namespace pushpart
