// The oracle's answer type, shared by both tiers.
#pragma once

#include <cstdint>
#include <string>

#include "family/family.hpp"
#include "model/models.hpp"
#include "serve/request.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

/// How an answer fell short of the requested tier under overload
/// (DESIGN.md §12's degradation ladder). kNone means full fidelity.
enum class DegradeReason {
  kNone = 0,
  kTruncatedSearch,  ///< Tier B started; the deadline cancelled it mid-batch.
  kNoTimeForSearch,  ///< Deadline left no budget for tier B at all.
  kBreakerOpen,      ///< Tier B short-circuited by the open circuit breaker.
  kLate,             ///< Full answer, but it completed after its deadline.
};

constexpr const char* degradeReasonName(DegradeReason r) {
  switch (r) {
    case DegradeReason::kNone: return "none";
    case DegradeReason::kTruncatedSearch: return "truncated-search";
    case DegradeReason::kNoTimeForSearch: return "no-time-for-search";
    case DegradeReason::kBreakerOpen: return "breaker-open";
    case DegradeReason::kLate: return "late";
  }
  return "?";
}

/// One resolved plan: the recommended canonical shape plus the modeled cost
/// evidence behind it. Cached verbatim — a cache hit returns the stored
/// answer bit-for-bit, including the wall time of the cold solve that
/// produced it (the *request* latency lives in PlanResponse). Only
/// full-fidelity answers are cached: a degraded or truncated answer is
/// served once and recomputed on the next request.
struct PlanAnswer {
  /// Best *canonical* shape for the request — always set, even when an
  /// extended family member is served (family/familyCandidate below), so
  /// shape-keyed consumers (atlas certificates, replication) stay coherent.
  CandidateShape shape = CandidateShape::kSquareCorner;
  ModelResult model;        ///< Modeled timing of the recommended partition.
  std::int64_t voc = 0;     ///< Volume of Communication of that partition.
  PlanTier tier = PlanTier::kFast;  ///< Tier the request asked for.
  /// Tier that actually produced evidence; <= tier. A degraded tier-B
  /// request that only got the closed-form ranking records kFast here.
  PlanTier servedTier = PlanTier::kFast;
  DegradeReason degrade = DegradeReason::kNone;
  /// Tier-B evidence is partial: the batch was cancelled mid-flight and
  /// searchCompleted < searchRuns walks finished.
  bool truncated = false;
  double solveSeconds = 0.0;  ///< Wall time of the underlying cold solve.

  /// True when the answer is exactly what an unhurried solve would produce —
  /// the cacheability predicate.
  bool fullFidelity() const {
    return degrade == DegradeReason::kNone && !truncated;
  }

  // Tier-B evidence (all zero for tier A): the budgeted DFA batch search
  // cross-checks the candidate ranking the way the paper's §VII experiments
  // validate §IX's shapes.
  // Lower-bound evidence (src/bounds): how far the served partition's VoC
  // sits above the scenario's memory-independent communication lower bound,
  // in percent (0 when the bound is met). Computed for every answer.
  double optimalityGapPct = 0.0;
  // Family evidence (src/family): which candidate family the served
  // partition came from and its registry token ("Square-Corner",
  // "layers:P/R-S:r", ...). Canonical unless the oracle ranked extended
  // families and one strictly beat every canonical shape — then model/voc
  // above are the family winner's while shape stays the canonical best.
  FamilyId family = FamilyId::kCanonical;
  std::string familyCandidate;

  int searchRuns = 0;        ///< Walks requested.
  int searchCompleted = 0;   ///< Walks that reached an accept state.
  std::int64_t searchBestVoc = 0;       ///< Best VoC among searched finals.
  double searchBestExecSeconds = 0.0;   ///< Best modeled time among finals.
  /// True when no searched partition modeled faster than the recommended
  /// candidate — the search *confirmed* the closed-form ranking.
  bool searchConfirmedCandidate = false;

  // Atlas evidence: the answer was served from the precomputed plan surface
  // (src/atlas) instead of a live tier-B batch. The shape/model/voc above
  // were still re-costed at the *exact* requested ratio (the certificate),
  // so the answer is deterministic and cacheable — atlasServed is a
  // provenance mark, not a degradation.
  bool atlasServed = false;
  /// The certificate gap the serve accepted: max of the winner re-cost gap
  /// and the surface interpolation gap, percent. Always <= the oracle's
  /// configured bound when atlasServed.
  double atlasCertGapPct = 0.0;
  int atlasI = -1;  ///< Grid cell the answer came from (-1 when unused).
  int atlasJ = -1;

  friend bool operator==(const PlanAnswer&, const PlanAnswer&) = default;
};

}  // namespace pushpart
