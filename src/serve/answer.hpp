// The oracle's answer type, shared by both tiers.
#pragma once

#include <cstdint>

#include "model/models.hpp"
#include "serve/request.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

/// One resolved plan: the recommended canonical shape plus the modeled cost
/// evidence behind it. Cached verbatim — a cache hit returns the stored
/// answer bit-for-bit, including the wall time of the cold solve that
/// produced it (the *request* latency lives in PlanResponse).
struct PlanAnswer {
  CandidateShape shape = CandidateShape::kSquareCorner;  ///< Recommendation.
  ModelResult model;        ///< Modeled timing of the recommended partition.
  std::int64_t voc = 0;     ///< Volume of Communication of that partition.
  PlanTier tier = PlanTier::kFast;  ///< Which tier produced the answer.
  double solveSeconds = 0.0;  ///< Wall time of the underlying cold solve.

  // Tier-B evidence (all zero for tier A): the budgeted DFA batch search
  // cross-checks the candidate ranking the way the paper's §VII experiments
  // validate §IX's shapes.
  int searchRuns = 0;        ///< Walks requested.
  int searchCompleted = 0;   ///< Walks that reached an accept state.
  std::int64_t searchBestVoc = 0;       ///< Best VoC among searched finals.
  double searchBestExecSeconds = 0.0;   ///< Best modeled time among finals.
  /// True when no searched partition modeled faster than the recommended
  /// candidate — the search *confirmed* the closed-form ranking.
  bool searchConfirmedCandidate = false;

  friend bool operator==(const PlanAnswer&, const PlanAnswer&) = default;
};

}  // namespace pushpart
