#include "serve/request.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace pushpart {

namespace {

/// Rounds to 6 significant decimals via text so the canonical ratio stored
/// in the key struct is exactly the value the key text spells out (float
/// noise from ratio division cannot split otherwise-equal cache entries).
double roundForKey(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::strtod(buf, nullptr);
}

}  // namespace

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

CanonicalKey canonicalize(const PlanRequest& req) {
  if (req.n <= 0)
    throw std::invalid_argument("PlanRequest: n must be positive, got " +
                                std::to_string(req.n));
  if (!(req.ratio.p > 0 && req.ratio.r > 0 && req.ratio.s > 0))
    throw std::invalid_argument("PlanRequest: ratio speeds must be positive (" +
                                req.ratio.str() + ")");
  if (!(req.ratio.p >= req.ratio.r && req.ratio.p >= req.ratio.s))
    throw std::invalid_argument(
        "PlanRequest: P must be the (equal-)fastest processor (" +
        req.ratio.str() + ")");
  if (req.tier == PlanTier::kSearch && req.searchRuns <= 0)
    throw std::invalid_argument(
        "PlanRequest: tier-B search budget must be positive, got runs=" +
        std::to_string(req.searchRuns));

  PlanRequest canon = req;

  // R and S are interchangeable labels: order them r >= s, relabeling a star
  // hub along with them so the request describes the same physical machine.
  if (canon.ratio.r < canon.ratio.s) {
    std::swap(canon.ratio.r, canon.ratio.s);
    if (canon.star.hub == Proc::R)
      canon.star.hub = Proc::S;
    else if (canon.star.hub == Proc::S)
      canon.star.hub = Proc::R;
  }

  // Scale-free speeds: fix s = 1 (the paper's normalization), then round so
  // 6:3:3 and 2:1:1 produce byte-identical keys.
  canon.ratio = canon.ratio.normalized();
  canon.ratio.p = roundForKey(canon.ratio.p);
  canon.ratio.r = roundForKey(canon.ratio.r);
  canon.ratio.s = 1.0;

  // The hub only matters on a star network.
  if (canon.topology == Topology::kFullyConnected) canon.star.hub = Proc::P;

  // Tier A ignores the search budget entirely.
  if (canon.tier == PlanTier::kFast) {
    canon.searchRuns = 0;
    canon.searchSeed = 0;
  }

  CanonicalKey key;
  key.request = canon;
  key.text = "plan/v1|n=" + std::to_string(canon.n) +
             "|ratio=" + canon.ratio.str() +
             "|algo=" + algoName(canon.algo) +
             "|topo=" + topologyName(canon.topology) +
             "|hub=" + std::string(1, procName(canon.star.hub)) +
             "|tier=" + planTierName(canon.tier) +
             "|runs=" + std::to_string(canon.searchRuns) +
             "|seed=" + std::to_string(canon.searchSeed);
  key.hash = fnv1a(key.text);
  return key;
}

}  // namespace pushpart
