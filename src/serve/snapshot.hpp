// Warm-restart persistence for the PlanCache.
//
// A restarted oracle starts cold: every hot key pays a full solve again.
// Snapshots fix that with a versioned, per-entry-checksummed text file:
//
//   pushpart-plancache v1
//   entries <count>
//   e <fnv1a-16-hex> <key-text> <16 numeric answer fields>
//   ...
//
// Writing is crash-safe: the file is written to "<path>.tmp" and atomically
// renamed over the destination, so a crash mid-write leaves the previous
// snapshot intact. Reading is corruption-tolerant per entry: a line whose
// checksum, field count, or field ranges don't verify is skipped (counted),
// and every other entry still loads — a truncated tail or a flipped byte
// costs one entry, not the snapshot. A wrong magic/version line refuses the
// whole file with std::runtime_error: silently guessing at a future format
// would be worse than starting cold.
//
// Doubles are printed with %.17g, so save -> load -> save is byte-identical
// and a restored answer is bit-for-bit the one that was cached.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "serve/cache.hpp"

namespace pushpart {

struct SnapshotLoadReport {
  std::size_t loaded = 0;   ///< Entries restored into the cache.
  std::size_t skipped = 0;  ///< Corrupt/unparseable entries left behind.
};

/// Serializes every resident cache entry. Stream variants are exposed for
/// tests; the path variant writes <path>.tmp then renames atomically.
/// Returns the number of entries written. Throws std::runtime_error on I/O
/// failure (the destination is untouched in that case).
std::size_t savePlanCacheSnapshot(const PlanCache& cache, std::ostream& os);
std::size_t savePlanCacheSnapshot(const PlanCache& cache,
                                  const std::string& path);

/// Restores entries via PlanCache::insertWarm. Corrupt entries are skipped
/// and counted; an unreadable file or a magic/version mismatch throws
/// std::runtime_error and restores nothing.
SnapshotLoadReport loadPlanCacheSnapshot(PlanCache& cache, std::istream& is);
SnapshotLoadReport loadPlanCacheSnapshot(PlanCache& cache,
                                         const std::string& path);

}  // namespace pushpart
