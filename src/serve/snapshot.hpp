// Warm-restart persistence for the PlanCache.
//
// A restarted oracle starts cold: every hot key pays a full solve again.
// Snapshots fix that with a versioned, per-entry-checksummed text file:
//
//   pushpart-plancache v3
//   entries <count>
//   e <fnv1a-16-hex> <key-text> <23 answer fields>
//   ...
//
// Writing is crash-safe: the file is written to "<path>.tmp" and atomically
// renamed over the destination, so a crash mid-write leaves the previous
// snapshot intact. Reading is corruption-tolerant per entry: a line whose
// checksum, field count, or field ranges don't verify is skipped (counted),
// and every other entry still loads — a truncated tail or a flipped byte
// costs one entry, not the snapshot. A wrong magic/version line refuses the
// whole file: silently guessing at a future format would be worse than
// starting cold. Every outcome — loaded, skipped, version-refused — is
// counted in the SnapshotLoadReport so callers (the CLI's --snapshot
// restore, the cluster's rebalance state transfer) can assert on exactly
// what happened instead of trusting a silent partial load.
//
// The same format doubles as the cluster's state-transfer wire format:
// savePlanCacheSegment serializes an arbitrary entry subset (one rebalance
// chunk) as a complete snapshot document, which the receiving node loads
// through the ordinary corruption-checked path.
//
// Doubles are printed with %.17g, so save -> load -> save is byte-identical
// and a restored answer is bit-for-bit the one that was cached.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/cache.hpp"

namespace pushpart {

struct SnapshotLoadReport {
  std::size_t loaded = 0;   ///< Entries restored into the cache.
  std::size_t skipped = 0;  ///< Corrupt/unparseable entries left behind.
  /// The magic/version line did not match: nothing was loaded. Set by the
  /// try-variants; the throwing variants turn it into std::runtime_error.
  bool versionRefused = false;
  /// Human-readable failure (version refusal or unreadable file); empty on
  /// success.
  std::string error;

  /// The file was accepted (right version, readable). Skipped entries do
  /// not fail ok(); callers that need a byte-perfect transfer check clean().
  bool ok() const { return !versionRefused && error.empty(); }
  /// Accepted and every entry verified: what cluster state transfer asserts.
  bool clean() const { return ok() && skipped == 0; }
};

/// Serializes every resident cache entry. Stream variants are exposed for
/// tests; the path variant writes <path>.tmp then renames atomically.
/// Returns the number of entries written. Throws std::runtime_error on I/O
/// failure (the destination is untouched in that case).
std::size_t savePlanCacheSnapshot(const PlanCache& cache, std::ostream& os);
std::size_t savePlanCacheSnapshot(const PlanCache& cache,
                                  const std::string& path);

/// Serializes an explicit entry list (e.g. one rebalance segment) in the
/// snapshot format. Returns entries written; throws std::runtime_error on
/// stream failure.
std::size_t savePlanCacheSegment(
    const std::vector<PlanCache::SnapshotEntry>& entries, std::ostream& os);

/// Restores entries via PlanCache::insertWarm. Corrupt entries are skipped
/// and counted; an unreadable file or a magic/version mismatch throws
/// std::runtime_error and restores nothing.
SnapshotLoadReport loadPlanCacheSnapshot(PlanCache& cache, std::istream& is);
SnapshotLoadReport loadPlanCacheSnapshot(PlanCache& cache,
                                         const std::string& path);

/// Non-throwing variants: a version mismatch or unreadable file comes back
/// as a report with versionRefused/error set (and nothing loaded) instead of
/// an exception — what serving paths that must survive a bad snapshot use.
SnapshotLoadReport tryLoadPlanCacheSnapshot(PlanCache& cache,
                                            std::istream& is);
SnapshotLoadReport tryLoadPlanCacheSnapshot(PlanCache& cache,
                                            const std::string& path);

}  // namespace pushpart
