#include "serve/admission.hpp"

#include <chrono>
#include <stdexcept>

namespace pushpart {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.maxConcurrency < 0)
    throw std::invalid_argument(
        "AdmissionController: maxConcurrency must be >= 0 (0 = unlimited)");
  if (options_.maxQueue < 0)
    throw std::invalid_argument(
        "AdmissionController: maxQueue must be >= 0");
}

AdmissionOutcome AdmissionController::acquire(const Deadline& deadline) {
  if (!enabled()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++admitted_;
    ++inUse_;
    return AdmissionOutcome::kAdmitted;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (inUse_ < options_.maxConcurrency) {
    ++inUse_;
    ++admitted_;
    return AdmissionOutcome::kAdmitted;
  }
  if (queued_ >= options_.maxQueue) {
    ++shedQueueFull_;
    return AdmissionOutcome::kQueueFull;
  }

  ++queued_;
  const auto freeSlot = [&]() { return inUse_ < options_.maxConcurrency; };
  bool gotSlot = false;
  if (deadline.isUnlimited()) {
    slotFreed_.wait(lock, freeSlot);
    gotSlot = true;
  } else {
    // The remaining budget is applied as a wall-time bound; an
    // already-expired deadline degenerates to a zero-length wait.
    gotSlot = slotFreed_.wait_for(
        lock, std::chrono::duration<double>(deadline.remainingSeconds()),
        freeSlot);
  }
  --queued_;
  if (!gotSlot) {
    ++shedTimeout_;
    return AdmissionOutcome::kTimedOut;
  }
  ++inUse_;
  ++admitted_;
  return AdmissionOutcome::kAdmitted;
}

void AdmissionController::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inUse_;
  }
  slotFreed_.notify_one();
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.admitted = admitted_;
  c.shedQueueFull = shedQueueFull_;
  c.shedTimeout = shedTimeout_;
  c.inUse = inUse_;
  c.queued = queued_;
  return c;
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  if (options_.failureThreshold < 0)
    throw std::invalid_argument(
        "CircuitBreaker: failureThreshold must be >= 0 (0 = disabled)");
  if (options_.openSeconds < 0.0)
    throw std::invalid_argument("CircuitBreaker: openSeconds must be >= 0");
}

const Clock& CircuitBreaker::clock() const {
  return options_.clock != nullptr ? *options_.clock : Clock::steady();
}

bool CircuitBreaker::allowRequest() {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock().nowSeconds() - openedAt_ >= options_.openSeconds) {
        state_ = BreakerState::kHalfOpen;
        probeInFlight_ = true;
        ++probes_;
        return true;
      }
      ++shortCircuited_;
      return false;
    case BreakerState::kHalfOpen:
      if (!probeInFlight_) {  // previous probe resolved without closing
        probeInFlight_ = true;
        ++probes_;
        return true;
      }
      ++shortCircuited_;
      return false;
  }
  return true;
}

void CircuitBreaker::recordSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = BreakerState::kClosed;
  consecutiveFailures_ = 0;
  probeInFlight_ = false;
}

void CircuitBreaker::recordFailure() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe busted its deadline too: straight back to open.
    state_ = BreakerState::kOpen;
    openedAt_ = clock().nowSeconds();
    probeInFlight_ = false;
    ++trips_;
    return;
  }
  ++consecutiveFailures_;
  if (state_ == BreakerState::kClosed &&
      consecutiveFailures_ >= options_.failureThreshold) {
    state_ = BreakerState::kOpen;
    openedAt_ = clock().nowSeconds();
    ++trips_;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreaker::Counters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.trips = trips_;
  c.probes = probes_;
  c.shortCircuited = shortCircuited_;
  c.consecutiveFailures = consecutiveFailures_;
  return c;
}

}  // namespace pushpart
