// Sharded LRU result cache with in-flight request coalescing.
//
// The serving layer's hot path: map a canonical key to its PlanAnswer while
// (a) bounding memory with per-shard LRU eviction and (b) guaranteeing that
// concurrent identical requests trigger exactly one underlying solve — the
// first requester computes, everyone else blocks on a shared future of the
// same computation ("singleflight"). Shards are selected by the key's FNV
// hash; each shard has its own mutex, so unrelated keys never contend.
//
// A solve that throws propagates the exception to the initiating caller and
// every coalesced waiter, and caches nothing: the next request for that key
// retries the computation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/answer.hpp"
#include "serve/request.hpp"

namespace pushpart {

class PlanCache {
 public:
  /// `capacity` answers total, spread over `shards` independently-locked
  /// shards (each holds at least one entry). Throws std::invalid_argument
  /// when capacity or shards is zero.
  PlanCache(std::size_t capacity, std::size_t shards);

  /// How a lookup was satisfied.
  struct Outcome {
    PlanAnswer answer;
    bool hit = false;        ///< Served from the cache, no solve.
    bool coalesced = false;  ///< Waited on another thread's in-flight solve.
  };

  /// Returns the cached answer for `key`, or runs `solve` to produce (and
  /// cache) it. Concurrent calls with the same key while a solve is in
  /// flight block on that solve's result instead of recomputing.
  Outcome getOrCompute(const CanonicalKey& key,
                       const std::function<PlanAnswer()>& solve);

  /// Monotonic counters across the cache's lifetime.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;     ///< Lookups that ran the solve themselves.
    std::uint64_t coalesced = 0;  ///< Lookups that joined an in-flight solve.
    std::uint64_t evictions = 0;
    std::size_t entries = 0;      ///< Current resident answers.
  };
  Counters counters() const;

  /// Drops every cached entry (in-flight solves are unaffected; they insert
  /// into the emptied cache when they land). Counters keep accumulating.
  void clear();

 private:
  struct Entry {
    std::string key;
    PlanAnswer answer;
  };
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    /// Solves currently running, by key; waiters share the future.
    std::unordered_map<std::string, std::shared_future<PlanAnswer>> inflight;
  };

  Shard& shardFor(const CanonicalKey& key);

  std::size_t perShardCapacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace pushpart
