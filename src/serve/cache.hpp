// Sharded LRU result cache with in-flight request coalescing.
//
// The serving layer's hot path: map a canonical key to its PlanAnswer while
// (a) bounding memory with per-shard LRU eviction and (b) guaranteeing that
// concurrent identical requests trigger exactly one underlying solve — the
// first requester computes, everyone else blocks on a shared future of the
// same computation ("singleflight"). Shards are selected by the key's FNV
// hash; each shard has its own mutex, so unrelated keys never contend.
//
// A solve that throws propagates the exception to the initiating caller and
// every coalesced waiter, and caches nothing: the next request for that key
// retries the computation.
//
// Two overload-resilience rules (DESIGN.md §12) live here:
//   * only full-fidelity answers are inserted — a deadline-degraded or
//     truncated answer is handed to its waiters but never cached, so the
//     next request retries at full quality;
//   * a coalesced waiter's wait is bounded by the caller's Deadline. If the
//     producer is slow — or dead — the waiter escapes with timedOut set
//     instead of blocking forever, and the serving layer degrades.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/answer.hpp"
#include "serve/request.hpp"
#include "support/deadline.hpp"

namespace pushpart {

class PlanCache {
 public:
  /// `capacity` answers total, spread over `shards` independently-locked
  /// shards (each holds at least one entry). Throws std::invalid_argument
  /// when capacity or shards is zero.
  PlanCache(std::size_t capacity, std::size_t shards);

  /// How a lookup was satisfied.
  struct Outcome {
    PlanAnswer answer;
    bool hit = false;        ///< Served from the cache, no solve.
    bool coalesced = false;  ///< Waited on another thread's in-flight solve.
    /// The bounded coalesced wait expired before the producer delivered;
    /// `answer` is meaningless and the caller must degrade or retry.
    bool timedOut = false;
  };

  /// Returns the cached answer for `key`, or runs `solve` to produce (and
  /// cache) it. Concurrent calls with the same key while a solve is in
  /// flight block on that solve's result instead of recomputing — but never
  /// past `deadline`: a waiter whose deadline expires returns with
  /// Outcome.timedOut set (the producer's eventual answer still lands in the
  /// cache if it is full fidelity). Answers for which
  /// PlanAnswer::fullFidelity() is false are delivered but not cached.
  Outcome getOrCompute(const CanonicalKey& key,
                       const std::function<PlanAnswer()>& solve,
                       const Deadline& deadline = Deadline::unlimited());

  /// Lock-and-return peek: the cached answer for `key` (refreshing its LRU
  /// position and counting a hit), or nullopt without counting anything.
  /// Never waits on in-flight solves.
  std::optional<PlanAnswer> tryGet(const CanonicalKey& key);

  /// Drops the entry for `key`, if resident, so it can never be served
  /// again — the staleness hook for drift-adaptive serving (DESIGN.md §16).
  /// Returns whether an entry was actually dropped; a drop counts one
  /// staleInvalidation. An in-flight solve for the key is unaffected (its
  /// eventual full-fidelity answer re-inserts: it is fresh by definition —
  /// it was computed after the invalidation decision).
  bool invalidate(const CanonicalKey& key);

  /// Monotonic counters across the cache's lifetime.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;     ///< Lookups that ran the solve themselves.
    std::uint64_t coalesced = 0;  ///< Lookups that joined an in-flight solve.
    std::uint64_t evictions = 0;
    std::uint64_t waitTimeouts = 0;  ///< Coalesced waits that hit their deadline.
    std::uint64_t uncacheable = 0;   ///< Solves delivered but not cached (degraded).
    std::uint64_t staleInvalidations = 0;  ///< Entries dropped via invalidate().
    std::size_t entries = 0;      ///< Current resident answers.
  };
  Counters counters() const;

  /// One resident (key, answer) pair, as exported for snapshots.
  struct SnapshotEntry {
    std::string key;
    PlanAnswer answer;
  };

  /// Every resident entry in a deterministic order: shard by shard, least
  /// recently used first (so replaying the list through insertWarm rebuilds
  /// identical per-shard recency). In-flight solves are not included.
  std::vector<SnapshotEntry> exportEntries() const;

  /// Inserts a restored entry at the most-recent end of its shard, evicting
  /// as needed. Counts neither hit nor miss (restores are not traffic);
  /// evictions it causes are counted. `keyText` must be a canonical key's
  /// text (its FNV-1a hash selects the shard).
  void insertWarm(const std::string& keyText, const PlanAnswer& answer);

  /// Drops every cached entry (in-flight solves are unaffected; they insert
  /// into the emptied cache when they land). Counters keep accumulating.
  void clear();

 private:
  struct Entry {
    std::string key;
    PlanAnswer answer;
  };
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    /// Solves currently running, by key; waiters share the future.
    std::unordered_map<std::string, std::shared_future<PlanAnswer>> inflight;
  };

  Shard& shardFor(const CanonicalKey& key);
  Shard& shardForHash(std::uint64_t hash);
  /// Inserts into a locked shard's LRU front and evicts past capacity.
  void insertLocked(Shard& shard, const std::string& keyText,
                    const PlanAnswer& answer);

  std::size_t perShardCapacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> waitTimeouts_{0};
  std::atomic<std::uint64_t> uncacheable_{0};
  std::atomic<std::uint64_t> staleInvalidations_{0};
};

}  // namespace pushpart
