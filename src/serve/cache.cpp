#include "serve/cache.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace pushpart {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0)
    throw std::invalid_argument("PlanCache: capacity must be positive");
  if (shards == 0)
    throw std::invalid_argument("PlanCache: shard count must be positive");
  if (shards > capacity) shards = capacity;  // every shard holds >= 1 entry
  perShardCapacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

PlanCache::Shard& PlanCache::shardFor(const CanonicalKey& key) {
  return shardForHash(key.hash);
}

PlanCache::Shard& PlanCache::shardForHash(std::uint64_t hash) {
  return *shards_[hash % shards_.size()];
}

void PlanCache::insertLocked(Shard& shard, const std::string& keyText,
                             const PlanAnswer& answer) {
  shard.lru.push_front(Entry{keyText, answer});
  shard.index[keyText] = shard.lru.begin();
  while (shard.lru.size() > perShardCapacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<PlanAnswer> PlanCache::tryGet(const CanonicalKey& key) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key.text);
  if (it == shard.index.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->answer;
}

bool PlanCache::invalidate(const CanonicalKey& key) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key.text);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  staleInvalidations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PlanCache::Outcome PlanCache::getOrCompute(
    const CanonicalKey& key, const std::function<PlanAnswer()>& solve,
    const Deadline& deadline) {
  Shard& shard = shardFor(key);

  std::shared_future<PlanAnswer> wait;
  std::promise<PlanAnswer> mine;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.index.find(key.text); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Outcome{it->second->answer, /*hit=*/true, /*coalesced=*/false};
    }
    if (auto it = shard.inflight.find(key.text); it != shard.inflight.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      wait = it->second;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      shard.inflight.emplace(key.text, mine.get_future().share());
    }
  }

  if (wait.valid()) {
    // Joined someone else's solve. Block no longer than the deadline allows:
    // a stuck (or dead) producer must not take its waiters down with it.
    // Note the bound is a real duration — with an injected FakeClock the
    // deadline's *remaining* budget is still honoured as wall time.
    if (!deadline.isUnlimited()) {
      const auto budget =
          std::chrono::duration<double>(deadline.remainingSeconds());
      if (wait.wait_for(budget) != std::future_status::ready) {
        waitTimeouts_.fetch_add(1, std::memory_order_relaxed);
        Outcome out;
        out.coalesced = true;
        out.timedOut = true;
        return out;
      }
    }
    // get() rethrows the producer's failure, exactly as before.
    return Outcome{wait.get(), /*hit=*/false, /*coalesced=*/true};
  }

  // We own the solve. Run it unlocked so other shards — and other keys in
  // this shard — keep serving.
  try {
    PlanAnswer answer = solve();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key.text);
      // A clear() may have raced us, but no other thread can have inserted
      // this key (they'd have coalesced); insert fresh. Degraded answers are
      // delivered to waiters but never cached: the next request retries at
      // full quality.
      if (answer.fullFidelity()) {
        insertLocked(shard, key.text, answer);
      } else {
        uncacheable_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    mine.set_value(answer);
    return Outcome{std::move(answer), /*hit=*/false, /*coalesced=*/false};
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key.text);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
}

PlanCache::Counters PlanCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.waitTimeouts = waitTimeouts_.load(std::memory_order_relaxed);
  c.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  c.staleInvalidations = staleInvalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    c.entries += shard->lru.size();
  }
  return c;
}

std::vector<PlanCache::SnapshotEntry> PlanCache::exportEntries() const {
  std::vector<SnapshotEntry> entries;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // Least recently used first: replaying through insertWarm (which pushes
    // to the MRU end) reproduces this shard's recency order exactly.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it)
      entries.push_back(SnapshotEntry{it->key, it->answer});
  }
  return entries;
}

void PlanCache::insertWarm(const std::string& keyText,
                           const PlanAnswer& answer) {
  Shard& shard = shardForHash(fnv1a(keyText));
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto it = shard.index.find(keyText); it != shard.index.end()) {
    // Duplicate restore: refresh in place rather than double-insert.
    it->second->answer = answer;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  insertLocked(shard, keyText, answer);
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace pushpart
