#include "serve/cache.hpp"

#include <stdexcept>
#include <utility>

namespace pushpart {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0)
    throw std::invalid_argument("PlanCache: capacity must be positive");
  if (shards == 0)
    throw std::invalid_argument("PlanCache: shard count must be positive");
  if (shards > capacity) shards = capacity;  // every shard holds >= 1 entry
  perShardCapacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

PlanCache::Shard& PlanCache::shardFor(const CanonicalKey& key) {
  return *shards_[key.hash % shards_.size()];
}

PlanCache::Outcome PlanCache::getOrCompute(
    const CanonicalKey& key, const std::function<PlanAnswer()>& solve) {
  Shard& shard = shardFor(key);

  std::shared_future<PlanAnswer> wait;
  std::promise<PlanAnswer> mine;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.index.find(key.text); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Outcome{it->second->answer, /*hit=*/true, /*coalesced=*/false};
    }
    if (auto it = shard.inflight.find(key.text); it != shard.inflight.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      wait = it->second;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      shard.inflight.emplace(key.text, mine.get_future().share());
    }
  }

  if (wait.valid())  // joined someone else's solve; get() rethrows failures
    return Outcome{wait.get(), /*hit=*/false, /*coalesced=*/true};

  // We own the solve. Run it unlocked so other shards — and other keys in
  // this shard — keep serving.
  try {
    PlanAnswer answer = solve();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key.text);
      // A clear() may have raced us, but no other thread can have inserted
      // this key (they'd have coalesced); insert fresh.
      shard.lru.push_front(Entry{key.text, answer});
      shard.index[key.text] = shard.lru.begin();
      while (shard.lru.size() > perShardCapacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    mine.set_value(answer);
    return Outcome{std::move(answer), /*hit=*/false, /*coalesced=*/false};
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key.text);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
}

PlanCache::Counters PlanCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    c.entries += shard->lru.size();
  }
  return c;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace pushpart
