// Admission control for the plan oracle: a bounded concurrency/queue
// limiter plus a tier-B circuit breaker.
//
// Under overload the worst failure mode is the unbounded queue: every
// request eventually gets served, all of them too late to matter. The
// AdmissionController caps how many requests may solve concurrently and how
// many may wait for a slot; everything beyond that is shed immediately
// ("load-shed rejection", the bottom rung of DESIGN.md §12's ladder).
// Waiting is timeout-aware — a queued request gives up when its deadline
// expires instead of being served posthumously.
//
// The CircuitBreaker protects the expensive tier (the DFA search) the
// classic way: consecutive deadline busts trip it open, tier-B work is
// short-circuited to the closed-form tier while open, and after a cool-down
// a single half-open probe decides whether to close again. The clock is
// injectable so tests drive the cool-down deterministically.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <mutex>

#include "support/deadline.hpp"

namespace pushpart {

struct AdmissionOptions {
  /// Concurrent in-flight requests allowed past admission. 0 disables
  /// admission control entirely (every acquire admits immediately).
  int maxConcurrency = 0;
  /// Requests allowed to wait for a slot when all are busy; arrivals beyond
  /// this are shed with kQueueFull. 0 = no waiting room at all.
  int maxQueue = 16;
};

enum class AdmissionOutcome {
  kAdmitted = 0,
  kQueueFull,  ///< Concurrency and waiting room both exhausted: shed.
  kTimedOut,   ///< Waited, but the deadline expired before a slot freed.
};

constexpr const char* admissionOutcomeName(AdmissionOutcome o) {
  switch (o) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kQueueFull: return "queue-full";
    case AdmissionOutcome::kTimedOut: return "timed-out";
  }
  return "?";
}

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Tries to take a slot, waiting (bounded by `deadline`) in the queue if
  /// none is free. Every kAdmitted must be paired with exactly one
  /// release(). The wait bound is the deadline's remaining budget applied
  /// as wall time.
  AdmissionOutcome acquire(const Deadline& deadline);

  void release();

  /// Scoped acquire: admitted() tells whether the slot was taken; the
  /// destructor releases it if so.
  class Permit {
   public:
    Permit(AdmissionController& controller, const Deadline& deadline)
        : controller_(controller), outcome_(controller.acquire(deadline)) {}
    ~Permit() {
      if (admitted()) controller_.release();
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;

    bool admitted() const { return outcome_ == AdmissionOutcome::kAdmitted; }
    AdmissionOutcome outcome() const { return outcome_; }

   private:
    AdmissionController& controller_;
    AdmissionOutcome outcome_;
  };

  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedTimeout = 0;
    int inUse = 0;   ///< Currently admitted.
    int queued = 0;  ///< Currently waiting.
  };
  Counters counters() const;

  bool enabled() const { return options_.maxConcurrency > 0; }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable slotFreed_;
  int inUse_ = 0;
  int queued_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shedQueueFull_ = 0;
  std::uint64_t shedTimeout_ = 0;
};

struct BreakerOptions {
  /// Consecutive tier-B deadline busts (truncated or late solves) that trip
  /// the breaker open. 0 disables the breaker (always closed).
  int failureThreshold = 5;
  /// Cool-down: how long the breaker stays open before letting one
  /// half-open probe through.
  double openSeconds = 5.0;
  /// Time source for the cool-down (tests inject a FakeClock).
  const Clock* clock = nullptr;  ///< nullptr = Clock::steady().
};

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

constexpr const char* breakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

/// Thread-safe consecutive-failure circuit breaker. Protocol: call
/// allowRequest() before attempting the protected work; when it returns
/// true, follow up with exactly one recordSuccess() or recordFailure().
/// When it returns false, degrade without attempting.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Closed: always true. Open: false until the cool-down elapses, then the
  /// breaker half-opens and admits a single probe. Half-open: false while
  /// that probe is outstanding.
  bool allowRequest();

  /// The protected work completed in budget: closes the breaker and resets
  /// the failure run.
  void recordSuccess();

  /// The protected work busted its deadline: lengthens the failure run,
  /// trips the breaker at the threshold, and re-opens on a failed probe.
  void recordFailure();

  BreakerState state() const;

  struct Counters {
    std::uint64_t trips = 0;           ///< Closed/half-open -> open edges.
    std::uint64_t probes = 0;          ///< Half-open attempts admitted.
    std::uint64_t shortCircuited = 0;  ///< allowRequest() == false answers.
    int consecutiveFailures = 0;
  };
  Counters counters() const;

  bool enabled() const { return options_.failureThreshold > 0; }

 private:
  const Clock& clock() const;

  BreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutiveFailures_ = 0;
  double openedAt_ = 0.0;
  bool probeInFlight_ = false;
  std::uint64_t trips_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t shortCircuited_ = 0;
};

}  // namespace pushpart
