#include "serve/snapshot.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "shapes/candidates.hpp"

namespace pushpart {

namespace {

// v2 added the atlas provenance fields (atlasServed, atlasCertGapPct,
// atlasI, atlasJ); v3 added the family/lower-bound evidence (family,
// familyCandidate, optimalityGapPct). Older files are refused — a silently
// restored answer missing its provenance would misreport the sources
// breakdown (or claim a zero gap it never computed) forever.
constexpr const char* kMagic = "pushpart-plancache v3";

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The answer's 23 fields, space-separated, in a fixed order the loader
/// mirrors. Booleans and enums travel as integers; the familyCandidate
/// token is space-free by construction (serialized as "-" when empty).
std::string payloadFor(const PlanCache::SnapshotEntry& entry) {
  const PlanAnswer& a = entry.answer;
  std::ostringstream os;
  os << entry.key << ' ' << static_cast<int>(a.shape) << ' '
     << formatDouble(a.model.commSeconds) << ' '
     << formatDouble(a.model.overlapSeconds) << ' '
     << formatDouble(a.model.compSeconds) << ' '
     << formatDouble(a.model.execSeconds) << ' ' << a.voc << ' '
     << static_cast<int>(a.tier) << ' ' << static_cast<int>(a.servedTier)
     << ' ' << static_cast<int>(a.degrade) << ' ' << (a.truncated ? 1 : 0)
     << ' ' << formatDouble(a.solveSeconds) << ' ' << a.searchRuns << ' '
     << a.searchCompleted << ' ' << a.searchBestVoc << ' '
     << formatDouble(a.searchBestExecSeconds) << ' '
     << (a.searchConfirmedCandidate ? 1 : 0) << ' '
     << (a.atlasServed ? 1 : 0) << ' ' << formatDouble(a.atlasCertGapPct)
     << ' ' << a.atlasI << ' ' << a.atlasJ << ' '
     << static_cast<int>(a.family) << ' '
     << (a.familyCandidate.empty() ? "-" : a.familyCandidate) << ' '
     << formatDouble(a.optimalityGapPct);
  return os.str();
}

std::string checksumHex(const std::string& payload) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(payload)));
  return buf;
}

/// Parses one payload back into an entry. Returns false on any field-count,
/// numeric-format or enum-range problem — the caller skips the entry.
bool parsePayload(const std::string& payload,
                  PlanCache::SnapshotEntry& entry) {
  std::istringstream is(payload);
  int shape = -1, tier = -1, servedTier = -1, degrade = -1, truncated = -1,
      confirmed = -1, atlasServed = -1, family = -1;
  std::string familyCandidate;
  PlanAnswer a;
  if (!(is >> entry.key >> shape >> a.model.commSeconds >>
        a.model.overlapSeconds >> a.model.compSeconds >>
        a.model.execSeconds >> a.voc >> tier >> servedTier >> degrade >>
        truncated >> a.solveSeconds >> a.searchRuns >> a.searchCompleted >>
        a.searchBestVoc >> a.searchBestExecSeconds >> confirmed >>
        atlasServed >> a.atlasCertGapPct >> a.atlasI >> a.atlasJ >> family >>
        familyCandidate >> a.optimalityGapPct))
    return false;
  std::string trailing;
  if (is >> trailing) return false;
  if (shape < 0 || shape >= kNumCandidates) return false;
  if (tier < 0 || tier > 1 || servedTier < 0 || servedTier > 1) return false;
  if (degrade < 0 ||
      degrade > static_cast<int>(DegradeReason::kLate))
    return false;
  if (truncated < 0 || truncated > 1 || confirmed < 0 || confirmed > 1)
    return false;
  if (atlasServed < 0 || atlasServed > 1) return false;
  if (!(a.atlasCertGapPct >= 0.0)) return false;
  if (a.atlasI < -1 || a.atlasJ < -1) return false;
  if (family < 0 || family >= kNumFamilies) return false;
  if (!(a.optimalityGapPct >= 0.0)) return false;
  a.family = static_cast<FamilyId>(family);
  a.familyCandidate = familyCandidate == "-" ? "" : familyCandidate;
  a.shape = static_cast<CandidateShape>(shape);
  a.tier = static_cast<PlanTier>(tier);
  a.servedTier = static_cast<PlanTier>(servedTier);
  a.degrade = static_cast<DegradeReason>(degrade);
  a.truncated = truncated == 1;
  a.searchConfirmedCandidate = confirmed == 1;
  a.atlasServed = atlasServed == 1;
  entry.answer = a;
  return true;
}

}  // namespace

std::size_t savePlanCacheSegment(
    const std::vector<PlanCache::SnapshotEntry>& entries, std::ostream& os) {
  os << kMagic << '\n';
  os << "entries " << entries.size() << '\n';
  for (const auto& entry : entries) {
    const std::string payload = payloadFor(entry);
    os << "e " << checksumHex(payload) << ' ' << payload << '\n';
  }
  if (!os)
    throw std::runtime_error("savePlanCacheSnapshot: stream write failed");
  return entries.size();
}

std::size_t savePlanCacheSnapshot(const PlanCache& cache, std::ostream& os) {
  return savePlanCacheSegment(cache.exportEntries(), os);
}

std::size_t savePlanCacheSnapshot(const PlanCache& cache,
                                  const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::size_t written = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      throw std::runtime_error("savePlanCacheSnapshot: cannot open " + tmp);
    written = savePlanCacheSnapshot(cache, out);
    out.flush();
    if (!out)
      throw std::runtime_error("savePlanCacheSnapshot: write to " + tmp +
                               " failed");
  }
  // Atomic publish: readers see either the old snapshot or the new one,
  // never a half-written file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("savePlanCacheSnapshot: cannot rename " + tmp +
                             " to " + path);
  }
  return written;
}

SnapshotLoadReport tryLoadPlanCacheSnapshot(PlanCache& cache,
                                            std::istream& is) {
  SnapshotLoadReport report;
  std::string magic;
  std::getline(is, magic);
  if (!magic.empty() && magic.back() == '\r') magic.pop_back();
  if (magic != kMagic) {
    report.versionRefused = true;
    report.error = "loadPlanCacheSnapshot: unsupported snapshot version '" +
                   magic + "' (expected '" + std::string(kMagic) + "')";
    return report;
  }
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.rfind("entries ", 0) == 0) continue;
    if (line.rfind("e ", 0) != 0) {
      ++report.skipped;
      continue;
    }
    // "e <16-hex> <payload>": verify the checksum before trusting a byte of
    // the payload, then parse strictly.
    if (line.size() < 2 + 16 + 2 || line[18] != ' ') {
      ++report.skipped;
      continue;
    }
    const std::string checksum = line.substr(2, 16);
    const std::string payload = line.substr(19);
    if (checksum != checksumHex(payload)) {
      ++report.skipped;
      continue;
    }
    PlanCache::SnapshotEntry entry;
    if (!parsePayload(payload, entry)) {
      ++report.skipped;
      continue;
    }
    cache.insertWarm(entry.key, entry.answer);
    ++report.loaded;
  }
  return report;
}

SnapshotLoadReport tryLoadPlanCacheSnapshot(PlanCache& cache,
                                            const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    SnapshotLoadReport report;
    report.error = "loadPlanCacheSnapshot: cannot open " + path;
    return report;
  }
  return tryLoadPlanCacheSnapshot(cache, in);
}

SnapshotLoadReport loadPlanCacheSnapshot(PlanCache& cache, std::istream& is) {
  const SnapshotLoadReport report = tryLoadPlanCacheSnapshot(cache, is);
  if (!report.ok()) throw std::runtime_error(report.error);
  return report;
}

SnapshotLoadReport loadPlanCacheSnapshot(PlanCache& cache,
                                         const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("loadPlanCacheSnapshot: cannot open " + path);
  return loadPlanCacheSnapshot(cache, in);
}

}  // namespace pushpart
