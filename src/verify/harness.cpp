#include "verify/harness.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "grid/serialize.hpp"
#include "verify/generators.hpp"

namespace pushpart {
namespace {

/// Shrinks the failing case, re-runs the property on the minimum, and dumps
/// the replay artifacts. Shared failure path of both entry points.
void handleFailure(PropertyOutcome& outcome, const FailingCase& failing,
                   const PropertyOptions& options,
                   const PropertyFn& property) {
  outcome.passed = false;

  ShrinkOptions shrinkOptions;
  shrinkOptions.minN = options.minN;
  const ShrinkResult shrunk = shrinkCase(
      failing,
      [&](const FailingCase& c) { return property(c).report.ok(); },
      shrinkOptions);
  outcome.minimal = shrunk.minimal;
  outcome.shrinkRounds = shrunk.rounds;

  const PropertyRun minimalRun = property(shrunk.minimal);
  outcome.failure = minimalRun.report;

  std::error_code ec;
  std::filesystem::create_directories(options.artifactDir, ec);
  const std::string base = options.artifactDir + "/" + outcome.name;
  if (minimalRun.evidence.has_value()) {
    outcome.artifactPath = base + ".pp";
    savePartition(*minimalRun.evidence, outcome.artifactPath);
  }
  outcome.casePath = base + ".case";
  std::ofstream caseFile(outcome.casePath);
  if (caseFile) {
    caseFile << "property " << outcome.name << "\n"
             << "n " << shrunk.minimal.n << "\n"
             << "ratio " << shrunk.minimal.ratio.str() << "\n"
             << "seed " << shrunk.minimal.seed << "\n"
             << "style " << shrunk.minimal.style << "\n"
             << "violations\n"
             << minimalRun.report.str() << "\n";
  }
}

}  // namespace

std::string PropertyOutcome::str() const {
  std::ostringstream os;
  if (passed) {
    os << name << ": ok (" << iterations << " cases)";
    return os.str();
  }
  os << name << ": FAILED after " << iterations << " cases\n"
     << "  minimal case (" << shrinkRounds << " shrink steps): "
     << minimal.str() << "\n";
  for (const auto& v : failure.violations)
    os << "  " << v.property << ": " << v.detail << "\n";
  if (!artifactPath.empty()) os << "  partition: " << artifactPath << "\n";
  if (!casePath.empty()) os << "  replay: " << casePath;
  return os.str();
}

PropertyOutcome runProperty(const std::string& name,
                            const PropertyOptions& options,
                            const PropertyFn& property) {
  PropertyOutcome outcome;
  outcome.name = name;

  Rng meta(options.seed);
  for (int i = 0; i < options.iterations; ++i) {
    Rng caseRng = meta.split(static_cast<std::uint64_t>(i));
    FailingCase c;
    c.n = genSmallN(caseRng, options.minN, options.maxN);
    c.ratio = genRatio(caseRng);
    c.style = static_cast<int>(genStyle(caseRng));
    c.seed = caseRng();
    ++outcome.iterations;

    if (!property(c).report.ok()) {
      handleFailure(outcome, c, options, property);
      return outcome;
    }
  }
  return outcome;
}

PropertyOutcome runPropertyOnCase(const std::string& name,
                                  const FailingCase& fixedCase,
                                  const PropertyOptions& options,
                                  const PropertyFn& property) {
  PropertyOutcome outcome;
  outcome.name = name;
  outcome.iterations = 1;
  if (!property(fixedCase).report.ok())
    handleFailure(outcome, fixedCase, options, property);
  return outcome;
}

}  // namespace pushpart
