// Seeded random-case generators for the property harness.
//
// Every generator draws exclusively from a caller-supplied Rng, so a (seed,
// property) pair fully determines the cases a run sees — the harness replays
// and shrinks failures by re-deriving the same stream. Generators are biased
// toward the paper's regime (its eleven ratios, scattered and clustered q0)
// but also emit adversarial corners: candidate shapes, mutated candidates and
// near-degenerate ratios that the regular DFA workloads rarely produce.
#pragma once

#include "dfa/schedule.hpp"
#include "grid/partition.hpp"
#include "grid/ratio.hpp"
#include "serve/request.hpp"
#include "support/rng.hpp"

namespace pushpart {

/// How a generated start partition was constructed; indexes the generator's
/// strategy so a shrunk case can replay the same style.
enum class GenStyle {
  kScattered = 0,  ///< Paper §VI-A2 random q0.
  kClustered = 1,  ///< Contiguous random runs (batch runner's diversifier).
  kCandidate = 2,  ///< A feasible canonical candidate shape.
  kMutated = 3,    ///< A candidate with random cell swaps applied.
};

inline constexpr int kNumGenStyles = 4;

constexpr const char* genStyleName(GenStyle s) {
  switch (s) {
    case GenStyle::kScattered: return "scattered";
    case GenStyle::kClustered: return "clustered";
    case GenStyle::kCandidate: return "candidate";
    case GenStyle::kMutated: return "mutated";
  }
  return "?";
}

/// A ratio satisfying the §IV assumptions: drawn from the paper's eleven
/// ratios (half the time) or randomized with P_r in [1, 12], R_r in [1, P_r],
/// S_r = 1.
Ratio genRatio(Rng& rng);

/// Uniform grid size in [minN, maxN]. Requires 3 <= minN <= maxN.
int genSmallN(Rng& rng, int minN, int maxN);

/// A start partition of the requested style (see GenStyle). Falls back to
/// kScattered when the drawn candidate is infeasible at (n, ratio).
Partition genPartition(GenStyle style, int n, const Ratio& ratio, Rng& rng);

/// Random style, biased toward the paper's scattered starts.
GenStyle genStyle(Rng& rng);

/// Wraps Schedule::random (kept here so harness code only imports one
/// generator module).
Schedule genSchedule(Rng& rng);

/// A plan request within the serving oracle's supported envelope: small n,
/// generated ratio, random algorithm/topology/tier and a tiny search budget.
PlanRequest genPlanRequest(Rng& rng);

}  // namespace pushpart
