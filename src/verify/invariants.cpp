#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "grid/serialize.hpp"
#include "shapes/archetype.hpp"
#include "shapes/transform.hpp"
#include "support/check.hpp"
#include "support/deadline.hpp"

namespace pushpart {

void CheckReport::add(std::string property, std::string detail) {
  violations.push_back({std::move(property), std::move(detail)});
}

void CheckReport::merge(const CheckReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

std::string CheckReport::str() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i].property << ": " << violations[i].detail;
  }
  return os.str();
}

Ratio inferRatio(const Partition& q) {
  const auto eR = q.count(Proc::R);
  const auto eS = q.count(Proc::S);
  const auto eP = q.count(Proc::P);
  if (eR <= 0 || eS <= 0)
    throw std::invalid_argument(
        "inferRatio: R and S must own at least one cell (R=" +
        std::to_string(eR) + ", S=" + std::to_string(eS) + ")");
  const double s = static_cast<double>(eS);
  Ratio ratio{static_cast<double>(eP) / s, static_cast<double>(eR) / s, 1.0};
  // Integer rounding can leave eP a hair below eR on near-tied shares; clamp
  // so the inferred ratio satisfies the §IV assumption p >= max(r, s).
  ratio.p = std::max({ratio.p, ratio.r, ratio.s});
  return ratio;
}

CheckReport checkCounters(const Partition& q) {
  CheckReport report;
  try {
    q.validateCounters();
  } catch (const CheckError& e) {
    report.add("grid.counters", e.what());
  }
  std::int64_t owned = 0;
  for (Proc x : kAllProcs) owned += q.count(x);
  if (owned != q.cellCount())
    report.add("grid.cell-total",
               "per-processor counts sum to " + std::to_string(owned) +
                   ", expected " + std::to_string(q.cellCount()));
  return report;
}

CheckReport checkConservation(const Partition& before,
                              const Partition& after) {
  CheckReport report;
  if (before.n() != after.n()) {
    report.add("conservation.size",
               "grid size changed " + std::to_string(before.n()) + " -> " +
                   std::to_string(after.n()));
    return report;
  }
  for (Proc x : kAllProcs) {
    if (before.count(x) != after.count(x))
      report.add("conservation.counts",
                 std::string(1, procName(x)) + " count changed " +
                     std::to_string(before.count(x)) + " -> " +
                     std::to_string(after.count(x)));
  }
  return report;
}

CheckReport checkPushOutcome(const Partition& before, const Partition& after,
                             const PushOutcome& outcome) {
  CheckReport report;
  report.merge(checkConservation(before, after));

  const std::int64_t vocBefore = before.volumeOfCommunication();
  const std::int64_t vocAfter = after.volumeOfCommunication();
  if (outcome.vocBefore != vocBefore)
    report.add("push.bookkeeping",
               "outcome.vocBefore " + std::to_string(outcome.vocBefore) +
                   " != measured " + std::to_string(vocBefore));
  if (outcome.applied && outcome.vocAfter != vocAfter)
    report.add("push.bookkeeping",
               "outcome.vocAfter " + std::to_string(outcome.vocAfter) +
                   " != measured " + std::to_string(vocAfter));

  if (!outcome.applied) {
    if (!(before == after))
      report.add("push.no-mutation-on-failure",
                 "partition changed although outcome.applied is false");
    return report;
  }

  // §IV-A: Types 1–4 strictly decrease VoC; 5–6 may keep it equal.
  const bool strict = static_cast<int>(outcome.type) <= 4;
  if (strict ? !(vocAfter < vocBefore) : !(vocAfter <= vocBefore))
    report.add("push.voc-nonincrease",
               std::string(pushTypeName(outcome.type)) + " push moved VoC " +
                   std::to_string(vocBefore) + " -> " +
                   std::to_string(vocAfter));

  // No slow processor's enclosing rectangle may grow (P is exempt — the
  // engine's rule; its rectangle plays no role in VoC or future pushes).
  for (Proc x : kSlowProcs) {
    if (!before.enclosingRect(x).contains(after.enclosingRect(x))) {
      std::ostringstream os;
      os << procName(x) << " rect grew " << before.enclosingRect(x) << " -> "
         << after.enclosingRect(x);
      report.add("push.rect-nongrowth", os.str());
    }
  }
  report.merge(checkCounters(after));
  return report;
}

CheckReport checkDfaRun(const Partition& q0, const DfaResult& result) {
  CheckReport report;
  report.merge(checkConservation(q0, result.final));
  report.merge(checkCounters(result.final));

  if (result.vocStart != q0.volumeOfCommunication())
    report.add("dfa.bookkeeping",
               "vocStart " + std::to_string(result.vocStart) +
                   " != start grid's " +
                   std::to_string(q0.volumeOfCommunication()));
  if (result.vocEnd != result.final.volumeOfCommunication())
    report.add("dfa.bookkeeping",
               "vocEnd " + std::to_string(result.vocEnd) +
                   " != final grid's " +
                   std::to_string(result.final.volumeOfCommunication()));
  if (result.vocEnd > result.vocStart)
    report.add("dfa.voc-monotone", "VoC rose " +
                                       std::to_string(result.vocStart) +
                                       " -> " + std::to_string(result.vocEnd));
  return report;
}

CheckReport checkSerializeRoundTrip(const Partition& q) {
  CheckReport report;
  std::ostringstream first;
  savePartition(q, first);
  std::istringstream in(first.str());
  try {
    const Partition back = loadPartition(in);
    if (!(back == q)) {
      report.add("serialize.roundtrip", "loaded grid differs from original");
      return report;
    }
    std::ostringstream second;
    savePartition(back, second);
    if (second.str() != first.str())
      report.add("serialize.roundtrip",
                 "save -> load -> save is not byte-identical");
  } catch (const std::exception& e) {
    report.add("serialize.roundtrip",
               std::string("loadPartition rejected its own output: ") +
                   e.what());
  }
  return report;
}

CheckReport checkCondensedState(const Partition& condensed,
                                const Ratio& ratio) {
  CheckReport report;
  const ArchetypeInfo info = classifyArchetype(condensed);
  if (info.archetype != Archetype::Unknown) return report;

  // A locked non-archetype state is tolerable (the paper saw none, we keep
  // them as corpus regressions) *only* while a canonical Archetype A
  // candidate still communicates no more — the weak Postulate 1 its
  // conclusions rest on.
  Partition reduced = condensed;
  const auto reduction = reduceToArchetypeA(reduced, ratio);
  if (!reduction.has_value()) {
    report.add("postulate1.dominance",
               "locked Unknown state undercuts every canonical candidate "
               "(VoC " +
                   std::to_string(condensed.volumeOfCommunication()) +
                   ", ratio " + ratio.str() + ") — " + info.str());
    return report;
  }
  if (classifyArchetype(reduced).archetype != Archetype::A)
    report.add("postulate1.reduction",
               "reduceToArchetypeA output is not Archetype A");
  if (reduction->vocAfter > reduction->vocBefore)
    report.add("postulate1.reduction",
               "reduction raised VoC " + std::to_string(reduction->vocBefore) +
                   " -> " + std::to_string(reduction->vocAfter));
  return report;
}

CheckReport checkOracleTierAgreement(const Oracle& oracle,
                                     const PlanRequest& request) {
  CheckReport report;
  PlanRequest fast = request;
  fast.tier = PlanTier::kFast;
  PlanRequest search = request;
  search.tier = PlanTier::kSearch;

  const PlanAnswer a = oracle.solveUncached(fast);
  const PlanAnswer b = oracle.solveUncached(search);

  // Tier B embeds tier A: its candidate recommendation must be the tier-A
  // answer verbatim — the search only *cross-checks*, it never changes the
  // closed-form ranking.
  if (a.shape != b.shape)
    report.add("serve.tier-agreement",
               std::string("tier A recommends ") + candidateName(a.shape) +
                   " but tier B recommends " + candidateName(b.shape));
  if (a.voc != b.voc)
    report.add("serve.tier-agreement",
               "candidate VoC differs across tiers: " + std::to_string(a.voc) +
                   " vs " + std::to_string(b.voc));
  if (!(a.model == b.model))
    report.add("serve.tier-agreement",
               "candidate model timings differ across tiers");

  if (b.searchCompleted > b.searchRuns)
    report.add("serve.search-budget",
               "completed " + std::to_string(b.searchCompleted) + " of " +
                   std::to_string(b.searchRuns) + " budgeted walks");
  const bool shouldConfirm =
      b.searchCompleted > 0 &&
      b.searchBestExecSeconds >= b.model.execSeconds;
  if (b.searchConfirmedCandidate != shouldConfirm)
    report.add("serve.search-confirmation",
               "searchConfirmedCandidate=" +
                   std::string(b.searchConfirmedCandidate ? "true" : "false") +
                   " but best searched exec " +
                   std::to_string(b.searchBestExecSeconds) +
                   "s vs candidate " + std::to_string(b.model.execSeconds) +
                   "s");
  return report;
}

CheckReport checkServeDegradation(Oracle& oracle, const PlanRequest& request) {
  CheckReport report;
  PlanRequest search = request;
  search.tier = PlanTier::kSearch;
  PlanRequest fast = request;
  fast.tier = PlanTier::kFast;

  // The unhurried closed-form answer every degraded rung must still carry.
  const PlanAnswer reference = oracle.solveUncached(fast);

  // Drive the "no time for search" rung with an already-spent deadline.
  FakeClock clock;
  PlanCallOptions spent;
  spent.deadline = Deadline::after(0.0, clock);
  const PlanResponse hurried = oracle.plan(search, spent);
  if (hurried.shed) {
    report.add("serve.degradation",
               "request shed although admission control is disabled");
    return report;
  }
  const PlanAnswer& d = hurried.answer;
  if (d.fullFidelity())
    report.add("serve.degradation",
               "expired deadline produced an unmarked full-fidelity answer");
  if (static_cast<int>(d.servedTier) > static_cast<int>(d.tier))
    report.add("serve.degradation",
               std::string("served tier ") + planTierName(d.servedTier) +
                   " exceeds requested tier " + planTierName(d.tier));
  // A degraded answer is still a valid recommendation: the closed-form
  // candidate, not a torn or empty placeholder.
  if (d.shape != reference.shape)
    report.add("serve.degradation",
               std::string("degraded answer recommends ") +
                   candidateName(d.shape) + " but the closed form picks " +
                   candidateName(reference.shape));
  if (d.voc != reference.voc)
    report.add("serve.degradation",
               "degraded answer VoC " + std::to_string(d.voc) +
                   " differs from closed-form VoC " +
                   std::to_string(reference.voc));
  if (!(d.model == reference.model))
    report.add("serve.degradation",
               "degraded answer's model timings differ from the closed form");
  if (d.truncated && d.searchCompleted >= d.searchRuns)
    report.add("serve.degradation",
               "truncated answer claims a complete search (" +
                   std::to_string(d.searchCompleted) + "/" +
                   std::to_string(d.searchRuns) + " walks)");

  // Degraded answers are never cached: the unhurried retry re-solves at
  // full fidelity instead of inheriting the hurried rung's answer.
  const PlanResponse retry = oracle.plan(search);
  if (retry.cacheHit)
    report.add("serve.degradation",
               "degraded answer was cached and served to an unhurried caller");
  if (!retry.answer.fullFidelity())
    report.add("serve.degradation",
               "unhurried retry is still degraded (" +
                   std::string(degradeReasonName(retry.answer.degrade)) + ")");
  if (retry.answer.servedTier != PlanTier::kSearch)
    report.add("serve.degradation",
               std::string("unhurried tier-B retry served tier ") +
                   planTierName(retry.answer.servedTier));
  return report;
}

CheckReport checkAtlasConsistency(Oracle& oracle, const PlanRequest& request,
                                  double gapPct) {
  CheckReport report;
  const PlanResponse r = oracle.plan(request);
  if (r.shed || !r.answer.atlasServed)
    return report;  // live/shed path: nothing the atlas must answer for
  const PlanAnswer& a = r.answer;
  if (a.atlasI < 0 || a.atlasJ < 0)
    report.add("serve.atlas-consistency",
               "atlas-served answer carries no cell coordinates");
  if (a.atlasCertGapPct > gapPct)
    report.add("serve.atlas-consistency",
               "certificate gap " + std::to_string(a.atlasCertGapPct) +
                   "% exceeds the configured bound " + std::to_string(gapPct) +
                   "%");
  if (!a.fullFidelity())
    report.add("serve.atlas-consistency",
               "atlas-served answer is marked degraded (" +
                   std::string(degradeReasonName(a.degrade)) +
                   ") — provenance must not cost fidelity");
  // The live reference: same request, no cache, no breaker, no atlas.
  const PlanAnswer live = oracle.solveUncached(request);
  if (live.model.execSeconds > 0.0) {
    const double diffPct =
        std::abs(a.model.execSeconds - live.model.execSeconds) /
        live.model.execSeconds * 100.0;
    // Slack over the certificate bound: the certificate is checked against
    // the closed-form best, while the live answer may differ by the model's
    // integer-granularity rounding.
    if (diffPct > gapPct + 0.5)
      report.add("serve.atlas-consistency",
                 "atlas-served modeled time " +
                     std::to_string(a.model.execSeconds) + "s is " +
                     std::to_string(diffPct) + "% from the live reference " +
                     std::to_string(live.model.execSeconds) + "s");
  }
  return report;
}

CheckReport replayCorpusFile(const std::string& path) {
  CheckReport report;
  Partition q = loadPartition(path);
  report.merge(checkCounters(q));
  report.merge(checkSerializeRoundTrip(q));
  try {
    report.merge(checkCondensedState(q, inferRatio(q)));
  } catch (const std::invalid_argument& e) {
    report.add("corpus.ratio", e.what());
  }
  return report;
}

std::vector<std::string> corpusFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".pp")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace pushpart
