#include "verify/invariants.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "grid/serialize.hpp"
#include "rle/engine.hpp"
#include "rle/serialize.hpp"
#include "shapes/archetype.hpp"
#include "shapes/transform.hpp"
#include "support/check.hpp"
#include "support/deadline.hpp"

namespace pushpart {

void CheckReport::add(std::string property, std::string detail) {
  violations.push_back({std::move(property), std::move(detail)});
}

void CheckReport::merge(const CheckReport& other) {
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

std::string CheckReport::str() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i].property << ": " << violations[i].detail;
  }
  return os.str();
}

Ratio inferRatio(const Partition& q) {
  const auto eR = q.count(Proc::R);
  const auto eS = q.count(Proc::S);
  const auto eP = q.count(Proc::P);
  if (eR <= 0 || eS <= 0)
    throw std::invalid_argument(
        "inferRatio: R and S must own at least one cell (R=" +
        std::to_string(eR) + ", S=" + std::to_string(eS) + ")");
  const double s = static_cast<double>(eS);
  Ratio ratio{static_cast<double>(eP) / s, static_cast<double>(eR) / s, 1.0};
  // Integer rounding can leave eP a hair below eR on near-tied shares; clamp
  // so the inferred ratio satisfies the §IV assumption p >= max(r, s).
  ratio.p = std::max({ratio.p, ratio.r, ratio.s});
  return ratio;
}

bool RatioInterval::contains(const Ratio& candidate) const {
  const Ratio c = candidate.normalized();
  return c.p >= lo.p && c.p <= hi.p && c.r >= lo.r && c.r <= hi.r;
}

bool RatioInterval::nearTie() const {
  const bool prOverlap = lo.p <= hi.r && lo.r <= hi.p;
  const bool rsStraddle = lo.r <= 1.0 && 1.0 <= hi.r;
  return prOverlap || rsStraddle;
}

RatioInterval inferRatioInterval(const Partition& q) {
  RatioInterval interval;
  interval.mid = inferRatio(q);  // shares the R/S > 0 precondition check
  const double eR = static_cast<double>(q.count(Proc::R));
  const double eS = static_cast<double>(q.count(Proc::S));
  const double eP = static_cast<double>(q.count(Proc::P));
  // Count quantization (Ratio::elementCounts): R and S are *floored*, so a
  // count of e means the true share lies in [e, e + 1); P absorbs both
  // remainders, so its true share lies in (eP - 2, eP]. A component's
  // extreme is its share's extreme over the opposite extreme of S's share.
  // eS >= 1 (checked by inferRatio above), so the denominators are positive.
  const double tiny = 1e-12;  // an eP of <= 2 would otherwise bound at <= 0
  interval.lo = Ratio{std::max((eP - 2.0) / (eS + 1.0), tiny),
                      std::max(eR / (eS + 1.0), tiny), 1.0};
  interval.hi = Ratio{eP / eS, (eR + 1.0) / eS, 1.0};
  return interval;
}

CheckReport checkCounters(const Partition& q) {
  CheckReport report;
  try {
    q.validateCounters();
  } catch (const CheckError& e) {
    report.add("grid.counters", e.what());
  }
  std::int64_t owned = 0;
  for (Proc x : kAllProcs) owned += q.count(x);
  if (owned != q.cellCount())
    report.add("grid.cell-total",
               "per-processor counts sum to " + std::to_string(owned) +
                   ", expected " + std::to_string(q.cellCount()));
  return report;
}

CheckReport checkConservation(const Partition& before,
                              const Partition& after) {
  CheckReport report;
  if (before.n() != after.n()) {
    report.add("conservation.size",
               "grid size changed " + std::to_string(before.n()) + " -> " +
                   std::to_string(after.n()));
    return report;
  }
  for (Proc x : kAllProcs) {
    if (before.count(x) != after.count(x))
      report.add("conservation.counts",
                 std::string(1, procName(x)) + " count changed " +
                     std::to_string(before.count(x)) + " -> " +
                     std::to_string(after.count(x)));
  }
  return report;
}

CheckReport checkPushOutcome(const Partition& before, const Partition& after,
                             const PushOutcome& outcome) {
  CheckReport report;
  report.merge(checkConservation(before, after));

  const std::int64_t vocBefore = before.volumeOfCommunication();
  const std::int64_t vocAfter = after.volumeOfCommunication();
  if (outcome.vocBefore != vocBefore)
    report.add("push.bookkeeping",
               "outcome.vocBefore " + std::to_string(outcome.vocBefore) +
                   " != measured " + std::to_string(vocBefore));
  if (outcome.applied && outcome.vocAfter != vocAfter)
    report.add("push.bookkeeping",
               "outcome.vocAfter " + std::to_string(outcome.vocAfter) +
                   " != measured " + std::to_string(vocAfter));

  if (!outcome.applied) {
    if (!(before == after))
      report.add("push.no-mutation-on-failure",
                 "partition changed although outcome.applied is false");
    return report;
  }

  // §IV-A: Types 1–4 strictly decrease VoC; 5–6 may keep it equal.
  const bool strict = static_cast<int>(outcome.type) <= 4;
  if (strict ? !(vocAfter < vocBefore) : !(vocAfter <= vocBefore))
    report.add("push.voc-nonincrease",
               std::string(pushTypeName(outcome.type)) + " push moved VoC " +
                   std::to_string(vocBefore) + " -> " +
                   std::to_string(vocAfter));

  // No slow processor's enclosing rectangle may grow (P is exempt — the
  // engine's rule; its rectangle plays no role in VoC or future pushes).
  for (Proc x : kSlowProcs) {
    if (!before.enclosingRect(x).contains(after.enclosingRect(x))) {
      std::ostringstream os;
      os << procName(x) << " rect grew " << before.enclosingRect(x) << " -> "
         << after.enclosingRect(x);
      report.add("push.rect-nongrowth", os.str());
    }
  }
  report.merge(checkCounters(after));
  return report;
}

CheckReport checkDfaRun(const Partition& q0, const DfaResult& result) {
  CheckReport report;
  report.merge(checkConservation(q0, result.final));
  report.merge(checkCounters(result.final));

  if (result.vocStart != q0.volumeOfCommunication())
    report.add("dfa.bookkeeping",
               "vocStart " + std::to_string(result.vocStart) +
                   " != start grid's " +
                   std::to_string(q0.volumeOfCommunication()));
  if (result.vocEnd != result.final.volumeOfCommunication())
    report.add("dfa.bookkeeping",
               "vocEnd " + std::to_string(result.vocEnd) +
                   " != final grid's " +
                   std::to_string(result.final.volumeOfCommunication()));
  if (result.vocEnd > result.vocStart)
    report.add("dfa.voc-monotone", "VoC rose " +
                                       std::to_string(result.vocStart) +
                                       " -> " + std::to_string(result.vocEnd));
  return report;
}

CheckReport checkSerializeRoundTrip(const Partition& q) {
  CheckReport report;
  std::ostringstream first;
  savePartition(q, first);
  std::istringstream in(first.str());
  try {
    const Partition back = loadPartition(in);
    if (!(back == q)) {
      report.add("serialize.roundtrip", "loaded grid differs from original");
      return report;
    }
    std::ostringstream second;
    savePartition(back, second);
    if (second.str() != first.str())
      report.add("serialize.roundtrip",
                 "save -> load -> save is not byte-identical");
  } catch (const std::exception& e) {
    report.add("serialize.roundtrip",
               std::string("loadPartition rejected its own output: ") +
                   e.what());
  }
  return report;
}

CheckReport checkCondensedState(const Partition& condensed,
                                const Ratio& ratio) {
  CheckReport report;
  const ArchetypeInfo info = classifyArchetype(condensed);
  if (info.archetype != Archetype::Unknown) return report;

  // A locked non-archetype state is tolerable (the paper saw none, we keep
  // them as corpus regressions) *only* while a canonical Archetype A
  // candidate still communicates no more — the weak Postulate 1 its
  // conclusions rest on.
  Partition reduced = condensed;
  const auto reduction = reduceToArchetypeA(reduced, ratio);
  if (!reduction.has_value()) {
    report.add("postulate1.dominance",
               "locked Unknown state undercuts every canonical candidate "
               "(VoC " +
                   std::to_string(condensed.volumeOfCommunication()) +
                   ", ratio " + ratio.str() + ") — " + info.str());
    return report;
  }
  if (classifyArchetype(reduced).archetype != Archetype::A)
    report.add("postulate1.reduction",
               "reduceToArchetypeA output is not Archetype A");
  if (reduction->vocAfter > reduction->vocBefore)
    report.add("postulate1.reduction",
               "reduction raised VoC " + std::to_string(reduction->vocBefore) +
                   " -> " + std::to_string(reduction->vocAfter));
  return report;
}

CheckReport checkOracleTierAgreement(const Oracle& oracle,
                                     const PlanRequest& request) {
  CheckReport report;
  PlanRequest fast = request;
  fast.tier = PlanTier::kFast;
  PlanRequest search = request;
  search.tier = PlanTier::kSearch;

  const PlanAnswer a = oracle.solveUncached(fast);
  const PlanAnswer b = oracle.solveUncached(search);

  // Tier B embeds tier A: its candidate recommendation must be the tier-A
  // answer verbatim — the search only *cross-checks*, it never changes the
  // closed-form ranking.
  if (a.shape != b.shape)
    report.add("serve.tier-agreement",
               std::string("tier A recommends ") + candidateName(a.shape) +
                   " but tier B recommends " + candidateName(b.shape));
  if (a.voc != b.voc)
    report.add("serve.tier-agreement",
               "candidate VoC differs across tiers: " + std::to_string(a.voc) +
                   " vs " + std::to_string(b.voc));
  if (!(a.model == b.model))
    report.add("serve.tier-agreement",
               "candidate model timings differ across tiers");

  if (b.searchCompleted > b.searchRuns)
    report.add("serve.search-budget",
               "completed " + std::to_string(b.searchCompleted) + " of " +
                   std::to_string(b.searchRuns) + " budgeted walks");
  const bool shouldConfirm =
      b.searchCompleted > 0 &&
      b.searchBestExecSeconds >= b.model.execSeconds;
  if (b.searchConfirmedCandidate != shouldConfirm)
    report.add("serve.search-confirmation",
               "searchConfirmedCandidate=" +
                   std::string(b.searchConfirmedCandidate ? "true" : "false") +
                   " but best searched exec " +
                   std::to_string(b.searchBestExecSeconds) +
                   "s vs candidate " + std::to_string(b.model.execSeconds) +
                   "s");
  return report;
}

CheckReport checkServeDegradation(Oracle& oracle, const PlanRequest& request) {
  CheckReport report;
  PlanRequest search = request;
  search.tier = PlanTier::kSearch;
  PlanRequest fast = request;
  fast.tier = PlanTier::kFast;

  // The unhurried closed-form answer every degraded rung must still carry.
  const PlanAnswer reference = oracle.solveUncached(fast);

  // Drive the "no time for search" rung with an already-spent deadline.
  FakeClock clock;
  PlanCallOptions spent;
  spent.deadline = Deadline::after(0.0, clock);
  const PlanResponse hurried = oracle.plan(search, spent);
  if (hurried.shed) {
    report.add("serve.degradation",
               "request shed although admission control is disabled");
    return report;
  }
  const PlanAnswer& d = hurried.answer;
  if (d.fullFidelity())
    report.add("serve.degradation",
               "expired deadline produced an unmarked full-fidelity answer");
  if (static_cast<int>(d.servedTier) > static_cast<int>(d.tier))
    report.add("serve.degradation",
               std::string("served tier ") + planTierName(d.servedTier) +
                   " exceeds requested tier " + planTierName(d.tier));
  // A degraded answer is still a valid recommendation: the closed-form
  // candidate, not a torn or empty placeholder.
  if (d.shape != reference.shape)
    report.add("serve.degradation",
               std::string("degraded answer recommends ") +
                   candidateName(d.shape) + " but the closed form picks " +
                   candidateName(reference.shape));
  if (d.voc != reference.voc)
    report.add("serve.degradation",
               "degraded answer VoC " + std::to_string(d.voc) +
                   " differs from closed-form VoC " +
                   std::to_string(reference.voc));
  if (!(d.model == reference.model))
    report.add("serve.degradation",
               "degraded answer's model timings differ from the closed form");
  if (d.truncated && d.searchCompleted >= d.searchRuns)
    report.add("serve.degradation",
               "truncated answer claims a complete search (" +
                   std::to_string(d.searchCompleted) + "/" +
                   std::to_string(d.searchRuns) + " walks)");

  // Degraded answers are never cached: the unhurried retry re-solves at
  // full fidelity instead of inheriting the hurried rung's answer.
  const PlanResponse retry = oracle.plan(search);
  if (retry.cacheHit)
    report.add("serve.degradation",
               "degraded answer was cached and served to an unhurried caller");
  if (!retry.answer.fullFidelity())
    report.add("serve.degradation",
               "unhurried retry is still degraded (" +
                   std::string(degradeReasonName(retry.answer.degrade)) + ")");
  if (retry.answer.servedTier != PlanTier::kSearch)
    report.add("serve.degradation",
               std::string("unhurried tier-B retry served tier ") +
                   planTierName(retry.answer.servedTier));
  return report;
}

CheckReport checkAtlasConsistency(Oracle& oracle, const PlanRequest& request,
                                  double gapPct) {
  CheckReport report;
  const PlanResponse r = oracle.plan(request);
  if (r.shed || !r.answer.atlasServed)
    return report;  // live/shed path: nothing the atlas must answer for
  const PlanAnswer& a = r.answer;
  if (a.atlasI < 0 || a.atlasJ < 0)
    report.add("serve.atlas-consistency",
               "atlas-served answer carries no cell coordinates");
  if (a.atlasCertGapPct > gapPct)
    report.add("serve.atlas-consistency",
               "certificate gap " + std::to_string(a.atlasCertGapPct) +
                   "% exceeds the configured bound " + std::to_string(gapPct) +
                   "%");
  if (!a.fullFidelity())
    report.add("serve.atlas-consistency",
               "atlas-served answer is marked degraded (" +
                   std::string(degradeReasonName(a.degrade)) +
                   ") — provenance must not cost fidelity");
  // The live reference: same request, no cache, no breaker, no atlas.
  const PlanAnswer live = oracle.solveUncached(request);
  if (live.model.execSeconds > 0.0) {
    const double diffPct =
        std::abs(a.model.execSeconds - live.model.execSeconds) /
        live.model.execSeconds * 100.0;
    // Slack over the certificate bound: the certificate is checked against
    // the closed-form best, while the live answer may differ by the model's
    // integer-granularity rounding.
    if (diffPct > gapPct + 0.5)
      report.add("serve.atlas-consistency",
                 "atlas-served modeled time " +
                     std::to_string(a.model.execSeconds) + "s is " +
                     std::to_string(diffPct) + "% from the live reference " +
                     std::to_string(live.model.execSeconds) + "s");
  }
  return report;
}

CheckReport checkRleGridAgreement(const Partition& q, const RlePartition& r) {
  CheckReport report;
  if (q.n() != r.n()) {
    report.add("rle.agreement", "sizes differ: grid " + std::to_string(q.n()) +
                                    " vs rle " + std::to_string(r.n()));
    return report;
  }
  try {
    r.validateCounters();
  } catch (const CheckError& e) {
    report.add("rle.counters", e.what());
  }
  if (!r.sameOwners(q)) {
    // Find the first divergent cell for the shrinker; the aggregate
    // observables below would all differ too, so stop here.
    for (int i = 0; i < q.n(); ++i)
      for (int j = 0; j < q.n(); ++j)
        if (q.at(i, j) != r.at(i, j)) {
          report.add("rle.agreement",
                     "owners diverge first at (" + std::to_string(i) + "," +
                         std::to_string(j) + "): grid " +
                         std::string(1, procName(q.at(i, j))) + " vs rle " +
                         std::string(1, procName(r.at(i, j))));
          return report;
        }
    report.add("rle.agreement", "sameOwners false but no divergent cell");
    return report;
  }
  for (Proc x : kAllProcs) {
    if (q.count(x) != r.count(x))
      report.add("rle.agreement",
                 std::string(1, procName(x)) + " count: grid " +
                     std::to_string(q.count(x)) + " vs rle " +
                     std::to_string(r.count(x)));
    if (q.rowsUsed(x) != r.rowsUsed(x) || q.colsUsed(x) != r.colsUsed(x))
      report.add("rle.agreement",
                 std::string(1, procName(x)) + " used lines: grid " +
                     std::to_string(q.rowsUsed(x)) + "x" +
                     std::to_string(q.colsUsed(x)) + " vs rle " +
                     std::to_string(r.rowsUsed(x)) + "x" +
                     std::to_string(r.colsUsed(x)));
    if (q.enclosingRect(x) != r.enclosingRect(x)) {
      std::ostringstream os;
      os << procName(x) << " rect: grid " << q.enclosingRect(x) << " vs rle "
         << r.enclosingRect(x);
      report.add("rle.agreement", os.str());
    }
  }
  if (q.volumeOfCommunication() != r.volumeOfCommunication())
    report.add("rle.agreement",
               "VoC: grid " + std::to_string(q.volumeOfCommunication()) +
                   " vs rle " + std::to_string(r.volumeOfCommunication()));
  for (int i = 0; i < q.n(); ++i) {
    bool lineDiffers =
        q.procsInRow(i) != r.procsInRow(i) || q.procsInCol(i) != r.procsInCol(i);
    for (Proc x : kAllProcs)
      lineDiffers = lineDiffers || q.rowCount(x, i) != r.rowCount(x, i) ||
                    q.colCount(x, i) != r.colCount(x, i);
    if (lineDiffers) {
      report.add("rle.agreement",
                 "per-line counters diverge at line " + std::to_string(i));
      break;  // one line of evidence is enough; owners already matched
    }
  }
  return report;
}

namespace {

// Compares one attempt's outcome on both engines; returns false (and
// records) on the first divergence so lockstep loops can stop with the
// smallest trajectory prefix as evidence.
bool outcomesAgree(const PushOutcome& g, const PushOutcome& r,
                   const std::string& where, CheckReport& report) {
  std::ostringstream os;
  if (g.applied != r.applied)
    os << "applied " << g.applied << " vs " << r.applied;
  else if (g.applied && g.type != r.type)
    os << "type " << pushTypeName(g.type) << " vs " << pushTypeName(r.type);
  else if (g.vocBefore != r.vocBefore || g.vocAfter != r.vocAfter)
    os << "voc " << g.vocBefore << "->" << g.vocAfter << " vs " << r.vocBefore
       << "->" << r.vocAfter;
  else if (g.elementsMoved != r.elementsMoved)
    os << "elementsMoved " << g.elementsMoved << " vs " << r.elementsMoved;
  else
    return true;
  report.add("rle.push-lockstep", where + ": grid/rle outcomes differ (" +
                                      os.str() + ")");
  return false;
}

}  // namespace

CheckReport checkRlePushLockstep(const Partition& q0, const Schedule& schedule,
                                 int maxSweeps) {
  CheckReport report;
  Partition grid = q0;
  RlePartition rle(q0);
  report.merge(checkRleGridAgreement(grid, rle));
  if (!report.ok()) return report;

  int attempt = 0;
  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    bool any = false;
    for (const ScheduleSlot& slot : schedule.slots) {
      const std::string where = "sweep " + std::to_string(sweep) + " slot " +
                                std::string(1, procName(slot.active)) + ":" +
                                directionName(slot.dir) + " (attempt " +
                                std::to_string(attempt++) + ")";
      const PushOutcome g = tryPush(grid, slot.active, slot.dir);
      const PushOutcome r = tryPush(rle, slot.active, slot.dir);
      if (!outcomesAgree(g, r, where, report)) return report;
      any = any || g.applied;
      CheckReport state = checkRleGridAgreement(grid, rle);
      if (!state.ok()) {
        report.add("rle.push-lockstep", where + ": states diverged");
        report.merge(state);
        return report;
      }
      // Availability is part of the decision surface too: a disagreement
      // here means the DFA would stop at different times on the two engines.
      for (Proc x : kSlowProcs) {
        const std::array<Direction, 1> one{slot.dir};
        if (pushAvailable(grid, x, one) != pushAvailable(rle, x, one)) {
          report.add("rle.push-lockstep",
                     where + ": pushAvailable verdicts differ for " +
                         std::string(1, procName(x)));
          return report;
        }
      }
    }
    if (!any) break;  // common accept state reached
  }
  return report;
}

CheckReport checkRleDfaLockstep(const Partition& q0, const Schedule& schedule,
                                const DfaOptions& options) {
  CheckReport report;
  const DfaResult g = runDfa(q0, schedule, options);
  DfaResultT<RlePartition> r = runDfaT(RlePartition(q0), schedule, options);

  if (g.stop != r.stop)
    report.add("rle.dfa-lockstep", std::string("stop reason: grid ") +
                                       dfaStopName(g.stop) + " vs rle " +
                                       dfaStopName(r.stop));
  if (g.pushesApplied != r.pushesApplied || g.sweeps != r.sweeps)
    report.add("rle.dfa-lockstep",
               "walk length: grid " + std::to_string(g.pushesApplied) +
                   " pushes/" + std::to_string(g.sweeps) + " sweeps vs rle " +
                   std::to_string(r.pushesApplied) + "/" +
                   std::to_string(r.sweeps));
  if (g.vocStart != r.vocStart || g.vocEnd != r.vocEnd)
    report.add("rle.dfa-lockstep",
               "VoC bookkeeping: grid " + std::to_string(g.vocStart) + "->" +
                   std::to_string(g.vocEnd) + " vs rle " +
                   std::to_string(r.vocStart) + "->" +
                   std::to_string(r.vocEnd));
  if (g.beautify.pushesApplied != r.beautify.pushesApplied ||
      g.beautify.vocBefore != r.beautify.vocBefore ||
      g.beautify.vocAfter != r.beautify.vocAfter)
    report.add("rle.dfa-lockstep", "beautify summaries differ");
  CheckReport finals = checkRleGridAgreement(g.final, r.final);
  if (!finals.ok()) {
    report.add("rle.dfa-lockstep", "final states diverged");
    report.merge(finals);
  }
  return report;
}

CheckReport checkRleSerializeRoundTrip(const RlePartition& q) {
  CheckReport report;
  std::ostringstream first;
  saveRlePartition(q, first);

  // Cross-engine byte identity: the RLE saver emits straight from runs but
  // must reproduce the grid serializer's v1 format bit for bit.
  std::ostringstream viaGrid;
  savePartition(q.toPartition(), viaGrid);
  if (first.str() != viaGrid.str()) {
    report.add("rle.serialize-roundtrip",
               "RLE saver's bytes differ from the grid serializer's");
    return report;
  }

  std::istringstream in(first.str());
  try {
    const RlePartition back = loadRlePartition(in);
    if (!(back == q)) {
      report.add("rle.serialize-roundtrip",
                 "loaded state differs from original");
      return report;
    }
    std::ostringstream second;
    saveRlePartition(back, second);
    if (second.str() != first.str())
      report.add("rle.serialize-roundtrip",
                 "save -> load -> save is not byte-identical");
  } catch (const std::exception& e) {
    report.add("rle.serialize-roundtrip",
               std::string("loadRlePartition rejected its own output: ") +
                   e.what());
  }
  return report;
}

CheckReport replayCorpusFile(const std::string& path) {
  CheckReport report;
  Partition q = loadPartition(path);
  report.merge(checkCounters(q));
  report.merge(checkSerializeRoundTrip(q));
  try {
    report.merge(checkCondensedState(q, inferRatio(q)));
  } catch (const std::invalid_argument& e) {
    report.add("corpus.ratio", e.what());
  }

  // Run-length engine parity on the same counterexample: identical state
  // observables, identical serialized bytes, and identical push-availability
  // verdicts — a corpus file that locked the grid must lock the RLE too.
  const RlePartition r(q);
  report.merge(checkRleGridAgreement(q, r));
  report.merge(checkRleSerializeRoundTrip(r));
  if (fullyCondensed(q) != fullyCondensed(r))
    report.add("rle.corpus", "fullyCondensed verdicts differ on " + path);
  for (Proc x : kSlowProcs)
    for (Direction d : kAllDirections) {
      const std::array<Direction, 1> one{d};
      if (pushAvailable(q, x, one) != pushAvailable(r, x, one))
        report.add("rle.corpus",
                   std::string("pushAvailable(") + procName(x) + ", " +
                       directionName(d) + ") verdicts differ on " + path);
    }
  return report;
}

std::vector<std::string> corpusFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".pp")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace pushpart
