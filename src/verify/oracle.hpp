// Exhaustive small-N optimality oracle — ground truth for the search stack.
//
// For small grids the state space the paper's DFA walks (§V: all element
// arrangements with the ratio's exact per-processor counts) can be enumerated
// outright, so the *exact* minimum Volume of Communication is computable and
// every higher layer (DFA condensation, candidate ranking, the serving
// oracle) can be differentially checked against it instead of against each
// other. Two tiers:
//
//   * kExhaustive — full multinomial enumeration of every assignment of the
//     eR/eS/eP cells, with a branch-and-bound lower bound (distinct-owner
//     sums only ever grow as cells are placed) seeded by the best canonical
//     candidate, so the search visits a small fraction of the raw state
//     space. Used whenever the multinomial fits the options budget.
//   * kFamily — above the budget, exact minimisation over the canonical
//     Archetype A family: every placement of R and S as disjoint row-major
//     filled rectangles (all widths × all positions). An upper bound on the
//     true minimum, still exact within its family, and cheap (O(N) VoC per
//     placement pair via precomputed occupancy tables).
//
// The differential tests assert: DFA best-of-batch == exhaustive minimum on
// tier-kExhaustive grids, and layer-vs-layer ordering bounds everywhere.
#pragma once

#include <cstdint>

#include "grid/partition.hpp"
#include "grid/ratio.hpp"

namespace pushpart {

struct SmallNOracleOptions {
  /// Largest multinomial state count full enumeration may attempt; above it
  /// the oracle answers from the canonical-family tier.
  std::int64_t maxExhaustiveStates = 20'000'000;
};

enum class SmallNOracleTier {
  kExhaustive = 0,  ///< Full enumeration — the returned minimum is ground truth.
  kFamily = 1,      ///< Canonical-family minimum — exact upper bound only.
};

constexpr const char* smallNOracleTierName(SmallNOracleTier t) {
  switch (t) {
    case SmallNOracleTier::kExhaustive: return "exhaustive";
    case SmallNOracleTier::kFamily: return "family";
  }
  return "?";
}

struct SmallNOracleResult {
  /// Partition is not default-constructible; the oracle seeds `best` with the
  /// incumbent and overwrites it with every improvement.
  explicit SmallNOracleResult(Partition incumbent)
      : best(std::move(incumbent)) {}

  SmallNOracleTier tier = SmallNOracleTier::kExhaustive;
  std::int64_t minVoc = 0;        ///< Minimum VoC over the tier's space.
  Partition best;                 ///< An argmin partition achieving minVoc.
  std::int64_t statesVisited = 0; ///< Complete assignments / placement pairs
                                  ///< actually evaluated (post-pruning).
  std::int64_t stateSpace = 0;    ///< Multinomial size, saturated at cap.
};

/// Number of distinct arrangements of the ratio's exact element counts on an
/// n×n grid — the multinomial (n² choose eR)(n²−eR choose eS) — saturated at
/// `cap` so callers can budget without overflow. Throws via Ratio checks on
/// invalid input.
std::int64_t arrangementCountCapped(int n, const Ratio& ratio,
                                    std::int64_t cap);

/// Computes the minimum Volume of Communication over all arrangements with
/// the ratio's exact element counts (tier kExhaustive) or over the canonical
/// rectangular family (tier kFamily) when the full space exceeds the budget.
/// Throws std::invalid_argument for n < 2.
SmallNOracleResult smallNOptimalVoc(int n, const Ratio& ratio,
                                    const SmallNOracleOptions& options = {});

}  // namespace pushpart
