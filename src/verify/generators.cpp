#include "verify/generators.hpp"

#include <vector>

#include "grid/builder.hpp"
#include "model/algo.hpp"
#include "shapes/candidates.hpp"
#include "support/check.hpp"

namespace pushpart {

Ratio genRatio(Rng& rng) {
  if (rng.chance(0.5)) {
    const auto& pool = paperRatios();
    return pool[static_cast<std::size_t>(rng.below(pool.size()))];
  }
  const double p = 1.0 + rng.real() * 11.0;
  const double r = 1.0 + rng.real() * (p - 1.0);
  return Ratio{p, r, 1.0};
}

int genSmallN(Rng& rng, int minN, int maxN) {
  PUSHPART_CHECK_MSG(3 <= minN && minN <= maxN,
                     "need 3 <= minN <= maxN, got " << minN << ".." << maxN);
  return minN + static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(maxN - minN + 1)));
}

GenStyle genStyle(Rng& rng) {
  const double draw = rng.real();
  if (draw < 0.45) return GenStyle::kScattered;
  if (draw < 0.70) return GenStyle::kClustered;
  if (draw < 0.85) return GenStyle::kCandidate;
  return GenStyle::kMutated;
}

Partition genPartition(GenStyle style, int n, const Ratio& ratio, Rng& rng) {
  switch (style) {
    case GenStyle::kScattered:
      return randomPartition(n, ratio, rng);
    case GenStyle::kClustered:
      return randomClusteredPartition(n, ratio, rng);
    case GenStyle::kCandidate:
    case GenStyle::kMutated: {
      std::vector<CandidateShape> feasible;
      for (CandidateShape shape : kAllCandidates)
        if (candidateFeasible(shape, n, ratio)) feasible.push_back(shape);
      if (feasible.empty()) return randomPartition(n, ratio, rng);
      Partition q = makeCandidate(
          feasible[static_cast<std::size_t>(rng.below(feasible.size()))], n,
          ratio);
      if (style == GenStyle::kMutated) {
        const auto swaps = 1 + rng.below(static_cast<std::uint64_t>(n));
        for (std::uint64_t k = 0; k < swaps; ++k) {
          const auto bound = static_cast<std::uint64_t>(n);
          q.swapCells(static_cast<int>(rng.below(bound)),
                      static_cast<int>(rng.below(bound)),
                      static_cast<int>(rng.below(bound)),
                      static_cast<int>(rng.below(bound)));
        }
      }
      return q;
    }
  }
  return randomPartition(n, ratio, rng);
}

Schedule genSchedule(Rng& rng) { return Schedule::random(rng); }

PlanRequest genPlanRequest(Rng& rng) {
  PlanRequest req;
  req.n = genSmallN(rng, 12, 96);
  req.ratio = genRatio(rng);
  req.algo = kAllAlgos[static_cast<std::size_t>(rng.below(kAllAlgos.size()))];
  req.topology =
      rng.chance(0.25) ? Topology::kStar : Topology::kFullyConnected;
  if (req.topology == Topology::kStar)
    req.star.hub =
        kAllProcs[static_cast<std::size_t>(rng.below(kAllProcs.size()))];
  req.tier = rng.chance(0.5) ? PlanTier::kFast : PlanTier::kSearch;
  req.searchRuns = 1 + static_cast<int>(rng.below(4));
  req.searchSeed = rng() | 1u;
  return req;
}

}  // namespace pushpart
