// Counterexample shrinking — minimise a failing case before reporting it.
//
// A property failure found at n=87 with ratio 7.3:4.1:1 is nearly useless
// for debugging; the same failure at n=5 with ratio 2:1:1 is a unit test.
// shrinkCase greedily applies size- and ratio-reducing transformations while
// the caller's predicate still fails, QuickCheck-style: each round tries
// candidates in order (halve n toward the floor, decrement n, round ratio
// components down toward small integers, snap to the simplest ratio 2:1:1)
// and restarts from the first candidate that still fails. The fixpoint is
// the minimal failing case under these moves. The case's seed is never
// shrunk — it is what makes the dumped artifact replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "grid/ratio.hpp"

namespace pushpart {

/// A replayable property-failure description: everything a generator needs
/// to rebuild the exact failing input.
struct FailingCase {
  int n = 0;
  Ratio ratio{2, 1, 1};
  std::uint64_t seed = 0;
  int style = 0;  ///< GenStyle index (or property-specific variant selector).

  std::string str() const;
};

/// True when the property HOLDS for `c`; false when it fails. Shrinking
/// keeps only transformations under which the property still fails.
using PropertyHolds = std::function<bool(const FailingCase&)>;

struct ShrinkOptions {
  int minN = 3;         ///< Never shrink n below this.
  int maxRounds = 64;   ///< Safety cap on shrink rounds (never hit in practice).
};

struct ShrinkResult {
  FailingCase minimal;
  int rounds = 0;       ///< Accepted shrink steps.
  int attempts = 0;     ///< Predicate evaluations spent.
};

/// Minimises `failing` (which must fail `holds` — checked) and returns the
/// smallest still-failing case reached. Deterministic for a deterministic
/// predicate.
ShrinkResult shrinkCase(const FailingCase& failing, const PropertyHolds& holds,
                        const ShrinkOptions& options = {});

}  // namespace pushpart
