#include "verify/suite.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "atlas/builder.hpp"
#include "bounds/bounds.hpp"
#include "dfa/batch.hpp"
#include "family/family.hpp"
#include "shapes/candidates.hpp"
#include "verify/generators.hpp"

namespace pushpart {
namespace {

/// Best condensed VoC over a seeded DFA batch (the §VII experiment, shrunk
/// to a differential probe). Returns int64 max when the batch is empty.
std::int64_t dfaBestVoc(int n, const Ratio& ratio, int runs,
                        std::uint64_t seed, BatchSummary* summary = nullptr) {
  BatchOptions batch;
  batch.n = n;
  batch.ratio = ratio;
  batch.runs = runs;
  batch.seed = seed;
  batch.threads = 1;  // tiny grids: determinism beats parallelism here
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  const BatchSummary s = runBatch(batch, [&](const BatchRun& run) {
    best = std::min(best, run.result.final.volumeOfCommunication());
  });
  if (summary) *summary = s;
  return best;
}

std::int64_t candidateBestVoc(int n, const Ratio& ratio) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, n, ratio)) continue;
    best = std::min(best,
                    makeCandidate(shape, n, ratio).volumeOfCommunication());
  }
  return best;
}

PropertyRun pushInvariantProperty(const FailingCase& c) {
  Rng rng(c.seed);
  Partition q = genPartition(static_cast<GenStyle>(c.style), c.n, c.ratio,
                             rng);
  const Schedule schedule = genSchedule(rng);
  // Walk the schedule round-robin like the DFA does, checking the §IV-A
  // guarantees after every attempt; stop at the accept state (a full sweep
  // with no applied push) or after a generous cap.
  for (int sweep = 0; sweep < 64; ++sweep) {
    bool any = false;
    for (const ScheduleSlot& slot : schedule.slots) {
      const Partition before = q;
      const PushOutcome outcome = tryPush(q, slot.active, slot.dir);
      const CheckReport report = checkPushOutcome(before, q, outcome);
      if (!report.ok()) return {report, q};
      any = any || outcome.applied;
    }
    if (!any) break;
  }
  return {CheckReport{}, std::nullopt};
}

PropertyRun dfaCondensationProperty(const FailingCase& c) {
  Rng rng(c.seed);
  const Partition q0 =
      genPartition(static_cast<GenStyle>(c.style), c.n, c.ratio, rng);
  const Schedule schedule = genSchedule(rng);
  const DfaResult result = runDfa(q0, schedule, {});
  CheckReport report = checkDfaRun(q0, result);
  report.merge(checkCondensedState(result.final, c.ratio));
  if (!report.ok()) return {report, result.final};
  return {CheckReport{}, std::nullopt};
}

PropertyRun serializeRoundTripProperty(const FailingCase& c) {
  Rng rng(c.seed);
  const Partition q =
      genPartition(static_cast<GenStyle>(c.style), c.n, c.ratio, rng);
  const CheckReport report = checkSerializeRoundTrip(q);
  if (!report.ok()) return {report, q};
  return {CheckReport{}, std::nullopt};
}

/// The run-length engine is lockstep-equal to the element-exact grid
/// (DESIGN.md §15): same push outcomes after every attempt, same DFA walks,
/// same serialized bytes. Shrinks like any other property — the evidence is
/// the start partition whose trajectory first diverged.
PropertyRun rleGridEquivalenceProperty(const FailingCase& c) {
  Rng rng(c.seed);
  const Partition q0 =
      genPartition(static_cast<GenStyle>(c.style), c.n, c.ratio, rng);
  const Schedule schedule = genSchedule(rng);
  CheckReport report = checkRlePushLockstep(q0, schedule);
  if (report.ok()) report.merge(checkRleDfaLockstep(q0, schedule));
  if (report.ok()) report.merge(checkRleSerializeRoundTrip(RlePartition(q0)));
  if (!report.ok()) return {report, q0};
  return {CheckReport{}, std::nullopt};
}

/// Family-registry soundness (DESIGN.md §17): every candidate the registry
/// emits sits on or above the memory-independent communication lower bound
/// (gap >= 0), the union over all families never loses to the canonical
/// best (the six shapes are registry members, so at worst it ties), and on
/// grids small enough for the exhaustive oracle the true optimum floors
/// both — candidates from any family are upper bounds, the bound is a
/// lower bound, and the optimum sits between them.
PropertyRun familyBeatsOrTiesCanonicalProperty(
    const FailingCase& c, const SmallNOracleOptions& oracleOptions) {
  const std::int64_t bound = vocLowerBound(c.n, c.ratio);
  constexpr std::int64_t kNoCandidate =
      std::numeric_limits<std::int64_t>::max();
  std::int64_t canonicalBest = kNoCandidate;
  std::int64_t familyBest = kNoCandidate;
  std::optional<Partition> bestPartition;
  CheckReport r;
  builtinFamilies().forEach(
      c.n, c.ratio, FamilySet::all(), [&](const FamilyCandidate& cand) {
        const std::int64_t voc = cand.partition.volumeOfCommunication();
        if (voc < bound)
          r.add("family.lower-bound",
                cand.name + " VoC " + std::to_string(voc) +
                    " undercuts the communication lower bound " +
                    std::to_string(bound));
        if (cand.family == FamilyId::kCanonical)
          canonicalBest = std::min(canonicalBest, voc);
        if (voc < familyBest) {
          familyBest = voc;
          bestPartition = cand.partition;
        }
      });
  if (canonicalBest != kNoCandidate && familyBest > canonicalBest)
    r.add("family.beats-or-ties-canonical",
          "union best VoC " + std::to_string(familyBest) +
              " loses to canonical best " + std::to_string(canonicalBest));
  const SmallNOracleResult oracle =
      smallNOptimalVoc(c.n, c.ratio, oracleOptions);
  if (oracle.tier == SmallNOracleTier::kExhaustive) {
    if (familyBest != kNoCandidate && familyBest < oracle.minVoc)
      r.add("family.exhaustive-floor",
            "family candidate VoC " + std::to_string(familyBest) +
                " undercuts the exhaustive optimum " +
                std::to_string(oracle.minVoc));
    if (bound > oracle.minVoc)
      r.add("bounds.exhaustive-floor",
            "lower bound " + std::to_string(bound) +
                " exceeds the exhaustive optimum " +
                std::to_string(oracle.minVoc));
  }
  if (!r.ok()) return {r, bestPartition};
  return {CheckReport{}, std::nullopt};
}

}  // namespace

bool VerifySuiteReport::ok() const {
  for (const auto& p : properties)
    if (!p.passed) return false;
  for (const auto& d : differentials)
    if (!d.agreed) return false;
  for (const auto& [path, report] : corpus)
    if (!report.ok()) return false;
  return true;
}

std::string VerifySuiteReport::summary() const {
  std::ostringstream os;
  for (const auto& p : properties) os << p.str() << "\n";
  for (const auto& d : differentials) {
    os << "differential n=" << d.n << " ratio=" << d.ratio.str() << " ["
       << smallNOracleTierName(d.tier) << "] oracle=" << d.oracleMinVoc
       << " dfa=" << d.dfaBestVoc << " candidates=" << d.candidateBestVoc
       << (d.agreed ? " — agree" : " — DISAGREE") << "\n";
    if (!d.detail.empty()) os << "  " << d.detail << "\n";
  }
  for (const auto& [path, report] : corpus)
    os << "corpus " << path << ": " << report.str() << "\n";
  os << (ok() ? "VERIFY OK" : "VERIFY FAILED");
  return os.str();
}

VerifySuiteReport runVerifySuite(const VerifySuiteOptions& options) {
  VerifySuiteReport report;
  const int scale = options.deep ? 4 : 1;

  PropertyOptions prop;
  prop.seed = options.seed;
  prop.artifactDir = options.artifactDir;

  prop.iterations = 25 * scale;
  prop.minN = 4;
  prop.maxN = options.deep ? 40 : 24;
  report.properties.push_back(
      runProperty("push-invariants", prop, pushInvariantProperty));
  report.properties.push_back(
      runProperty("serialize-roundtrip", prop, serializeRoundTripProperty));

  prop.iterations = 15 * scale;
  prop.maxN = options.deep ? 32 : 20;
  report.properties.push_back(
      runProperty("dfa-condensation", prop, dfaCondensationProperty));

  // Differential gate for the run-length engine: every case replays a full
  // push trajectory and a full DFA walk on both engines in lockstep.
  prop.iterations = 20 * scale;
  prop.maxN = options.deep ? 32 : 20;
  report.properties.push_back(
      runProperty("rle-grid-equivalence", prop, rleGridEquivalenceProperty));

  // Candidate-family soundness on exhaustively checkable grids: bound <=
  // optimum <= union best <= canonical best, for every generated ratio.
  {
    SmallNOracleOptions familyOracle;
    familyOracle.maxExhaustiveStates = options.maxExhaustiveStates;
    prop.iterations = 6 * scale;
    prop.minN = 4;
    prop.maxN = 6;
    report.properties.push_back(runProperty(
        "family-beats-or-ties-canonical", prop,
        [&](const FailingCase& c) -> PropertyRun {
          return familyBeatsOrTiesCanonicalProperty(c, familyOracle);
        }));
  }

  // Serving-layer tier agreement. One oracle serves every case; the request
  // carries the per-case ratio, and shrinking the grid shrinks the request.
  {
    Oracle oracle;
    prop.iterations = 6 * scale;
    prop.maxN = 20;
    report.properties.push_back(runProperty(
        "serve-tier-agreement", prop, [&](const FailingCase& c) -> PropertyRun {
          Rng rng(c.seed);
          PlanRequest req = genPlanRequest(rng);
          req.n = 12 + c.n;  // keep clear of degenerate-n infeasibility
          req.ratio = c.ratio;
          req.searchRuns = 2;
          return {checkOracleTierAgreement(oracle, req), std::nullopt};
        }));
  }

  // Degradation-ladder contract (DESIGN.md §12). The checker drives the
  // deadline rungs itself, so each case gets a fresh oracle with the
  // breaker disabled — deliberate busts would otherwise trip it and change
  // which rung answers — and a private cache (the checker asserts that the
  // unhurried retry re-solves cold).
  {
    prop.iterations = 4 * scale;
    prop.maxN = 20;
    report.properties.push_back(runProperty(
        "serve-degradation", prop, [&](const FailingCase& c) -> PropertyRun {
          OracleOptions degradeOptions;
          degradeOptions.breaker.failureThreshold = 0;
          Oracle oracle(degradeOptions);
          Rng rng(c.seed);
          PlanRequest req = genPlanRequest(rng);
          req.n = 12 + c.n;
          req.ratio = c.ratio;
          req.searchRuns = 2;
          return {checkServeDegradation(oracle, req), std::nullopt};
        }));
  }

  // Atlas-consistency (DESIGN.md §14). One coarse surface serves seeded
  // random ratios inside its span; every atlas-certified answer must carry
  // its certificate and agree with the live tier-B reference
  // (solveUncached) to within the bound. Prefetch is off so the surface the
  // property sees is exactly the one built here.
  {
    AtlasBuildOptions atlasBuild;
    atlasBuild.spec.prMin = 1.0;
    atlasBuild.spec.prMax = 12.0;
    atlasBuild.spec.prSteps = 12;
    atlasBuild.spec.rrMin = 1.0;
    atlasBuild.spec.rrMax = 6.0;
    atlasBuild.spec.rrSteps = 6;
    atlasBuild.info.n = 40;
    atlasBuild.threads = 1;
    OracleOptions atlasOptions;
    atlasOptions.atlas = buildAtlas(atlasBuild);
    atlasOptions.atlasPrefetch = false;
    Oracle oracle(atlasOptions);
    prop.iterations = 6 * scale;
    prop.maxN = 20;
    report.properties.push_back(runProperty(
        "serve-atlas-consistency", prop,
        [&](const FailingCase& c) -> PropertyRun {
          Rng rng(c.seed);
          PlanRequest req;
          req.n = 24 + c.n;
          // A seeded random ratio inside the atlas span (P_r >= R_r by
          // construction); the grid case only contributes n and seed.
          const double pr = 1.0 + 11.0 * rng.real();
          const double rr = 1.0 + (std::min(pr, 6.0) - 1.0) * rng.real();
          req.ratio = Ratio{pr, rr, 1.0};
          req.tier = PlanTier::kSearch;
          req.searchRuns = 2;
          req.searchSeed = c.seed;
          return {checkAtlasConsistency(oracle, req,
                                        atlasOptions.atlasGapPct),
                  std::nullopt};
        }));
  }

  // Small-N differential sweep: exhaustive ground truth vs the DFA batch vs
  // the canonical candidates, across the acceptance ratio set.
  std::vector<Ratio> ratios = {Ratio{2, 1, 1}, Ratio{3, 1, 1}, Ratio{5, 2, 1},
                               Ratio{10, 3, 1}};
  if (options.deep) {
    ratios.push_back(Ratio{4, 1, 1});
    ratios.push_back(Ratio{3, 2, 1});
  }
  std::vector<int> sizes = {4, 5};
  if (options.deep) sizes.push_back(6);
  const int dfaRuns = options.deep ? 384 : 48;

  SmallNOracleOptions oracleOptions;
  oracleOptions.maxExhaustiveStates = options.maxExhaustiveStates;

  for (const Ratio& ratio : ratios) {
    for (int n : sizes) {
      const SmallNOracleResult oracle =
          smallNOptimalVoc(n, ratio, oracleOptions);
      DifferentialOutcome out;
      out.n = n;
      out.ratio = ratio;
      out.tier = oracle.tier;
      out.oracleMinVoc = oracle.minVoc;
      out.dfaBestVoc = dfaBestVoc(n, ratio, dfaRuns, options.seed);
      out.candidateBestVoc = candidateBestVoc(n, ratio);

      if (oracle.tier == SmallNOracleTier::kExhaustive) {
        out.agreed = out.dfaBestVoc == oracle.minVoc;
      } else {
        // Family minima are upper bounds seeded with the candidates, so the
        // only hard relation is candidates >= family min; the DFA value is
        // recorded for the report but free to land on either side.
        out.agreed = out.candidateBestVoc >= oracle.minVoc;
      }

      if (!out.agreed) {
        // Shrink the disagreement like any property failure and dump the
        // oracle's argmin as the replayable artifact.
        FailingCase c;
        c.n = n;
        c.ratio = ratio;
        c.seed = options.seed;
        PropertyOptions diffProp = prop;
        diffProp.minN = 3;
        std::ostringstream name;
        name << "small-n-differential-n" << n << "-" << ratio.str();
        std::string slug = name.str();
        std::replace(slug.begin(), slug.end(), ':', '-');
        const PropertyOutcome failure = runPropertyOnCase(
            slug, c, diffProp, [&](const FailingCase& fc) -> PropertyRun {
              const SmallNOracleResult o =
                  smallNOptimalVoc(fc.n, fc.ratio, oracleOptions);
              const std::int64_t best =
                  dfaBestVoc(fc.n, fc.ratio, dfaRuns, fc.seed);
              CheckReport r;
              if (o.tier == SmallNOracleTier::kExhaustive &&
                  best != o.minVoc)
                r.add("differential.small-n-optimality",
                      "exhaustive minimum VoC " + std::to_string(o.minVoc) +
                          " but DFA best-of-" + std::to_string(dfaRuns) +
                          " reached " + std::to_string(best));
              if (o.tier == SmallNOracleTier::kFamily &&
                  candidateBestVoc(fc.n, fc.ratio) < o.minVoc)
                r.add("differential.family-bound",
                      "a canonical candidate beats the family minimum");
              if (!r.ok()) return {r, o.best};
              return {r, std::nullopt};
            });
        report.properties.push_back(failure);
        out.detail = "disagreement shrunk to " + failure.minimal.str() +
                     (failure.artifactPath.empty()
                          ? ""
                          : "; oracle argmin dumped at " +
                                failure.artifactPath);
      }
      report.differentials.push_back(out);
    }
  }

  if (!options.corpusDir.empty()) {
    for (const std::string& path : corpusFiles(options.corpusDir)) {
      CheckReport fileReport;
      try {
        fileReport = replayCorpusFile(path);
      } catch (const std::exception& e) {
        fileReport.add("corpus.load", e.what());
      }
      report.corpus.emplace_back(path, fileReport);
    }
  }
  return report;
}

}  // namespace pushpart
