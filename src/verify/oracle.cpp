#include "verify/oracle.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <vector>

#include "shapes/candidates.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

__extension__ using uint128 = unsigned __int128;

/// C(a, b) saturated at cap. Exact at every step (C(a,i+1) = C(a,i)·(a−i)/(i+1)),
/// monotone in i for b <= a/2, so the first step past cap settles the answer.
std::int64_t chooseCapped(std::int64_t a, std::int64_t b, std::int64_t cap) {
  if (b < 0 || b > a) return 0;
  b = std::min(b, a - b);
  uint128 result = 1;
  for (std::int64_t i = 0; i < b; ++i) {
    result = result * static_cast<uint128>(a - i) /
             static_cast<uint128>(i + 1);
    if (result > static_cast<uint128>(cap)) return cap;
  }
  return static_cast<std::int64_t>(result);
}

/// Branch-and-bound enumerator over every assignment with fixed counts.
///
/// Cells are assigned in row-major order; the per-line distinct-owner sums
/// only ever grow as cells are placed, and every still-empty line will end
/// with at least one owner, so
///   lb = N·(sumRow + zeroRows − n) + N·(sumCol + zeroCols − n)
/// is a valid lower bound on every completion of the current prefix.
class Enumerator {
 public:
  Enumerator(int n, std::array<std::int64_t, kNumProcs> counts,
             std::int64_t incumbentVoc)
      : n_(n),
        remaining_(counts),
        cells_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
               Proc::P),
        rowDistinct_(static_cast<std::size_t>(n), 0),
        colDistinct_(static_cast<std::size_t>(n), 0),
        zeroRows_(n),
        zeroCols_(n),
        bestVoc_(incumbentVoc) {
    for (auto& v : rowCnt_) v.assign(static_cast<std::size_t>(n), 0);
    for (auto& v : colCnt_) v.assign(static_cast<std::size_t>(n), 0);
  }

  void run() { dfs(0); }

  std::int64_t bestVoc() const { return bestVoc_; }
  bool improved() const { return !bestCells_.empty(); }
  const std::vector<Proc>& bestCells() const { return bestCells_; }
  std::int64_t leaves() const { return leaves_; }

 private:
  void place(int i, int j, Proc p) {
    const auto s = procSlot(p);
    if (rowCnt_[s][static_cast<std::size_t>(i)]++ == 0) {
      if (rowDistinct_[static_cast<std::size_t>(i)]++ == 0) --zeroRows_;
      ++sumRow_;
    }
    if (colCnt_[s][static_cast<std::size_t>(j)]++ == 0) {
      if (colDistinct_[static_cast<std::size_t>(j)]++ == 0) --zeroCols_;
      ++sumCol_;
    }
  }

  void unplace(int i, int j, Proc p) {
    const auto s = procSlot(p);
    if (--rowCnt_[s][static_cast<std::size_t>(i)] == 0) {
      if (--rowDistinct_[static_cast<std::size_t>(i)] == 0) ++zeroRows_;
      --sumRow_;
    }
    if (--colCnt_[s][static_cast<std::size_t>(j)] == 0) {
      if (--colDistinct_[static_cast<std::size_t>(j)] == 0) ++zeroCols_;
      --sumCol_;
    }
  }

  std::int64_t lowerBound() const {
    const std::int64_t rows = sumRow_ + zeroRows_ - n_;
    const std::int64_t cols = sumCol_ + zeroCols_ - n_;
    return static_cast<std::int64_t>(n_) * (rows + cols);
  }

  void dfs(std::size_t idx) {
    if (lowerBound() >= bestVoc_) return;
    if (idx == cells_.size()) {
      ++leaves_;
      const std::int64_t voc = lowerBound();  // zeroRows/zeroCols are 0 here.
      if (voc < bestVoc_) {
        bestVoc_ = voc;
        bestCells_ = cells_;
      }
      return;
    }
    const int i = static_cast<int>(idx) / n_;
    const int j = static_cast<int>(idx) % n_;
    for (Proc p : kAllProcs) {
      if (remaining_[procSlot(p)] == 0) continue;
      --remaining_[procSlot(p)];
      cells_[idx] = p;
      place(i, j, p);
      dfs(idx + 1);
      unplace(i, j, p);
      ++remaining_[procSlot(p)];
    }
  }

  int n_;
  std::array<std::int64_t, kNumProcs> remaining_;
  std::vector<Proc> cells_;
  std::array<std::vector<std::int32_t>, kNumProcs> rowCnt_, colCnt_;
  std::vector<std::int32_t> rowDistinct_, colDistinct_;
  std::int64_t sumRow_ = 0, sumCol_ = 0;
  int zeroRows_, zeroCols_;
  std::int64_t bestVoc_;
  std::vector<Proc> bestCells_;
  std::int64_t leaves_ = 0;
};

/// One member of the canonical rectangular family: `count` cells filled
/// row-major into an h×w box at (i0, j0) (last row possibly partial).
struct FamilyPlacement {
  int i0 = 0, j0 = 0, h = 0, w = 0;
  std::int64_t count = 0;
  /// Absolute per-row / per-column cell counts on the n×n grid.
  std::vector<std::int32_t> rowCells, colCells;

  Rect rect() const { return Rect{i0, i0 + h, j0, j0 + w}; }
};

std::vector<FamilyPlacement> familyPlacements(int n, std::int64_t count) {
  std::vector<FamilyPlacement> out;
  if (count == 0) {
    out.push_back(FamilyPlacement{
        0, 0, 0, 0, 0,
        std::vector<std::int32_t>(static_cast<std::size_t>(n), 0),
        std::vector<std::int32_t>(static_cast<std::size_t>(n), 0)});
    return out;
  }
  for (int w = 1; w <= n; ++w) {
    const auto h64 = (count + w - 1) / w;
    if (h64 > n) continue;
    const int h = static_cast<int>(h64);
    const auto fullRows = count / w;
    const auto rem = count % w;
    for (int i0 = 0; i0 + h <= n; ++i0) {
      for (int j0 = 0; j0 + w <= n; ++j0) {
        FamilyPlacement pl;
        pl.i0 = i0;
        pl.j0 = j0;
        pl.h = h;
        pl.w = w;
        pl.count = count;
        pl.rowCells.assign(static_cast<std::size_t>(n), 0);
        pl.colCells.assign(static_cast<std::size_t>(n), 0);
        for (int r = 0; r < h; ++r)
          pl.rowCells[static_cast<std::size_t>(i0 + r)] =
              r < fullRows ? w : static_cast<std::int32_t>(rem);
        for (int c = 0; c < w; ++c)
          pl.colCells[static_cast<std::size_t>(j0 + c)] =
              static_cast<std::int32_t>(fullRows + (c < rem ? 1 : 0));
        out.push_back(std::move(pl));
      }
    }
  }
  return out;
}

/// Writes a placement's cells into `q` (row-major fill), owner `p`.
void paintPlacement(Partition& q, const FamilyPlacement& pl, Proc p) {
  std::int64_t left = pl.count;
  for (int r = pl.i0; r < pl.i0 + pl.h && left > 0; ++r)
    for (int c = pl.j0; c < pl.j0 + pl.w && left > 0; ++c, --left)
      q.set(r, c, p);
}

/// Best feasible canonical candidate by grid-measured VoC, as the exhaustive
/// tier's incumbent. Null when no candidate is feasible at this n.
struct Incumbent {
  std::int64_t voc = std::numeric_limits<std::int64_t>::max();
  bool found = false;
};
Incumbent candidateIncumbent(int n, const Ratio& ratio, Partition* best) {
  Incumbent inc;
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, n, ratio)) continue;
    Partition q = makeCandidate(shape, n, ratio);
    const std::int64_t voc = q.volumeOfCommunication();
    if (voc < inc.voc) {
      inc.voc = voc;
      inc.found = true;
      if (best) *best = std::move(q);
    }
  }
  return inc;
}

}  // namespace

std::int64_t arrangementCountCapped(int n, const Ratio& ratio,
                                    std::int64_t cap) {
  PUSHPART_CHECK(cap > 0);
  const auto counts = ratio.elementCounts(n);
  const auto n2 = static_cast<std::int64_t>(n) * n;
  const std::int64_t cR = chooseCapped(n2, counts[procIndex(Proc::R)], cap);
  if (cR >= cap) return cap;
  const std::int64_t cS =
      chooseCapped(n2 - counts[procIndex(Proc::R)],
                   counts[procIndex(Proc::S)], cap);
  const uint128 product = static_cast<uint128>(cR) * static_cast<uint128>(cS);
  if (product > static_cast<uint128>(cap)) return cap;
  return static_cast<std::int64_t>(product);
}

SmallNOracleResult smallNOptimalVoc(int n, const Ratio& ratio,
                                    const SmallNOracleOptions& options) {
  if (n < 2)
    throw std::invalid_argument("smallNOptimalVoc: need n >= 2, got " +
                                std::to_string(n));
  PUSHPART_CHECK_MSG(ratio.valid(), "invalid ratio " << ratio.str());
  const auto counts = ratio.elementCounts(n);

  SmallNOracleResult result{Partition(n)};
  result.stateSpace =
      arrangementCountCapped(n, ratio, options.maxExhaustiveStates);

  Partition incumbentBest(n);
  const Incumbent incumbent = candidateIncumbent(n, ratio, &incumbentBest);

  if (result.stateSpace < options.maxExhaustiveStates) {
    result.tier = SmallNOracleTier::kExhaustive;
    Enumerator search(n, counts, incumbent.voc);
    search.run();
    result.statesVisited = search.leaves();
    if (search.improved()) {
      result.minVoc = search.bestVoc();
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
          result.best.set(
              i, j,
              search.bestCells()[static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(n) +
                                 static_cast<std::size_t>(j)]);
    } else {
      // No arrangement beat the incumbent — the best candidate IS optimal.
      PUSHPART_CHECK_MSG(incumbent.found,
                         "exhaustive enumeration found no arrangement for n="
                             << n << " ratio=" << ratio.str());
      result.minVoc = incumbent.voc;
      result.best = std::move(incumbentBest);
    }
    return result;
  }

  // Family tier: minimise over all disjoint row-major rectangle placements
  // of R and S, seeded with the canonical candidates (whose ragged edges can
  // differ slightly from the row-major fill).
  result.tier = SmallNOracleTier::kFamily;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  if (incumbent.found) {
    best = incumbent.voc;
    result.best = incumbentBest;
  }

  const auto rPlacements = familyPlacements(n, counts[procIndex(Proc::R)]);
  const auto sPlacements = familyPlacements(n, counts[procIndex(Proc::S)]);
  const FamilyPlacement* bestR = nullptr;
  const FamilyPlacement* bestS = nullptr;
  const auto nTotal = static_cast<std::int64_t>(n);
  for (const auto& r : rPlacements) {
    for (const auto& s : sPlacements) {
      if (r.rect().overlaps(s.rect())) continue;
      ++result.statesVisited;
      std::int64_t sumRow = 0, sumCol = 0;
      for (int line = 0; line < n; ++line) {
        const auto li = static_cast<std::size_t>(line);
        sumRow += (r.rowCells[li] > 0) + (s.rowCells[li] > 0) +
                  (r.rowCells[li] + s.rowCells[li] < n);
        sumCol += (r.colCells[li] > 0) + (s.colCells[li] > 0) +
                  (r.colCells[li] + s.colCells[li] < n);
      }
      const std::int64_t voc = nTotal * (sumRow - n + sumCol - n);
      if (voc < best) {
        best = voc;
        bestR = &r;
        bestS = &s;
      }
    }
  }
  PUSHPART_CHECK_MSG(best < std::numeric_limits<std::int64_t>::max(),
                     "family enumeration found no placement for n="
                         << n << " ratio=" << ratio.str());
  if (bestR != nullptr) {
    Partition q(n);  // all-P fill
    paintPlacement(q, *bestR, Proc::R);
    paintPlacement(q, *bestS, Proc::S);
    PUSHPART_CHECK_MSG(q.volumeOfCommunication() == best,
                       "family VoC mismatch: table " << best << " vs grid "
                           << q.volumeOfCommunication());
    result.best = std::move(q);
  }
  result.minVoc = best;
  return result;
}

}  // namespace pushpart
