// The standard verification suite behind `pushpart verify` and the ctest
// differential gates.
//
// One call runs, under a quick or deep budget:
//
//   * the core property set — push invariants, DFA condensation (weak
//     Postulate 1), serialize round-trips, serving-oracle tier agreement —
//     each through the generate→check→shrink→dump harness;
//   * the small-N differential sweep: for every ratio in the acceptance set
//     {2:1:1, 3:1:1, 5:2:1, 10:3:1} (plus more when deep), the exhaustive
//     oracle's exact minimum VoC is compared against the best of a seeded
//     DFA batch and against the canonical candidates. On the exhaustive tier
//     the DFA must *match* the oracle exactly; disagreements are shrunk and
//     dumped like any property failure;
//   * corpus replay of checked-in counterexample files (classify +
//     invariants; the no-Unknown/no-violation regression gate).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "verify/harness.hpp"
#include "verify/oracle.hpp"

namespace pushpart {

struct VerifySuiteOptions {
  bool deep = false;          ///< Deep budget: more cases, runs and sizes.
  std::uint64_t seed = 1;
  std::string artifactDir = "verify-artifacts";
  std::string corpusDir;      ///< Directory of *.pp to replay ("" = skip).
  std::int64_t maxExhaustiveStates = 20'000'000;
};

/// One oracle-vs-search comparison point.
struct DifferentialOutcome {
  int n = 0;
  Ratio ratio{2, 1, 1};
  SmallNOracleTier tier = SmallNOracleTier::kExhaustive;
  std::int64_t oracleMinVoc = 0;
  std::int64_t dfaBestVoc = 0;        ///< Best condensed VoC over the batch.
  std::int64_t candidateBestVoc = 0;  ///< Best feasible canonical candidate.
  bool agreed = true;
  std::string detail;
};

struct VerifySuiteReport {
  std::vector<PropertyOutcome> properties;
  std::vector<DifferentialOutcome> differentials;
  /// (path, report) per replayed corpus file.
  std::vector<std::pair<std::string, CheckReport>> corpus;

  bool ok() const;
  std::string summary() const;
};

VerifySuiteReport runVerifySuite(const VerifySuiteOptions& options);

}  // namespace pushpart
