// Reusable invariant checkers — the verification subsystem's shared core.
//
// The paper's guarantees (§IV-A: a Push never increases the Volume of
// Communication and never grows an enclosing rectangle; element counts are
// conserved by construction) are enforced transactionally inside the Push
// engine. This module restates them — plus the serialization and serving
// contracts the library grew since — as *external* checkers that inspect
// results after the fact, so the fuzzer, the property harness, the corpus
// replay test and `pushpart verify` all share one implementation of "what
// must always hold" instead of each hand-rolling a subset.
//
// Every checker returns a CheckReport: an empty violation list means the
// invariant held. Checkers never throw on a violated invariant (they *record*
// it); they only propagate exceptions from genuinely broken preconditions
// (e.g. unreadable files).
#pragma once

#include <string>
#include <vector>

#include "dfa/dfa.hpp"
#include "dfa/schedule.hpp"
#include "grid/partition.hpp"
#include "grid/ratio.hpp"
#include "push/push.hpp"
#include "rle/rle_partition.hpp"
#include "serve/oracle.hpp"

namespace pushpart {

/// One violated property: which invariant, and the measured evidence.
struct Violation {
  std::string property;  ///< Stable identifier, e.g. "push.voc-nonincrease".
  std::string detail;    ///< Human-readable evidence (numbers, positions).
};

/// Outcome of one or more invariant checks.
struct CheckReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  void add(std::string property, std::string detail);
  void merge(const CheckReport& other);
  /// "ok" or one "property: detail" line per violation.
  std::string str() const;
};

/// Infers the speed ratio a saved partition was built for from its element
/// counts (eP/eS : eR/eS : 1). Exact for partitions built from
/// Ratio::elementCounts up to the integer rounding already present there.
/// Throws std::invalid_argument when R or S owns no cells (no finite ratio).
Ratio inferRatio(const Partition& q);

/// A component-wise confidence interval around an inferred ratio, in the
/// canonical s == 1 scale. Element counts quantize the true shares —
/// Ratio::elementCounts floors R and S (true share in [e, e+1)) and lets P
/// absorb both remainders (true share in (eP − 2, eP]) — so a single
/// partition pins the ratio only to an interval, and near-tied ratios
/// (r ≈ s, or p ≈ r) are genuinely indistinguishable at grid granularity.
/// The interval makes that explicit where the point estimate of inferRatio
/// silently picks a side.
struct RatioInterval {
  Ratio mid{2, 1, 1};  ///< The point estimate (== inferRatio).
  Ratio lo{2, 1, 1};   ///< Component-wise lower bounds (s pinned to 1).
  Ratio hi{2, 1, 1};   ///< Component-wise upper bounds (s pinned to 1).

  /// True when `candidate` (normalized onto the s == 1 scale) lies inside
  /// the interval — the partition is consistent with that ratio.
  bool contains(const Ratio& candidate) const;

  /// True when the counts cannot certify the canonical strict ordering:
  /// the p and r intervals overlap, or the r interval straddles 1. A
  /// near-tie warns consumers (e.g. a RatioEstimator cross-check) that the
  /// inferred ordering may be a rounding artifact.
  bool nearTie() const;
};

/// Interval-carrying companion of inferRatio: bounds from the floor-and-
/// absorb rounding of Ratio::elementCounts. Same precondition — R and S
/// must own at least one cell each.
RatioInterval inferRatioInterval(const Partition& q);

/// The partition's incremental counters agree with a full O(N²) recount and
/// every cell is owned ("grid.counters").
CheckReport checkCounters(const Partition& q);

/// Per-processor element counts are identical in `before` and `after`
/// ("conservation.counts") — the Push exchanges cells, never creates or
/// destroys them.
CheckReport checkConservation(const Partition& before, const Partition& after);

/// The §IV-A Push guarantees, checked against a snapshot taken before the
/// push: VoC never increases (strictly decreases for Types 1–4), R/S
/// enclosing rectangles never grow (P is exempt, mirroring the engine's
/// rule), counts are conserved, and the outcome's bookkeeping (vocBefore /
/// vocAfter) matches the measured grids.
CheckReport checkPushOutcome(const Partition& before, const Partition& after,
                             const PushOutcome& outcome);

/// A completed DFA walk: VoC monotone over the whole run (vocEnd <= vocStart,
/// both matching the grids), element counts conserved from q0, and the final
/// partition's counters consistent.
CheckReport checkDfaRun(const Partition& q0, const DfaResult& result);

/// save→load→save produces byte-identical text and a grid equal to the
/// original ("serialize.roundtrip").
CheckReport checkSerializeRoundTrip(const Partition& q);

/// A condensed accept state satisfies Postulate 1 in the weak form the
/// paper's conclusions rely on: it classifies as a Fig. 5 archetype, or —
/// when it is a locked Unknown state — reduceToArchetypeA finds a canonical
/// Archetype A candidate communicating no more than it does. A locked state
/// that *undercuts* every candidate is the refutation the fuzzer hunts
/// ("postulate1.dominance").
CheckReport checkCondensedState(const Partition& condensed, const Ratio& ratio);

/// Tier agreement for the serving layer: for the same canonical request,
/// tier B (search cross-check) must embed tier A's answer verbatim — same
/// shape, model and VoC — and its searched finals must not beat the
/// recommended candidate while claiming confirmation ("serve.tier-agreement").
CheckReport checkOracleTierAgreement(const Oracle& oracle,
                                     const PlanRequest& request);

/// Degradation-ladder contract for the serving layer (DESIGN.md §12),
/// driven through a deliberately spent deadline: a degraded answer must be
/// marked (never silent), must still carry the valid closed-form candidate
/// for the request — same shape, model and VoC as an unhurried tier-A
/// solve — must record a served tier no higher than the requested tier, and
/// must never be cached (the unhurried retry gets full fidelity). Pass an
/// oracle whose circuit breaker is disabled: the checker probes the
/// deadline rungs specifically, and repeated probe failures would otherwise
/// trip the breaker and change which rung answers
/// ("serve.degradation").
CheckReport checkServeDegradation(Oracle& oracle, const PlanRequest& request);

/// Atlas-consistency for the serving layer: serve `request` through an
/// oracle configured with a plan-surface atlas, then re-solve it live
/// (solveUncached bypasses cache, breaker and atlas). When the answer was
/// atlas-served it must carry its certificate — cell coordinates, gap within
/// `gapPct` — keep full fidelity (atlas provenance is not degradation), and
/// its modeled execution time must agree with the live reference to within
/// the certificate bound plus slack for the surface's build granularity
/// ("serve.atlas-consistency"). Non-atlas answers pass vacuously: the
/// fallback path is tier-agreement's job.
CheckReport checkAtlasConsistency(Oracle& oracle, const PlanRequest& request,
                                  double gapPct);

// --- Grid vs run-length engine equivalence (DESIGN.md §15) ----------------
//
// The run-length engine (src/rle) re-implements the partition state and its
// counter maintenance; these checkers are the differential safety net that
// keeps it pinned to the element-exact grid.

/// Every observable of the run-length state agrees with the grid on the same
/// owners: cells, per-line counts, used lines, distinct-owner counts, VoC,
/// enclosing rectangles — plus the RLE's own structural invariants
/// ("rle.agreement", "rle.counters").
CheckReport checkRleGridAgreement(const Partition& q, const RlePartition& r);

/// Lockstep push trajectory: sweeps `schedule` round-robin on both engines
/// from the same start, requiring the identical PushOutcome (applied, type,
/// VoC bookkeeping, elements moved) and full state agreement after every
/// attempt, until the common accept state or `maxSweeps`
/// ("rle.push-lockstep").
CheckReport checkRlePushLockstep(const Partition& q0, const Schedule& schedule,
                                 int maxSweeps = 64);

/// Lockstep DFA walk: runDfa on the grid vs runDfaT on the run-length state,
/// same start/schedule/options, must stop for the same reason after the same
/// number of pushes and sweeps with identical VoC bookkeeping, beautify
/// summary and final owners ("rle.dfa-lockstep").
CheckReport checkRleDfaLockstep(const Partition& q0, const Schedule& schedule,
                                const DfaOptions& options = {});

/// RLE save→load→save is byte-identical, equals the grid serializer's bytes
/// for the same owners, and reloads to an equal state
/// ("rle.serialize-roundtrip").
CheckReport checkRleSerializeRoundTrip(const RlePartition& q);

/// Full replay of one checked-in counterexample file: load, counters,
/// serialize round-trip, condensed-state dominance (ratio inferred from the
/// grid), and run-length engine parity — state agreement, serializer
/// agreement, and identical push-availability verdicts per (slow processor,
/// direction). The regression gate for tests/corpus.
CheckReport replayCorpusFile(const std::string& path);

/// All *.pp files directly inside `dir`, sorted by name. Missing or empty
/// directories yield an empty list.
std::vector<std::string> corpusFiles(const std::string& dir);

}  // namespace pushpart
