#include "verify/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace pushpart {
namespace {

/// Candidate one-step reductions of `c`, most aggressive first.
std::vector<FailingCase> shrinkCandidates(const FailingCase& c, int minN) {
  std::vector<FailingCase> out;
  const auto withN = [&](int n) {
    FailingCase next = c;
    next.n = n;
    out.push_back(next);
  };
  if (c.n > minN) {
    const int halved = std::max(minN, c.n / 2);
    if (halved < c.n) withN(halved);
    withN(c.n - 1);
  }

  // Ratio moves: snap to the simplest ratio outright, then round each
  // component down toward 1 while keeping the §IV validity assumptions.
  // Every move must strictly reduce the measure (n, total speed, not-yet-
  // simplest) so shrinking terminates: the snap in particular may not raise
  // the total (2:1:1 is not "simpler" than 1:1:1, it is larger).
  const Ratio simplest{2, 1, 1};
  if (!(c.ratio == simplest) && simplest.total() <= c.ratio.total()) {
    FailingCase next = c;
    next.ratio = simplest;
    out.push_back(next);
  }
  const auto withRatio = [&](Ratio r) {
    r.p = std::max({r.p, r.r, r.s});
    if (r.valid() && !(r == c.ratio)) {
      FailingCase next = c;
      next.ratio = r;
      out.push_back(next);
    }
  };
  withRatio(Ratio{std::max(1.0, std::floor(c.ratio.p)),
                  std::max(1.0, std::floor(c.ratio.r)),
                  std::max(1.0, std::floor(c.ratio.s))});
  withRatio(Ratio{std::max(1.0, c.ratio.p - 1.0), c.ratio.r, c.ratio.s});
  withRatio(Ratio{c.ratio.p, std::max(1.0, c.ratio.r - 1.0), c.ratio.s});
  return out;
}

}  // namespace

std::string FailingCase::str() const {
  return "n=" + std::to_string(n) + " ratio=" + ratio.str() +
         " seed=" + std::to_string(seed) + " style=" + std::to_string(style);
}

ShrinkResult shrinkCase(const FailingCase& failing, const PropertyHolds& holds,
                        const ShrinkOptions& options) {
  PUSHPART_CHECK_MSG(!holds(failing),
                     "shrinkCase: the input case does not fail — " <<
                         failing.str());
  ShrinkResult result;
  result.minimal = failing;
  ++result.attempts;  // the initial confirmation above

  for (int round = 0; round < options.maxRounds; ++round) {
    bool shrunk = false;
    for (const FailingCase& candidate :
         shrinkCandidates(result.minimal, options.minN)) {
      ++result.attempts;
      if (!holds(candidate)) {
        result.minimal = candidate;
        ++result.rounds;
        shrunk = true;
        break;  // restart from the most aggressive move on the smaller case
      }
    }
    if (!shrunk) break;
  }
  return result;
}

}  // namespace pushpart
