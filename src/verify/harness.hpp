// The property-based test harness: generate → check → shrink → dump.
//
// runProperty drives one named property over a stream of seeded random cases
// (grid size, ratio, start style — see generators.hpp). The first failing
// case is minimised with shrinkCase and the minimal failure is dumped as a
// replayable artifact pair:
//
//   <dir>/<name>.pp    the offending partition (pushpart-partition v1), and
//   <dir>/<name>.case  the FailingCase (n, ratio, seed, style) plus every
//                      violated invariant — enough to rebuild the failure
//                      exactly and to file it into tests/corpus.
//
// runPropertyOnCase checks one *specific* case (the differential sweeps use
// it with a fixed grid of paper ratios) with the same shrink-and-dump
// treatment on failure.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "grid/partition.hpp"
#include "verify/invariants.hpp"
#include "verify/shrink.hpp"

namespace pushpart {

/// One evaluation of a property on one case: the invariant report plus the
/// partition to dump when the report has violations.
struct PropertyRun {
  CheckReport report;
  std::optional<Partition> evidence;
};

/// A property rebuilds its whole input from the case (seeding any Rng from
/// case.seed) so that shrinking and replay are deterministic.
using PropertyFn = std::function<PropertyRun(const FailingCase&)>;

struct PropertyOptions {
  int iterations = 50;
  std::uint64_t seed = 1;
  int minN = 4;
  int maxN = 24;
  std::string artifactDir = "verify-artifacts";
};

struct PropertyOutcome {
  std::string name;
  int iterations = 0;     ///< Cases evaluated (including the failing one).
  bool passed = true;
  FailingCase minimal;    ///< Minimal failing case (valid when !passed).
  CheckReport failure;    ///< Violations of the minimal case.
  int shrinkRounds = 0;
  std::string artifactPath;  ///< Dumped .pp ("" when the run had no evidence).
  std::string casePath;      ///< Dumped .case replay descriptor.

  /// "name: ok (N cases)" or a multi-line failure description with paths.
  std::string str() const;
};

/// Evaluates `property` on `iterations` generated cases; shrinks and dumps
/// the first failure. Deterministic for a fixed options.seed.
PropertyOutcome runProperty(const std::string& name,
                            const PropertyOptions& options,
                            const PropertyFn& property);

/// Evaluates `property` on one explicit case; shrinks and dumps on failure.
PropertyOutcome runPropertyOnCase(const std::string& name,
                                  const FailingCase& fixedCase,
                                  const PropertyOptions& options,
                                  const PropertyFn& property);

}  // namespace pushpart
