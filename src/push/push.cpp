// Partition instantiation of the state-generic push engine (push/engine.hpp).
// The legality ladder and the edge-clean scan live there as templates shared
// with the run-length engine (src/rle); these wrappers keep the original
// grid-typed API.
#include "push/push.hpp"

#include "push/engine.hpp"

namespace pushpart {

PushOutcome tryPush(Partition& q, Proc active, Direction dir,
                    const PushOptions& options) {
  return tryPushState(q, active, dir, options);
}

bool pushAvailable(const Partition& q, Proc active,
                   std::span<const Direction> dirs,
                   const PushOptions& options) {
  return pushAvailableState(q, active, dirs, options);
}

}  // namespace pushpart
