#include "push/push.hpp"

#include <array>
#include <vector>

#include "push/oriented.hpp"
#include "support/check.hpp"

namespace pushpart {

namespace {

/// How strongly a predicate binds: both the row and the column, either one,
/// or not at all.
enum class Req { kAnd, kOr, kNone };

/// Legality profile of one push type (see header for the ladder).
struct TypeRule {
  /// Requirement that the *destination* cell lies in a row/column already
  /// containing the active processor (controls how many rows/columns the
  /// active processor may dirty).
  Req activeDest;
  /// Requirement that the *displaced owner* already has elements in the
  /// cleaned row and the vacated column (controls how much the owner
  /// dirties row k / column c when it takes over the vacated cell).
  Req ownerPresence;
  /// Types One–Four must strictly lower VoC; Five–Six may keep it equal.
  bool strictImprovement;
};

constexpr TypeRule ruleFor(PushType t) {
  switch (t) {
    case PushType::kType1: return {Req::kAnd, Req::kAnd, true};
    case PushType::kType2: return {Req::kAnd, Req::kOr, true};
    case PushType::kType3: return {Req::kOr, Req::kAnd, true};
    case PushType::kType4: return {Req::kOr, Req::kNone, true};
    case PushType::kType5: return {Req::kNone, Req::kAnd, false};
    case PushType::kType6: return {Req::kNone, Req::kNone, false};
  }
  return {Req::kAnd, Req::kAnd, true};
}

bool meets(Req req, bool inRow, bool inCol) {
  switch (req) {
    case Req::kAnd: return inRow && inCol;
    case Req::kOr: return inRow || inCol;
    case Req::kNone: return true;
  }
  return false;
}

/// Attempts the edge-clean under one type's predicates, appending all
/// mutations to `log`. Returns the number of elements moved, or std::nullopt
/// when some edge element found no legal destination (caller must roll back
/// `log`).
std::optional<int> attemptType(OrientedGrid& view, Proc active,
                               const TypeRule& rule,
                               const std::array<Rect, kNumProcs>& rectBefore,
                               std::vector<CellUndo>& log) {
  const Rect r = view.rect(active);
  // The active processor needs interior rows to move into; a single-row
  // occupancy cannot be pushed without enlarging its enclosing rectangle.
  if (r.isEmpty() || r.height() < 2) return std::nullopt;
  const int k = r.rowBegin;

  // Columns of the active processor's elements on the edge row, gathered
  // before any mutation. k is the rectangle edge, so this is non-empty.
  std::vector<int> sources;
  for (int c = r.colBegin; c < r.colEnd; ++c)
    if (view.at(k, c) == active) sources.push_back(c);
  if (sources.empty()) return std::nullopt;

  // Monotone destination cursor over the rectangle interior, as in the
  // paper's findTypeOne pseudocode: the scan resumes where the previous
  // element's search stopped. Unlike the paper's top-down scan we walk the
  // rows *far-edge-first* (bottom-up for a Down push): relocated elements
  // fill the holes farthest from the advancing clean edge, so leftover
  // raggedness collects in the edge line and the condensed region stays
  // asymptotically rectangular instead of fossilising interior holes it can
  // no longer clean.
  int g = r.rowEnd - 1;
  int h = r.colBegin;

  for (int c : sources) {
    bool found = false;
    while (g > k && !found) {
      while (h < r.colEnd) {
        const Proc owner = view.at(g, h);
        if (owner != active &&
            meets(rule.activeDest, view.rowHas(active, g),
                  view.colHas(active, h)) &&
            meets(rule.ownerPresence, view.rowHas(owner, k),
                  view.colHas(owner, c)) &&
            // The owner takes over (k, c); keeping that inside its pre-push
            // enclosing rectangle guarantees no rectangle grows (§IV-A
            // precondition). Presence in row k and column c already implies
            // containment, so this only bites for the laxer owner rules.
            // The fastest processor P is exempt: its rectangle plays no role
            // in VoC or in future pushes, and holding it to the letter of
            // §IV-A creates artificial fixed points (a solid band with
            // ragged edges whose improving push would hand P a cell below
            // P's current box — see DESIGN.md deviation 6). The transactional
            // VoC guard below subsumes the rule's purpose.
            (owner == Proc::P || rectBefore[procSlot(owner)].contains(k, c))) {
          // Exchange: the owner inherits the vacated edge cell, the active
          // processor moves inward.
          view.set(k, c, owner, log);
          view.set(g, h, active, log);
          found = true;
          ++h;  // do not hand the same destination to the next element
          break;
        }
        ++h;
      }
      if (!found) {
        h = r.colBegin;
        --g;
      }
    }
    if (!found) return std::nullopt;
  }
  return static_cast<int>(sources.size());
}

}  // namespace

PushOutcome tryPush(Partition& q, Proc active, Direction dir,
                    const PushOptions& options) {
  PUSHPART_CHECK_MSG(active != Proc::P,
                     "the fastest processor P is never the active processor");
  PushOutcome out;
  out.direction = dir;
  out.active = active;
  out.vocBefore = q.volumeOfCommunication();
  out.vocAfter = out.vocBefore;

  OrientedGrid view(q, dir);

  // Snapshot logical enclosing rectangles and counts for the transactional
  // guards.
  std::array<Rect, kNumProcs> rectBefore;
  std::array<std::int64_t, kNumProcs> countBefore{};
  for (Proc x : kAllProcs) {
    rectBefore[procSlot(x)] = view.rect(x);
    countBefore[procSlot(x)] = q.count(x);
  }

  for (PushType type :
       {PushType::kType1, PushType::kType2, PushType::kType3, PushType::kType4,
        PushType::kType5, PushType::kType6}) {
    const TypeRule rule = ruleFor(type);
    if (!options.allowEqualVoC && !rule.strictImprovement) break;

    std::vector<CellUndo> log;
    const auto moved = attemptType(view, active, rule, rectBefore, log);
    if (!moved) {
      rollback(q, log);
      continue;
    }

    // Transactional guards: the paper's guarantees, enforced exactly.
    const std::int64_t vocAfter = q.volumeOfCommunication();
    const bool vocOk = rule.strictImprovement ? (vocAfter < out.vocBefore)
                                              : (vocAfter <= out.vocBefore);
    if (!vocOk) {
      rollback(q, log);
      continue;
    }
    for (Proc x : kAllProcs) {
      // P's rectangle is unconstrained (see the finder comment above).
      PUSHPART_CHECK_MSG(
          x == Proc::P || rectBefore[procSlot(x)].contains(view.rect(x)),
          "push enlarged the enclosing rectangle of " << procName(x));
      PUSHPART_CHECK_MSG(q.count(x) == countBefore[procSlot(x)],
                         "push changed the element count of " << procName(x));
    }

    out.applied = true;
    out.type = type;
    out.vocAfter = vocAfter;
    out.elementsMoved = *moved;
    return out;
  }

  return out;
}

bool pushAvailable(const Partition& q, Proc active,
                   std::span<const Direction> dirs,
                   const PushOptions& options) {
  Partition scratch = q;
  for (Direction d : dirs) {
    if (tryPush(scratch, active, d, options).applied) return true;
  }
  return false;
}

}  // namespace pushpart
