// Partition instantiation of the state-generic beautify pass
// (push/engine.hpp); shared with the run-length engine in src/rle.
#include "push/beautify.hpp"

#include "push/engine.hpp"

namespace pushpart {

bool compactRegion(Partition& q, Proc x) { return compactRegionState(q, x); }

BeautifyResult beautify(Partition& q) { return beautifyState(q); }

bool fullyCondensed(const Partition& q) { return fullyCondensedState(q); }

}  // namespace pushpart
