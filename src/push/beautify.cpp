#include "push/beautify.hpp"

#include <array>
#include <limits>
#include <unordered_set>
#include <vector>

#include "grid/metrics.hpp"
#include "push/direction.hpp"
#include "support/check.hpp"

namespace pushpart {

namespace {

/// One attempted re-layout of x inside its enclosing rectangle, filling in
/// the order given by `rank` (a bijection from rect cells to 0..area-1; the
/// first count(x) ranks become x's). Commits only when the guard passes.
/// The right orientation depends on context — e.g. a full-matrix-width
/// region must keep every row occupied (a partial top row would newly dirty
/// that row with the displaced owner), so its partial line has to be a
/// column — hence the caller tries several orientations.
template <typename RankFn>
bool tryCompactLayout(Partition& q, Proc x, const Rect& rect, RankFn rank) {
  const std::int64_t own = q.count(x);
  auto targetIsX = [&](int i, int j) { return rank(i, j) < own; };

  std::vector<std::pair<int, int>> gain, release;
  for (int i = rect.rowBegin; i < rect.rowEnd; ++i)
    for (int j = rect.colBegin; j < rect.colEnd; ++j) {
      const Proc owner = q.at(i, j);
      const bool isX = owner == x;
      if (targetIsX(i, j) && !isX) {
        // Only holes owned by the fastest processor P may be swapped out.
        // Claiming the other slow processor's cells would let the R and S
        // compactions displace each other back and forth at equal VoC —
        // a livelock. With P-only holes, each compaction is idempotent and
        // cannot disturb the other slow processor's region.
        if (owner != Proc::P) return false;
        gain.push_back({i, j});
      } else if (!targetIsX(i, j) && isX) {
        release.push_back({i, j});
      }
    }
  if (gain.empty()) return false;  // layout already achieved
  PUSHPART_CHECK(gain.size() == release.size());

  const std::int64_t vocBefore = q.volumeOfCommunication();
  std::array<Rect, kNumProcs> rectBefore;
  for (Proc p : kAllProcs) rectBefore[procSlot(p)] = q.enclosingRect(p);

  std::vector<Proc> displaced;
  displaced.reserve(gain.size());
  for (const auto& [i, j] : gain) {
    displaced.push_back(q.at(i, j));
    q.set(i, j, x);
  }
  for (std::size_t k = 0; k < release.size(); ++k)
    q.set(release[k].first, release[k].second, displaced[k]);

  bool ok = q.volumeOfCommunication() <= vocBefore;
  // Only the slow processors' rectangles are constrained: they drive future
  // pushes and the archetype classification. P's enclosing rectangle is free
  // to change — it plays no role in VoC, and the paper's own Thm 8.2
  // transformations reshape enclosing rectangles as long as communication
  // does not increase.
  for (Proc p : kSlowProcs) {
    const Rect after = q.enclosingRect(p);
    ok = ok && rectBefore[procSlot(p)].contains(after);
  }
  if (!ok) {
    for (std::size_t k = 0; k < release.size(); ++k)
      q.set(release[k].first, release[k].second, x);
    for (std::size_t k = 0; k < gain.size(); ++k)
      q.set(gain[k].first, gain[k].second, displaced[k]);
    return false;
  }
  return true;
}

}  // namespace

bool compactRegion(Partition& q, Proc x) {
  const Rect rect = q.enclosingRect(x);
  if (rect.isEmpty()) return false;
  if (q.count(x) == rect.area()) return false;  // already solid
  // Already in normal form: leave it alone. This is also what makes
  // compaction idempotent — every committed layout below ends
  // asymptotically rectangular, so a second call is a no-op rather than an
  // equal-VoC oscillation between fill orientations.
  if (isAsymptoticallyRectangular(q, x)) return false;

  const auto W = static_cast<std::int64_t>(rect.width());
  const auto H = static_cast<std::int64_t>(rect.height());
  const int rb = rect.rowBegin, re = rect.rowEnd;
  const int cb = rect.colBegin, ce = rect.colEnd;

  // Coverage-aware lane ordering. The re-layout's partial line hands its
  // leftover cells to P; if such a cell lands in a column (row, for the
  // column-major fills) where P appears nowhere outside this rectangle, that
  // line gains a third owner and VoC rises — the guard would reject a
  // re-layout the region actually admits. Ranking lanes so that the ones P
  // cannot otherwise cover are filled FIRST keeps the vacated cells in
  // P-covered lanes. With full P coverage the order degenerates to the
  // identity, so this subsumes the plain left-to-right fills.
  std::vector<std::int64_t> colPos(static_cast<std::size_t>(rect.width()));
  std::vector<std::int64_t> rowPos(static_cast<std::size_t>(rect.height()));
  {
    std::vector<int> pInRectCol(static_cast<std::size_t>(rect.width()), 0);
    std::vector<int> pInRectRow(static_cast<std::size_t>(rect.height()), 0);
    for (int i = rb; i < re; ++i)
      for (int j = cb; j < ce; ++j)
        if (q.at(i, j) == Proc::P) {
          ++pInRectCol[static_cast<std::size_t>(j - cb)];
          ++pInRectRow[static_cast<std::size_t>(i - rb)];
        }
    auto assignPositions = [](std::vector<std::int64_t>& pos,
                              auto needsCoverage) {
      std::int64_t next = 0;
      for (std::size_t lane = 0; lane < pos.size(); ++lane)
        if (needsCoverage(lane)) pos[lane] = next++;
      for (std::size_t lane = 0; lane < pos.size(); ++lane)
        if (!needsCoverage(lane)) pos[lane] = next++;
    };
    assignPositions(colPos, [&](std::size_t lane) {
      const int j = cb + static_cast<int>(lane);
      return q.colCount(Proc::P, j) - pInRectCol[lane] == 0;
    });
    assignPositions(rowPos, [&](std::size_t lane) {
      const int i = rb + static_cast<int>(lane);
      return q.rowCount(Proc::P, i) - pInRectRow[lane] == 0;
    });
  }

  // Four fill orientations; the partial line lands on the top row, bottom
  // row, right column or left column respectively. The first admissible
  // re-layout wins.
  const auto partialTop = [&, W](int i, int j) {
    return static_cast<std::int64_t>(re - 1 - i) * W +
           colPos[static_cast<std::size_t>(j - cb)];
  };
  const auto partialBottom = [&, W](int i, int j) {
    return static_cast<std::int64_t>(i - rb) * W +
           colPos[static_cast<std::size_t>(j - cb)];
  };
  const auto partialRight = [&, H](int i, int j) {
    return static_cast<std::int64_t>(j - cb) * H +
           rowPos[static_cast<std::size_t>(i - rb)];
  };
  const auto partialLeft = [&, H](int i, int j) {
    return static_cast<std::int64_t>(ce - 1 - j) * H +
           rowPos[static_cast<std::size_t>(i - rb)];
  };

  if (tryCompactLayout(q, x, rect, partialTop) ||
      tryCompactLayout(q, x, rect, partialBottom) ||
      tryCompactLayout(q, x, rect, partialRight) ||
      tryCompactLayout(q, x, rect, partialLeft))
    return true;

  // Whole-rectangle fills can fail when the region is *fragmented*: stripes
  // separated by untouched rows/columns have a smaller line footprint than
  // the enclosing rectangle, so filling the rectangle would dirty the gap
  // lines and the guard rejects it. But a solid box of exactly
  // rowsUsed × colsUsed dimensions has the same line footprint — and hence
  // the same VoC — as the fragmented region. Try that box anchored in each
  // corner of the enclosing rectangle (the guard still arbitrates).
  const auto rowsUsed = static_cast<std::int64_t>(q.rowsUsed(x));
  const auto colsUsed = static_cast<std::int64_t>(q.colsUsed(x));
  if (rowsUsed >= H && colsUsed >= W) return false;  // no smaller box exists

  const auto boxRank = [&](const Rect& box, bool fromBottom) {
    return [box, fromBottom](int i, int j) -> std::int64_t {
      if (!box.contains(i, j))
        return std::numeric_limits<std::int64_t>::max();
      const std::int64_t row =
          fromBottom ? (box.rowEnd - 1 - i) : (i - box.rowBegin);
      return row * box.width() + (j - box.colBegin);
    };
  };
  const int bh = static_cast<int>(rowsUsed);
  const int bw = static_cast<int>(colsUsed);
  const Rect corners[4] = {
      Rect{re - bh, re, cb, cb + bw},  // bottom-left
      Rect{re - bh, re, ce - bw, ce},  // bottom-right
      Rect{rb, rb + bh, cb, cb + bw},  // top-left
      Rect{rb, rb + bh, ce - bw, ce},  // top-right
  };
  for (const Rect& box : corners) {
    for (bool fromBottom : {true, false}) {
      if (tryCompactLayout(q, x, rect, boxRank(box, fromBottom))) return true;
    }
  }
  return false;
}

BeautifyResult beautify(Partition& q) {
  BeautifyResult result;
  result.vocBefore = q.volumeOfCommunication();
  // Pushes of all types are allowed, including the VoC-preserving Types Five
  // and Six: termination is guaranteed because every applied push strictly
  // shrinks the active processor's enclosing-rectangle area (its edge row is
  // cleaned and destinations lie strictly inside) while no other rectangle
  // may grow, so Σ rectArea(R) + rectArea(S) is a strictly decreasing
  // non-negative potential. Compaction keeps rectangles fixed and is
  // idempotent at a fixed state, so interleaving it cannot produce cycles.
  std::unordered_set<std::uint64_t> seen;  // belt-and-braces cycle guard
  bool any = true;
  while (any) {
    any = false;
    for (Proc active : kSlowProcs) {
      for (Direction d : kAllDirections) {
        while (tryPush(q, active, d).applied) {
          ++result.pushesApplied;
          any = true;
        }
      }
    }
    for (Proc active : kSlowProcs) {
      if (compactRegion(q, active)) any = true;
    }
    if (any && !seen.insert(q.hash()).second) break;
  }
  result.vocAfter = q.volumeOfCommunication();
  return result;
}

bool fullyCondensed(const Partition& q) {
  for (Proc active : kSlowProcs) {
    if (pushAvailable(q, active, kAllDirections, PushOptions{})) return false;
  }
  return true;
}

}  // namespace pushpart
