// The Push operation (paper §IV-A) — the primary analytical tool.
//
// A Push is an atomic transformation of a partition q into q1 that *cleans*
// the leading edge row/column of the active processor X's enclosing
// rectangle: every element of X on that edge is relocated strictly inward
// (in the push direction, staying inside X's enclosing rectangle), and each
// displaced owner receives X's vacated cell in exchange. The paper defines
// six legality types (§IV-A.1–6) that guarantee the Volume of Communication
// (Eq. 1) never increases and no processor's enclosing rectangle grows.
//
// This engine mirrors the paper's program (§VI-B): per-type destination
// finders with a monotone scan cursor, tried from the most restrictive type
// to the least. On top of the type predicates it enforces the paper's
// guarantees *transactionally*: the whole edge-clean is applied through an
// undo log, then VoC / enclosing-rectangle / conservation invariants are
// checked exactly; any violation rolls the attempt back. The invariants are
// therefore properties of the implementation, not merely of the proofs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "grid/partition.hpp"
#include "push/direction.hpp"

namespace pushpart {

/// The paper's six Push types, ordered most to least restrictive.
/// Types One–Four strictly decrease VoC; Types Five–Six may leave it
/// unchanged.
enum class PushType {
  kType1 = 1,
  kType2 = 2,
  kType3 = 3,
  kType4 = 4,
  kType5 = 5,
  kType6 = 6,
};

constexpr const char* pushTypeName(PushType t) {
  switch (t) {
    case PushType::kType1: return "Type1";
    case PushType::kType2: return "Type2";
    case PushType::kType3: return "Type3";
    case PushType::kType4: return "Type4";
    case PushType::kType5: return "Type5";
    case PushType::kType6: return "Type6";
  }
  return "?";
}

/// Result of one push attempt.
struct PushOutcome {
  bool applied = false;                ///< Did the partition change?
  PushType type = PushType::kType1;    ///< Legality type that succeeded.
  Direction direction = Direction::Down;
  Proc active = Proc::R;
  std::int64_t vocBefore = 0;
  std::int64_t vocAfter = 0;
  int elementsMoved = 0;               ///< Elements of X relocated.

  bool improvedVoC() const { return applied && vocAfter < vocBefore; }
};

struct PushOptions {
  /// Permit Types Five and Six (VoC-preserving pushes). The DFA needs them to
  /// escape plateaus; beautify runs with them off so it cannot cycle.
  bool allowEqualVoC = true;
};

/// Attempts one Push of `active`'s edge in `dir`. On success the partition
/// is mutated and outcome.applied is true; on failure the partition is
/// untouched. `active` must be one of the slower processors R or S
/// (paper §VI-C: the largest processor is never pushed).
PushOutcome tryPush(Partition& q, Proc active, Direction dir,
                    const PushOptions& options = {});

/// True when some push in `dirs` applies to `active`. Non-mutating (attempts
/// run on the real grid but are rolled back).
bool pushAvailable(const Partition& q, Proc active,
                   std::span<const Direction> dirs,
                   const PushOptions& options = {});

}  // namespace pushpart
