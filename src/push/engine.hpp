// State-generic Push + beautify engine.
//
// The legality ladder, the edge-clean scan, the transactional guards and the
// beautify/compaction passes are written once as templates over the state
// type Q. Two states instantiate them:
//
//   * Partition (src/grid)  — the element-exact reference,
//   * RlePartition (src/rle) — owner runs with incremental VoC.
//
// Both expose the same occupancy/counter API, so the engine's *decisions*
// (which destination each edge element takes, which type fires, the exact
// cell exchanges) are identical by construction; the differential suite in
// src/verify locksteps the two instantiations to enforce that. For states
// that expose owner runs (HasOwnerRuns), the destination scan walks runs
// instead of cells: per run the owner-side predicates are constant, so a
// whole run is accepted or skipped with O(1) work, and only the
// active-column requirement (which varies along the run) is scanned — and
// that scan is exactly the cell walk the reference performs, so the chosen
// destination cell is provably the same.
//
// The non-template entry points in push.hpp / beautify.hpp remain the public
// API for grid callers; this header is for engine instantiation on other
// state types.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "grid/metrics.hpp"
#include "push/beautify.hpp"
#include "push/direction.hpp"
#include "push/oriented.hpp"
#include "push/push.hpp"
#include "support/check.hpp"

namespace pushpart {

namespace engine_detail {

/// How strongly a predicate binds: both the row and the column, either one,
/// or not at all.
enum class Req { kAnd, kOr, kNone };

/// Legality profile of one push type (see push.hpp for the ladder).
struct TypeRule {
  /// Requirement that the *destination* cell lies in a row/column already
  /// containing the active processor (controls how many rows/columns the
  /// active processor may dirty).
  Req activeDest;
  /// Requirement that the *displaced owner* already has elements in the
  /// cleaned row and the vacated column (controls how much the owner
  /// dirties row k / column c when it takes over the vacated cell).
  Req ownerPresence;
  /// Types One–Four must strictly lower VoC; Five–Six may keep it equal.
  bool strictImprovement;
};

constexpr TypeRule ruleFor(PushType t) {
  switch (t) {
    case PushType::kType1: return {Req::kAnd, Req::kAnd, true};
    case PushType::kType2: return {Req::kAnd, Req::kOr, true};
    case PushType::kType3: return {Req::kOr, Req::kAnd, true};
    case PushType::kType4: return {Req::kOr, Req::kNone, true};
    case PushType::kType5: return {Req::kNone, Req::kAnd, false};
    case PushType::kType6: return {Req::kNone, Req::kNone, false};
  }
  return {Req::kAnd, Req::kAnd, true};
}

inline bool meets(Req req, bool inRow, bool inCol) {
  switch (req) {
    case Req::kAnd: return inRow && inCol;
    case Req::kOr: return inRow || inCol;
    case Req::kNone: return true;
  }
  return false;
}

/// Attempts the edge-clean under one type's predicates, appending all
/// mutations to `log`. Returns the number of elements moved, or std::nullopt
/// when some edge element found no legal destination (caller must roll back
/// `log`).
template <typename Q>
std::optional<int> attemptType(OrientedView<Q>& view, Proc active,
                               const TypeRule& rule,
                               const std::array<Rect, kNumProcs>& rectBefore,
                               std::vector<CellUndo>& log) {
  const Rect r = view.rect(active);
  // The active processor needs interior rows to move into; a single-row
  // occupancy cannot be pushed without enlarging its enclosing rectangle.
  if (r.isEmpty() || r.height() < 2) return std::nullopt;
  const int k = r.rowBegin;

  // Columns of the active processor's elements on the edge row, gathered
  // before any mutation. k is the rectangle edge, so this is non-empty.
  std::vector<int> sources;
  if constexpr (HasOwnerRuns<Q>) {
    int c = r.colBegin;
    while (c < r.colEnd) {
      const OwnerRun run = view.rowRun(k, c);
      const int end = run.end < r.colEnd ? run.end : r.colEnd;
      if (run.owner == active)
        for (int x = c; x < end; ++x) sources.push_back(x);
      c = end;
    }
  } else {
    for (int c = r.colBegin; c < r.colEnd; ++c)
      if (view.at(k, c) == active) sources.push_back(c);
  }
  if (sources.empty()) return std::nullopt;

  // Monotone destination cursor over the rectangle interior, as in the
  // paper's findTypeOne pseudocode: the scan resumes where the previous
  // element's search stopped. Unlike the paper's top-down scan we walk the
  // rows *far-edge-first* (bottom-up for a Down push): relocated elements
  // fill the holes farthest from the advancing clean edge, so leftover
  // raggedness collects in the edge line and the condensed region stays
  // asymptotically rectangular instead of fossilising interior holes it can
  // no longer clean.
  int g = r.rowEnd - 1;
  int h = r.colBegin;

  for (int c : sources) {
    bool found = false;
    while (g > k && !found) {
      if constexpr (HasOwnerRuns<Q>) {
        // Run-granular scan. No mutation happens between loop entry and the
        // accept below, so rowHas(active, g) is constant across this row
        // visit — exactly as in the reference's cell walk, where it is
        // re-evaluated per cell but cannot change.
        const bool rowActive = view.rowHas(active, g);
        while (h < r.colEnd) {
          const OwnerRun run = view.rowRun(g, h);
          const int end = run.end < r.colEnd ? run.end : r.colEnd;
          const Proc owner = run.owner;
          // Predicates constant over the run (pure, so evaluation order
          // relative to the reference's per-cell conjunction is
          // outcome-neutral): own cells are never destinations, the
          // displaced owner's presence in row k / column c does not depend
          // on h, and neither does rectangle containment of (k, c).
          if (owner == active ||
              !meets(rule.ownerPresence, view.rowHas(owner, k),
                     view.colHas(owner, c)) ||
              !(owner == Proc::P || rectBefore[procSlot(owner)].contains(k, c))) {
            h = end;
            continue;
          }
          // Only the activeDest requirement varies along the run (through
          // colHas(active, h)).
          if (rule.activeDest == Req::kAnd && !rowActive) {
            // rowActive false fails every h of this row under kAnd.
            h = end;
            continue;
          }
          if (rule.activeDest == Req::kAnd ||
              (rule.activeDest == Req::kOr && !rowActive)) {
            while (h < end && !view.colHas(active, h)) ++h;
            if (h >= end) continue;  // no qualifying column in this run
          }
          // Exchange: the owner inherits the vacated edge cell, the active
          // processor moves inward.
          view.set(k, c, owner, log);
          view.set(g, h, active, log);
          found = true;
          ++h;  // do not hand the same destination to the next element
          break;
        }
      } else {
        while (h < r.colEnd) {
          const Proc owner = view.at(g, h);
          if (owner != active &&
              meets(rule.activeDest, view.rowHas(active, g),
                    view.colHas(active, h)) &&
              meets(rule.ownerPresence, view.rowHas(owner, k),
                    view.colHas(owner, c)) &&
              // The owner takes over (k, c); keeping that inside its pre-push
              // enclosing rectangle guarantees no rectangle grows (§IV-A
              // precondition). Presence in row k and column c already implies
              // containment, so this only bites for the laxer owner rules.
              // The fastest processor P is exempt: its rectangle plays no role
              // in VoC or in future pushes, and holding it to the letter of
              // §IV-A creates artificial fixed points (a solid band with
              // ragged edges whose improving push would hand P a cell below
              // P's current box — see DESIGN.md deviation 6). The
              // transactional VoC guard in tryPushState subsumes the rule's
              // purpose.
              (owner == Proc::P ||
               rectBefore[procSlot(owner)].contains(k, c))) {
            view.set(k, c, owner, log);
            view.set(g, h, active, log);
            found = true;
            ++h;
            break;
          }
          ++h;
        }
      }
      if (!found) {
        h = r.colBegin;
        --g;
      }
    }
    if (!found) return std::nullopt;
  }
  return static_cast<int>(sources.size());
}

}  // namespace engine_detail

/// tryPush over any engine state (see push.hpp for the contract).
template <typename Q>
PushOutcome tryPushState(Q& q, Proc active, Direction dir,
                         const PushOptions& options = {}) {
  PUSHPART_CHECK_MSG(active != Proc::P,
                     "the fastest processor P is never the active processor");
  PushOutcome out;
  out.direction = dir;
  out.active = active;
  out.vocBefore = q.volumeOfCommunication();
  out.vocAfter = out.vocBefore;

  OrientedView<Q> view(q, dir);

  // Snapshot logical enclosing rectangles and counts for the transactional
  // guards.
  std::array<Rect, kNumProcs> rectBefore;
  std::array<std::int64_t, kNumProcs> countBefore{};
  for (Proc x : kAllProcs) {
    rectBefore[procSlot(x)] = view.rect(x);
    countBefore[procSlot(x)] = q.count(x);
  }

  for (PushType type :
       {PushType::kType1, PushType::kType2, PushType::kType3, PushType::kType4,
        PushType::kType5, PushType::kType6}) {
    const engine_detail::TypeRule rule = engine_detail::ruleFor(type);
    if (!options.allowEqualVoC && !rule.strictImprovement) break;

    std::vector<CellUndo> log;
    const auto moved =
        engine_detail::attemptType(view, active, rule, rectBefore, log);
    if (!moved) {
      rollback(q, log);
      continue;
    }

    // Transactional guards: the paper's guarantees, enforced exactly.
    const std::int64_t vocAfter = q.volumeOfCommunication();
    const bool vocOk = rule.strictImprovement ? (vocAfter < out.vocBefore)
                                              : (vocAfter <= out.vocBefore);
    if (!vocOk) {
      rollback(q, log);
      continue;
    }
    for (Proc x : kAllProcs) {
      // P's rectangle is unconstrained (see the finder comment above).
      PUSHPART_CHECK_MSG(
          x == Proc::P || rectBefore[procSlot(x)].contains(view.rect(x)),
          "push enlarged the enclosing rectangle of " << procName(x));
      PUSHPART_CHECK_MSG(q.count(x) == countBefore[procSlot(x)],
                         "push changed the element count of " << procName(x));
    }

    out.applied = true;
    out.type = type;
    out.vocAfter = vocAfter;
    out.elementsMoved = *moved;
    return out;
  }

  return out;
}

/// pushAvailable over any engine state (copies a scratch state and rolls
/// attempts on the copy).
template <typename Q>
bool pushAvailableState(const Q& q, Proc active,
                        std::span<const Direction> dirs,
                        const PushOptions& options = {}) {
  Q scratch = q;
  for (Direction d : dirs) {
    if (tryPushState(scratch, active, d, options).applied) return true;
  }
  return false;
}

namespace engine_detail {

/// One attempted re-layout of x inside its enclosing rectangle, filling in
/// the order given by `rank` (a bijection from rect cells to 0..area-1; the
/// first count(x) ranks become x's). Commits only when the guard passes.
/// The right orientation depends on context — e.g. a full-matrix-width
/// region must keep every row occupied (a partial top row would newly dirty
/// that row with the displaced owner), so its partial line has to be a
/// column — hence the caller tries several orientations.
template <typename Q, typename RankFn>
bool tryCompactLayout(Q& q, Proc x, const Rect& rect, RankFn rank) {
  const std::int64_t own = q.count(x);
  auto targetIsX = [&](int i, int j) { return rank(i, j) < own; };

  std::vector<std::pair<int, int>> gain, release;
  for (int i = rect.rowBegin; i < rect.rowEnd; ++i)
    for (int j = rect.colBegin; j < rect.colEnd; ++j) {
      const Proc owner = q.at(i, j);
      const bool isX = owner == x;
      if (targetIsX(i, j) && !isX) {
        // Only holes owned by the fastest processor P may be swapped out.
        // Claiming the other slow processor's cells would let the R and S
        // compactions displace each other back and forth at equal VoC —
        // a livelock. With P-only holes, each compaction is idempotent and
        // cannot disturb the other slow processor's region.
        if (owner != Proc::P) return false;
        gain.push_back({i, j});
      } else if (!targetIsX(i, j) && isX) {
        release.push_back({i, j});
      }
    }
  if (gain.empty()) return false;  // layout already achieved
  PUSHPART_CHECK(gain.size() == release.size());

  const std::int64_t vocBefore = q.volumeOfCommunication();
  std::array<Rect, kNumProcs> rectBefore;
  for (Proc p : kAllProcs) rectBefore[procSlot(p)] = q.enclosingRect(p);

  std::vector<Proc> displaced;
  displaced.reserve(gain.size());
  for (const auto& [i, j] : gain) {
    displaced.push_back(q.at(i, j));
    q.set(i, j, x);
  }
  for (std::size_t k = 0; k < release.size(); ++k)
    q.set(release[k].first, release[k].second, displaced[k]);

  bool ok = q.volumeOfCommunication() <= vocBefore;
  // Only the slow processors' rectangles are constrained: they drive future
  // pushes and the archetype classification. P's enclosing rectangle is free
  // to change — it plays no role in VoC, and the paper's own Thm 8.2
  // transformations reshape enclosing rectangles as long as communication
  // does not increase.
  for (Proc p : kSlowProcs) {
    const Rect after = q.enclosingRect(p);
    ok = ok && rectBefore[procSlot(p)].contains(after);
  }
  if (!ok) {
    for (std::size_t k = 0; k < release.size(); ++k)
      q.set(release[k].first, release[k].second, x);
    for (std::size_t k = 0; k < gain.size(); ++k)
      q.set(gain[k].first, gain[k].second, displaced[k]);
    return false;
  }
  return true;
}

}  // namespace engine_detail

/// compactRegion over any engine state (see beautify.hpp for the contract).
template <typename Q>
bool compactRegionState(Q& q, Proc x) {
  const Rect rect = q.enclosingRect(x);
  if (rect.isEmpty()) return false;
  if (q.count(x) == rect.area()) return false;  // already solid
  // Already in normal form: leave it alone. This is also what makes
  // compaction idempotent — every committed layout below ends
  // asymptotically rectangular, so a second call is a no-op rather than an
  // equal-VoC oscillation between fill orientations.
  if (isAsymptoticallyRectangular(q, x)) return false;

  const auto W = static_cast<std::int64_t>(rect.width());
  const auto H = static_cast<std::int64_t>(rect.height());
  const int rb = rect.rowBegin, re = rect.rowEnd;
  const int cb = rect.colBegin, ce = rect.colEnd;

  // Coverage-aware lane ordering. The re-layout's partial line hands its
  // leftover cells to P; if such a cell lands in a column (row, for the
  // column-major fills) where P appears nowhere outside this rectangle, that
  // line gains a third owner and VoC rises — the guard would reject a
  // re-layout the region actually admits. Ranking lanes so that the ones P
  // cannot otherwise cover are filled FIRST keeps the vacated cells in
  // P-covered lanes. With full P coverage the order degenerates to the
  // identity, so this subsumes the plain left-to-right fills.
  std::vector<std::int64_t> colPos(static_cast<std::size_t>(rect.width()));
  std::vector<std::int64_t> rowPos(static_cast<std::size_t>(rect.height()));
  {
    std::vector<int> pInRectCol(static_cast<std::size_t>(rect.width()), 0);
    std::vector<int> pInRectRow(static_cast<std::size_t>(rect.height()), 0);
    for (int i = rb; i < re; ++i)
      for (int j = cb; j < ce; ++j)
        if (q.at(i, j) == Proc::P) {
          ++pInRectCol[static_cast<std::size_t>(j - cb)];
          ++pInRectRow[static_cast<std::size_t>(i - rb)];
        }
    auto assignPositions = [](std::vector<std::int64_t>& pos,
                              auto needsCoverage) {
      std::int64_t next = 0;
      for (std::size_t lane = 0; lane < pos.size(); ++lane)
        if (needsCoverage(lane)) pos[lane] = next++;
      for (std::size_t lane = 0; lane < pos.size(); ++lane)
        if (!needsCoverage(lane)) pos[lane] = next++;
    };
    assignPositions(colPos, [&](std::size_t lane) {
      const int j = cb + static_cast<int>(lane);
      return q.colCount(Proc::P, j) - pInRectCol[lane] == 0;
    });
    assignPositions(rowPos, [&](std::size_t lane) {
      const int i = rb + static_cast<int>(lane);
      return q.rowCount(Proc::P, i) - pInRectRow[lane] == 0;
    });
  }

  // Four fill orientations; the partial line lands on the top row, bottom
  // row, right column or left column respectively. The first admissible
  // re-layout wins.
  const auto partialTop = [&, W](int i, int j) {
    return static_cast<std::int64_t>(re - 1 - i) * W +
           colPos[static_cast<std::size_t>(j - cb)];
  };
  const auto partialBottom = [&, W](int i, int j) {
    return static_cast<std::int64_t>(i - rb) * W +
           colPos[static_cast<std::size_t>(j - cb)];
  };
  const auto partialRight = [&, H](int i, int j) {
    return static_cast<std::int64_t>(j - cb) * H +
           rowPos[static_cast<std::size_t>(i - rb)];
  };
  const auto partialLeft = [&, H](int i, int j) {
    return static_cast<std::int64_t>(ce - 1 - j) * H +
           rowPos[static_cast<std::size_t>(i - rb)];
  };

  using engine_detail::tryCompactLayout;
  if (tryCompactLayout(q, x, rect, partialTop) ||
      tryCompactLayout(q, x, rect, partialBottom) ||
      tryCompactLayout(q, x, rect, partialRight) ||
      tryCompactLayout(q, x, rect, partialLeft))
    return true;

  // Whole-rectangle fills can fail when the region is *fragmented*: stripes
  // separated by untouched rows/columns have a smaller line footprint than
  // the enclosing rectangle, so filling the rectangle would dirty the gap
  // lines and the guard rejects it. But a solid box of exactly
  // rowsUsed × colsUsed dimensions has the same line footprint — and hence
  // the same VoC — as the fragmented region. Try that box anchored in each
  // corner of the enclosing rectangle (the guard still arbitrates).
  const auto rowsUsed = static_cast<std::int64_t>(q.rowsUsed(x));
  const auto colsUsed = static_cast<std::int64_t>(q.colsUsed(x));
  if (rowsUsed >= H && colsUsed >= W) return false;  // no smaller box exists

  const auto boxRank = [&](const Rect& box, bool fromBottom) {
    return [box, fromBottom](int i, int j) -> std::int64_t {
      if (!box.contains(i, j))
        return std::numeric_limits<std::int64_t>::max();
      const std::int64_t row =
          fromBottom ? (box.rowEnd - 1 - i) : (i - box.rowBegin);
      return row * box.width() + (j - box.colBegin);
    };
  };
  const int bh = static_cast<int>(rowsUsed);
  const int bw = static_cast<int>(colsUsed);
  const Rect corners[4] = {
      Rect{re - bh, re, cb, cb + bw},  // bottom-left
      Rect{re - bh, re, ce - bw, ce},  // bottom-right
      Rect{rb, rb + bh, cb, cb + bw},  // top-left
      Rect{rb, rb + bh, ce - bw, ce},  // top-right
  };
  for (const Rect& box : corners) {
    for (bool fromBottom : {true, false}) {
      if (tryCompactLayout(q, x, rect, boxRank(box, fromBottom))) return true;
    }
  }
  return false;
}

/// beautify over any engine state (see beautify.hpp for the contract).
template <typename Q>
BeautifyResult beautifyState(Q& q) {
  BeautifyResult result;
  result.vocBefore = q.volumeOfCommunication();
  // Pushes of all types are allowed, including the VoC-preserving Types Five
  // and Six: termination is guaranteed because every applied push strictly
  // shrinks the active processor's enclosing-rectangle area (its edge row is
  // cleaned and destinations lie strictly inside) while no other rectangle
  // may grow, so Σ rectArea(R) + rectArea(S) is a strictly decreasing
  // non-negative potential. Compaction keeps rectangles fixed and is
  // idempotent at a fixed state, so interleaving it cannot produce cycles.
  std::unordered_set<std::uint64_t> seen;  // belt-and-braces cycle guard
  bool any = true;
  while (any) {
    any = false;
    for (Proc active : kSlowProcs) {
      for (Direction d : kAllDirections) {
        while (tryPushState(q, active, d).applied) {
          ++result.pushesApplied;
          any = true;
        }
      }
    }
    for (Proc active : kSlowProcs) {
      if (compactRegionState(q, active)) any = true;
    }
    if (any && !seen.insert(q.hash()).second) break;
  }
  result.vocAfter = q.volumeOfCommunication();
  return result;
}

/// fullyCondensed over any engine state (see beautify.hpp for the contract).
template <typename Q>
bool fullyCondensedState(const Q& q) {
  for (Proc active : kSlowProcs) {
    if (pushAvailableState(q, active, kAllDirections, PushOptions{}))
      return false;
  }
  return true;
}

}  // namespace pushpart
