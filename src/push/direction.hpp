// Push directions (paper §II / §IV-A: Up, Down, Left, Right).
#pragma once

#include <array>

namespace pushpart {

/// Direction in which the active processor's elements are moved. A Push Down
/// cleans the *top* edge of the active processor's enclosing rectangle and
/// relocates those elements into rows below, and so on symmetrically.
enum class Direction { Down = 0, Up = 1, Left = 2, Right = 3 };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::Down, Direction::Up, Direction::Left, Direction::Right};

constexpr const char* directionName(Direction d) {
  switch (d) {
    case Direction::Down: return "Down";
    case Direction::Up: return "Up";
    case Direction::Left: return "Left";
    case Direction::Right: return "Right";
  }
  return "?";
}

}  // namespace pushpart
