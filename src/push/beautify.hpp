// Beautify pass (paper §VIII-C).
//
// A DFA run restricted to a random subset of push directions can halt on an
// Archetype C "interlock" partition even though legal pushes remain in the
// directions the schedule never selected. The paper's program resolves this
// with a beautify function; ours applies pushes of *all* types (including
// the VoC-preserving Types Five and Six, which are what consolidate
// hole-punched stripes into solid rectangles) for both slow processors in
// all four directions until no push applies. Termination is guaranteed
// without any VoC progress requirement: every applied push strictly shrinks
// the active processor's enclosing-rectangle area — its edge row is cleaned
// and destinations lie strictly inside — while no other rectangle may grow,
// so Σ rectArea(R) + rectArea(S) is a strictly decreasing non-negative
// potential.
#pragma once

#include "grid/partition.hpp"
#include "push/push.hpp"

namespace pushpart {

struct BeautifyResult {
  int pushesApplied = 0;
  std::int64_t vocBefore = 0;
  std::int64_t vocAfter = 0;
};

/// Applies pushes of every type in every direction for R and S until none
/// applies, interleaved with VoC-guarded region compaction (see
/// compactRegion). Never increases VoC; always terminates (rect-area
/// potential plus compaction idempotence).
BeautifyResult beautify(Partition& q);

/// Re-lays processor x's cells inside its current enclosing rectangle as a
/// solid bottom-up block (full rows plus one contiguous partial top row),
/// swapping the displaced owners into the vacated cells. This is the
/// normalisation half of the paper's beautify (§VIII-C): condensed regions
/// can retain a few interior holes that are *communication-irrelevant* —
/// their rows and columns already carry the other processors — yet make the
/// shape cosmetically non-rectangular; compaction relocates those holes to
/// the ragged edge line. Transactional: commits only when VoC does not
/// increase and no processor's enclosing rectangle grows; otherwise rolls
/// back. Returns whether the partition changed.
bool compactRegion(Partition& q, Proc x);

/// True when no push (of any type, including VoC-preserving Types Five/Six)
/// applies to either slow processor in any direction — the paper's "fully
/// condensed" end condition over the unrestricted direction set.
bool fullyCondensed(const Partition& q);

}  // namespace pushpart
