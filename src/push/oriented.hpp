// Direction-canonicalising view over a partition state.
//
// The Push algorithm is written once for the canonical Down direction:
// "clean the lowest-index logical row of the active processor's enclosing
// rectangle, relocating elements into higher-index logical rows". This view
// maps logical (row, col) coordinates onto the physical grid so that the same
// code performs Up, Left and Right pushes:
//
//   Down : (r, c) -> (r, c)            logical rows are physical rows
//   Up   : (r, c) -> (n-1-r, c)        rows flipped
//   Right: (r, c) -> (c, r)            logical rows are physical columns
//   Left : (r, c) -> (c, n-1-r)        columns flipped and transposed
//
// Mutations are funnelled through set(), which appends to an undo log so a
// failed push attempt can be rolled back exactly.
//
// The view is a template over the state type Q so the same engine drives the
// element-exact Partition and the run-length RlePartition; Q must provide
// at/set/rowHas/colHas/enclosingRect/n. States that additionally expose
// owner runs (rowRunAt/colRunAt) get a run-granular rowRun() accessor, which
// the push engine uses to skip whole runs per legality decision.
#pragma once

#include <concepts>
#include <vector>

#include "grid/partition.hpp"
#include "push/direction.hpp"

namespace pushpart {

/// One grid mutation, recorded for rollback (physical coordinates).
struct CellUndo {
  int i;
  int j;
  Proc previous;
};

/// A maximal same-owner segment of a logical row, ending (exclusive) at
/// logical column `end`.
struct OwnerRun {
  Proc owner;
  int end;
};

/// Detects states that store owner runs per physical row and column.
/// rowRunAt(i, j) must return the run of row i containing column j;
/// colRunAt(j, i) the run of column j containing row i — both as
/// {owner, exclusive physical end index}.
template <typename Q>
concept HasOwnerRuns = requires(const Q& q, int i, int j) {
  { q.rowRunAt(i, j).owner } -> std::convertible_to<Proc>;
  { q.rowRunAt(i, j).end } -> std::convertible_to<int>;
  { q.colRunAt(j, i).owner } -> std::convertible_to<Proc>;
  { q.colRunAt(j, i).end } -> std::convertible_to<int>;
};

template <typename Q>
class OrientedView {
 public:
  OrientedView(Q& q, Direction dir) : q_(q), dir_(dir) {}

  int n() const { return q_.n(); }

  Proc at(int r, int c) const {
    const auto [i, j] = toPhysical(r, c);
    return q_.at(i, j);
  }

  /// Reassigns a cell and records the previous owner in `undo`.
  void set(int r, int c, Proc p, std::vector<CellUndo>& undo) {
    const auto [i, j] = toPhysical(r, c);
    const Proc prev = q_.at(i, j);
    if (prev == p) return;
    undo.push_back({i, j, prev});
    q_.set(i, j, p);
  }

  /// Does logical row r contain any element of p?
  bool rowHas(Proc p, int r) const {
    switch (dir_) {
      case Direction::Down: return q_.rowHas(p, r);
      case Direction::Up: return q_.rowHas(p, n() - 1 - r);
      case Direction::Right: return q_.colHas(p, r);
      case Direction::Left: return q_.colHas(p, n() - 1 - r);
    }
    return false;
  }

  /// Does logical column c contain any element of p?
  bool colHas(Proc p, int c) const {
    switch (dir_) {
      case Direction::Down:
      case Direction::Up: return q_.colHas(p, c);
      case Direction::Right:
      case Direction::Left: return q_.rowHas(p, c);
    }
    return false;
  }

  /// p's enclosing rectangle in logical coordinates.
  Rect rect(Proc p) const {
    const Rect r = q_.enclosingRect(p);
    if (r.isEmpty()) return Rect::empty();
    switch (dir_) {
      case Direction::Down:
        return r;
      case Direction::Up:
        return Rect{n() - r.rowEnd, n() - r.rowBegin, r.colBegin, r.colEnd};
      case Direction::Right:
        return Rect{r.colBegin, r.colEnd, r.rowBegin, r.rowEnd};
      case Direction::Left:
        return Rect{n() - r.colEnd, n() - r.colBegin, r.rowBegin, r.rowEnd};
    }
    return r;
  }

  /// The maximal same-owner run of logical row r containing logical column
  /// c, with its exclusive logical end column. Available only on run-length
  /// states. In all four orientations a logical row maps onto one physical
  /// row or column traversed in *increasing* physical index, so the physical
  /// run end is already the logical one.
  OwnerRun rowRun(int r, int c) const
    requires HasOwnerRuns<Q>
  {
    switch (dir_) {
      case Direction::Down: {
        const auto run = q_.rowRunAt(r, c);
        return {run.owner, run.end};
      }
      case Direction::Up: {
        const auto run = q_.rowRunAt(n() - 1 - r, c);
        return {run.owner, run.end};
      }
      case Direction::Right: {
        const auto run = q_.colRunAt(r, c);
        return {run.owner, run.end};
      }
      case Direction::Left: {
        const auto run = q_.colRunAt(n() - 1 - r, c);
        return {run.owner, run.end};
      }
    }
    return {q_.at(r, c), c + 1};
  }

  Direction direction() const { return dir_; }
  const Q& partition() const { return q_; }

 private:
  struct Phys {
    int i;
    int j;
  };
  Phys toPhysical(int r, int c) const {
    switch (dir_) {
      case Direction::Down: return {r, c};
      case Direction::Up: return {n() - 1 - r, c};
      case Direction::Right: return {c, r};
      case Direction::Left: return {c, n() - 1 - r};
    }
    return {r, c};
  }

  Q& q_;
  Direction dir_;
};

/// The element-exact view the original engine was written against.
using OrientedGrid = OrientedView<Partition>;

/// Reverts mutations recorded by OrientedView::set, newest first.
template <typename Q>
inline void rollback(Q& q, const std::vector<CellUndo>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it)
    q.set(it->i, it->j, it->previous);
}

}  // namespace pushpart
