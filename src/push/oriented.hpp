// Direction-canonicalising view over a Partition.
//
// The Push algorithm is written once for the canonical Down direction:
// "clean the lowest-index logical row of the active processor's enclosing
// rectangle, relocating elements into higher-index logical rows". This view
// maps logical (row, col) coordinates onto the physical grid so that the same
// code performs Up, Left and Right pushes:
//
//   Down : (r, c) -> (r, c)            logical rows are physical rows
//   Up   : (r, c) -> (n-1-r, c)        rows flipped
//   Right: (r, c) -> (c, r)            logical rows are physical columns
//   Left : (r, c) -> (c, n-1-r)        columns flipped and transposed
//
// Mutations are funnelled through set(), which appends to an undo log so a
// failed push attempt can be rolled back exactly.
#pragma once

#include <vector>

#include "grid/partition.hpp"
#include "push/direction.hpp"

namespace pushpart {

/// One grid mutation, recorded for rollback (physical coordinates).
struct CellUndo {
  int i;
  int j;
  Proc previous;
};

class OrientedGrid {
 public:
  OrientedGrid(Partition& q, Direction dir) : q_(q), dir_(dir) {}

  int n() const { return q_.n(); }

  Proc at(int r, int c) const {
    const auto [i, j] = toPhysical(r, c);
    return q_.at(i, j);
  }

  /// Reassigns a cell and records the previous owner in `undo`.
  void set(int r, int c, Proc p, std::vector<CellUndo>& undo) {
    const auto [i, j] = toPhysical(r, c);
    const Proc prev = q_.at(i, j);
    if (prev == p) return;
    undo.push_back({i, j, prev});
    q_.set(i, j, p);
  }

  /// Does logical row r contain any element of p?
  bool rowHas(Proc p, int r) const {
    switch (dir_) {
      case Direction::Down: return q_.rowHas(p, r);
      case Direction::Up: return q_.rowHas(p, n() - 1 - r);
      case Direction::Right: return q_.colHas(p, r);
      case Direction::Left: return q_.colHas(p, n() - 1 - r);
    }
    return false;
  }

  /// Does logical column c contain any element of p?
  bool colHas(Proc p, int c) const {
    switch (dir_) {
      case Direction::Down:
      case Direction::Up: return q_.colHas(p, c);
      case Direction::Right:
      case Direction::Left: return q_.rowHas(p, c);
    }
    return false;
  }

  /// p's enclosing rectangle in logical coordinates.
  Rect rect(Proc p) const {
    const Rect r = q_.enclosingRect(p);
    if (r.isEmpty()) return Rect::empty();
    switch (dir_) {
      case Direction::Down:
        return r;
      case Direction::Up:
        return Rect{n() - r.rowEnd, n() - r.rowBegin, r.colBegin, r.colEnd};
      case Direction::Right:
        return Rect{r.colBegin, r.colEnd, r.rowBegin, r.rowEnd};
      case Direction::Left:
        return Rect{n() - r.colEnd, n() - r.colBegin, r.rowBegin, r.rowEnd};
    }
    return r;
  }

  Direction direction() const { return dir_; }
  const Partition& partition() const { return q_; }

 private:
  struct Phys {
    int i;
    int j;
  };
  Phys toPhysical(int r, int c) const {
    switch (dir_) {
      case Direction::Down: return {r, c};
      case Direction::Up: return {n() - 1 - r, c};
      case Direction::Right: return {c, r};
      case Direction::Left: return {c, n() - 1 - r};
    }
    return {r, c};
  }

  Partition& q_;
  Direction dir_;
};

/// Reverts mutations recorded by OrientedGrid::set, newest first.
inline void rollback(Partition& q, const std::vector<CellUndo>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it)
    q.set(it->i, it->j, it->previous);
}

}  // namespace pushpart
