// Shape transformations: Theorems 8.1–8.4.
//
// The paper proves that every non-A archetype can be transformed into an
// Archetype A partition without increasing the Volume of Communication:
//
//   Thm 8.1 — translating R and S *jointly* (relative positions fixed) never
//             changes VoC. Implemented exactly as translateCombined.
//   Thm 8.4 — in a surround (Archetype D), the inner rectangle may be slid
//             against the surrounding processor's edge, yielding Archetype B.
//             Implemented exactly as slideInner.
//   Thm 8.2/8.3 — L-shapes and interlocks unfold/push into Archetype A.
//             Thm 8.3's content is the beautify pass (push/beautify.hpp);
//             Thm 8.2's is realised constructively by reduceToArchetypeA,
//             which selects the best canonical Archetype A candidate of the
//             same element counts and verifies it communicates no more than
//             the input — the theorem's guarantee, enforced per instance.
#pragma once

#include <optional>

#include "grid/partition.hpp"
#include "shapes/archetype.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

/// Thm 8.1: translates every R and S cell by (di, dj), backfilling vacated
/// cells with P. Returns false (leaving q untouched) when any translated
/// cell would leave the matrix or the translation is identity-free overlap
/// with itself is fine (cells move jointly). VoC is provably unchanged; the
/// implementation asserts it.
bool translateCombined(Partition& q, int di, int dj);

/// Thm 8.4 step: when `inner`'s enclosing rectangle lies strictly inside the
/// other slow processor's, slides the inner region by (di, dj) within the
/// surrounding rectangle, swapping cells with the surrounding processor.
/// Returns false when the move would leave the surrounding rectangle or the
/// destination region contains cells of a third processor. Asserts VoC does
/// not increase.
bool slideInner(Partition& q, Proc inner, int di, int dj);

/// Outcome of reduceToArchetypeA.
struct ReduceResult {
  CandidateShape shape;        ///< Canonical shape selected.
  std::int64_t vocBefore = 0;
  std::int64_t vocAfter = 0;
  Archetype archetypeBefore = Archetype::Unknown;
};

/// Thms 8.2–8.4 combined, constructively: replaces q with the minimum-VoC
/// feasible canonical Archetype A candidate of the same size and ratio.
/// Returns std::nullopt (q untouched) if no candidate achieves
/// VoC ≤ VoC(q) — which the paper proves cannot happen for condensed
/// B/C/D partitions; tests exercise exactly that property.
std::optional<ReduceResult> reduceToArchetypeA(Partition& q,
                                               const Ratio& ratio);

}  // namespace pushpart
