// Archetype classification of condensed partitions (paper §VII-C..G, Fig. 5).
//
// Every accept state the paper's program produced fell into one of four
// archetypes, described by the overlap relation of R's and S's enclosing
// rectangles and their corner counts:
//
//   A — No overlap, minimum corners: R and S are disjoint rectangles.
//   B — Overlap, "L" shape: rectangles partially overlap; one processor is a
//       rectangle (4 corners), the other an L (6 corners) wrapped around it.
//   C — Overlap, interlock: rectangles partially overlap, neither processor
//       rectangular (≥6 corners each); jointly they form a rectangle.
//   D — Overlap, surround: one enclosing rectangle contains the other;
//       the inner processor is a rectangle (4), the outer wraps it (8).
//
// Anything else is Unknown — a would-be counterexample to the paper's
// Postulate 1. Rectangularity uses the *asymptotic* notion (Fig. 3) so that
// integer-granularity shapes with one ragged edge row/column classify the
// same way the paper's idealized figures do.
#pragma once

#include <string>

#include "grid/partition.hpp"

namespace pushpart {

enum class Archetype { A = 0, B = 1, C = 2, D = 3, Unknown = 4 };

inline constexpr int kNumArchetypes = 5;

constexpr const char* archetypeName(Archetype a) {
  switch (a) {
    case Archetype::A: return "A";
    case Archetype::B: return "B";
    case Archetype::C: return "C";
    case Archetype::D: return "D";
    case Archetype::Unknown: return "Unknown";
  }
  return "?";
}

/// Everything the classifier measured, for diagnostics and stats.
struct ArchetypeInfo {
  Archetype archetype = Archetype::Unknown;
  bool rectsOverlap = false;       ///< R and S enclosing rectangles overlap.
  bool surround = false;           ///< One rectangle contains the other.
  bool rRectangular = false;       ///< R asymptotically rectangular.
  bool sRectangular = false;
  int rCorners = 0;
  int sCorners = 0;
  int rComponents = 0;
  int sComponents = 0;

  std::string str() const;
};

/// Classifies a (typically condensed) partition into the paper's archetypes.
/// Partitions where R or S owns no cells classify as Unknown (the paper's
/// setting always has three non-empty processors).
ArchetypeInfo classifyArchetype(const Partition& q);

}  // namespace pushpart
