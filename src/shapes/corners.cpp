#include "shapes/corners.hpp"

#include <vector>

namespace pushpart {

int cornerCount(const Partition& q, Proc x) {
  const int n = q.n();
  auto inRegion = [&](int i, int j) {
    return i >= 0 && i < n && j >= 0 && j < n && q.at(i, j) == x;
  };
  int corners = 0;
  // Only vertices adjacent to the enclosing rectangle can be corners;
  // restricting the sweep keeps this O(rect area), not O(N²).
  const Rect r = q.enclosingRect(x);
  if (r.isEmpty()) return 0;
  for (int i = r.rowBegin; i <= r.rowEnd; ++i) {
    for (int j = r.colBegin; j <= r.colEnd; ++j) {
      const bool a = inRegion(i - 1, j - 1);
      const bool b = inRegion(i - 1, j);
      const bool c = inRegion(i, j - 1);
      const bool d = inRegion(i, j);
      const int members = int{a} + int{b} + int{c} + int{d};
      if (members == 1 || members == 3) {
        ++corners;
      } else if (members == 2 && (a == d)) {
        // Two diagonal cells (a&d or b&c): the boundary crosses itself at
        // this vertex — two corners meet.
        corners += 2;
      }
    }
  }
  return corners;
}

int connectedComponents(const Partition& q, Proc x) {
  const int n = q.n();
  const Rect r = q.enclosingRect(x);
  if (r.isEmpty()) return 0;
  std::vector<char> seen(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n),
                         0);
  auto idx = [&](int i, int j) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(j);
  };
  int components = 0;
  std::vector<std::pair<int, int>> stack;
  for (int i0 = r.rowBegin; i0 < r.rowEnd; ++i0) {
    for (int j0 = r.colBegin; j0 < r.colEnd; ++j0) {
      if (q.at(i0, j0) != x || seen[idx(i0, j0)]) continue;
      ++components;
      stack.push_back({i0, j0});
      seen[idx(i0, j0)] = 1;
      while (!stack.empty()) {
        const auto [i, j] = stack.back();
        stack.pop_back();
        constexpr int di[4] = {1, -1, 0, 0};
        constexpr int dj[4] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          const int ni = i + di[d];
          const int nj = j + dj[d];
          if (ni < 0 || ni >= n || nj < 0 || nj >= n) continue;
          if (q.at(ni, nj) != x || seen[idx(ni, nj)]) continue;
          seen[idx(ni, nj)] = 1;
          stack.push_back({ni, nj});
        }
      }
    }
  }
  return components;
}

}  // namespace pushpart
