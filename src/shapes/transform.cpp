#include "shapes/transform.hpp"

#include <vector>

#include "support/check.hpp"

namespace pushpart {

bool translateCombined(Partition& q, int di, int dj) {
  if (di == 0 && dj == 0) return true;
  const int n = q.n();
  std::vector<std::pair<int, int>> rCells, sCells;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const Proc p = q.at(i, j);
      if (p == Proc::R) rCells.push_back({i, j});
      else if (p == Proc::S) sCells.push_back({i, j});
    }
  auto inBounds = [&](int i, int j) {
    return i + di >= 0 && i + di < n && j + dj >= 0 && j + dj < n;
  };
  for (const auto& [i, j] : rCells)
    if (!inBounds(i, j)) return false;
  for (const auto& [i, j] : sCells)
    if (!inBounds(i, j)) return false;

  const auto vocBefore = q.volumeOfCommunication();
  // Clear, then replant at the translated positions. Joint translation keeps
  // the R/S relative layout, so no destination collides with the other
  // processor's destination.
  for (const auto& [i, j] : rCells) q.set(i, j, Proc::P);
  for (const auto& [i, j] : sCells) q.set(i, j, Proc::P);
  for (const auto& [i, j] : rCells) q.set(i + di, j + dj, Proc::R);
  for (const auto& [i, j] : sCells) q.set(i + di, j + dj, Proc::S);

  PUSHPART_CHECK_MSG(q.volumeOfCommunication() == vocBefore,
                     "Thm 8.1 violated: joint translation changed VoC from "
                         << vocBefore << " to " << q.volumeOfCommunication());
  return true;
}

bool slideInner(Partition& q, Proc inner, int di, int dj) {
  PUSHPART_CHECK(inner != Proc::P);
  if (di == 0 && dj == 0) return true;
  const Proc outer = (inner == Proc::R) ? Proc::S : Proc::R;
  const Rect innerRect = q.enclosingRect(inner);
  const Rect outerRect = q.enclosingRect(outer);
  if (innerRect.isEmpty() || !outerRect.contains(innerRect)) return false;

  // Destination must stay inside the surrounding rectangle.
  const Rect dest{innerRect.rowBegin + di, innerRect.rowEnd + di,
                  innerRect.colBegin + dj, innerRect.colEnd + dj};
  if (!outerRect.contains(dest)) return false;

  std::vector<std::pair<int, int>> cells;
  for (int i = innerRect.rowBegin; i < innerRect.rowEnd; ++i)
    for (int j = innerRect.colBegin; j < innerRect.colEnd; ++j)
      if (q.at(i, j) == inner) cells.push_back({i, j});

  // Every destination cell must currently belong to the surrounding
  // processor or to the moving region itself; displacing P or overlapping a
  // third processor is outside Thm 8.4's premise.
  for (const auto& [i, j] : cells) {
    const Proc owner = q.at(i + di, j + dj);
    if (owner != outer && owner != inner) return false;
  }

  const auto vocBefore = q.volumeOfCommunication();
  for (const auto& [i, j] : cells) q.set(i, j, outer);
  for (const auto& [i, j] : cells) q.set(i + di, j + dj, inner);

  if (q.volumeOfCommunication() > vocBefore) {
    // Premises not met after all (e.g. the surround was ragged); undo.
    for (const auto& [i, j] : cells) q.set(i + di, j + dj, outer);
    for (const auto& [i, j] : cells) q.set(i, j, inner);
    return false;
  }
  return true;
}

std::optional<ReduceResult> reduceToArchetypeA(Partition& q,
                                               const Ratio& ratio) {
  const auto vocBefore = q.volumeOfCommunication();
  const Archetype before = classifyArchetype(q).archetype;

  std::optional<CandidateShape> best;
  std::int64_t bestVoc = 0;
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, q.n(), ratio)) continue;
    const Partition candidate = makeCandidate(shape, q.n(), ratio);
    const auto voc = candidate.volumeOfCommunication();
    if (!best || voc < bestVoc) {
      best = shape;
      bestVoc = voc;
    }
  }
  if (!best || bestVoc > vocBefore) return std::nullopt;

  q = makeCandidate(*best, q.n(), ratio);
  return ReduceResult{*best, vocBefore, bestVoc, before};
}

}  // namespace pushpart
