// The six candidate optimal partition shapes under Archetype A
// (paper §IX, Figs. 10–12).
//
// All six place R and S as (asymptotically) rectangular regions; they differ
// in which dimensions are pinned to the matrix edge length N:
//
//   Square-Corner (Type 1A)        R and S are squares in opposite corners.
//                                  Feasible iff P_r > 2√(R_r·S_r) (Thm 9.1,
//                                  which reduces to P_r > 2√R_r when S_r = 1).
//   Rectangle-Corner (Type 1B)     Two non-square rectangles in opposite
//                                  corners, combined width ≈ N; the width
//                                  split minimizing combined perimeter is
//                                  x = √R_r / (√R_r + √S_r) (from Eq. 13).
//   Square-Rectangle (Type 3)      R a full-height strip, S a square in a
//                                  corner of the remainder.
//   Block-Rectangle (Type 4)       R and S side by side with equal height in
//                                  a full-width strip (the canonical form of
//                                  Types 2 and 4, §IX-B.2).
//   L-Rectangle (Type 5)           R a full-height strip, S a full-remaining-
//                                  width rectangle at the bottom; P is an L.
//   Traditional-Rectangle (Type 6) R stacked on S in one full-height column
//                                  strip — the classical rectangular
//                                  partition every prior work assumed.
//
// Constructors produce *exact element counts* (the ratio share, as the DFA
// uses): full rows/columns plus one partial edge line, i.e. asymptotically
// rectangular regions. Continuous geometry for the closed-form cost models
// lives in model/closed_form.hpp.
#pragma once

#include <array>
#include <string>

#include "grid/partition.hpp"
#include "grid/ratio.hpp"

namespace pushpart {

enum class CandidateShape {
  kSquareCorner = 0,
  kRectangleCorner = 1,
  kSquareRectangle = 2,
  kBlockRectangle = 3,
  kLRectangle = 4,
  kTraditionalRectangle = 5,
};

inline constexpr int kNumCandidates = 6;

inline constexpr std::array<CandidateShape, kNumCandidates> kAllCandidates = {
    CandidateShape::kSquareCorner,     CandidateShape::kRectangleCorner,
    CandidateShape::kSquareRectangle,  CandidateShape::kBlockRectangle,
    CandidateShape::kLRectangle,       CandidateShape::kTraditionalRectangle,
};

constexpr const char* candidateName(CandidateShape s) {
  switch (s) {
    case CandidateShape::kSquareCorner: return "Square-Corner";
    case CandidateShape::kRectangleCorner: return "Rectangle-Corner";
    case CandidateShape::kSquareRectangle: return "Square-Rectangle";
    case CandidateShape::kBlockRectangle: return "Block-Rectangle";
    case CandidateShape::kLRectangle: return "L-Rectangle";
    case CandidateShape::kTraditionalRectangle: return "Traditional-Rectangle";
  }
  return "?";
}

/// Parses a candidate name (as printed by candidateName, case-sensitive).
/// Throws std::invalid_argument on unknown names.
CandidateShape candidateFromName(const std::string& name);

/// Thm 9.1 feasibility. Square-Corner requires the two squares to fit without
/// sharing rows or columns; every other shape is feasible whenever the grid
/// is large enough to give each processor at least one cell.
bool candidateFeasible(CandidateShape shape, int n, const Ratio& ratio);

/// Builds the canonical partition for `shape` at integer granularity with
/// exact ratio element counts. Throws std::invalid_argument when infeasible
/// (use candidateFeasible to probe).
Partition makeCandidate(CandidateShape shape, int n, const Ratio& ratio);

/// The optimal corner split for the Rectangle-Corner shape: R's share of the
/// combined corner width, x = √R_r/(√R_r + √S_r), minimizing Eq. 13 along
/// the x + y = 1 boundary.
double rectangleCornerSplit(const Ratio& ratio);

}  // namespace pushpart
