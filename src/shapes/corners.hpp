// Corner taxonomy of a processor's region (paper §VIII-A).
//
// A corner is a lattice vertex where the region's boundary turns. The paper
// classifies condensed shapes by corner counts: rectangles have 4, "L"
// shapes 6, surrounding shapes 8. We count corners exactly by examining the
// four cells around every lattice vertex: a vertex with an odd number of
// region cells (1 or 3) is one corner; two diagonally-opposite region cells
// contribute two corners (the boundary pinches); anything else is flat.
//
// Rectangularity comes in two flavours (paper Fig. 3): exact, and
// *asymptotic* — at most one edge row/column of the enclosing rectangle may
// be partially filled. Integer-granularity canonical shapes are generally
// asymptotically rectangular rather than exact, which is why the classifier
// uses the asymptotic notion.
#pragma once

#include "grid/metrics.hpp"  // isRectangle / isAsymptoticallyRectangular
#include "grid/partition.hpp"

namespace pushpart {

/// Number of boundary corners of processor x's region (0 when x owns no
/// cells). Disconnected regions report the sum over all components; a single
/// rectangle reports 4.
int cornerCount(const Partition& q, Proc x);

/// Number of 4-connected components of x's region (0 when x owns no cells).
int connectedComponents(const Partition& q, Proc x);

}  // namespace pushpart
