#include "shapes/archetype.hpp"

#include <sstream>

#include "shapes/corners.hpp"

namespace pushpart {

std::string ArchetypeInfo::str() const {
  std::ostringstream os;
  os << "archetype=" << archetypeName(archetype)
     << " overlap=" << (rectsOverlap ? "yes" : "no")
     << " surround=" << (surround ? "yes" : "no") << " R(rect="
     << (rRectangular ? "yes" : "no") << ", corners=" << rCorners
     << ", components=" << rComponents << ")"
     << " S(rect=" << (sRectangular ? "yes" : "no") << ", corners=" << sCorners
     << ", components=" << sComponents << ")";
  return os.str();
}

ArchetypeInfo classifyArchetype(const Partition& q) {
  ArchetypeInfo info;
  if (q.count(Proc::R) == 0 || q.count(Proc::S) == 0) return info;

  const Rect rRect = q.enclosingRect(Proc::R);
  const Rect sRect = q.enclosingRect(Proc::S);
  info.rectsOverlap = rRect.overlaps(sRect);
  info.surround = rRect.contains(sRect) || sRect.contains(rRect);
  info.rRectangular = isAsymptoticallyRectangular(q, Proc::R);
  info.sRectangular = isAsymptoticallyRectangular(q, Proc::S);
  info.rCorners = cornerCount(q, Proc::R);
  info.sCorners = cornerCount(q, Proc::S);
  info.rComponents = connectedComponents(q, Proc::R);
  info.sComponents = connectedComponents(q, Proc::S);

  if (!info.rectsOverlap) {
    // Archetype A needs both shapes rectangular; disjoint non-rectangles are
    // counterexamples.
    info.archetype = (info.rRectangular && info.sRectangular)
                         ? Archetype::A
                         : Archetype::Unknown;
    return info;
  }

  const int rectangularCount =
      int{info.rRectangular} + int{info.sRectangular};
  if (rectangularCount == 1 && info.rComponents == 1 &&
      info.sComponents == 1) {
    // One rectangle plus one wrapped shape. Enclosing-rectangle containment
    // alone cannot separate B from D: an L notched around the rectangle's
    // corner also contains its box. The paper's distinction is the corner
    // count of the wrapping processor — 6 corners is the Archetype B "L",
    // 8 corners the Archetype D surround.
    const int outerCorners = info.rRectangular ? info.sCorners : info.rCorners;
    info.archetype = (info.surround && outerCorners >= 8) ? Archetype::D
                                                          : Archetype::B;
    return info;
  }
  if (rectangularCount == 0) {
    info.archetype = Archetype::C;
    return info;
  }
  // Both rectangular with overlapping enclosing rectangles: ragged-edge
  // interleavings the idealized taxonomy draws as Archetype A with touching
  // rectangles; treat as A when the *cells* are disjoint rectangles whose
  // enclosing boxes merely brush (possible with asymptotic rectangles).
  info.archetype = Archetype::A;
  return info;
}

}  // namespace pushpart
