#include "shapes/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/check.hpp"

namespace pushpart {

namespace {

std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Side of the near-square holding `count` cells.
int squareSide(std::int64_t count) {
  return std::max<int>(
      1, static_cast<int>(std::llround(std::sqrt(static_cast<double>(count)))));
}

/// Scans the band rows [r0 advancing by dr] × cols [c0, c1), row by row
/// (each row left to right), claiming cells still owned by P until `count`
/// cells belong to x. Produces a stack of full rows plus one partial row —
/// an asymptotically rectangular region with an exact element count.
void fillRowsFirst(Partition& q, Proc x, int c0, int c1, int r0, int dr,
                   std::int64_t count) {
  std::int64_t remaining = count;
  for (int r = r0; r >= 0 && r < q.n() && remaining > 0; r += dr) {
    for (int c = c0; c < c1 && remaining > 0; ++c) {
      if (q.at(r, c) != Proc::P) continue;
      q.set(r, c, x);
      --remaining;
    }
  }
  PUSHPART_CHECK_MSG(remaining == 0,
                     "band too small for " << procName(x) << ": " << remaining
                                           << " cells left over");
}

/// Column-major variant: full columns plus one partial column. `fromBottom`
/// fills each column upward so the partial column's cells hug the bottom
/// edge — needed by the full-height-strip shapes, whose slack must land in
/// rows that already carry P (otherwise every row the slack touches gains a
/// third owner and the shape's VoC leaves its closed form).
void fillColsFirst(Partition& q, Proc x, int r0, int r1, int c0, int dc,
                   std::int64_t count, bool fromBottom = false) {
  std::int64_t remaining = count;
  for (int c = c0; c >= 0 && c < q.n() && remaining > 0; c += dc) {
    if (fromBottom) {
      for (int r = r1 - 1; r >= r0 && remaining > 0; --r) {
        if (q.at(r, c) != Proc::P) continue;
        q.set(r, c, x);
        --remaining;
      }
    } else {
      for (int r = r0; r < r1 && remaining > 0; ++r) {
        if (q.at(r, c) != Proc::P) continue;
        q.set(r, c, x);
        --remaining;
      }
    }
  }
  PUSHPART_CHECK_MSG(remaining == 0,
                     "band too small for " << procName(x) << ": " << remaining
                                           << " cells left over");
}

/// Lane boundary splitting n lanes between R (lanes [0, boundary)) and S
/// (lanes [boundary, n)) in proportion to their element counts, clamped so
/// each side can hold its elements within n cells per lane. Used by the
/// Block- and Traditional-Rectangle constructions, which then fill each side
/// as an independent edge-aligned band (the two bands' depths differ by at
/// most ~1, the integer version of the canonical "equal heights").
int proportionalBoundary(int n, std::int64_t eR, std::int64_t eS) {
  const auto lo = ceilDiv(eR, n);
  const auto hi = static_cast<std::int64_t>(n) - ceilDiv(eS, n);
  PUSHPART_CHECK_MSG(lo <= hi, "bands do not fit: n=" << n);
  const auto want = static_cast<std::int64_t>(
      std::llround(static_cast<double>(n) * static_cast<double>(eR) /
                   static_cast<double>(eR + eS)));
  return static_cast<int>(std::clamp(want, lo, hi));
}

struct Counts {
  std::int64_t eR;
  std::int64_t eS;
};

Counts countsFor(int n, const Ratio& ratio) {
  const auto c = ratio.elementCounts(n);
  return {c[procSlot(Proc::R)], c[procSlot(Proc::S)]};
}

/// Rectangle-Corner widths after clamping to heights that fit the matrix.
struct CornerWidths {
  int wR;
  int wS;
  bool feasible;
};

CornerWidths rectangleCornerWidths(int n, const Counts& e) {
  const auto minWR = static_cast<int>(ceilDiv(e.eR, n));
  const auto minWS = static_cast<int>(ceilDiv(e.eS, n));
  if (minWR + minWS > n) return {0, 0, false};
  const Ratio probe{1, static_cast<double>(e.eR), static_cast<double>(e.eS)};
  // Split the full width so combined perimeter is minimal (Eq. 13 boundary
  // optimum), then clamp so both heights fit.
  int wR = static_cast<int>(std::llround(rectangleCornerSplit(probe) * n));
  wR = std::clamp(wR, minWR, n - minWS);
  wR = std::max(wR, 1);
  return {wR, n - wR, true};
}

}  // namespace

double rectangleCornerSplit(const Ratio& ratio) {
  const double sr = std::sqrt(ratio.r);
  const double ss = std::sqrt(ratio.s);
  return sr / (sr + ss);
}

CandidateShape candidateFromName(const std::string& name) {
  for (CandidateShape s : kAllCandidates)
    if (name == candidateName(s)) return s;
  throw std::invalid_argument("unknown candidate shape '" + name + "'");
}

bool candidateFeasible(CandidateShape shape, int n, const Ratio& ratio) {
  if (n <= 0 || !ratio.valid()) return false;
  const Counts e = countsFor(n, ratio);
  if (e.eR <= 0 || e.eS <= 0) return false;

  switch (shape) {
    case CandidateShape::kSquareCorner: {
      const int aR = squareSide(e.eR);
      const int aS = squareSide(e.eS);
      const auto hR = ceilDiv(e.eR, aR);
      const auto hS = ceilDiv(e.eS, aS);
      // Thm 9.1 at integer granularity: disjoint columns and rows.
      return aR + aS <= n && hR + hS <= n;
    }
    case CandidateShape::kRectangleCorner:
      return rectangleCornerWidths(n, e).feasible;
    case CandidateShape::kSquareRectangle: {
      const auto wR = ceilDiv(e.eR, n);
      const int aS = squareSide(e.eS);
      return wR + aS <= n && ceilDiv(e.eS, aS) <= n;
    }
    case CandidateShape::kBlockRectangle:
      return ceilDiv(e.eR, n) + ceilDiv(e.eS, n) <= n;
    case CandidateShape::kLRectangle: {
      const auto wR = ceilDiv(e.eR, n);
      return wR < n && ceilDiv(e.eS, n - wR) <= n;
    }
    case CandidateShape::kTraditionalRectangle:
      return ceilDiv(e.eR, n) + ceilDiv(e.eS, n) <= n;
  }
  return false;
}

Partition makeCandidate(CandidateShape shape, int n, const Ratio& ratio) {
  if (!candidateFeasible(shape, n, ratio))
    throw std::invalid_argument(std::string(candidateName(shape)) +
                                " infeasible for n=" + std::to_string(n) +
                                " ratio " + ratio.str());
  const Counts e = countsFor(n, ratio);
  Partition q(n, Proc::P);

  switch (shape) {
    case CandidateShape::kSquareCorner: {
      // R square in the top-left corner, S square in the bottom-right:
      // no shared rows or columns (Fig. 11 left).
      const int aR = squareSide(e.eR);
      const int aS = squareSide(e.eS);
      fillRowsFirst(q, Proc::R, 0, aR, 0, +1, e.eR);
      fillRowsFirst(q, Proc::S, n - aS, n, n - 1, -1, e.eS);
      break;
    }
    case CandidateShape::kRectangleCorner: {
      // Two non-square rectangles in opposite corners whose widths split the
      // full edge (Fig. 11 right); rows may interleave, columns are disjoint.
      const CornerWidths w = rectangleCornerWidths(n, e);
      fillRowsFirst(q, Proc::R, 0, w.wR, 0, +1, e.eR);
      fillRowsFirst(q, Proc::S, n - w.wS, n, n - 1, -1, e.eS);
      break;
    }
    case CandidateShape::kSquareRectangle: {
      // R a full-height strip on the left, S a square in the bottom-right.
      // The strip's partial column fills bottom-up so its P-slack stays in
      // rows that already carry P.
      const int aS = squareSide(e.eS);
      fillColsFirst(q, Proc::R, 0, n, 0, +1, e.eR, /*fromBottom=*/true);
      fillRowsFirst(q, Proc::S, n - aS, n, n - 1, -1, e.eS);
      break;
    }
    case CandidateShape::kBlockRectangle: {
      // Full-width bottom strip shared by R (left) and S (right) — the
      // canonical Type 4 with (near-)equal heights. Each side is an
      // independent bottom-aligned band; slack stays in each band's own
      // partial top row, so measured VoC tracks the closed form to O(1/n).
      const int cb = proportionalBoundary(n, e.eR, e.eS);
      fillRowsFirst(q, Proc::R, 0, cb, n - 1, -1, e.eR);
      fillRowsFirst(q, Proc::S, cb, n, n - 1, -1, e.eS);
      break;
    }
    case CandidateShape::kLRectangle: {
      // R a full-height strip on the left (partial column bottom-up, slack
      // against P's rows), S spanning the remaining width at the bottom;
      // P keeps the L-shaped top-right remainder.
      const auto wR = static_cast<int>(ceilDiv(e.eR, n));
      fillColsFirst(q, Proc::R, 0, n, 0, +1, e.eR, /*fromBottom=*/true);
      fillRowsFirst(q, Proc::S, wR, n, n - 1, -1, e.eS);
      break;
    }
    case CandidateShape::kTraditionalRectangle: {
      // One (near-)uniform-width column strip on the right holding R above
      // S — the classical all-rectangles partition. Transpose of the Block
      // construction: a row boundary splits the matrix; each side is an
      // independent right-aligned band whose slack stays in its own partial
      // leftmost column.
      const int rb = proportionalBoundary(n, e.eR, e.eS);
      fillColsFirst(q, Proc::R, 0, rb, n - 1, -1, e.eR);
      fillColsFirst(q, Proc::S, rb, n, n - 1, -1, e.eS);
      break;
    }
  }
  return q;
}

}  // namespace pushpart
