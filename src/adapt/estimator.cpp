#include "adapt/estimator.hpp"

#include <algorithm>
#include <stdexcept>

namespace pushpart {

void RatioEstimatorOptions::validate() const {
  if (!(alpha > 0.0) || alpha > 1.0)
    throw std::invalid_argument("RatioEstimator: alpha must be in (0, 1]");
  if (!(outlierClampFactor > 1.0))
    throw std::invalid_argument(
        "RatioEstimator: outlierClampFactor must be > 1");
  if (demoteAfterStalls < 1)
    throw std::invalid_argument(
        "RatioEstimator: demoteAfterStalls must be >= 1");
  if (!(demotedSpeedFraction > 0.0) || demotedSpeedFraction >= 1.0)
    throw std::invalid_argument(
        "RatioEstimator: demotedSpeedFraction must be in (0, 1)");
}

RatioEstimator::RatioEstimator(RatioEstimatorOptions options)
    : options_(options) {
  options_.validate();
  for (Proc x : kAllProcs) nodes_[procSlot(x)] = NodeEstimate{};
}

void RatioEstimator::observe(const PhaseSample& sample) {
  ++counters_.phases;
  for (Proc x : kAllProcs) {
    const NodeSample& obs = sample.node(x);
    NodeEstimate& node = nodes_[procSlot(x)];
    if (obs.dead) {
      // Immediate demotion; the EWMA keeps the last healthy throughput as
      // the recovery prior.
      if (!node.demoted) ++counters_.deathDemotions;
      node.demoted = true;
      node.dead = true;
      node.stallStreak = 0;
      continue;
    }
    const bool progressed =
        !obs.stalled && obs.units > 0 && obs.busySeconds > 0.0;
    if (!progressed) {
      ++node.stallStreak;
      if (!node.demoted && node.stallStreak >= options_.demoteAfterStalls) {
        node.demoted = true;
        ++counters_.stallDemotions;
      }
      continue;
    }
    double raw = static_cast<double>(obs.units) / obs.busySeconds;
    if (node.samples > 0) {
      const double lo = node.throughput / options_.outlierClampFactor;
      const double hi = node.throughput * options_.outlierClampFactor;
      const double clamped = std::clamp(raw, lo, hi);
      if (clamped != raw) ++counters_.clampedSamples;
      node.throughput =
          (1.0 - options_.alpha) * node.throughput + options_.alpha * clamped;
    } else {
      node.throughput = raw;  // first sample initializes the EWMA
    }
    ++node.samples;
    node.stallStreak = 0;
    if (node.demoted || node.dead) {
      node.demoted = false;
      node.dead = false;
      ++counters_.recoveries;
    }
  }
}

RatioEstimate RatioEstimator::estimate() const {
  RatioEstimate est;
  est.warmedUp = true;
  double fastestHealthy = 0.0;
  for (Proc x : kAllProcs) {
    const NodeEstimate& node = nodes_[procSlot(x)];
    if (node.samples == 0) est.warmedUp = false;
    if (!node.demoted)
      fastestHealthy = std::max(fastestHealthy, node.throughput);
  }
  for (Proc x : kAllProcs) {
    const NodeEstimate& node = nodes_[procSlot(x)];
    double speed = node.throughput;
    if (node.demoted && fastestHealthy > 0.0)
      speed = options_.demotedSpeedFraction * fastestHealthy;
    est.speed[procSlot(x)] = speed;
  }
  est.order = {Proc::R, Proc::S, Proc::P};
  std::stable_sort(est.order.begin(), est.order.end(), [&](Proc a, Proc b) {
    const double sa = est.speed[procSlot(a)];
    const double sb = est.speed[procSlot(b)];
    if (sa != sb) return sa > sb;
    return procIndex(a) < procIndex(b);  // deterministic tie-break
  });
  return est;
}

Ratio RatioEstimate::canonical() const {
  if (!warmedUp)
    throw std::logic_error(
        "RatioEstimate::canonical: estimator not warmed up (a node has no "
        "healthy sample yet)");
  const double fastest = speed[procSlot(order[0])];
  const double middle = speed[procSlot(order[1])];
  const double slowest = speed[procSlot(order[2])];
  if (!(slowest > 0.0))
    throw std::logic_error(
        "RatioEstimate::canonical: non-positive slowest speed");
  return Ratio{fastest / slowest, middle / slowest, 1.0};
}

}  // namespace pushpart
