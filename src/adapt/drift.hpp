// Staleness detection: has the observed ratio left the served plan's
// optimality region?
//
// A plan is solved for one ratio; its element shares and its winning shape
// are both functions of that ratio. The DriftMonitor (DESIGN.md §16) judges
// whether the plan the session is still executing remains close enough to
// optimal at the ratio the RatioEstimator currently believes, in three
// escalating steps:
//
//   1. Atlas same-cell fast path (O(1)). Map the estimate onto the plan
//      atlas grid (src/atlas). Landing in the very cell the plan was solved
//      for bounds the share drift by half a grid step — fresh, no re-cost.
//   2. Atlas cell certificate. The estimate landed in a *different* cell
//      that is solved, off-boundary, and whose (snapped) winner differs
//      from the served shape, with a runner-up gap above the staleness
//      threshold: the ratio has decisively crossed into another shape's
//      region — stale, certified by the precomputed surface alone. Cells
//      near a crossover front carry small runner-up gaps, so a
//      boundary-hugging ratio can hop cells all day without tripping this
//      (that, plus the session's hysteresis, is the anti-thrash story).
//   3. Re-cost gap (the fallback, and the only step when no atlas is
//      loaded). Cost the *frozen* plan — its actual element counts and VoC,
//      solved for the old ratio — at the estimated speeds, against the best
//      achievable plan at the estimate (model/optimal.hpp). Stale when the
//      gap exceeds staleGapPct. This is the predicate that catches
//      same-winner share drift: the shape may still win, but the shares are
//      wrong.
//
// The frozen-plan cost uses the SCB closed form (serial bulk communication
// + slowest-processor compute) — the same structure selectOptimal models —
// so the gap compares like against like.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "atlas/atlas.hpp"
#include "grid/ratio.hpp"
#include "model/machine.hpp"
#include "model/optimal.hpp"
#include "shapes/candidates.hpp"

namespace pushpart {

struct DriftOptions {
  /// Re-cost granularity and machine constants (machine.ratio is ignored —
  /// the estimate supplies per-evaluation speeds).
  int n = 96;
  Algo algo = Algo::kSCB;
  Topology topology = Topology::kFullyConnected;
  StarConfig star{};
  Machine machine{};
  /// Staleness threshold, percent: the frozen plan must model this much
  /// worse than the best plan at the estimated ratio (step 3), or the new
  /// cell's runner-up gap must exceed it (step 2).
  double staleGapPct = 5.0;
  /// Optimality-region source. Null = re-cost gap only.
  std::shared_ptr<const PlanAtlas> atlas;

  /// Throws std::invalid_argument on a degenerate n or threshold.
  void validate() const;
};

/// Why the monitor ruled the way it did. kWarmup is recorded by the
/// AdaptiveSession (the monitor is never consulted before the estimator has
/// a sample from every node).
enum class DriftReason {
  kNoPlan = 0,       ///< Fresh: nothing adopted yet.
  kWarmup,           ///< Fresh: estimator not warmed up yet.
  kSameCell,         ///< Fresh: estimate in the plan's own atlas cell.
  kCellCertificate,  ///< Stale: decisively inside another winner's cell.
  kRecostGap,        ///< Stale: frozen-plan re-cost gap above threshold.
  kRecostOk,         ///< Fresh: re-cost gap within threshold.
};

constexpr const char* driftReasonName(DriftReason r) {
  switch (r) {
    case DriftReason::kNoPlan: return "no-plan";
    case DriftReason::kWarmup: return "warmup";
    case DriftReason::kSameCell: return "same-cell";
    case DriftReason::kCellCertificate: return "cell-certificate";
    case DriftReason::kRecostGap: return "recost-gap";
    case DriftReason::kRecostOk: return "recost-ok";
  }
  return "?";
}

struct DriftVerdict {
  bool stale = false;
  DriftReason reason = DriftReason::kNoPlan;
  /// Frozen-plan re-cost gap vs the best plan at the estimate, percent
  /// (computed on steps 2–3; 0 on the same-cell fast path).
  double gapPct = 0.0;
  /// Atlas cell the estimate mapped to (-1 when no atlas or out of range).
  int cellI = -1;
  int cellJ = -1;
  bool cellChanged = false;  ///< Estimate left the plan's cell.
  /// Best shape at the estimated ratio (steps 2–3; the served shape on the
  /// fast path).
  CandidateShape bestShape = CandidateShape::kSquareCorner;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftOptions options);

  /// Records the plan the session just started executing: its shape, the
  /// canonical ratio it was solved for (element shares follow from it), and
  /// its measured VoC.
  void adopt(CandidateShape shape, const Ratio& plannedRatio,
             std::int64_t voc);

  /// Judges the adopted plan at the estimated speeds. `canonicalEstimate`
  /// is the estimator's sorted ratio (P_r >= R_r >= S_r = 1);
  /// `logicalSpeed` gives, per logical role (procSlot order R, S, P), the
  /// estimated speed of the node *currently assigned* that role, on the
  /// same scale as the canonical estimate — it differs from the canonical
  /// components exactly when the fastest-first order has drifted away from
  /// the assignment frozen into the plan.
  DriftVerdict evaluate(const Ratio& canonicalEstimate,
                        const std::array<double, kNumProcs>& logicalSpeed) const;

  /// Convenience overload for the common no-relabel case: the logical
  /// speeds are the canonical components themselves.
  DriftVerdict evaluate(const Ratio& canonicalEstimate) const;

  const DriftOptions& options() const { return options_; }
  bool hasPlan() const { return hasPlan_; }

 private:
  /// Frozen-plan cost at the given logical speeds: serial bulk comm of the
  /// plan's VoC plus the slowest role's compute time.
  double frozenCost(const std::array<double, kNumProcs>& logicalSpeed) const;

  DriftOptions options_;
  bool hasPlan_ = false;
  CandidateShape shape_ = CandidateShape::kSquareCorner;
  Ratio plannedRatio_{2, 1, 1};
  std::array<std::int64_t, kNumProcs> plannedCounts_{};
  std::int64_t plannedVoc_ = 0;
  int plannedI_ = -1;  ///< Atlas cell the plan's ratio maps to (-1 none).
  int plannedJ_ = -1;
};

}  // namespace pushpart
