// The drift drill: a long-running, fully seeded serving scenario that
// exercises the adaptive loop end to end and *checks itself*.
//
// Three physical nodes (ids = procIndex: 0 = R, 1 = S, 2 = P) run one
// matrix-multiply phase after another while their speeds wander as a bounded
// multiplicative random walk and a ClusterFaultPlan kills, revives and
// throttles them. Each phase the drill
//
//   1. computes the ground-truth effective speeds (wander ÷ slow-window
//      factor; a killed node drops to a floor fraction of the fastest
//      survivor),
//   2. simulates the *currently served* plan at those speeds through
//      sim/mmm_sim (machine.ratio = the speed of the node playing each
//      logical role) and captures the telemetry PhaseSample it emits,
//   3. remaps the sample from logical roles back to physical nodes via the
//      session's planOrder, stamps ground-truth death (standing in for the
//      cluster failure detector of src/cluster), and feeds it to the
//      AdaptiveSession on a FakeClock advanced phaseSeconds per phase,
//   4. scores the phase: the served plan's frozen counts and VoC costed at
//      the true speeds, against an omniscient per-phase oracle that
//      re-selects the optimal shape at the exact true speeds — both sides
//      through the same SCB closed form, so regret compares like with like.
//
// The self-checks (bench/drift_loadgen fails the run on any of them):
//   * cumulative regret Σ servedCost / Σ omniscientCost stays within
//     regretBound (default 1.25×);
//   * after every fault window the session re-converges — within
//     reconvergePhases of the window closing, the served plan costs within
//     reconvergeTolerancePct of omniscient — and some replan fired while
//     the window was in force;
//   * a control run (wanderStep = 0, no faults) replans exactly zero times.
//
// Wander bounds and the fault plan must keep physical node 2 the fastest at
// all times (kills and slow windows only on nodes 0/1): the simulator
// requires a valid ratio (P fastest), and a real deployment that loses its
// fastest node is PR 5's cluster-failover story, not this drill's.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "adapt/session.hpp"
#include "sim/fault.hpp"

namespace pushpart {

struct DriftScenarioOptions {
  int phases = 300;
  double phaseSeconds = 1.0;  ///< FakeClock advance per phase.
  std::uint64_t seed = 42;    ///< Wander stream seed.
  int n = 96;
  Algo algo = Algo::kSCB;

  /// Baseline absolute speeds by physical node in procSlot order
  /// {node 0 (R), node 1 (S), node 2 (P)}. Absolute magnitudes are fine:
  /// only relative speeds enter plans, and regret is a cost *ratio*.
  std::array<double, kNumProcs> baseSpeed = {3.0, 1.5, 8.0};
  /// Maximum per-phase multiplicative log-step of the speed wander; 0
  /// freezes the speeds (the control run).
  double wanderStep = 0.05;
  /// Reflecting wander bounds per node (procSlot order). Defaults keep node
  /// 2 strictly fastest.
  std::array<double, kNumProcs> wanderMin = {1.2, 0.8, 6.0};
  std::array<double, kNumProcs> wanderMax = {4.8, 2.4, 10.0};

  /// Node-level fault schedule on drill time (node id = procIndex). Node 2
  /// must not be killed or slowed (see header comment); validate() enforces
  /// it. Flaps/partitions/heartbeats are ignored — this drill models
  /// compute-speed drift, not reachability.
  ClusterFaultPlan faults;
  /// A killed node's effective speed, as a fraction of the fastest
  /// survivor's (matches RatioEstimatorOptions::demotedSpeedFraction).
  double deadSpeedFloorFraction = 0.02;

  /// Session knobs. base.n/algo and the clock are overwritten by the drill;
  /// base.ratio is seeded from baseSpeed.
  AdaptiveSessionOptions session;

  /// Self-check bounds.
  double regretBound = 1.25;
  int reconvergePhases = 6;
  double reconvergeTolerancePct = 10.0;

  /// Throws std::invalid_argument on degenerate counts/bounds or a fault
  /// plan touching node 2.
  void validate() const;
};

/// One scored phase.
struct DriftPhaseRecord {
  int phase = 0;
  double at = 0.0;                                ///< Drill-clock seconds.
  std::array<double, kNumProcs> trueSpeed{};      ///< Effective, procSlot order.
  std::array<bool, kNumProcs> dead{};             ///< Ground-truth kill state.
  bool stale = false;
  DriftReason reason = DriftReason::kNoPlan;
  bool replanned = false;
  CandidateShape servedShape = CandidateShape::kSquareCorner;
  double servedCost = 0.0;     ///< Frozen plan at true speeds (SCB form).
  CandidateShape bestShape = CandidateShape::kSquareCorner;
  double bestCost = 0.0;       ///< Omniscient per-phase optimum, same form.
};

/// One fault window's recovery verdict.
struct FaultWindowReport {
  int node = 0;
  bool kill = false;  ///< false = slow window.
  double begin = 0.0;
  double end = 0.0;            ///< Rejoin / window end (drill end if never).
  bool replanDuring = false;   ///< A replan fired while the window was live.
  bool reconverged = false;    ///< Served cost back within tolerance of best.
  int reconvergedAfterPhases = -1;  ///< Phases past the window close (-1 = no).
};

struct DriftDrillReport {
  std::vector<DriftPhaseRecord> records;
  std::vector<FaultWindowReport> windows;
  double servedTotal = 0.0;
  double bestTotal = 0.0;
  AdaptiveStats stats;                   ///< Session counters at drill end.
  RatioEstimator::Counters estimator;    ///< Estimator counters at drill end.
  std::vector<AdaptiveEvent> events;     ///< The session's decision log.

  /// Cumulative regret factor: 1.0 = matched the omniscient oracle.
  double regretFactor() const {
    return bestTotal > 0.0 ? servedTotal / bestTotal : 1.0;
  }
  bool regretOk(double bound) const { return regretFactor() <= bound; }
  bool allReconverged() const {
    for (const FaultWindowReport& w : windows)
      if (!w.reconverged) return false;
    return true;
  }
};

/// Runs the scenario against `oracle` (whose machine constants the costs
/// use). The oracle must be configured with the same n-independent machine
/// the session plans against; its cache/atlas/ladder all apply unchanged.
DriftDrillReport runDriftDrill(Oracle& oracle,
                               const DriftScenarioOptions& options);

}  // namespace pushpart
