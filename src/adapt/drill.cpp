#include "adapt/drill.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/optimal.hpp"
#include "shapes/candidates.hpp"
#include "sim/mmm_sim.hpp"
#include "support/rng.hpp"

namespace pushpart {

void DriftScenarioOptions::validate() const {
  if (phases < 1)
    throw std::invalid_argument("DriftScenario: phases must be >= 1");
  if (!(phaseSeconds > 0.0))
    throw std::invalid_argument("DriftScenario: phaseSeconds must be positive");
  if (n < kNumProcs)
    throw std::invalid_argument("DriftScenario: n too small to partition");
  if (wanderStep < 0.0)
    throw std::invalid_argument("DriftScenario: wanderStep must be >= 0");
  if (!(deadSpeedFloorFraction > 0.0) || deadSpeedFloorFraction >= 1.0)
    throw std::invalid_argument(
        "DriftScenario: deadSpeedFloorFraction must be in (0, 1)");
  if (!(regretBound >= 1.0))
    throw std::invalid_argument("DriftScenario: regretBound must be >= 1");
  if (reconvergePhases < 1)
    throw std::invalid_argument(
        "DriftScenario: reconvergePhases must be >= 1");
  if (!(reconvergeTolerancePct > 0.0))
    throw std::invalid_argument(
        "DriftScenario: reconvergeTolerancePct must be positive");
  for (Proc x : kAllProcs) {
    const std::size_t i = procSlot(x);
    if (!(wanderMin[i] > 0.0) || !(wanderMin[i] <= wanderMax[i]))
      throw std::invalid_argument("DriftScenario: bad wander bounds");
    if (baseSpeed[i] < wanderMin[i] || baseSpeed[i] > wanderMax[i])
      throw std::invalid_argument(
          "DriftScenario: baseSpeed outside wander bounds");
  }
  // The simulator needs a valid ratio every phase: node 2 (physical P) must
  // stay strictly fastest, so its wander floor must clear the others'
  // ceilings and faults may only touch nodes 0/1.
  const std::size_t pSlot = procSlot(Proc::P);
  for (Proc x : kSlowProcs)
    if (wanderMax[procSlot(x)] >= wanderMin[pSlot])
      throw std::invalid_argument(
          "DriftScenario: node 2 must stay fastest (raise wanderMin[P] above "
          "the other nodes' wanderMax)");
  for (const NodeKill& kill : faults.kills)
    if (kill.node == procIndex(Proc::P))
      throw std::invalid_argument("DriftScenario: node 2 must not be killed");
  for (const SlowNode& slow : faults.slowNodes)
    if (slow.node == procIndex(Proc::P))
      throw std::invalid_argument("DriftScenario: node 2 must not be slowed");
  faults.validate(kNumProcs);
  session.validate();
}

namespace {

/// The drill's single cost yardstick: serial bulk communication of the
/// plan's VoC plus the slowest processor's compute time, at *absolute*
/// speeds. Served and omniscient costs both go through here, so regret is a
/// like-for-like ratio.
double scbCost(const Machine& constants, std::int64_t voc,
               const std::array<std::int64_t, kNumProcs>& counts,
               const std::array<double, kNumProcs>& speed, int n) {
  double comp = 0.0;
  for (Proc x : kAllProcs) {
    const std::size_t i = procSlot(x);
    const double macs = static_cast<double>(counts[i]) * static_cast<double>(n);
    comp = std::max(comp, constants.baseFlopSeconds * macs / speed[i]);
  }
  return constants.sendElementSeconds * static_cast<double>(voc) + comp;
}

/// Multiplicative reflection into [lo, hi] (steps are small relative to the
/// band, so one bounce suffices).
double reflect(double v, double lo, double hi) {
  if (v > hi) v = hi * hi / v;
  if (v < lo) v = lo * lo / v;
  return std::clamp(v, lo, hi);
}

/// Canonical ratio (fastest:middle:slowest) of three absolute speeds.
Ratio sortedRatio(const std::array<double, kNumProcs>& speed) {
  std::array<double, kNumProcs> s = speed;
  std::sort(s.begin(), s.end(), std::greater<double>());
  return Ratio{s[0], s[1], s[2]};
}

}  // namespace

DriftDrillReport runDriftDrill(Oracle& oracle,
                               const DriftScenarioOptions& options) {
  options.validate();
  const Machine constants = oracle.options().machine;
  const double duration = options.phases * options.phaseSeconds;

  FakeClock clock(0.0);
  AdaptiveSessionOptions sessionOptions = options.session;
  sessionOptions.base.n = options.n;
  sessionOptions.base.algo = options.algo;
  sessionOptions.base.ratio = sortedRatio(options.baseSpeed);
  sessionOptions.clock = &clock;

  AdaptiveSession session(oracle, sessionOptions);
  session.start();

  ClusterFaultInjector injector(options.faults, kNumProcs);
  Rng rng(options.seed);
  std::array<double, kNumProcs> wander = options.baseSpeed;
  constexpr std::array<Proc, kNumProcs> kRoles = {Proc::P, Proc::R, Proc::S};

  DriftDrillReport report;
  report.records.reserve(static_cast<std::size_t>(options.phases));

  for (int phase = 0; phase < options.phases; ++phase) {
    clock.advance(options.phaseSeconds);
    const double at = clock.nowSeconds();

    DriftPhaseRecord rec;
    rec.phase = phase;
    rec.at = at;

    // Ground truth: wander, then throttle windows, then kills at a floor
    // fraction of the fastest survivor.
    double fastestAlive = 0.0;
    for (Proc x : kAllProcs) {
      const std::size_t i = procSlot(x);
      if (options.wanderStep > 0.0) {
        const double step =
            std::exp((2.0 * rng.real() - 1.0) * options.wanderStep);
        wander[i] = reflect(wander[i] * step, options.wanderMin[i],
                            options.wanderMax[i]);
      }
      const int node = procIndex(x);
      rec.dead[i] = injector.killedAt(node, at);
      rec.trueSpeed[i] = wander[i] / injector.slowFactorAt(node, at);
      if (!rec.dead[i]) fastestAlive = std::max(fastestAlive, rec.trueSpeed[i]);
    }
    for (Proc x : kAllProcs) {
      const std::size_t i = procSlot(x);
      if (rec.dead[i])
        rec.trueSpeed[i] = options.deadSpeedFloorFraction * fastestAlive;
    }

    // Omniscient per-phase oracle: re-select the optimum at the exact true
    // speeds and cost it with the drill's yardstick.
    const Ratio truth = sortedRatio(rec.trueSpeed);
    Machine atTruth = constants;
    atTruth.ratio = truth;
    const RankedCandidate best =
        selectOptimal(options.algo, options.n, atTruth,
                      sessionOptions.base.topology, sessionOptions.base.star);
    {
      // counts/speeds in logical role order: P fastest, R middle, S slowest.
      const std::array<double, kNumProcs> speedByRole = {
          truth.r, truth.s, truth.p};  // procSlot order R, S, P
      rec.bestShape = best.shape;
      rec.bestCost = scbCost(constants, best.voc, truth.elementCounts(options.n),
                             speedByRole, options.n);
    }

    // The served plan at the true speeds: frozen counts and VoC, each
    // logical role running on the physical node the session assigned it.
    const PlanAnswer served = session.current().answer;
    const std::array<Proc, kNumProcs> order = session.planOrder();
    std::array<double, kNumProcs> speedByRole{};
    for (std::size_t rank = 0; rank < kNumProcs; ++rank)
      speedByRole[procSlot(kRoles[rank])] =
          rec.trueSpeed[procSlot(order[rank])];
    const Ratio plannedRatio = session.plannedRatio();
    rec.servedShape = served.shape;
    rec.servedCost =
        scbCost(constants, served.voc, plannedRatio.elementCounts(options.n),
                speedByRole, options.n);

    // Execute one phase of the served plan through the simulator to produce
    // the telemetry the session feeds on. The sim partitions by *logical*
    // role, so its machine carries the per-role effective speeds and the
    // emitted sample is remapped back to physical nodes below.
    PhaseSample logical;
    bool captured = false;
    SimOptions sim;
    sim.machine = constants;
    sim.machine.ratio = Ratio{speedByRole[procSlot(Proc::P)],
                              speedByRole[procSlot(Proc::R)],
                              speedByRole[procSlot(Proc::S)]};
    sim.topology = sessionOptions.base.topology;
    sim.star = sessionOptions.base.star;
    sim.telemetry = [&](const PhaseSample& s) {
      logical = s;
      captured = true;
    };
    const Partition q =
        makeCandidate(served.shape, options.n, plannedRatio);
    simulateMMM(options.algo, q, sim);

    PhaseSample physical;
    physical.at = at;
    for (std::size_t rank = 0; rank < kNumProcs; ++rank) {
      const Proc node = order[rank];
      NodeSample ns =
          captured ? logical.node(kRoles[rank]) : NodeSample{};
      ns.proc = node;
      // Ground-truth death overrides the sample — in the real cluster this
      // mark comes from the failure detector (src/cluster), which the drill
      // stands in for.
      ns.dead = rec.dead[procSlot(node)];
      if (ns.dead) {
        ns.units = 0;
        ns.busySeconds = 0.0;
      }
      physical.node(node) = ns;
    }

    const std::uint64_t replansBefore = session.stats().replans;
    const DriftVerdict verdict = session.observe(physical);
    rec.stale = verdict.stale;
    rec.reason = verdict.reason;
    rec.replanned = session.stats().replans > replansBefore;

    report.servedTotal += rec.servedCost;
    report.bestTotal += rec.bestCost;
    report.records.push_back(rec);
  }

  report.stats = session.stats();
  report.estimator = session.estimatorCounters();
  report.events = session.events();

  // Fault-window recovery verdicts.
  const auto scoreWindow = [&](int node, bool kill, double begin, double end) {
    FaultWindowReport w;
    w.node = node;
    w.kill = kill;
    w.begin = begin;
    w.end = std::min(end, duration);
    const double grace =
        options.reconvergePhases * options.phaseSeconds;
    // "After the window" for a fault that outlives the drill means the
    // drill's tail: the session should have adapted to the persistent state.
    const double checkFrom =
        end >= duration ? duration - grace : w.end;
    for (const DriftPhaseRecord& rec : report.records) {
      if (rec.replanned && rec.at >= begin && rec.at <= w.end + grace)
        w.replanDuring = true;
      if (rec.at > checkFrom && rec.at <= checkFrom + grace &&
          rec.servedCost <=
              rec.bestCost * (1.0 + options.reconvergeTolerancePct / 100.0)) {
        w.reconverged = true;
        if (w.reconvergedAfterPhases < 0)
          w.reconvergedAfterPhases = static_cast<int>(
              std::ceil((rec.at - checkFrom) / options.phaseSeconds));
      }
    }
    report.windows.push_back(w);
  };
  for (const NodeKill& kill : options.faults.kills)
    scoreWindow(kill.node, true, kill.at,
                kill.rejoinAt.value_or(duration));
  for (const SlowNode& slow : options.faults.slowNodes)
    scoreWindow(slow.node, false, slow.begin, slow.end);

  return report;
}

}  // namespace pushpart
