// The adaptive serving session: telemetry in, invalidate → re-key → re-plan
// out, through the existing Oracle.
//
// An AdaptiveSession (DESIGN.md §16) owns the feedback loop for one serving
// context: it feeds every PhaseSample to a RatioEstimator, asks the
// DriftMonitor whether the currently-served plan has gone stale at the
// estimated ratio, and — when staleness persists — invalidates the stale
// cache entry (PlanCache::invalidate, counted as staleInvalidations),
// re-keys the request at the estimated canonical ratio, and re-plans
// through Oracle::plan(). Everything the oracle already does applies
// unchanged: canonicalization, the degradation ladder, admission control,
// the circuit breaker, and the atlas tier all sit between the session and
// an answer; the session only decides *when* to ask again and *for which
// ratio*.
//
// Two dampers keep a boundary-hugging ratio from thrashing the solver:
//
//   hysteresis           staleness must persist for `hysteresisPhases`
//                        consecutive phases before a replan fires (one
//                        noisy phase never replans);
//   min replan interval  replans are at least `minReplanSeconds` apart on
//                        the session's clock (injectable; tests and drills
//                        drive a FakeClock). Held-off staleness keeps its
//                        streak, so the replan fires as soon as the
//                        interval opens.
//
// Thread safety: observe()/start()/stats()/events() are serialized by one
// internal mutex, so a telemetry thread and an inspector can overlap (the
// TSan suite drives exactly that).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/drift.hpp"
#include "adapt/estimator.hpp"
#include "serve/oracle.hpp"
#include "support/deadline.hpp"

namespace pushpart {

struct AdaptiveSessionOptions {
  /// The request template: n, algo, topology, tier and search budget are
  /// kept; ratio is overwritten by every (re)plan.
  PlanRequest base;
  RatioEstimatorOptions estimator;
  /// Staleness threshold forwarded to the DriftMonitor (percent).
  double staleGapPct = 5.0;
  /// Consecutive stale verdicts required before a replan fires.
  int hysteresisPhases = 2;
  /// Minimum seconds between replans on `clock`.
  double minReplanSeconds = 0.0;
  /// Session clock; null = Clock::steady(). Tests inject a FakeClock.
  const Clock* clock = nullptr;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;
};

/// Monotonic counters across the session's lifetime.
struct AdaptiveStats {
  std::uint64_t phases = 0;           ///< PhaseSamples observed.
  std::uint64_t warmupPhases = 0;     ///< ... before the estimator warmed up.
  std::uint64_t staleVerdicts = 0;    ///< Phases the monitor ruled stale.
  std::uint64_t replans = 0;          ///< Replans executed.
  std::uint64_t hysteresisHolds = 0;  ///< Stale, streak below threshold.
  std::uint64_t intervalHolds = 0;    ///< Stale streak met, interval closed.
  std::uint64_t invalidations = 0;    ///< Stale cache entries dropped.
};

/// One logged decision, on the session clock.
struct AdaptiveEvent {
  double at = 0.0;
  std::string what;
};

class AdaptiveSession {
 public:
  /// The oracle must outlive the session. The monitor reuses the oracle's
  /// atlas (options().atlas) as its optimality-region source.
  AdaptiveSession(Oracle& oracle, AdaptiveSessionOptions options);

  /// Solves the initial plan at base.ratio and adopts it. Must be called
  /// once before observe(). Returns the oracle's response (which may be
  /// degraded or shed under load — a shed start leaves the session
  /// plan-less, and observe() keeps reporting fresh until a start
  /// succeeds).
  PlanResponse start(const PlanCallOptions& call = {});

  /// Feeds one phase of telemetry; may invalidate + re-plan internally.
  /// Returns the phase's drift verdict (fresh during warmup).
  DriftVerdict observe(const PhaseSample& sample,
                       const PlanCallOptions& call = {});

  /// The currently-served plan (the last successful start()/replan answer).
  PlanResponse current() const;
  /// The canonical ratio the current plan was solved for.
  Ratio plannedRatio() const;
  /// Physical processors by the role they play in the current plan,
  /// fastest-first: planOrder()[0] is the node serving as the canonical P.
  std::array<Proc, kNumProcs> planOrder() const;

  RatioEstimate estimate() const;
  RatioEstimator::Counters estimatorCounters() const;
  AdaptiveStats stats() const;
  std::vector<AdaptiveEvent> events() const;

 private:
  double nowLocked() const { return clock_->nowSeconds(); }
  void adoptLocked(const PlanResponse& response, const Ratio& canonicalRatio,
                   const std::array<Proc, kNumProcs>& order);
  void logLocked(std::string what);

  Oracle& oracle_;
  AdaptiveSessionOptions options_;
  const Clock* clock_;
  mutable std::mutex mutex_;
  RatioEstimator estimator_;
  DriftMonitor monitor_;
  bool started_ = false;
  PlanResponse current_;
  CanonicalKey currentKey_;
  Ratio plannedRatio_{2, 1, 1};
  std::array<Proc, kNumProcs> planOrder_{Proc::P, Proc::R, Proc::S};
  int staleStreak_ = 0;
  double lastReplanAt_ = 0.0;
  AdaptiveStats stats_;
  std::vector<AdaptiveEvent> events_;
};

}  // namespace pushpart
