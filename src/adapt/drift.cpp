#include "adapt/drift.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace pushpart {

void DriftOptions::validate() const {
  if (n < kNumProcs)
    throw std::invalid_argument("DriftMonitor: n too small to partition");
  if (!(staleGapPct > 0.0))
    throw std::invalid_argument("DriftMonitor: staleGapPct must be positive");
}

DriftMonitor::DriftMonitor(DriftOptions options) : options_(std::move(options)) {
  options_.validate();
}

void DriftMonitor::adopt(CandidateShape shape, const Ratio& plannedRatio,
                         std::int64_t voc) {
  shape_ = shape;
  plannedRatio_ = plannedRatio;
  plannedCounts_ = plannedRatio.elementCounts(options_.n);
  plannedVoc_ = voc;
  plannedI_ = plannedJ_ = -1;
  if (options_.atlas) {
    int i = -1, j = -1;
    if (options_.atlas->assign(plannedRatio, i, j)) {
      plannedI_ = i;
      plannedJ_ = j;
    }
  }
  hasPlan_ = true;
}

double DriftMonitor::frozenCost(
    const std::array<double, kNumProcs>& logicalSpeed) const {
  // Serial bulk communication + barrier + slowest-role compute: the SCB
  // closed form evaluated on the plan's frozen counts. Each owned C element
  // costs n multiply-accumulates.
  double comm = options_.machine.sendElementSeconds *
                static_cast<double>(plannedVoc_);
  double comp = 0.0;
  for (Proc x : kAllProcs) {
    const double speed = logicalSpeed[procSlot(x)];
    if (!(speed > 0.0)) return std::numeric_limits<double>::infinity();
    const double macs = static_cast<double>(plannedCounts_[procSlot(x)]) *
                        static_cast<double>(options_.n);
    comp = std::max(comp, options_.machine.baseFlopSeconds * macs / speed);
  }
  return comm + comp;
}

DriftVerdict DriftMonitor::evaluate(const Ratio& canonicalEstimate) const {
  return evaluate(canonicalEstimate,
                  {canonicalEstimate.r, canonicalEstimate.s,
                   canonicalEstimate.p});
}

DriftVerdict DriftMonitor::evaluate(
    const Ratio& canonicalEstimate,
    const std::array<double, kNumProcs>& logicalSpeed) const {
  DriftVerdict verdict;
  if (!hasPlan_) return verdict;  // kNoPlan, fresh
  verdict.bestShape = shape_;

  const PlanAtlas* atlas = options_.atlas.get();
  std::optional<AtlasCell> newCell;
  if (atlas) {
    int i = -1, j = -1;
    if (atlas->assign(canonicalEstimate, i, j)) {
      verdict.cellI = i;
      verdict.cellJ = j;
      if (i == plannedI_ && j == plannedJ_) {
        // Fast path: still inside the plan's own optimality cell. Share
        // drift is bounded by half a grid step — fresh, no re-cost needed.
        verdict.reason = DriftReason::kSameCell;
        return verdict;
      }
      verdict.cellChanged = true;
      newCell = atlas->cell(i, j);
    }
  }

  // Re-cost the frozen plan at the estimated speeds against the best
  // achievable plan there (both on the same closed-form structure).
  const Machine atEstimate = [&] {
    Machine m = options_.machine;
    m.ratio = canonicalEstimate;
    return m;
  }();
  const RankedCandidate best =
      selectOptimal(options_.algo, options_.n, atEstimate, options_.topology,
                    options_.star);
  verdict.bestShape = best.shape;
  const double frozen = frozenCost(logicalSpeed);
  verdict.gapPct = best.model.execSeconds > 0.0
                       ? (frozen / best.model.execSeconds - 1.0) * 100.0
                       : 0.0;

  // Step 2: decisive cell certificate — the estimate sits well inside a
  // different winner's region (runner-up gap above the threshold says the
  // surface is sure), so the precomputed data alone certifies staleness.
  if (newCell && newCell->solved && !newCell->boundary &&
      newCell->shape != shape_ &&
      newCell->runnerUpGapPct > options_.staleGapPct) {
    verdict.stale = true;
    verdict.reason = DriftReason::kCellCertificate;
    return verdict;
  }

  // Step 3: the re-cost gap decides (same-winner share drift included).
  verdict.stale = verdict.gapPct > options_.staleGapPct;
  verdict.reason =
      verdict.stale ? DriftReason::kRecostGap : DriftReason::kRecostOk;
  return verdict;
}

}  // namespace pushpart
