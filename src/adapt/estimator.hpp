// Per-node EWMA throughput tracking: execution telemetry in, speed ratio out.
//
// The paper fixes P_r : R_r : S_r for a whole run; a real platform drifts.
// The RatioEstimator is the first stage of the adaptive loop (DESIGN.md §16):
// it folds PhaseSamples (sim/telemetry.hpp) into one exponentially-weighted
// moving average of throughput per processor and derives the *effective*
// canonical ratio the platform is currently delivering. Three robustness
// rules keep a noisy or faulty phase from wrecking the estimate:
//
//   outlier clamping   a raw sample is clamped into
//                      [estimate / clamp, estimate · clamp] before it enters
//                      the EWMA, so one absurd phase (GC pause, co-tenant
//                      burst, timer glitch) moves the estimate by at most a
//                      bounded factor;
//   stall demotion     `demoteAfterStalls` consecutive no-progress phases
//                      demote the node: its *effective* speed drops to a
//                      floor fraction of the fastest healthy node, while the
//                      EWMA itself is left untouched — the last healthy
//                      throughput is the best prior for recovery;
//   death demotion     a sample marked dead demotes immediately, same floor,
//                      same preserved EWMA. One healthy sample lifts either
//                      demotion and the estimate snaps back to the prior.
//
// The estimate orders the three processors fastest-first and reports the
// ratio in that canonical order (sorted speeds normalized to the slowest),
// because the serving stack's canonical space requires P_r >= R_r >= S_r = 1
// — which physical node currently *plays* P is exactly the `order` field.
#pragma once

#include <array>
#include <cstdint>

#include "grid/ratio.hpp"
#include "sim/telemetry.hpp"

namespace pushpart {

struct RatioEstimatorOptions {
  /// EWMA weight of the newest clamped sample (0 < alpha <= 1). 1 = no
  /// smoothing (track the last phase verbatim).
  double alpha = 0.3;
  /// Outlier clamp: a raw throughput sample is clamped into
  /// [estimate / factor, estimate · factor] before entering the EWMA.
  /// Must be > 1.
  double outlierClampFactor = 4.0;
  /// Consecutive stalled / no-progress phases before a node is demoted.
  int demoteAfterStalls = 2;
  /// A demoted (stalled-out or dead) node's effective speed, as a fraction
  /// of the fastest non-demoted node's estimate. Keeps the canonical ratio
  /// finite and assigns the node a near-zero share. In (0, 1).
  double demotedSpeedFraction = 0.02;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;
};

/// One processor's tracker state, exposed for tests and diagnostics.
struct NodeEstimate {
  double throughput = 0.0;  ///< EWMA units/second (0 until the first sample).
  int samples = 0;          ///< Healthy samples folded in.
  int stallStreak = 0;      ///< Consecutive stalled / no-progress phases.
  bool demoted = false;     ///< Stall or death demotion in force.
  bool dead = false;        ///< Last sample reported the node dead.
};

/// A point-in-time ratio estimate. `speed` is per physical processor
/// (procSlot order), demotion floors applied; `order` lists the processors
/// fastest-first (ties broken by procIndex, deterministically), so
/// order[0] is the node that should play the canonical P.
struct RatioEstimate {
  std::array<double, kNumProcs> speed{};
  std::array<Proc, kNumProcs> order{};
  bool warmedUp = false;  ///< Every node has at least one healthy sample.

  /// The canonical ratio (sorted speeds, slowest normalized to 1). Only
  /// meaningful when warmedUp; throws std::logic_error otherwise.
  Ratio canonical() const;
};

class RatioEstimator {
 public:
  explicit RatioEstimator(RatioEstimatorOptions options = {});

  /// Folds one phase of telemetry in. Not thread-safe (the AdaptiveSession
  /// serializes its callers).
  void observe(const PhaseSample& sample);

  RatioEstimate estimate() const;
  NodeEstimate node(Proc p) const { return nodes_[procSlot(p)]; }
  const RatioEstimatorOptions& options() const { return options_; }

  /// Monotonic counters across the estimator's lifetime.
  struct Counters {
    std::uint64_t phases = 0;           ///< observe() calls.
    std::uint64_t clampedSamples = 0;   ///< Raw samples the clamp bounded.
    std::uint64_t stallDemotions = 0;   ///< Demotions entered via stalls.
    std::uint64_t deathDemotions = 0;   ///< Demotions entered via death.
    std::uint64_t recoveries = 0;       ///< Demotions lifted by a healthy sample.
  };
  Counters counters() const { return counters_; }

 private:
  RatioEstimatorOptions options_;
  std::array<NodeEstimate, kNumProcs> nodes_{};
  Counters counters_;
};

}  // namespace pushpart
