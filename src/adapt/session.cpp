#include "adapt/session.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace pushpart {

void AdaptiveSessionOptions::validate() const {
  estimator.validate();
  if (!(staleGapPct > 0.0))
    throw std::invalid_argument(
        "AdaptiveSession: staleGapPct must be positive");
  if (hysteresisPhases < 1)
    throw std::invalid_argument(
        "AdaptiveSession: hysteresisPhases must be >= 1");
  if (minReplanSeconds < 0.0)
    throw std::invalid_argument(
        "AdaptiveSession: minReplanSeconds must be >= 0");
}

namespace {

DriftOptions driftOptionsFor(const Oracle& oracle,
                             const AdaptiveSessionOptions& options) {
  DriftOptions drift;
  drift.n = options.base.n;
  drift.algo = options.base.algo;
  drift.topology = options.base.topology;
  drift.star = options.base.star;
  drift.machine = oracle.options().machine;
  drift.staleGapPct = options.staleGapPct;
  drift.atlas = oracle.options().atlas;
  return drift;
}

/// Physical processors fastest-first under `ratio` read as physical P/R/S
/// speeds, ties broken by procIndex — the role assignment a plan for that
/// ratio implies.
std::array<Proc, kNumProcs> orderForRatio(const Ratio& ratio) {
  if (ratio.r >= ratio.s) return {Proc::P, Proc::R, Proc::S};
  return {Proc::P, Proc::S, Proc::R};
}

}  // namespace

AdaptiveSession::AdaptiveSession(Oracle& oracle,
                                 AdaptiveSessionOptions options)
    : oracle_(oracle),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &Clock::steady()),
      estimator_(options_.estimator),
      monitor_(driftOptionsFor(oracle, options_)) {
  options_.validate();
}

void AdaptiveSession::logLocked(std::string what) {
  events_.push_back(AdaptiveEvent{nowLocked(), std::move(what)});
}

void AdaptiveSession::adoptLocked(const PlanResponse& response,
                                  const Ratio& canonicalRatio,
                                  const std::array<Proc, kNumProcs>& order) {
  current_ = response;
  plannedRatio_ = canonicalRatio;
  planOrder_ = order;
  monitor_.adopt(response.answer.shape, canonicalRatio, response.answer.voc);
  started_ = true;
}

PlanResponse AdaptiveSession::start(const PlanCallOptions& call) {
  PlanRequest req = options_.base;
  const CanonicalKey key = canonicalize(req);
  const PlanResponse response = oracle_.plan(req, call);
  std::lock_guard<std::mutex> lock(mutex_);
  if (response.shed) {
    logLocked("start shed (" + std::string(shedReasonName(response.shedReason)) +
              "); session has no plan yet");
    return response;
  }
  currentKey_ = key;
  adoptLocked(response, key.request.ratio, orderForRatio(options_.base.ratio));
  lastReplanAt_ = nowLocked();
  logLocked("start: " + std::string(candidateName(response.answer.shape)) +
            " at " + key.request.ratio.str());
  return response;
}

DriftVerdict AdaptiveSession::observe(const PhaseSample& sample,
                                      const PlanCallOptions& call) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.phases;
  estimator_.observe(sample);

  DriftVerdict verdict;
  if (!started_) return verdict;  // kNoPlan, fresh

  const RatioEstimate est = estimator_.estimate();
  if (!est.warmedUp) {
    ++stats_.warmupPhases;
    verdict.reason = DriftReason::kWarmup;
    return verdict;
  }
  const Ratio canonical = est.canonical();
  // Speeds by the role each node plays in the *current* plan, normalized
  // like the canonical estimate (slowest current speed == 1) so the frozen
  // re-cost and the best-plan cost share one scale.
  const double slowest = est.speed[procSlot(est.order[kNumProcs - 1])];
  std::array<double, kNumProcs> logicalSpeed{};
  const std::array<Proc, kNumProcs> roles = {Proc::P, Proc::R, Proc::S};
  for (int rank = 0; rank < kNumProcs; ++rank)
    logicalSpeed[procSlot(roles[static_cast<std::size_t>(rank)])] =
        est.speed[procSlot(planOrder_[static_cast<std::size_t>(rank)])] /
        slowest;
  verdict = monitor_.evaluate(canonical, logicalSpeed);

  if (!verdict.stale) {
    staleStreak_ = 0;
    return verdict;
  }

  ++stats_.staleVerdicts;
  ++staleStreak_;
  if (staleStreak_ < options_.hysteresisPhases) {
    ++stats_.hysteresisHolds;  // hysteresis: one noisy phase never replans
    return verdict;
  }
  const double now = nowLocked();
  if (now - lastReplanAt_ < options_.minReplanSeconds) {
    ++stats_.intervalHolds;  // streak kept: fires once the interval opens
    return verdict;
  }

  // Invalidate → re-key → re-plan. The stale entry is dropped so no later
  // request (here or via a replica) can be served the plan we just ruled
  // stale; the re-keyed request takes the oracle's full serving path.
  if (oracle_.invalidateCached(currentKey_)) ++stats_.invalidations;
  std::ostringstream why;
  why << "stale (" << driftReasonName(verdict.reason) << ", gap "
      << verdict.gapPct << "%): invalidated " << currentKey_.text;
  logLocked(why.str());

  PlanRequest req = options_.base;
  req.ratio = canonical;
  const CanonicalKey key = canonicalize(req);
  const PlanResponse response = oracle_.plan(req, call);
  if (response.shed) {
    // Keep the old plan and the stale streak: the next phase retries.
    logLocked("replan shed (" +
              std::string(shedReasonName(response.shedReason)) +
              "); keeping stale plan");
    return verdict;
  }
  currentKey_ = key;
  adoptLocked(response, key.request.ratio, est.order);
  staleStreak_ = 0;
  lastReplanAt_ = now;
  ++stats_.replans;
  logLocked("replan: " + std::string(candidateName(response.answer.shape)) +
            " at " + key.request.ratio.str() +
            (response.answer.atlasServed ? " (atlas-certified)" : ""));
  return verdict;
}

PlanResponse AdaptiveSession::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

Ratio AdaptiveSession::plannedRatio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plannedRatio_;
}

std::array<Proc, kNumProcs> AdaptiveSession::planOrder() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return planOrder_;
}

RatioEstimate AdaptiveSession::estimate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return estimator_.estimate();
}

RatioEstimator::Counters AdaptiveSession::estimatorCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return estimator_.counters();
}

AdaptiveStats AdaptiveSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<AdaptiveEvent> AdaptiveSession::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace pushpart
