// Duty-cycle CPU throttle emulating heterogeneous processor speeds.
//
// The paper controlled processor speed ratios on identical nodes with a
// /proc-monitoring limiter: a process runs until it has consumed its CPU
// share, then sleeps until its average rate matches the target (§X-B). This
// throttle does the same inside a worker thread: the caller reports work in
// quanta; whenever the thread's effective speed exceeds `fraction` of full
// speed, the throttle sleeps long enough to restore the target duty cycle.
#pragma once

#include <chrono>

namespace pushpart {

class Throttle {
 public:
  /// fraction ∈ (0, 1]: the share of wall time this thread may compute.
  /// 1.0 disables throttling.
  explicit Throttle(double fraction);

  /// Reports that `seconds` of pure compute just happened; sleeps if the
  /// duty cycle is ahead of target. Call at coarse quanta (≥ ~100 µs of
  /// work) so sleep overhead stays negligible.
  void charge(double seconds);

  /// Total time slept so far.
  double sleptSeconds() const { return slept_; }

  double fraction() const { return fraction_; }

 private:
  double fraction_;
  double computed_ = 0.0;
  double slept_ = 0.0;
};

}  // namespace pushpart
