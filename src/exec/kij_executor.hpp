// Shared-memory parallel kij MMM executor over arbitrary partitions.
//
// Three worker threads stand in for the paper's three cluster nodes: each
// computes exactly the C elements its processor owns in the partition, at a
// speed emulated by a duty-cycle throttle (exec/throttle.hpp), after an
// emulated communication phase whose duration follows the partition's
// directed pair volumes on the Hockney machine (serial or parallel schedule,
// matching SCB/PCB). The result is verified element-exact against the serial
// reference. This is the repo's "real execution" substrate for the Fig. 14
// analogue (bench/exec_mmm): wall-clock times of Square-Corner vs
// Block-Rectangle under genuine threads, real floating-point work and real
// sleep-based heterogeneity.
#pragma once

#include <array>

#include "exec/matrix.hpp"
#include "grid/partition.hpp"
#include "model/algo.hpp"
#include "model/machine.hpp"
#include "sim/fault.hpp"
#include "sim/telemetry.hpp"

namespace pushpart {

struct ExecOptions {
  Machine machine;          ///< ratio → per-thread throttle; T_send → comm pacing.
  bool verify = true;       ///< Check against multiplySerial (costs an O(N³) run).
  std::uint64_t seed = 1;   ///< Input matrix seed.
  /// Work quantum between throttle charges, in MAC operations.
  int quantumMacs = 1 << 15;
  /// Pace the emulated communication phase with real sleeps (true) or only
  /// account its modeled duration (false, default — keeps tests fast).
  bool paceCommunication = false;
  /// Fault injection for the emulated communication phase: per-transfer
  /// drops trigger timeout + backoff + retransmission, extending
  /// commSeconds. Deterministic in faults.seed. Processor death is not
  /// supported here (real threads hold the data) — use simulateMMM for
  /// failover studies; a plan with a death throws CheckError.
  FaultPlan faults{};
  /// Timeout/retransmit policy used when `faults` is enabled.
  RetryPolicy retry{};
  /// When set, the run emits one PhaseSample on completion: per worker, the
  /// MACs it computed and its measured busy time *including* the throttle's
  /// duty-cycle sleeps (they are what emulates the slow processor, so
  /// units / busySeconds is the node's observed heterogeneous throughput).
  /// The adaptive serving loop (src/adapt) feeds on this.
  TelemetrySink telemetry;
};

struct ExecResult {
  double wallSeconds = 0.0;       ///< Total measured wall time.
  double commSeconds = 0.0;       ///< Emulated communication phase duration.
  std::array<double, kNumProcs> computeSeconds{};  ///< Per-worker busy time.
  std::int64_t commElements = 0;  ///< Elements crossing node boundaries.
  double maxAbsError = 0.0;       ///< vs serial reference (0 when verify off).
  bool verified = false;
  std::int64_t commDropsInjected = 0;  ///< Emulated transfers lost in transit.
  std::int64_t commRetriesSent = 0;    ///< Retransmissions after a timeout.
  /// False when some transfer ran out of retry attempts (its share of the
  /// data is then assumed re-synced out of band; the compute phase still
  /// runs so the numerics stay verifiable).
  bool commCompleted = true;
};

/// Runs one parallel MMM of random n×n matrices partitioned by `q` under
/// `algo` (SCB or PCB; the overlap algorithms reuse the same compute kernel
/// through the simulator instead). Throws std::invalid_argument for other
/// algorithms.
ExecResult runParallelMMM(Algo algo, const Partition& q,
                          const ExecOptions& options);

}  // namespace pushpart
