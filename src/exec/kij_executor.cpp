#include "exec/kij_executor.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/throttle.hpp"
#include "grid/metrics.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

namespace {

/// The cells one worker owns, gathered once so the hot loop touches no
/// partition metadata.
std::vector<std::pair<int, int>> ownedCells(const Partition& q, Proc x) {
  std::vector<std::pair<int, int>> cells;
  cells.reserve(static_cast<std::size_t>(q.count(x)));
  for (int i = 0; i < q.n(); ++i)
    for (int j = 0; j < q.n(); ++j)
      if (q.at(i, j) == x) cells.push_back({i, j});
  return cells;
}

/// Emulated communication duration for the chosen schedule.
double commPhaseSeconds(Algo algo, const Partition& q, const Machine& m) {
  const auto v = pairVolumes(q);
  if (algo == Algo::kSCB) {
    std::int64_t total = 0;
    for (const auto& row : v)
      for (std::int64_t x : row) total += x;
    return m.transferSeconds(total);
  }
  // PCB: per-sender volumes move in parallel.
  double worst = 0.0;
  for (Proc s : kAllProcs) {
    std::int64_t mine = 0;
    for (Proc r : kAllProcs) mine += v[procSlot(s)][procSlot(r)];
    worst = std::max(worst, m.transferSeconds(mine));
  }
  return worst;
}

struct CommEmulation {
  double seconds = 0.0;
  std::int64_t drops = 0;
  std::int64_t retries = 0;
  bool completed = true;
};

/// Fault-aware emulated communication: one block transfer per directed pair
/// (the unit of retransmission), each drawn against the drop probability; a
/// lost transfer costs its full duration plus the ack timeout and a jittered
/// backoff before the resend. Latency spikes and NIC stalls shift each
/// attempt by the injector's factors at its start instant. Deterministic in
/// faults.seed.
CommEmulation commPhaseFaulty(Algo algo, const Partition& q,
                              const ExecOptions& options) {
  FaultInjector injector(options.faults);
  const Machine& m = options.machine;
  const RetryPolicy& retry = options.retry;
  const auto v = pairVolumes(q);
  CommEmulation out;

  // Returns the clock after the pair's transfer finishes (or is abandoned).
  auto pairDone = [&](Proc s, std::int64_t volume, double start) {
    double t = start;
    for (int attempt = 1;; ++attempt) {
      t = injector.stallClearedAt(s, t);
      t += m.alphaSeconds * injector.alphaFactorAt(t) +
           m.sendElementSeconds * injector.betaFactorAt(t) *
               static_cast<double>(volume);
      if (!injector.dropHop()) return t;
      ++out.drops;
      if (attempt >= retry.maxAttempts) {
        out.completed = false;
        return t + retry.timeoutSeconds;
      }
      t += retry.timeoutSeconds +
           retry.backoffBeforeRetry(attempt, injector.rng());
      ++out.retries;
    }
  };

  if (algo == Algo::kSCB) {
    double t = 0.0;
    for (Proc s : kAllProcs)
      for (Proc r : kAllProcs) {
        if (s == r || v[procSlot(s)][procSlot(r)] == 0) continue;
        t = pairDone(s, v[procSlot(s)][procSlot(r)], t);
      }
    out.seconds = t;
    return out;
  }
  // PCB: senders run in parallel; each serializes its own pairs.
  double worst = 0.0;
  for (Proc s : kAllProcs) {
    double t = 0.0;
    for (Proc r : kAllProcs) {
      if (s == r || v[procSlot(s)][procSlot(r)] == 0) continue;
      t = pairDone(s, v[procSlot(s)][procSlot(r)], t);
    }
    worst = std::max(worst, t);
  }
  out.seconds = worst;
  return out;
}

}  // namespace

ExecResult runParallelMMM(Algo algo, const Partition& q,
                          const ExecOptions& options) {
  if (algo != Algo::kSCB && algo != Algo::kPCB)
    throw std::invalid_argument(
        "runParallelMMM: executor implements the barrier algorithms (SCB, "
        "PCB); use simulateMMM for the overlap family");
  PUSHPART_CHECK_MSG(options.machine.ratio.valid(),
                     "invalid ratio " << options.machine.ratio.str());
  PUSHPART_CHECK(options.quantumMacs > 0);

  const int n = q.n();
  Rng rng(options.seed);
  const Matrix a = randomMatrix(n, rng);
  const Matrix b = randomMatrix(n, rng);
  Matrix c(n, 0.0);

  ExecResult result;
  Stopwatch wall;

  // --- Communication phase (emulated) -----------------------------------
  {
    const auto v = pairVolumes(q);
    for (const auto& row : v)
      for (std::int64_t x : row) result.commElements += x;
    if (options.faults.enabled()) {
      options.faults.validate();
      options.retry.validate();
      PUSHPART_CHECK_MSG(!options.faults.death.has_value(),
                         "runParallelMMM cannot survive a processor death "
                         "(real threads hold the data); use simulateMMM for "
                         "failover studies");
      const CommEmulation comm = commPhaseFaulty(algo, q, options);
      result.commSeconds = comm.seconds;
      result.commDropsInjected = comm.drops;
      result.commRetriesSent = comm.retries;
      result.commCompleted = comm.completed;
    } else {
      result.commSeconds = commPhaseSeconds(algo, q, options.machine);
    }
    if (options.paceCommunication && result.commSeconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(result.commSeconds));
    }
  }

  // --- Barrier, then parallel computation -------------------------------
  const double maxSpeed = options.machine.ratio.p;
  std::array<std::thread, kNumProcs> workers;
  std::array<double, kNumProcs> busy{};
  std::array<double, kNumProcs> emulatedBusy{};  // incl. throttle sleeps
  for (Proc x : kAllProcs) {
    const auto xi = procSlot(x);
    workers[xi] = std::thread([&, x, xi] {
      const auto cells = ownedCells(q, x);
      Throttle throttle(options.machine.ratio.speed(x) / maxSpeed);
      Stopwatch total;
      Stopwatch quantum;  // pure-compute time since the last charge
      std::int64_t macsSinceCharge = 0;
      for (const auto& [i, j] : cells) {
        double acc = 0.0;
        const double* arow =
            a.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
        for (int k = 0; k < n; ++k)
          acc += arow[k] * b.at(k, j);
        c.at(i, j) = acc;
        macsSinceCharge += n;
        if (macsSinceCharge >= options.quantumMacs) {
          throttle.charge(quantum.seconds());
          quantum.reset();  // charge() slept; restart the compute clock
          macsSinceCharge = 0;
        }
      }
      emulatedBusy[xi] = total.seconds();
      busy[xi] = emulatedBusy[xi] - throttle.sleptSeconds();
    });
  }
  for (auto& t : workers)
    if (t.joinable()) t.join();
  result.computeSeconds = busy;
  result.wallSeconds = wall.seconds();

  if (options.telemetry) {
    // One phase observation per run. busySeconds includes the throttle's
    // duty-cycle sleeps: they are exactly what makes the emulated processor
    // slow, so units / busySeconds is the heterogeneous throughput a real
    // monitor would measure on that node.
    PhaseSample sample;
    sample.at = result.wallSeconds;
    for (Proc x : kAllProcs) {
      NodeSample& node = sample.node(x);
      node.proc = x;
      node.units = q.count(x) * n;
      node.busySeconds = emulatedBusy[procSlot(x)];
    }
    options.telemetry(sample);
  }

  // --- Verification ------------------------------------------------------
  if (options.verify) {
    Rng checkRng(options.seed);
    const Matrix refA = randomMatrix(n, checkRng);
    const Matrix refB = randomMatrix(n, checkRng);
    const Matrix ref = multiplySerial(refA, refB);
    result.maxAbsError = maxAbsDiff(c, ref);
    result.verified = true;
  }
  return result;
}

}  // namespace pushpart
