// Dense row-major matrices and a serial reference multiply.
//
// The executor (exec/kij_executor.hpp) validates its parallel result
// element-for-element against multiplySerial — the ground truth the paper's
// testbed got from ATLAS.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace pushpart {

/// Row-major n×n matrix of doubles.
class Matrix {
 public:
  explicit Matrix(int n, double fill = 0.0)
      : n_(n),
        data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
              fill) {}

  int n() const { return n_; }

  double& at(int i, int j) { return data_[index(i, j)]; }
  double at(int i, int j) const { return data_[index(i, j)]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

 private:
  std::size_t index(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  int n_;
  std::vector<double> data_;
};

/// Fills with uniform values in [-1, 1).
Matrix randomMatrix(int n, Rng& rng);

/// Serial kij reference: C = A·B. Matrices must agree in size.
Matrix multiplySerial(const Matrix& a, const Matrix& b);

/// Largest absolute elementwise difference.
double maxAbsDiff(const Matrix& x, const Matrix& y);

}  // namespace pushpart
