#include "exec/matrix.hpp"

#include <cmath>

#include "support/check.hpp"

namespace pushpart {

Matrix randomMatrix(int n, Rng& rng) {
  Matrix m(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m.at(i, j) = 2.0 * rng.real() - 1.0;
  return m;
}

Matrix multiplySerial(const Matrix& a, const Matrix& b) {
  PUSHPART_CHECK(a.n() == b.n());
  const int n = a.n();
  Matrix c(n, 0.0);
  // kij order: pivot k outermost, exactly the paper's Fig. 1 schedule.
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      const double aik = a.at(i, k);
      for (int j = 0; j < n; ++j) c.at(i, j) += aik * b.at(k, j);
    }
  return c;
}

double maxAbsDiff(const Matrix& x, const Matrix& y) {
  PUSHPART_CHECK(x.n() == y.n());
  double worst = 0.0;
  for (int i = 0; i < x.n(); ++i)
    for (int j = 0; j < x.n(); ++j)
      worst = std::max(worst, std::fabs(x.at(i, j) - y.at(i, j)));
  return worst;
}

}  // namespace pushpart
