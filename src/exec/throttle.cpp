#include "exec/throttle.hpp"

#include <thread>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {

Throttle::Throttle(double fraction) : fraction_(fraction) {
  PUSHPART_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                     "throttle fraction must be in (0, 1], got " << fraction);
}

void Throttle::charge(double seconds) {
  PUSHPART_CHECK(seconds >= 0.0);
  computed_ += seconds;
  if (fraction_ >= 1.0) return;
  // After computing for c seconds at duty cycle f, total elapsed should be
  // c / f; sleep the shortfall.
  const double targetElapsed = computed_ / fraction_;
  const double shouldSleep = targetElapsed - computed_ - slept_;
  if (shouldSleep <= 0.0) return;
  // Record the *measured* sleep, not the requested one: the OS oversleeps by
  // up to a scheduler tick, and both the duty-cycle control loop and the
  // caller's busy-time accounting (total − slept) need the real figure.
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::duration<double>(shouldSleep));
  slept_ += sw.seconds();
}

}  // namespace pushpart
