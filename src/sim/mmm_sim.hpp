// Message-level simulation of the five parallel MMM algorithms.
//
// This is the repo's stand-in for the paper's experimental testbed (three
// Open-MPI/ATLAS nodes with a /proc-based CPU limiter): a discrete-event
// simulation that executes each algorithm's communication schedule message
// by message on the Hockney network of sim/network.hpp and charges
// computation at the ratio-scaled speeds. Unlike the closed-form models
// (model/models.hpp) it accounts for per-message latency α, per-transfer
// chunking, NIC serialization and star store-and-forward — the effects a
// real cluster adds on top of Eqs. 2–9. With α = 0 and one chunk per
// transfer the simulation collapses to the analytic model (asserted in
// tests/sim/mmm_sim_test.cpp).
#pragma once

#include "grid/partition.hpp"
#include "model/algo.hpp"
#include "model/machine.hpp"
#include "model/topology.hpp"
#include "sim/network.hpp"
#include "sim/telemetry.hpp"

namespace pushpart {

struct SimOptions {
  Machine machine;
  Topology topology = Topology::kFullyConnected;
  StarConfig star{};
  /// Messages per (sender → receiver) transfer in the bulk algorithms; more
  /// chunks expose more α. Must be >= 1.
  int chunksPerPair = 1;
  /// Pivots exchanged per PIO step (paper §II: "k rows and columns at a
  /// time"). 1 = classic PIO; n = one bulk exchange. Must be >= 1.
  int pioBlockSize = 1;
  /// Fault injection plan. When disabled (the default) the simulation takes
  /// the original perfect-network path and is bit-identical to it.
  FaultPlan faults{};
  /// Timeout/retransmit policy for transfers under fault injection.
  RetryPolicy retry{};
  /// On processor death, repartition to the survivors (plan/rebalance.hpp)
  /// and finish the run degraded. When false a death aborts the run
  /// (SimResult::completed == false).
  bool rebalanceOnDeath = true;
  /// When set, the run emits one PhaseSample as it completes: per processor,
  /// the MACs it owned (count · n) and the model-charged busy seconds at the
  /// machine's ratio-scaled speed, with stall windows and a mid-run death
  /// marked. The adaptive serving loop (src/adapt) feeds on this.
  TelemetrySink telemetry;
};

/// What happened when a processor died mid-run (all zero when none did).
struct SimRecovery {
  bool processorDied = false;
  Proc deadProc = Proc::P;
  double deathDetectedAt = 0.0;  ///< Failure-detector instant (death + timeout).
  /// First pivot of the failover epoch: pivots [failoverPivot, N) re-run
  /// under the rebalanced partition.
  int failoverPivot = 0;
  std::int64_t reassignedElements = 0;  ///< Cells moved off the dead processor.
  std::int64_t refetchedElements = 0;   ///< Operand panels re-served on failover.
  /// Failover overhead: refetch/re-sync communication plus the catch-up
  /// computation of the reassigned cells over the already-finished pivots.
  double recoverySeconds = 0.0;
  bool failoverPlanVerified = false;  ///< verifyElementPlanRange accepted it.
  std::int64_t vocBefore = 0;  ///< VoC of the original partition.
  std::int64_t vocAfter = 0;   ///< VoC of the degraded two-survivor partition.
};

struct SimResult {
  double execSeconds = 0.0;
  /// Instant all communication completed (barrier algorithms) or total
  /// NIC-busy time (PIO).
  double commSeconds = 0.0;
  double overlapSeconds = 0.0;  ///< Bulk-overlap computation (SCO/PCO).
  double compSeconds = 0.0;     ///< Post-communication computation.
  NetworkStats network;
  /// False when the run could not finish: a transfer ran out of retry
  /// attempts, or a processor died with rebalanceOnDeath off (execSeconds
  /// then holds the abort instant).
  bool completed = true;
  SimRecovery recovery;
};

/// Simulates one full MMM of the partition's matrix under `algo`.
SimResult simulateMMM(Algo algo, const Partition& q, const SimOptions& options);

}  // namespace pushpart
