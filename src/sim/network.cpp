#include "sim/network.hpp"

#include <algorithm>

namespace pushpart {

double Network::bookHop(Proc sender, std::int64_t elements, double readyAt) {
  const double start = std::max(readyAt, nicFreeAt_[procSlot(sender)]);
  const double duration = machine_.transferSeconds(elements);
  const double done = start + duration;
  nicFreeAt_[procSlot(sender)] = done;
  ++stats_.messagesSent;
  stats_.elementsMoved += elements;
  stats_.nicBusySeconds[procSlot(sender)] += duration;
  return done;
}

void Network::send(const SimMessage& message, double readyAt,
                   std::function<void(double)> onDelivered) {
  PUSHPART_CHECK(message.from != message.to);
  PUSHPART_CHECK(message.elements >= 0);
  if (message.elements == 0) {
    events_.schedule(std::max(readyAt, events_.now()),
                     [cb = std::move(onDelivered), t = readyAt] { cb(t); });
    return;
  }

  const bool needsRelay = topology_ == Topology::kStar &&
                          message.from != star_.hub && message.to != star_.hub;
  const double firstHopDone = bookHop(message.from, message.elements, readyAt);
  if (!needsRelay) {
    events_.schedule(firstHopDone,
                     [cb = std::move(onDelivered), firstHopDone] {
                       cb(firstHopDone);
                     });
    return;
  }
  // Store-and-forward: the hub's NIC can only be booked once the message has
  // arrived, so the second hop is scheduled from an event at that instant.
  events_.schedule(firstHopDone, [this, message, firstHopDone,
                                  cb = std::move(onDelivered)]() mutable {
    const double done = bookHop(star_.hub, message.elements, firstHopDone);
    events_.schedule(done, [cb = std::move(cb), done] { cb(done); });
  });
}

}  // namespace pushpart
