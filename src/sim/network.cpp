#include "sim/network.hpp"

#include <algorithm>

namespace pushpart {

double Network::bookHop(Proc sender, std::int64_t elements, double readyAt) {
  double start = std::max(readyAt, nicFreeAt_[procSlot(sender)]);
  double duration;
  if (faults_ == nullptr) {
    duration = machine_.transferSeconds(elements);
  } else {
    start = faults_->stallClearedAt(sender, start);
    duration = machine_.alphaSeconds * faults_->alphaFactorAt(start) +
               machine_.sendElementSeconds * faults_->betaFactorAt(start) *
                   static_cast<double>(elements);
  }
  const double done = start + duration;
  nicFreeAt_[procSlot(sender)] = done;
  ++stats_.messagesSent;
  stats_.elementsMoved += elements;
  stats_.nicBusySeconds[procSlot(sender)] += duration;
  return done;
}

void Network::send(const SimMessage& message, double readyAt,
                   std::function<void(double)> onDelivered) {
  PUSHPART_CHECK(message.from != message.to);
  PUSHPART_CHECK(message.elements >= 0);
  if (message.elements == 0) {
    events_.schedule(std::max(readyAt, events_.now()),
                     [cb = std::move(onDelivered), t = readyAt] { cb(t); });
    return;
  }

  const bool needsRelay = topology_ == Topology::kStar &&
                          message.from != star_.hub && message.to != star_.hub;
  const double firstHopDone = bookHop(message.from, message.elements, readyAt);
  if (!needsRelay) {
    events_.schedule(firstHopDone,
                     [cb = std::move(onDelivered), firstHopDone] {
                       cb(firstHopDone);
                     });
    return;
  }
  // Store-and-forward: the hub's NIC can only be booked once the message has
  // arrived, so the second hop is scheduled from an event at that instant.
  events_.schedule(firstHopDone, [this, message, firstHopDone,
                                  cb = std::move(onDelivered)]() mutable {
    const double done = bookHop(star_.hub, message.elements, firstHopDone);
    events_.schedule(done, [cb = std::move(cb), done] { cb(done); });
  });
}

void Network::attemptOnce(const SimMessage& message, double readyAt,
                          std::function<void(bool, double)> onResult) {
  PUSHPART_CHECK(message.from != message.to);
  PUSHPART_CHECK(message.elements >= 0);
  PUSHPART_CHECK(faults_ != nullptr);
  if (message.elements == 0) {
    events_.schedule(std::max(readyAt, events_.now()),
                     [cb = std::move(onResult), t = readyAt] { cb(true, t); });
    return;
  }

  const bool needsRelay = topology_ == Topology::kStar &&
                          message.from != star_.hub && message.to != star_.hub;
  const double firstHopDone = bookHop(message.from, message.elements, readyAt);
  events_.schedule(firstHopDone, [this, message, firstHopDone, needsRelay,
                                  cb = std::move(onResult)]() mutable {
    // Loss draws happen at hop completion so they consume the fault stream
    // in deterministic event order.
    if (faults_->dropHop()) {
      ++stats_.dropsInjected;
      cb(false, firstHopDone);
      return;
    }
    const Proc receiver = needsRelay ? star_.hub : message.to;
    if (!faults_->aliveAt(receiver, firstHopDone)) {
      cb(false, firstHopDone);
      return;
    }
    if (!needsRelay) {
      cb(true, firstHopDone);
      return;
    }
    const double done = bookHop(star_.hub, message.elements, firstHopDone);
    events_.schedule(done, [this, message, done, cb = std::move(cb)] {
      if (faults_->dropHop()) {
        ++stats_.dropsInjected;
        cb(false, done);
        return;
      }
      cb(!faults_->aliveAt(message.to, done) ? false : true, done);
    });
  });
}

void Network::runAttempt(SimMessage message, double readyAt,
                         RetryPolicy policy, int attempt,
                         std::function<void(const TransferOutcome&)> onDone) {
  // Endpoint already known dead: the transfer cannot succeed; report the
  // failure without occupying the NIC (the sender's failure detector has
  // marked the peer).
  if (!faults_->aliveAt(message.from, readyAt) ||
      !faults_->aliveAt(message.to, readyAt)) {
    ++stats_.deadEndpointFailures;
    TransferOutcome out{false, readyAt, attempt, true};
    events_.schedule(std::max(readyAt, events_.now()),
                     [cb = std::move(onDone), out] { cb(out); });
    return;
  }
  attemptOnce(message, readyAt,
              [this, message, policy, attempt, cb = std::move(onDone)](
                  bool delivered, double t) mutable {
                if (delivered) {
                  cb(TransferOutcome{true, t, attempt, false});
                  return;
                }
                // The sender learns of the loss only when the ack timeout
                // expires, measured from the end of its transmission.
                const double detectAt = t + policy.timeoutSeconds;
                if (!faults_->aliveAt(message.to, detectAt) ||
                    !faults_->aliveAt(message.from, detectAt)) {
                  ++stats_.deadEndpointFailures;
                  events_.schedule(detectAt, [cb = std::move(cb), detectAt,
                                              attempt] {
                    cb(TransferOutcome{false, detectAt, attempt, true});
                  });
                  return;
                }
                if (attempt >= policy.maxAttempts) {
                  ++stats_.transfersAbandoned;
                  events_.schedule(detectAt, [cb = std::move(cb), detectAt,
                                              attempt] {
                    cb(TransferOutcome{false, detectAt, attempt, false});
                  });
                  return;
                }
                const double backoff =
                    policy.backoffBeforeRetry(attempt, faults_->rng());
                ++stats_.retriesSent;
                events_.schedule(detectAt, [this, message, policy, attempt,
                                            detectAt, backoff,
                                            cb = std::move(cb)]() mutable {
                  runAttempt(message, detectAt + backoff, policy, attempt + 1,
                             std::move(cb));
                });
              });
}

void Network::sendReliable(const SimMessage& message, double readyAt,
                           const RetryPolicy& policy,
                           std::function<void(const TransferOutcome&)> onDone) {
  PUSHPART_CHECK_MSG(faults_ != nullptr,
                     "sendReliable requires a FaultInjector; use send() on a "
                     "perfect network");
  policy.validate();
  runAttempt(message, readyAt, policy, 1, std::move(onDone));
}

}  // namespace pushpart
