#include "sim/mmm_sim.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "grid/metrics.hpp"
#include "support/check.hpp"

namespace pushpart {

namespace {

/// Splits the directed pair volumes into per-message chunks, sender-major.
std::vector<SimMessage> bulkMessages(const Partition& q, int chunksPerPair) {
  std::vector<SimMessage> out;
  const auto v = pairVolumes(q);
  for (Proc s : kAllProcs) {
    for (Proc r : kAllProcs) {
      if (s == r) continue;
      const std::int64_t volume = v[procSlot(s)][procSlot(r)];
      if (volume == 0) continue;
      for (int c = 0; c < chunksPerPair; ++c) {
        const std::int64_t lo = volume * c / chunksPerPair;
        const std::int64_t hi = volume * (c + 1) / chunksPerPair;
        if (hi > lo) out.push_back({s, r, hi - lo});
      }
    }
  }
  return out;
}

/// Directed volumes for one pivot step k: the pivot column of A and pivot
/// row of B reach every other owner of the receiving row/column.
std::vector<SimMessage> stepMessages(const Partition& q, int k) {
  std::vector<SimMessage> out;
  const int n = q.n();
  for (Proc s : kAllProcs) {
    for (Proc r : kAllProcs) {
      if (s == r) continue;
      std::int64_t volume = 0;
      for (int i = 0; i < n; ++i)
        if (q.at(i, k) == s && q.rowHas(r, i)) ++volume;  // A(i,k) pivots
      for (int j = 0; j < n; ++j)
        if (q.at(k, j) == s && q.colHas(r, j)) ++volume;  // B(k,j) pivots
      if (volume > 0) out.push_back({s, r, volume});
    }
  }
  return out;
}

struct CompLoads {
  double full[kNumProcs];       // all owned elements, N MACs each
  double overlap[kNumProcs];    // fully-local elements
  double remainder[kNumProcs];  // full − overlap
  double oneStep[kNumProcs];    // one MAC per owned element
  double maxFull = 0, maxOverlap = 0, maxRemainder = 0, maxStep = 0;
};

CompLoads computeLoads(const Partition& q, const Machine& m) {
  CompLoads loads{};
  const int n = q.n();
  for (Proc x : kAllProcs) {
    const auto xi = procSlot(x);
    const std::int64_t owned = q.count(x);
    const std::int64_t local = overlapElements(q, x);
    loads.full[xi] = m.computeSeconds(x, owned * n);
    loads.overlap[xi] = m.computeSeconds(x, local * n);
    loads.remainder[xi] = m.computeSeconds(x, (owned - local) * n);
    loads.oneStep[xi] = m.computeSeconds(x, owned);
    loads.maxFull = std::max(loads.maxFull, loads.full[xi]);
    loads.maxOverlap = std::max(loads.maxOverlap, loads.overlap[xi]);
    loads.maxRemainder = std::max(loads.maxRemainder, loads.remainder[xi]);
    loads.maxStep = std::max(loads.maxStep, loads.oneStep[xi]);
  }
  return loads;
}

/// Delivers `messages` strictly one after another (serial wire); returns the
/// final delivery instant.
double runSerial(EventQueue& events, Network& net,
                 const std::vector<SimMessage>& messages) {
  double last = 0.0;
  for (const SimMessage& msg : messages) {
    double delivered = last;
    net.send(msg, last, [&delivered](double t) { delivered = t; });
    events.run();
    last = delivered;
  }
  return last;
}

/// Issues all messages at t = 0 (NICs serialize per sender); returns the
/// instant the last one lands.
double runParallel(EventQueue& events, Network& net,
                   const std::vector<SimMessage>& messages) {
  double latest = 0.0;
  for (const SimMessage& msg : messages)
    net.send(msg, 0.0, [&latest](double t) { latest = std::max(latest, t); });
  events.run();
  return latest;
}

}  // namespace

SimResult simulateMMM(Algo algo, const Partition& q,
                      const SimOptions& options) {
  PUSHPART_CHECK(options.chunksPerPair >= 1);
  PUSHPART_CHECK_MSG(options.machine.ratio.valid(),
                     "invalid ratio " << options.machine.ratio.str());

  EventQueue events;
  Network net(events, options.machine, options.topology, options.star);
  const CompLoads loads = computeLoads(q, options.machine);

  SimResult result;
  switch (algo) {
    case Algo::kSCB: {
      const double commDone =
          runSerial(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.compSeconds = loads.maxFull;
      result.execSeconds = commDone + loads.maxFull;
      break;
    }
    case Algo::kPCB: {
      const double commDone =
          runParallel(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.compSeconds = loads.maxFull;
      result.execSeconds = commDone + loads.maxFull;
      break;
    }
    case Algo::kSCO: {
      const double commDone =
          runSerial(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.overlapSeconds = loads.maxOverlap;
      result.compSeconds = loads.maxRemainder;
      result.execSeconds =
          std::max(commDone, loads.maxOverlap) + loads.maxRemainder;
      break;
    }
    case Algo::kPCO: {
      const double commDone =
          runParallel(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.overlapSeconds = loads.maxOverlap;
      result.compSeconds = loads.maxRemainder;
      result.execSeconds =
          std::max(commDone, loads.maxOverlap) + loads.maxRemainder;
      break;
    }
    case Algo::kPIO: {
      // Block b's pivot data is exchanged while block b−1 is computed; block
      // b begins once both finish (Eq. 9's serialization, grouped by
      // options.pioBlockSize pivots — one message per (pair, block) so
      // larger blocks amortize the per-message latency α).
      PUSHPART_CHECK(options.pioBlockSize >= 1);
      const int n = q.n();
      double t = 0.0;
      int prevBlockSteps = 0;
      for (int k = 0; k < n; k += options.pioBlockSize) {
        const int blockEnd = std::min(n, k + options.pioBlockSize);
        // Merge the block's per-pivot volumes into one message per pair.
        std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> vol{};
        for (int p = k; p < blockEnd; ++p)
          for (const SimMessage& msg : stepMessages(q, p))
            vol[procSlot(msg.from)][procSlot(msg.to)] += msg.elements;
        double delivered = t;
        for (Proc s : kAllProcs)
          for (Proc r : kAllProcs) {
            if (s == r || vol[procSlot(s)][procSlot(r)] == 0) continue;
            net.send({s, r, vol[procSlot(s)][procSlot(r)]}, t,
                     [&delivered](double at) {
                       delivered = std::max(delivered, at);
                     });
          }
        events.run();
        t = std::max(delivered, t + loads.maxStep * prevBlockSteps);
        prevBlockSteps = blockEnd - k;
      }
      t += loads.maxStep * prevBlockSteps;  // drain: compute the final block
      double nicBusy = 0.0;
      for (double b : net.stats().nicBusySeconds) nicBusy += b;
      result.commSeconds = nicBusy;
      result.compSeconds = loads.maxStep * n;
      result.execSeconds = t;
      break;
    }
  }
  result.network = net.stats();
  return result;
}

}  // namespace pushpart
